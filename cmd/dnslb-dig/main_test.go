package main

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"dnslb"
	"dnslb/internal/dnswire"
)

// startTestServer runs a small authoritative server to dig against.
func startTestServer(t *testing.T) string {
	t.Helper()
	cluster, err := dnslb.ScaledCluster(3, 35, 300)
	if err != nil {
		t.Fatal(err)
	}
	state, err := dnslb.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone: "www.dig.test",
		ServerAddrs: []netip.Addr{
			netip.MustParseAddr("10.3.0.1"),
			netip.MustParseAddr("10.3.0.2"),
			netip.MustParseAddr("10.3.0.3"),
		},
		Policy: policy,
		Addr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr().String()
}

func TestDigA(t *testing.T) {
	addr := startTestServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-server", addr, "-n", "3", "www.dig.test"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"www.dig.test.", "IN A", "10.3.0.1", "10.3.0.2", "10.3.0.3", "240"} {
		if !strings.Contains(out, want) {
			t.Errorf("dig output missing %q:\n%s", want, out)
		}
	}
}

func TestDigTXT(t *testing.T) {
	addr := startTestServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-server", addr, "-type", "TXT", "www.dig.test"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy=RR") {
		t.Errorf("TXT output = %q", buf.String())
	}
}

func TestDigNXDomain(t *testing.T) {
	addr := startTestServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-server", addr, "other.test"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NXDOMAIN") {
		t.Errorf("output = %q, want NXDOMAIN note", buf.String())
	}
}

func TestDigTimeoutReported(t *testing.T) {
	// Nothing listens here; errors are printed, not fatal.
	var buf bytes.Buffer
	err := run([]string{"-server", "127.0.0.1:1", "-timeout", "50ms", "www.dig.test"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ";;") {
		t.Errorf("output = %q, want error comment", buf.String())
	}
}

func TestDigUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing name should error")
	}
	if err := run([]string{"-type", "BOGUS", "x.test"}, &buf); err == nil {
		t.Error("bad type should error")
	}
	if err := run([]string{"-badflag", "x.test"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestParseType(t *testing.T) {
	tests := []struct {
		in   string
		want dnswire.Type
	}{
		{"a", dnswire.TypeA}, {"AAAA", dnswire.TypeAAAA}, {"ns", dnswire.TypeNS},
		{"cname", dnswire.TypeCNAME}, {"SOA", dnswire.TypeSOA},
		{"txt", dnswire.TypeTXT}, {"any", dnswire.TypeANY},
	}
	for _, tt := range tests {
		got, err := parseType(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("parseType(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestRDataString(t *testing.T) {
	tests := []struct {
		data dnswire.RData
		want string
	}{
		{dnswire.A{Addr: netip.MustParseAddr("1.2.3.4")}, "1.2.3.4"},
		{dnswire.AAAA{Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{dnswire.CNAME{Target: "x.test."}, "x.test."},
		{dnswire.NS{Host: "ns.test."}, "ns.test."},
		{dnswire.PTR{Target: "p.test."}, "p.test."},
		{dnswire.TXT{Strings: []string{"a", "b"}}, `"a" "b"`},
	}
	for _, tt := range tests {
		if got := rdataString(tt.data); got != tt.want {
			t.Errorf("rdataString(%T) = %q, want %q", tt.data, got, tt.want)
		}
	}
	soa := dnswire.SOA{MName: "m.", RName: "r.", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}
	if got := rdataString(soa); !strings.Contains(got, "m. r. 1 2 3 4 5") {
		t.Errorf("SOA string = %q", got)
	}
	raw := dnswire.Raw{Type: dnswire.Type(99), Data: []byte{1}}
	if got := rdataString(raw); got == "" {
		t.Error("raw string empty")
	}
}
