// Command dnslb-dig is a small dig-like client for inspecting the
// adaptive-TTL DNS server: it resolves a name against one upstream and
// prints every answer with its TTL — repeatedly, to watch the load
// balancer cycle servers and adapt TTLs.
//
// Examples:
//
//	dnslb-dig -server 127.0.0.1:5353 www.site.example
//	dnslb-dig -server 127.0.0.1:5353 -type TXT www.site.example
//	dnslb-dig -server 127.0.0.1:5353 -n 10 www.site.example
//	dnslb-dig -server 127.0.0.1:5353 -ecs 198.51.100.0/24 www.site.example
//	dnslb-dig -server 127.0.0.1:8053 -transport doh www.site.example
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"dnslb"
	"dnslb/internal/dnswire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-dig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-dig", flag.ContinueOnError)
	var (
		server    = fs.String("server", "127.0.0.1:5353", "upstream DNS server address (or URL for -transport doh)")
		qtype     = fs.String("type", "A", "query type (A, TXT, ANY, ...)")
		n         = fs.Int("n", 1, "number of queries to send")
		gap       = fs.Duration("gap", 0, "pause between queries")
		timeout   = fs.Duration("timeout", 3*time.Second, "per-query timeout")
		ecs       = fs.String("ecs", "", "attach an EDNS Client Subnet option (prefix like 198.51.100.0/24, or a bare address)")
		transport = fs.String("transport", "udp", "query transport: udp (TCP fallback on truncation), tcp, or doh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dnslb-dig [flags] <name>")
	}
	name := fs.Arg(0)
	typ, err := parseType(*qtype)
	if err != nil {
		return err
	}
	subnet, err := parseSubnet(*ecs)
	if err != nil {
		return err
	}

	r := &dnslb.Resolver{Server: *server, Transport: *transport, Timeout: *timeout, ClientSubnet: subnet}
	ctx := context.Background()
	for i := 0; i < *n; i++ {
		if i > 0 && *gap > 0 {
			time.Sleep(*gap)
		}
		resp, err := r.Exchange(ctx, name, typ)
		if err != nil {
			fmt.Fprintf(out, ";; %v\n", err)
			continue
		}
		for _, rr := range resp.Answers {
			fmt.Fprintf(out, "%-30s %6d  IN %-6s %s\n", rr.Name, rr.TTL, rr.Type, rdataString(rr.Data))
		}
		if len(resp.Answers) == 0 {
			fmt.Fprintf(out, ";; %s: no answers\n", resp.Header.RCode)
		}
		if cs, ok := responseECS(resp); ok {
			fmt.Fprintf(out, ";; ECS: %s scope /%d\n", cs.Prefix, cs.ScopePrefixLen)
		}
	}
	return nil
}

// parseSubnet reads the -ecs flag: a prefix, or a bare address taken at
// full length (the server clamps it to its configured granularity).
func parseSubnet(s string) (netip.Prefix, error) {
	if s == "" {
		return netip.Prefix{}, nil
	}
	if p, err := netip.ParsePrefix(s); err == nil {
		return p, nil
	}
	addr, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, fmt.Errorf("bad -ecs value %q: want a prefix or address", s)
	}
	return netip.PrefixFrom(addr, addr.BitLen()), nil
}

// responseECS extracts the echoed ECS option from a response, if any.
func responseECS(resp *dnswire.Message) (dnswire.ClientSubnet, bool) {
	for _, rr := range resp.Additional {
		if rr.Type != dnswire.TypeOPT {
			continue
		}
		opt, ok := rr.Data.(dnswire.OPT)
		if !ok {
			continue
		}
		for _, o := range opt.Options {
			if o.Code != dnswire.OptionClientSubnet {
				continue
			}
			cs, err := dnswire.ParseClientSubnet(o.Data)
			if err != nil {
				continue
			}
			return cs, true
		}
	}
	return dnswire.ClientSubnet{}, false
}

func parseType(s string) (dnswire.Type, error) {
	switch strings.ToUpper(s) {
	case "A":
		return dnswire.TypeA, nil
	case "AAAA":
		return dnswire.TypeAAAA, nil
	case "NS":
		return dnswire.TypeNS, nil
	case "CNAME":
		return dnswire.TypeCNAME, nil
	case "SOA":
		return dnswire.TypeSOA, nil
	case "TXT":
		return dnswire.TypeTXT, nil
	case "ANY":
		return dnswire.TypeANY, nil
	default:
		return 0, fmt.Errorf("unsupported query type %q", s)
	}
}

func rdataString(d dnswire.RData) string {
	switch v := d.(type) {
	case dnswire.A:
		return v.Addr.String()
	case dnswire.AAAA:
		return v.Addr.String()
	case dnswire.CNAME:
		return v.Target
	case dnswire.NS:
		return v.Host
	case dnswire.PTR:
		return v.Target
	case dnswire.TXT:
		return `"` + strings.Join(v.Strings, `" "`) + `"`
	case dnswire.SOA:
		return fmt.Sprintf("%s %s %d %d %d %d %d", v.MName, v.RName, v.Serial, v.Refresh, v.Retry, v.Expire, v.Minimum)
	default:
		return fmt.Sprintf("%v", d)
	}
}
