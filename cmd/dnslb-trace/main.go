// Command dnslb-trace records and replays client workload traces.
//
// Subcommands:
//
//	gen     synthesize a trace from the paper's workload model
//	stats   summarize a trace (rate, sessions, domain skew)
//	replay  run a simulation with the trace as its arrivals
//	import  convert a Common Log Format access log into a trace
//	export  render a trace as a synthetic Common Log Format log
//
// A trace generated with the same seed and workload replays exactly
// like a live simulation, so `replay` enables paired policy
// comparisons over identical traffic:
//
//	dnslb-trace gen -out day.trace -duration 18000
//	dnslb-trace stats -in day.trace
//	dnslb-trace replay -in day.trace -policy RR
//	dnslb-trace replay -in day.trace -policy DRR2-TTL/S_K
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dnslb"
	"dnslb/internal/logging"
	"dnslb/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dnslb-trace <gen|stats|replay> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "stats":
		return runStats(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	case "import":
		return runImport(args[1:], out)
	case "export":
		return runExport(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, stats, replay, import, or export)", args[0])
	}
}

func runGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-trace gen", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "output file (default stdout)")
		duration = fs.Float64("duration", 3600, "trace horizon in virtual seconds")
		domains  = fs.Int("domains", 20, "connected domains")
		clients  = fs.Int("clients", 500, "total clients")
		seed     = fs.Uint64("seed", 1, "random seed")
		errPct   = fs.Float64("error", 0, "rate perturbation percent (busiest domain)")
		uniform  = fs.Bool("uniform", false, "uniform client distribution")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wl := dnslb.DefaultWorkload()
	wl.Domains = *domains
	wl.Clients = *clients
	wl.PerturbationPct = *errPct
	wl.Uniform = *uniform
	records, err := trace.Generate(wl, *duration, *seed)
	if err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, records); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "wrote %d records to %s\n", len(records), *outPath)
	}
	return nil
}

func loadTrace(path string) ([]trace.Record, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-trace stats", flag.ContinueOnError)
	inPath := fs.String("in", "", "trace file")
	top := fs.Int("top", 5, "domains to list by share")
	if err := fs.Parse(args); err != nil {
		return err
	}
	records, err := loadTrace(*inPath)
	if err != nil {
		return err
	}
	s := trace.Summarize(records)
	fmt.Fprintf(out, "records        %d\n", s.Records)
	fmt.Fprintf(out, "sessions       %d\n", s.Sessions)
	fmt.Fprintf(out, "clients        %d\n", s.Clients)
	fmt.Fprintf(out, "domains        %d\n", s.Domains)
	fmt.Fprintf(out, "total hits     %d\n", s.TotalHits)
	fmt.Fprintf(out, "duration       %.1fs\n", s.Duration)
	fmt.Fprintf(out, "hit rate       %.1f hits/s\n", s.HitRate)
	n := *top
	if n > len(s.DomainShare) {
		n = len(s.DomainShare)
	}
	for j := 0; j < n; j++ {
		fmt.Fprintf(out, "domain %-2d      %.1f%% of hits\n", j, 100*s.DomainShare[j])
	}
	return nil
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-trace replay", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "trace file")
		policy  = fs.String("policy", "DRR2-TTL/S_K", "scheduling policy")
		het     = fs.Int("het", 20, "heterogeneity percent")
		servers = fs.Int("servers", 7, "web servers")
		warmup  = fs.Float64("warmup", 600, "warm-up seconds discarded from metrics")
		minTTL  = fs.Float64("minttl", 0, "non-cooperative NS minimum TTL")
		seed    = fs.Uint64("seed", 1, "random seed (policy randomness)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	records, err := loadTrace(*inPath)
	if err != nil {
		return err
	}
	s := trace.Summarize(records)

	cfg := dnslb.DefaultSimConfig(*policy)
	cfg.Trace = records
	cfg.Workload.Domains = s.Domains
	cfg.HeterogeneityPct = *het
	cfg.Servers = *servers
	cfg.MinNSTTL = *minTTL
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	horizon := records[len(records)-1].Time
	if horizon <= *warmup {
		return fmt.Errorf("trace ends at %.1fs, inside the %.0fs warm-up", horizon, *warmup)
	}
	cfg.Duration = horizon - *warmup

	res, err := dnslb.RunSim(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "policy              %s\n", *policy)
	fmt.Fprintf(out, "trace               %s (%d records, %.1f hits/s)\n", *inPath, s.Records, s.HitRate)
	for _, level := range []float64{0.8, 0.9, 0.98} {
		fmt.Fprintf(out, "P(MaxUtil < %.2f)    %.4f\n", level, res.ProbMaxUnder(level))
	}
	fmt.Fprintf(out, "address requests    %d\n", res.AddressRequests)
	fmt.Fprintf(out, "hits served         %d\n", res.TotalHits)
	return nil
}

func runImport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-trace import", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "Common Log Format access log")
		outPath = fs.String("out", "", "trace output file (default stdout)")
		domains = fs.Int("domains", 20, "connected domains for host hashing")
		pageGap = fs.Duration("pagegap", time.Second, "max spacing between hits of one page")
		session = fs.Duration("session", 30*time.Minute, "idle period opening a new session")
		logOpts = logging.AddFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	logger, err := logOpts.New(os.Stderr)
	if err != nil {
		return err
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.ParseCommonLog(f, trace.CLFOptions{
		Domains:        *domains,
		PageGap:        *pageGap,
		SessionTimeout: *session,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		g, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	if err := trace.Write(w, records); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "imported %d page requests to %s\n", len(records), *outPath)
	}
	return nil
}

func runExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-trace export", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "trace file")
		outPath = fs.String("out", "", "access log output (default stdout)")
		baseStr = fs.String("base", "2026-01-01T00:00:00Z", "RFC 3339 anchor for the virtual time axis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	records, err := loadTrace(*inPath)
	if err != nil {
		return err
	}
	base, err := time.Parse(time.RFC3339, *baseStr)
	if err != nil {
		return fmt.Errorf("bad -base: %w", err)
	}
	w := out
	if *outPath != "" {
		g, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	if err := trace.FormatCommonLog(w, records, base); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "exported %d page requests to %s\n", len(records), *outPath)
	}
	return nil
}
