package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"stats"}, &buf); err == nil {
		t.Error("stats without -in should error")
	}
	if err := run([]string{"replay"}, &buf); err == nil {
		t.Error("replay without -in should error")
	}
	if err := run([]string{"gen", "-badflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func TestGenStatsReplayPipeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	var buf bytes.Buffer

	if err := run([]string{"gen", "-out", path, "-duration", "1200", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Errorf("gen output = %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"stats", "-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"records", "sessions", "hit rate", "domain 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"replay", "-in", path, "-policy", "DRR2-TTL/S_K", "-warmup", "300"}, &buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"P(MaxUtil < 0.98)", "address requests", "hits served"} {
		if !strings.Contains(out, want) {
			t.Errorf("replay output missing %q:\n%s", want, out)
		}
	}
}

func TestGenToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"gen", "-duration", "60", "-clients", "50", "-domains", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# dnslb trace v1") {
		t.Errorf("stdout trace missing header: %q", buf.String()[:40])
	}
}

func TestReplayWarmupLongerThanTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.trace")
	var buf bytes.Buffer
	if err := run([]string{"gen", "-out", path, "-duration", "120"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"replay", "-in", path, "-warmup", "600"}, &buf); err == nil {
		t.Error("warm-up beyond the trace horizon should error")
	}
}

func TestStatsMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"stats", "-in", "/nonexistent/x.trace"}, &buf); err == nil {
		t.Error("missing file should error")
	}
}

func TestImportExportPipeline(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "gen.trace")
	logPath := filepath.Join(dir, "access.log")
	backPath := filepath.Join(dir, "back.trace")
	var buf bytes.Buffer

	if err := run([]string{"gen", "-out", tracePath, "-duration", "300", "-clients", "60", "-domains", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"export", "-in", tracePath, "-out", logPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"import", "-in", logPath, "-out", backPath, "-domains", "6"}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"stats", "-in", backPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "records") {
		t.Errorf("stats on imported trace failed:\n%s", buf.String())
	}
}

func TestImportErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"import"}, &buf); err == nil {
		t.Error("import without -in should error")
	}
	if err := run([]string{"export", "-in", "/nonexistent"}, &buf); err == nil {
		t.Error("export on missing file should error")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "t.trace")
	if err := run([]string{"gen", "-out", p, "-duration", "60"}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"export", "-in", p, "-base", "not-a-time"}, &buf); err == nil {
		t.Error("bad -base should error")
	}
}
