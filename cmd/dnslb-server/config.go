package main

// Configuration file support. -config points at a flag-per-line file
// carrying the same settings as the command-line flags:
//
//	# dnslb-server configuration
//	zone       www.site.example
//	addr       127.0.0.1:5353
//	policy     DRR2-TTL/S_K
//	servers    10.0.0.1,10.0.0.2,10.0.0.3
//	capacities 100,80,50
//
// Keys are flag names; '=' between key and value is optional; '#'
// starts a comment. Precedence at startup is command line > config
// file > built-in defaults (a flag given explicitly on the command
// line is never overridden by the file).
//
// On SIGHUP the file is re-read and the server set is diffed against
// the running membership: new addresses join, missing addresses drain
// gracefully, changed capacities apply in place. All other settings
// are bound at startup; a reload that changes one logs a warning and
// ignores it.

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"dnslb"
)

// parseConfigFile parses a flag-per-line configuration file into
// ordered (key, value) pairs. It validates shape only — key syntax,
// duplicates, the presence of a value — leaving value semantics to the
// flag set that applies them.
func parseConfigFile(data []byte) ([][2]string, error) {
	var kvs [][2]string
	seen := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		i := strings.IndexAny(line, " \t=")
		if i < 0 {
			return nil, fmt.Errorf("line %d: %q has no value", lineNo, line)
		}
		key := line[:i]
		val := strings.TrimSpace(line[i:])
		if strings.HasPrefix(val, "=") {
			val = strings.TrimSpace(val[1:])
		}
		if !validConfigKey(key) {
			return nil, fmt.Errorf("line %d: bad setting name %q", lineNo, key)
		}
		if key == "config" {
			return nil, fmt.Errorf("line %d: %q cannot be set from a config file", lineNo, key)
		}
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate setting %q", lineNo, key)
		}
		seen[key] = true
		kvs = append(kvs, [2]string{key, val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return kvs, nil
}

// validConfigKey accepts flag-shaped names: a letter followed by
// letters, digits, and dashes.
func validConfigKey(key string) bool {
	if key == "" {
		return false
	}
	for i, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '-'):
		default:
			return false
		}
	}
	return true
}

// applyConfigFile layers the config file under the command line: every
// setting in the file is applied through fs.Set unless the same flag
// was given explicitly on the command line. Call after fs.Parse.
func applyConfigFile(fs *flag.FlagSet, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kvs, err := parseConfigFile(data)
	if err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	fromCmdline := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { fromCmdline[f.Name] = true })
	for _, kv := range kvs {
		name, val := kv[0], kv[1]
		if fs.Lookup(name) == nil {
			return fmt.Errorf("config %s: unknown setting %q", path, name)
		}
		if fromCmdline[name] {
			continue
		}
		if err := fs.Set(name, val); err != nil {
			return fmt.Errorf("config %s: %s: %w", path, name, err)
		}
	}
	return nil
}

// reloadConfig re-reads the config file and applies the server set to
// the running server: joins for new addresses, graceful drains for
// removed ones, capacity updates in place. Settings other than
// servers/capacities are bound at startup; if the file changed one, a
// warning notes that a restart is needed.
func reloadConfig(fs *flag.FlagSet, path string, srv *dnslb.DNSServer, logger *slog.Logger) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kvs, err := parseConfigFile(data)
	if err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	var servers, capacities string
	for _, kv := range kvs {
		switch kv[0] {
		case "servers":
			servers = kv[1]
		case "capacities":
			capacities = kv[1]
		default:
			f := fs.Lookup(kv[0])
			if f == nil {
				return fmt.Errorf("config %s: unknown setting %q", path, kv[0])
			}
			if f.Value.String() != kv[1] {
				logger.Warn("config setting needs a restart; ignored on reload",
					"setting", kv[0], "running", f.Value.String(), "file", kv[1])
			}
		}
	}
	if servers == "" {
		return fmt.Errorf("config %s: no servers to reload", path)
	}
	addrs, caps, err := parseServers(servers, capacities)
	if err != nil {
		return err
	}
	if err := srv.Reconfigure(addrs, caps); err != nil {
		return err
	}
	logger.Info("config reloaded", "path", path, "servers", len(addrs))
	return nil
}
