package main

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnslb"
	"dnslb/internal/chaos"
	"dnslb/internal/dnswire"
)

// healthEndpoint is a minimal HTTP probe target: every connection gets
// a 200 status line. (An HTTP probe is required behind a chaos TCP
// proxy — a cut proxy still completes the TCP handshake before
// severing, which a connect-only probe would mistake for health.)
func healthEndpoint(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 512)
				_, _ = c.Read(buf)
				_, _ = c.Write([]byte("HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n"))
				_ = c.Close()
			}(c)
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

// lookupRetry resolves through a lossy path, retrying timeouts caused
// by injected drops. Only the last error is reported.
func lookupRetry(t *testing.T, r *dnslb.Resolver, name string) []dnslb.AnswerA {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		answers, err := r.LookupA(context.Background(), name)
		if err == nil {
			return answers
		}
		lastErr = err
	}
	t.Fatalf("lookup %s never succeeded through chaos proxy: %v", name, lastErr)
	return nil
}

// waitMetric polls a metrics endpoint until the series reaches want.
func waitMetric(t *testing.T, metricsAddr, series string, want float64, timeout time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if scrapeValue(metricsAddr, series) == want {
			return time.Since(start)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("series %s never reached %v within %v (last %v)",
		series, want, timeout, scrapeValue(metricsAddr, series))
	return 0
}

// TestChaosSoak runs the full server behind chaos proxies through a
// backend crash, recovery, and an induced overload, asserting the
// robustness invariants end to end:
//
//   - a crashed backend is excluded by the active prober well inside
//     the passive k-missed-reports bound, with the passive detector
//     never firing (its reports keep flowing throughout);
//   - with the versioned answer cache enabled, no stale cached answer
//     ever resurrects the dead backend's address;
//   - induced overload flips the server into degraded mode where every
//     response is NOERROR with the short degraded TTL — zero SERVFAIL;
//   - calm traffic exits degraded mode.
//
// Run under -race in CI (chaos-soak job).
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long: multi-phase chaos soak")
	}

	// Three fake backends, each probed through its own cuttable proxy.
	backends := make([]net.Listener, 3)
	proxies := make([]*chaos.TCPProxy, 3)
	targets := ""
	for i := range backends {
		backends[i] = healthEndpoint(t)
		p, err := chaos.NewTCPProxy("127.0.0.1:0", backends[i].Addr().String(), uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		proxies[i] = p
		if i > 0 {
			targets += ","
		}
		targets += p.Addr()
	}

	const (
		livenessK   = 3
		livenessIv  = 5 * time.Second // passive bound: 15 s
		degradedTTL = 2.0
	)
	stop := make(chan struct{})
	addrs := make(chan boundAddrs, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-zone", "www.soak.test",
			"-addr", "127.0.0.1:0",
			"-servers", "10.7.0.1,10.7.0.2,10.7.0.3",
			"-capacities", "100,100,50",
			"-policy", "DRR2-TTL/S_K",
			"-domains", "4",
			"-answer-cache",
			"-metrics-addr", "127.0.0.1:0",
			"-probe", "http=/healthz,interval=50ms,timeout=250ms,fail=3,rise=2",
			"-probe-targets", targets,
			"-liveness-k", fmt.Sprint(livenessK),
			"-liveness-interval", livenessIv.String(),
			"-overload-qps", "400",
			"-overload-ttl", fmt.Sprint(degradedTTL),
			"-log-level", "error",
		}, stop, func(b boundAddrs) { addrs <- b })
	}()
	var bound boundAddrs
	select {
	case bound = <-addrs:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start")
	}
	defer func() {
		close(stop)
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}()

	// Keep passive liveness fed for ALL backends for the whole test, so
	// any exclusion can only come from the active prober.
	feederDone := make(chan struct{})
	feederStop := make(chan struct{})
	go func() {
		defer close(feederDone)
		for {
			select {
			case <-feederStop:
				return
			case <-time.After(500 * time.Millisecond):
			}
			conn, err := net.Dial("tcp", bound.Report)
			if err != nil {
				continue
			}
			buf := make([]byte, 16)
			for i := 0; i < 3; i++ {
				fmt.Fprintf(conn, "ALIVE %d\n", i)
				_, _ = conn.Read(buf)
			}
			_ = conn.Close()
		}
	}()
	defer func() { close(feederStop); <-feederDone }()

	// Clients reach DNS through a lossy, jittery UDP proxy.
	udp, err := chaos.NewUDPProxy("127.0.0.1:0", bound.DNS, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	if err := udp.SetFault(chaos.Fault{
		Drop: 0.05, Dup: 0.03, Delay: time.Millisecond, Jitter: 3 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	r := &dnslb.Resolver{Server: udp.Addr(), Timeout: 500 * time.Millisecond}

	// Phase 1 — baseline under mild chaos: every answer is sane and all
	// three backends take traffic.
	seen := map[netip.Addr]int{}
	for i := 0; i < 40; i++ {
		for _, a := range lookupRetry(t, r, "www.soak.test") {
			if a.TTL <= 0 || a.TTL > 10*time.Minute {
				t.Fatalf("implausible TTL %v in baseline answer", a.TTL)
			}
			seen[a.Addr]++
		}
	}
	if len(seen) != 3 {
		t.Fatalf("baseline spread %v, want all 3 backends", seen)
	}

	// Phase 2 — crash backend 1's health endpoint. Its ALIVE reports
	// keep flowing, so only the prober can exclude it; fail-3 at a 50 ms
	// interval bounds detection far under the 15 s passive bound.
	dead := netip.MustParseAddr("10.7.0.2")
	proxies[1].Cut()
	elapsed := waitMetric(t, bound.Metrics, `dnslb_probe_down{server="1"}`, 1, 5*time.Second)
	if passiveBound := time.Duration(livenessK) * livenessIv; elapsed >= passiveBound {
		t.Errorf("probe detection took %v, not faster than the passive bound %v", elapsed, passiveBound)
	}
	if got := scrapeValue(bound.Metrics, `dnslb_liveness_exclusions_total{server="1"}`); got != 0 {
		t.Errorf("passive liveness fired (%v exclusions) while reports were flowing", got)
	}
	// The versioned answer cache must not resurrect the dead address.
	waitMetric(t, bound.Metrics, `dnslb_state_server_down{server="1"}`, 1, 2*time.Second)
	for i := 0; i < 30; i++ {
		for _, a := range lookupRetry(t, r, "www.soak.test") {
			if a.Addr == dead {
				t.Fatalf("lookup %d returned crashed backend %v after exclusion", i, dead)
			}
		}
	}

	// Phase 3 — heal. The passive detector stayed up throughout, so the
	// prober's rise-2 agreement alone re-admits the backend.
	proxies[1].Heal()
	waitMetric(t, bound.Metrics, `dnslb_probe_down{server="1"}`, 0, 5*time.Second)
	waitMetric(t, bound.Metrics, `dnslb_state_server_down{server="1"}`, 0, 2*time.Second)

	// Phase 4 — overload. Blast raw queries straight at the server
	// (past the lossy proxy) until the controller degrades, then verify
	// the degraded contract: NOERROR answers, degraded TTL, no SERVFAIL.
	servfailBefore := scrapeValue(bound.Metrics, `dnslb_dns_responses_total{outcome="servfail"}`)
	wire, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 99, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.soak.test", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	blastStop := make(chan struct{})
	blastDone := make(chan struct{})
	go func() {
		defer close(blastDone)
		conn, err := net.Dial("udp", bound.DNS)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			select {
			case <-blastStop:
				return
			default:
			}
			for i := 0; i < 100; i++ {
				_, _ = conn.Write(wire)
			}
			time.Sleep(10 * time.Millisecond) // ~10k qps, far over the 400 ceiling
		}
	}()
	waitMetric(t, bound.Metrics, "dnslb_dns_degraded_mode", 1, 15*time.Second)
	direct := &dnslb.Resolver{Server: bound.DNS, Timeout: 2 * time.Second}
	for i := 0; i < 20; i++ {
		answers, err := direct.LookupA(context.Background(), "www.soak.test")
		if err != nil {
			t.Fatalf("degraded lookup %d failed: %v", i, err)
		}
		for _, a := range answers {
			if a.TTL != time.Duration(degradedTTL*float64(time.Second)) {
				t.Fatalf("degraded answer TTL %v, want %vs", a.TTL, degradedTTL)
			}
		}
	}
	close(blastStop)
	<-blastDone
	if got := scrapeValue(bound.Metrics, `dnslb_dns_responses_total{outcome="servfail"}`); got != servfailBefore {
		t.Errorf("SERVFAIL count moved %v -> %v during degraded mode", servfailBefore, got)
	}
	if got := scrapeValue(bound.Metrics, "dnslb_dns_degraded_answers_total"); got < 20 {
		t.Errorf("degraded answers total = %v, want >= 20", got)
	}

	// Phase 5 — calm traffic exits degraded mode (exit hysteresis is 5
	// consecutive sub-ceiling ticks at 1 s each).
	waitMetric(t, bound.Metrics, "dnslb_dns_degraded_mode", 0, 20*time.Second)
	if answers := lookupRetry(t, r, "www.soak.test"); len(answers) == 0 {
		t.Error("no answer after leaving degraded mode")
	}
}
