// Command dnslb-server runs the adaptive-TTL DNS load balancer as a
// real authoritative name server: A queries for the configured zone
// are answered with a Web server picked by the scheduling policy and a
// TTL adapted to the querying domain and the server's capacity.
//
// Web servers feed load back over the plain-text report socket:
//
//	printf 'ALARM 0 1\n' | nc <host> <report-port>
//	printf 'HITS 3 1200\nROLL 60\n' | nc <host> <report-port>
//
// Example:
//
//	dnslb-server -zone www.site.example -addr 127.0.0.1:5353 \
//	  -servers 10.0.0.1,10.0.0.2,10.0.0.3 -capacities 100,80,50 \
//	  -policy DRR2-TTL/S_K -domains 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof flag: registers /debug/pprof handlers
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dnslb"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-server:", err)
		os.Exit(1)
	}
}

// run serves until stop closes. When non-nil, started is called with
// the bound DNS and report addresses once both listeners are up.
func run(args []string, stop <-chan struct{}, started func(dnsAddr, reportAddr string)) error {
	fs := flag.NewFlagSet("dnslb-server", flag.ContinueOnError)
	var (
		zone       = fs.String("zone", "www.site.example", "zone name answered authoritatively")
		addr       = fs.String("addr", "127.0.0.1:5353", "DNS listen address (UDP and TCP)")
		reportAddr = fs.String("report", "", "load-report listen address (empty = port after DNS port)")
		policy     = fs.String("policy", "DRR2-TTL/S_K", "scheduling policy")
		servers    = fs.String("servers", "", "comma-separated Web server IPv4 addresses (required)")
		capacities = fs.String("capacities", "", "comma-separated capacities in hits/s (default: equal)")
		domains    = fs.Int("domains", 20, "connected domains for source classification")
		qps        = fs.Float64("qps", 0, "per-source query rate limit (0 = unlimited)")
		burst      = fs.Float64("burst", 10, "per-source burst allowance when -qps is set")
		livenessK  = fs.Int("liveness-k", 3, "missed report intervals before a backend is marked down (0 = disable liveness)")
		livenessIv = fs.Duration("liveness-interval", 8*time.Second, "expected backend report interval")
		udpWorkers = fs.Int("udp-workers", 0, "parallel UDP serve goroutines (0 = GOMAXPROCS)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servers == "" {
		return fmt.Errorf("-servers is required")
	}
	addrs, caps, err := parseServers(*servers, *capacities)
	if err != nil {
		return err
	}

	cluster, err := dnslb.NewCluster(caps)
	if err != nil {
		return err
	}
	state, err := dnslb.NewState(cluster, *domains)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	start := time.Now()
	pol, err := dnslb.NewPolicy(dnslb.PolicyConfig{
		Name:  *policy,
		State: state,
		Rand:  rng,
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "dnslb-server: ", log.LstdFlags)
	cfg := dnslb.DNSServerConfig{
		Zone:        *zone,
		ServerAddrs: addrs,
		Policy:      pol,
		Addr:        *addr,
		Logger:      logger,
		UDPWorkers:  *udpWorkers,
	}
	if *qps > 0 {
		cfg.RateLimit = dnslb.NewRateLimiter(*qps, *burst)
	}
	srv, err := dnslb.NewDNSServer(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	logger.Printf("serving %s on %s with %s over %d servers", *zone, srv.Addr(), *policy, len(addrs))

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on DefaultServeMux at
		// import; a plain server on that mux exposes them. Profiling
		// the lock-free query path under load is the point, so this
		// stays opt-in and should never face the public internet.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("pprof: %v", err)
			}
		}()
		logger.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	}

	rAddr := *reportAddr
	if rAddr == "" {
		rAddr = nextPort(srv.Addr().String())
	}
	reporter, err := dnslb.NewReportListener(srv, rAddr)
	if err != nil {
		return err
	}
	defer reporter.Close()
	logger.Printf("load reports on %s (ALIVE/ALARM/HITS/ROLL)", reporter.Addr())

	if *livenessK > 0 {
		monitor, err := dnslb.NewLivenessMonitor(srv, *livenessIv, *livenessK)
		if err != nil {
			return err
		}
		defer monitor.Close()
		logger.Printf("liveness: backends silent for %d x %v are excluded until they report again",
			*livenessK, *livenessIv)
	}

	if started != nil {
		started(srv.Addr().String(), reporter.Addr().String())
	}
	<-stop
	logger.Printf("shutting down: %+v", srv.Stats())
	return nil
}

// parseServers parses the address and capacity lists. Capacities
// default to 100 hits/s each and must be sorted non-increasing (the
// paper numbers servers by decreasing capacity).
func parseServers(servers, capacities string) ([]netip.Addr, []float64, error) {
	parts := strings.Split(servers, ",")
	addrs := make([]netip.Addr, 0, len(parts))
	for _, p := range parts {
		a, err := netip.ParseAddr(strings.TrimSpace(p))
		if err != nil {
			return nil, nil, fmt.Errorf("bad server address %q: %w", p, err)
		}
		addrs = append(addrs, a)
	}
	caps := make([]float64, len(addrs))
	if capacities == "" {
		for i := range caps {
			caps[i] = 100
		}
		return addrs, caps, nil
	}
	cparts := strings.Split(capacities, ",")
	if len(cparts) != len(addrs) {
		return nil, nil, fmt.Errorf("%d capacities for %d servers", len(cparts), len(addrs))
	}
	for i, p := range cparts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad capacity %q: %w", p, err)
		}
		caps[i] = v
	}
	return addrs, caps, nil
}

// nextPort returns host:port+1 of the given address.
func nextPort(addr string) string {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return "127.0.0.1:0"
	}
	return netip.AddrPortFrom(ap.Addr(), ap.Port()+1).String()
}
