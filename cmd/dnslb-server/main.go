// Command dnslb-server runs the adaptive-TTL DNS load balancer as a
// real authoritative name server: A queries for the configured zone
// are answered with a Web server picked by the scheduling policy and a
// TTL adapted to the querying domain and the server's capacity.
//
// Web servers feed load back over the plain-text report socket:
//
//	printf 'ALARM 0 1\n' | nc <host> <report-port>
//	printf 'HITS 3 1200\nROLL 60\n' | nc <host> <report-port>
//
// Observability: -metrics-addr serves Prometheus text-format metrics
// on /metrics (DESIGN.md §10 lists the series); SIGUSR1 dumps the same
// snapshot to stderr; -log-level/-log-format control the structured
// logs; -pprof serves net/http/pprof.
//
// Operations: -config reads the same settings from a flag-per-line
// file, and SIGHUP re-reads it to apply server-set changes with zero
// downtime — new addresses join, removed addresses drain until their
// outstanding TTLs expire, changed capacities apply in place.
// -checkpoint persists the learned soft state (domain weights,
// estimator windows, alarm/liveness standing) across restarts; on
// SIGINT/SIGTERM the server drains in-flight queries within
// -shutdown-timeout and flushes a final checkpoint. Backends may also
// self-register and retire through the report socket's JOIN and DRAIN
// verbs (see internal/backend).
//
// Example:
//
//	dnslb-server -zone www.site.example -addr 127.0.0.1:5353 \
//	  -servers 10.0.0.1,10.0.0.2,10.0.0.3 -capacities 100,80,50 \
//	  -policy DRR2-TTL/S_K -domains 20 -metrics-addr 127.0.0.1:9153
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof flag: registers /debug/pprof handlers
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dnslb"
	"dnslb/internal/logging"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-server:", err)
		os.Exit(1)
	}
}

// boundAddrs reports where the listeners actually landed (useful with
// :0 ports); MetricsAddr is empty when -metrics-addr is unset.
type boundAddrs struct {
	DNS     string
	Report  string
	Metrics string
}

// run serves until stop closes. When non-nil, started is called with
// the bound addresses once every listener is up.
func run(args []string, stop <-chan struct{}, started func(boundAddrs)) error {
	fs := flag.NewFlagSet("dnslb-server", flag.ContinueOnError)
	var (
		zone        = fs.String("zone", "www.site.example", "zone name answered authoritatively")
		addr        = fs.String("addr", "127.0.0.1:5353", "DNS listen address (UDP and TCP)")
		reportAddr  = fs.String("report", "", "load-report listen address (empty = port after DNS port)")
		policy      = fs.String("policy", "DRR2-TTL/S_K", "scheduling policy")
		servers     = fs.String("servers", "", "comma-separated Web server IPv4 addresses (required)")
		capacities  = fs.String("capacities", "", "comma-separated capacities in hits/s (default: equal)")
		domains     = fs.Int("domains", 20, "connected domains for source classification")
		estAlpha    = fs.Float64("estimator-alpha", dnslb.DefaultEstimatorAlpha, "EWMA weight of the newest hidden-load collection interval, in (0,1]")
		estKind     = fs.String("estimator", dnslb.EstimatorReactive, "hidden-load estimator kind: reactive or predictive")
		geoPref     = fs.Float64("geo-preference", 0, "probability of answering with the nearest server instead of the policy's choice (0 = disabled)")
		geoBaseMS   = fs.Float64("geo-base-ms", 0, "base latency of the synthetic ring geography in ms (0 = default)")
		geoSpanMS   = fs.Float64("geo-span-ms", 0, "latency span of the synthetic ring geography in ms (0 = default)")
		qps         = fs.Float64("qps", 0, "per-source query rate limit (0 = unlimited)")
		burst       = fs.Float64("burst", 10, "per-source burst allowance when -qps is set")
		livenessK   = fs.Int("liveness-k", 3, "missed report intervals before a backend is marked down (0 = disable liveness)")
		livenessIv  = fs.Duration("liveness-interval", 8*time.Second, "expected backend report interval")
		probeSpec   = fs.String("probe", "", "active health probe spec: tcp[,interval=2s][,timeout=500ms][,fail=3][,rise=2][,jitter=0.2] or http=/path,... (empty = disabled)")
		probeAddrs  = fs.String("probe-targets", "", "comma-separated probe endpoints, one per -servers entry in order; empty entries skip a slot (required with -probe)")
		overQPS     = fs.Float64("overload-qps", 0, "aggregate query rate ceiling; above it the server degrades to static weighted answers (0 = disabled)")
		overTTL     = fs.Float64("overload-ttl", 5, "TTL in seconds for degraded-mode answers")
		overStale   = fs.Int("overload-stale-rolls", 0, "degrade when replication is down and the estimator missed this many roll intervals (0 = disabled)")
		maxTCP      = fs.Int("max-tcp-conns", 0, "concurrent TCP connection cap; accepts pause at the cap (0 = default 512, negative = unlimited)")
		udpWorkers  = fs.Int("udp-workers", 0, "parallel UDP serve goroutines (0 = GOMAXPROCS)")
		udpBatch    = fs.Int("udp-batch", 0, "datagrams moved per recvmmsg/sendmmsg syscall over per-worker SO_REUSEPORT sockets; 0 = one-datagram portable loop (Linux amd64/arm64 only; other platforms fall back)")
		answerCache = fs.Bool("answer-cache", false, "serve repeat A queries from packed response bytes, invalidated by the scheduler state version (zero-allocation hot path)")
		httpAddr    = fs.String("http-addr", "", "DNS-over-HTTP listen address: RFC 8484 wire on /dns-query, JSON on /resolve (empty = disabled)")
		ecsMode     = fs.String("ecs-mode", "", "EDNS-Client-Subnet handling: passthrough (default), add, or override")
		ecsV4       = fs.Int("ecs-v4-prefix", 0, "IPv4 ECS source-prefix granularity for clamping and synthesis (0 = /24)")
		ecsV6       = fs.Int("ecs-v6-prefix", 0, "IPv6 ECS source-prefix granularity for clamping and synthesis (0 = /56)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = disabled)")
		configPath  = fs.String("config", "", "flag-per-line configuration file; SIGHUP re-reads it and applies server-set changes")
		ckptPath    = fs.String("checkpoint", "", "state checkpoint file: restored on startup, saved periodically and on shutdown (empty = disabled)")
		ckptIv      = fs.Duration("checkpoint-interval", time.Minute, "how often to save the checkpoint")
		ckptMaxAge  = fs.Duration("checkpoint-max-age", 24*time.Hour, "reject checkpoints older than this on restore (0 = no age limit)")
		shutdownTO  = fs.Duration("shutdown-timeout", 5*time.Second, "deadline for draining in-flight queries at shutdown")
		peers       = fs.String("peers", "", "comma-separated report-socket addresses of peer DNS replicas (empty = single replica)")
		replicaID   = fs.String("replica-id", "", "unique name of this replica in the set (required with -peers)")
		replIv      = fs.Duration("replication-interval", time.Second, "soft-state gossip cadence between replicas")
		logOpts     = logging.AddFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath != "" {
		if err := applyConfigFile(fs, *configPath); err != nil {
			return err
		}
	}
	if *servers == "" {
		return fmt.Errorf("-servers is required")
	}
	// Validate estimator knobs at flag-parse time (after the config
	// file is applied) so a bad value fails with a clear message
	// instead of surfacing from deep inside server construction.
	if *estAlpha <= 0 || *estAlpha > 1 {
		return fmt.Errorf("-estimator-alpha %v out of range: must be in (0,1]", *estAlpha)
	}
	if *estKind != dnslb.EstimatorReactive && *estKind != dnslb.EstimatorPredictive {
		return fmt.Errorf("-estimator %q unknown: want %s or %s",
			*estKind, dnslb.EstimatorReactive, dnslb.EstimatorPredictive)
	}
	ecsParsed, err := dnslb.ParseECSMode(*ecsMode)
	if err != nil {
		return fmt.Errorf("-ecs-mode: %w", err)
	}
	addrs, caps, err := parseServers(*servers, *capacities)
	if err != nil {
		return err
	}
	logger, err := logOpts.New(os.Stderr)
	if err != nil {
		return err
	}

	cluster, err := dnslb.NewCluster(caps)
	if err != nil {
		return err
	}
	state, err := dnslb.NewState(cluster, *domains)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	start := time.Now()
	polCfg := dnslb.PolicyConfig{
		Name:  *policy,
		State: state,
		Rand:  rng,
		Now:   func() float64 { return time.Since(start).Seconds() },
	}
	// Proximity steering uses the same ring-geography helper the
	// simulator does, so both paths derive identical latency matrices
	// from identical knobs.
	prox, err := dnslb.RingProximityConfig(*domains, len(addrs), *geoPref, *geoBaseMS, *geoSpanMS)
	if err != nil {
		return err
	}
	if prox != nil {
		polCfg.Proximity = prox
		logger.Info("proximity steering enabled", "preference", *geoPref)
	}
	pol, err := dnslb.NewPolicy(polCfg)
	if err != nil {
		return err
	}

	// The registry always exists — the SIGUSR1 dump works even without
	// an HTTP exposition endpoint.
	registry := dnslb.NewMetricsRegistry()
	cfg := dnslb.DNSServerConfig{
		Zone:           *zone,
		ServerAddrs:    addrs,
		Policy:         pol,
		Addr:           *addr,
		Logger:         logger,
		UDPWorkers:     *udpWorkers,
		UDPBatch:       *udpBatch,
		AnswerCache:    *answerCache,
		HTTPAddr:       *httpAddr,
		ECS:            dnslb.ECSConfig{Mode: ecsParsed, V4Prefix: *ecsV4, V6Prefix: *ecsV6},
		EstimatorAlpha: *estAlpha,
		Estimator:      *estKind,
		Metrics:        registry,
	}
	if *qps > 0 {
		cfg.RateLimit = dnslb.NewRateLimiter(*qps, *burst)
	}
	cfg.MaxTCPConns = *maxTCP
	cfg.Overload = dnslb.OverloadConfig{
		QPSCeiling:  *overQPS,
		DegradedTTL: *overTTL,
		StaleRolls:  *overStale,
	}
	// Parse the probe spec before building the server so a bad flag
	// fails fast; probing itself starts once the server is up.
	var probeCfg *dnslb.ProbeConfig
	if *probeSpec != "" {
		spec, err := dnslb.ParseProbeSpec(*probeSpec)
		if err != nil {
			return fmt.Errorf("-probe: %w", err)
		}
		if *probeAddrs == "" {
			return fmt.Errorf("-probe requires -probe-targets")
		}
		targets := strings.Split(*probeAddrs, ",")
		if len(targets) != len(addrs) {
			return fmt.Errorf("-probe-targets has %d entries for %d servers", len(targets), len(addrs))
		}
		for i := range targets {
			targets[i] = strings.TrimSpace(targets[i])
		}
		pc := spec.Config(targets)
		probeCfg = &pc
	} else if *probeAddrs != "" {
		return fmt.Errorf("-probe-targets requires -probe")
	}
	srv, err := dnslb.NewDNSServer(cfg)
	if err != nil {
		return err
	}
	if *livenessK > 0 {
		monitor, err := dnslb.NewLivenessMonitor(srv, *livenessIv, *livenessK)
		if err != nil {
			return err
		}
		defer monitor.Close()
		logger.Info("liveness enabled", "k", *livenessK, "interval", *livenessIv)
	}
	// Warm-start from the checkpoint before serving (and after the
	// liveness monitor attaches, so restored down flags clear on the
	// backend's next report). Any problem means a clean cold start.
	if *ckptPath != "" {
		restoreCheckpoint(srv, *ckptPath, *ckptMaxAge, logger)
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	logger.Info("serving", "zone", *zone, "addr", srv.Addr().String(),
		"policy", *policy, "servers", len(addrs),
		"udp_workers", srv.UDPWorkers(), "udp_batch", srv.UDPBatchActive(),
		"answer_cache", *answerCache)
	if ha := srv.HTTPAddr(); ha != nil {
		logger.Info("DNS-over-HTTP enabled",
			"wire", fmt.Sprintf("http://%s/dns-query", ha),
			"json", fmt.Sprintf("http://%s/resolve", ha))
	}
	if *ecsMode != "" && *ecsMode != "passthrough" {
		logger.Info("ECS mode", "mode", ecsParsed.String())
	}

	if probeCfg != nil {
		if _, err := srv.StartProbing(*probeCfg); err != nil {
			return err
		}
		logger.Info("active probing enabled", "spec", *probeSpec, "targets", *probeAddrs)
	}
	if cfg.Overload.Enabled() {
		logger.Info("overload degradation enabled",
			"qps_ceiling", *overQPS, "degraded_ttl", *overTTL, "stale_rolls", *overStale)
	}

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on DefaultServeMux at
		// import; a plain server on that mux exposes them. Profiling
		// the lock-free query path under load is the point, so this
		// stays opt-in and should never face the public internet.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer ln.Close()
		go func() {
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("pprof server exited", "err", err)
			}
		}()
		logger.Info("pprof enabled", "url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	}

	boundMetrics := ""
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", registry.Handler())
		go func() {
			if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Warn("metrics server exited", "err", err)
			}
		}()
		boundMetrics = ln.Addr().String()
		logger.Info("metrics enabled", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	}

	// SIGUSR1: dump a metrics snapshot to stderr, exposition-formatted,
	// so an operator can inspect a server that has no scrape endpoint
	// configured (or whose endpoint is unreachable).
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	go func() {
		for range usr1 {
			fmt.Fprintln(os.Stderr, "--- metrics snapshot (SIGUSR1) ---")
			if err := registry.WritePrometheus(os.Stderr); err != nil {
				logger.Warn("metrics dump failed", "err", err)
			}
			fmt.Fprintln(os.Stderr, "--- end metrics snapshot ---")
		}
	}()

	rAddr := *reportAddr
	if rAddr == "" {
		rAddr = nextPort(srv.Addr().String())
	}
	reporter, err := dnslb.NewReportListener(srv, rAddr)
	if err != nil {
		return err
	}
	defer reporter.Close()
	logger.Info("load reports enabled", "addr", reporter.Addr().String(),
		"protocol", "ALIVE/ALARM/HITS/ROLL/JOIN/DRAIN/REPL")

	// Multi-replica soft-state replication: peer deltas arrive as REPL
	// lines on the report socket above; outbound gossip dials the peers'
	// report sockets. Losing every peer only degrades to local-only
	// scheduling — queries are never refused on account of replication.
	if *peers != "" {
		if *replicaID == "" {
			return fmt.Errorf("-peers requires -replica-id")
		}
		if err := srv.StartReplication(dnslb.ReplicationConfig{
			ReplicaID: *replicaID,
			Peers:     strings.Split(*peers, ","),
			Interval:  *replIv,
		}); err != nil {
			return err
		}
	} else if *replicaID != "" {
		logger.Warn("-replica-id ignored: no -peers configured")
	}

	var ckpt *dnslb.Checkpointer
	if *ckptPath != "" {
		ckpt, err = dnslb.NewCheckpointer(srv, *ckptPath, *ckptIv)
		if err != nil {
			return err
		}
		defer ckpt.Close()
		logger.Info("checkpointing enabled", "path", *ckptPath, "interval", *ckptIv)
	}

	// SIGHUP: re-read the config file and apply the server set (joins,
	// graceful drains, capacity changes) with zero downtime. Without
	// -config there is nothing to re-read.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if *configPath == "" {
				logger.Warn("SIGHUP ignored: no -config file to reload")
				continue
			}
			if err := reloadConfig(fs, *configPath, srv, logger); err != nil {
				logger.Warn("config reload failed", "path", *configPath, "err", err)
			}
		}
	}()

	if started != nil {
		started(boundAddrs{
			DNS:     srv.Addr().String(),
			Report:  reporter.Addr().String(),
			Metrics: boundMetrics,
		})
	}
	<-stop
	// Graceful shutdown: stop accepting, drain in-flight queries within
	// the deadline, then flush one final checkpoint so the learned
	// state survives the restart.
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown drain incomplete", "err", err)
	}
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			logger.Warn("final checkpoint failed", "path", *ckptPath, "err", err)
		} else {
			logger.Info("final checkpoint written", "path", *ckptPath)
		}
	}
	st := srv.Stats()
	logger.Info("shutdown complete", "queries", st.Queries, "answered", st.Answered,
		"servfail", st.ServFail, "ratelimited", st.RateLimited)
	return nil
}

// restoreCheckpoint warm-starts srv from a checkpoint file. Every
// failure mode — missing, unreadable, corrupt, stale, or mismatched
// with the running configuration — logs and leaves the server in its
// cold-start state; a checkpoint is advisory, never required.
func restoreCheckpoint(srv *dnslb.DNSServer, path string, maxAge time.Duration, logger *slog.Logger) {
	cp, err := dnslb.LoadCheckpoint(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		logger.Info("no checkpoint; cold start", "path", path)
	case err != nil:
		logger.Warn("checkpoint unreadable; cold start", "path", path, "err", err)
	default:
		if err := srv.RestoreCheckpoint(cp, maxAge); err != nil {
			logger.Warn("checkpoint rejected; cold start", "path", path, "err", err)
		} else {
			logger.Info("checkpoint restored", "path", path,
				"saved_at", cp.SavedAt.Format(time.RFC3339))
		}
	}
}

// parseServers parses the address and capacity lists. Capacities
// default to 100 hits/s each and must be sorted non-increasing (the
// paper numbers servers by decreasing capacity).
func parseServers(servers, capacities string) ([]netip.Addr, []float64, error) {
	parts := strings.Split(servers, ",")
	addrs := make([]netip.Addr, 0, len(parts))
	for _, p := range parts {
		a, err := netip.ParseAddr(strings.TrimSpace(p))
		if err != nil {
			return nil, nil, fmt.Errorf("bad server address %q: %w", p, err)
		}
		addrs = append(addrs, a)
	}
	caps := make([]float64, len(addrs))
	if capacities == "" {
		for i := range caps {
			caps[i] = 100
		}
		return addrs, caps, nil
	}
	cparts := strings.Split(capacities, ",")
	if len(cparts) != len(addrs) {
		return nil, nil, fmt.Errorf("%d capacities for %d servers", len(cparts), len(addrs))
	}
	for i, p := range cparts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad capacity %q: %w", p, err)
		}
		caps[i] = v
	}
	return addrs, caps, nil
}

// nextPort returns host:port+1 of the given address.
func nextPort(addr string) string {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return "127.0.0.1:0"
	}
	return netip.AddrPortFrom(ap.Addr(), ap.Port()+1).String()
}
