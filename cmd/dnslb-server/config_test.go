package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dnslb"
	"dnslb/internal/logging"
)

func TestParseConfigFile(t *testing.T) {
	kvs, err := parseConfigFile([]byte(`
# dnslb-server configuration
zone       www.cfg.test   # inline comment
addr     = 127.0.0.1:5353
servers    10.0.0.1,10.0.0.2
capacities 100,80
report =
`))
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{
		{"zone", "www.cfg.test"},
		{"addr", "127.0.0.1:5353"},
		{"servers", "10.0.0.1,10.0.0.2"},
		{"capacities", "100,80"},
		{"report", ""},
	}
	if len(kvs) != len(want) {
		t.Fatalf("kvs = %v, want %v", kvs, want)
	}
	for i := range want {
		if kvs[i] != want[i] {
			t.Errorf("kvs[%d] = %v, want %v", i, kvs[i], want[i])
		}
	}
}

func TestParseConfigFileErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
	}{
		{"no value", "zone"},
		{"duplicate", "zone a\nzone b"},
		{"bad key", "9zone www"},
		{"key with space prefix", "= value"},
		{"self reference", "config other.conf"},
	} {
		if _, err := parseConfigFile([]byte(tc.in)); err == nil {
			t.Errorf("%s: no error for %q", tc.name, tc.in)
		}
	}
	// Comment-only and empty input parse to nothing.
	for _, in := range []string{"", "# just a comment\n\n"} {
		if kvs, err := parseConfigFile([]byte(in)); err != nil || len(kvs) != 0 {
			t.Errorf("%q: kvs=%v err=%v", in, kvs, err)
		}
	}
}

func TestApplyConfigFilePrecedence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dnslb.conf")
	if err := os.WriteFile(path, []byte("zone www.file.test\ndomains 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	zone := fs.String("zone", "www.default.test", "")
	domains := fs.Int("domains", 20, "")
	// -zone given on the command line beats the file; -domains comes
	// from the file.
	if err := fs.Parse([]string{"-zone", "www.cli.test"}); err != nil {
		t.Fatal(err)
	}
	if err := applyConfigFile(fs, path); err != nil {
		t.Fatal(err)
	}
	if *zone != "www.cli.test" {
		t.Errorf("zone = %q, want command-line value", *zone)
	}
	if *domains != 7 {
		t.Errorf("domains = %d, want 7 from file", *domains)
	}

	// Unknown settings and bad values are rejected.
	for _, content := range []string{"no-such-flag 1\n", "domains notanumber\n"} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
		fs2.Int("domains", 20, "")
		if err := applyConfigFile(fs2, path); err == nil {
			t.Errorf("%q: applyConfigFile accepted it", content)
		}
	}
}

func TestReloadConfigValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dnslb.conf")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.String("zone", "www.x.test", "")
	logger := logging.Discard()

	srv := newTestServer(t)
	for _, tc := range []struct {
		name, content string
	}{
		{"missing file", ""}, // path not written yet
		{"parse error", "zone"},
		{"unknown key", "bogus 1"},
		{"no servers", "zone www.x.test"},
		{"bad servers", "servers not-an-ip"},
	} {
		if tc.content != "" {
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := reloadConfig(fs, path, srv, logger); err == nil {
			t.Errorf("%s: reloadConfig accepted it", tc.name)
		}
	}
}

// newTestServer builds a minimal unstarted DNS server for reload tests.
func newTestServer(t *testing.T) *dnslb.DNSServer {
	t.Helper()
	cluster, err := dnslb.NewCluster([]float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	state, err := dnslb.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := dnslb.NewPolicy(dnslb.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	addrs, _, err := parseServers("10.6.0.1,10.6.0.2", "")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone:        "www.x.test",
		ServerAddrs: addrs,
		Policy:      pol,
		Addr:        "127.0.0.1:0",
		Logger:      logging.Discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func FuzzParseConfigFile(f *testing.F) {
	f.Add([]byte("zone www.site.example\nservers 10.0.0.1,10.0.0.2\n"))
	f.Add([]byte("# comment\naddr = 127.0.0.1:5353\n"))
	f.Add([]byte("key\x00 value"))
	f.Add([]byte("a ="))
	f.Add([]byte(strings.Repeat("k v\n", 100)))
	f.Fuzz(func(t *testing.T, data []byte) {
		kvs, err := parseConfigFile(data)
		if err != nil {
			return
		}
		seen := make(map[string]bool)
		for _, kv := range kvs {
			if !validConfigKey(kv[0]) {
				t.Fatalf("accepted invalid key %q", kv[0])
			}
			if seen[kv[0]] {
				t.Fatalf("accepted duplicate key %q", kv[0])
			}
			seen[kv[0]] = true
			if strings.ContainsAny(kv[1], "\n\r") {
				t.Fatalf("value crosses lines: %q", kv[1])
			}
		}
	})
}

// startRun launches run() with the given args and waits for its
// listeners; the returned stop function shuts it down and reports
// run's error.
func startRun(t *testing.T, args []string) (boundAddrs, func() error) {
	t.Helper()
	stop := make(chan struct{})
	addrs := make(chan boundAddrs, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(args, stop, func(b boundAddrs) { addrs <- b }) }()
	select {
	case b := <-addrs:
		var once sync.Once
		var err error
		stopFn := func() error {
			once.Do(func() {
				close(stop)
				select {
				case err = <-errc:
				case <-time.After(10 * time.Second):
					err = fmt.Errorf("server did not shut down")
				}
			})
			return err
		}
		t.Cleanup(func() { _ = stopFn() })
		return b, stopFn
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start")
	}
	return boundAddrs{}, nil
}

// scrape fetches and returns the exposition text from a metrics
// endpoint.
func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// findSample is sampleValue without the fatal: it reports whether the
// series exists.
func findSample(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// waitForSample polls the metrics endpoint until the series reaches at
// least want.
func waitForSample(t *testing.T, addr, series string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := findSample(scrape(t, addr), series); ok && v >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("series %s never reached %v", series, want)
}

// TestRunSIGHUPReloadUnderLoad is the zero-downtime reconfiguration
// end-to-end test: a server started from a config file keeps answering
// every query while SIGHUP swaps one backend for another — the removed
// address drains (no new mappings), the added address starts taking
// traffic, and not a single query fails.
func TestRunSIGHUPReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dnslb.conf")
	writeCfg := func(servers string) {
		content := "zone www.reload.test\npolicy RR\ndomains 4\nservers " + servers + "\n"
		if err := os.WriteFile(cfgPath, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeCfg("10.9.1.1,10.9.1.2")

	bound, stopFn := startRun(t, []string{
		"-config", cfgPath,
		"-addr", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-log-level", "error",
	})

	r := &dnslb.Resolver{Server: bound.DNS, Timeout: 2 * time.Second}
	lookup := func() (string, error) {
		answers, err := r.LookupA(context.Background(), "www.reload.test")
		if err != nil {
			return "", err
		}
		if len(answers) != 1 {
			return "", fmt.Errorf("answers = %+v", answers)
		}
		return answers[0].Addr.String(), nil
	}

	// Warm up both backends with real mappings so the removed one has
	// an open hidden-load window — otherwise the drain completes (and
	// the slot retires) the moment it starts.
	for i := 0; i < 6; i++ {
		if _, err := lookup(); err != nil {
			t.Fatal(err)
		}
	}

	// Continuous query load across the reload; every failure counts.
	var failures atomic.Int64
	loadStop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-loadStop:
					return
				default:
				}
				if _, err := lookup(); err != nil {
					failures.Add(1)
					t.Errorf("query failed during reload: %v", err)
					return
				}
			}
		}()
	}

	// Swap 10.9.1.1 for 10.9.1.3 and reload in place.
	writeCfg("10.9.1.2,10.9.1.3")
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitForSample(t, bound.Metrics, "dnslb_reconfig_reloads_total", 1)

	// After the reload is applied, the drained address must never be
	// scheduled again and the joined address must start taking traffic.
	seen := make(map[string]bool)
	for i := 0; i < 40; i++ {
		addr, err := lookup()
		if err != nil {
			t.Fatal(err)
		}
		seen[addr] = true
	}
	if seen["10.9.1.1"] {
		t.Error("drained server 10.9.1.1 still receives new mappings")
	}
	if !seen["10.9.1.3"] {
		t.Error("joined server 10.9.1.3 never scheduled")
	}
	if !seen["10.9.1.2"] {
		t.Error("kept server 10.9.1.2 never scheduled")
	}

	close(loadStop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed across the reload", n)
	}

	text := scrape(t, bound.Metrics)
	if v, _ := findSample(text, "dnslb_reconfig_joins_total"); v < 1 {
		t.Errorf("joins_total = %v, want >= 1", v)
	}
	if v, _ := findSample(text, "dnslb_reconfig_drains_total"); v < 1 {
		t.Errorf("drains_total = %v, want >= 1", v)
	}
	if v, ok := findSample(text, `dnslb_state_server_draining{server="0"}`); !ok || v != 1 {
		t.Errorf("draining gauge for slot 0 = %v (ok=%v), want 1", v, ok)
	}

	if err := stopFn(); err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestRunCheckpointRestart restarts the whole command and checks the
// learned standing survives: an alarm raised in the first life is
// still raised in the second, restored from the shutdown checkpoint. A
// corrupted checkpoint must cold-start cleanly.
func TestRunCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "state.ckpt")
	args := []string{
		"-zone", "www.ckpt.test",
		"-addr", "127.0.0.1:0",
		"-servers", "10.9.2.1,10.9.2.2",
		"-policy", "RR",
		"-domains", "4",
		"-checkpoint", ckptPath,
		"-checkpoint-interval", "50ms",
		"-metrics-addr", "127.0.0.1:0",
		"-log-level", "error",
	}

	// First life: raise an alarm on server 0, then shut down.
	bound, stopFn := startRun(t, args)
	sendReport(t, bound.Report, "ALARM 0 1")
	waitForSample(t, bound.Metrics, `dnslb_state_server_alarmed{server="0"}`, 1)
	if err := stopFn(); err != nil {
		t.Fatalf("first run returned %v", err)
	}

	cp, err := dnslb.LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("shutdown checkpoint unreadable: %v", err)
	}
	if len(cp.Servers) != 2 || !cp.Servers[0].Alarmed || cp.Servers[1].Alarmed {
		t.Fatalf("checkpoint alarms wrong: %+v", cp.Servers)
	}

	// Second life: the restored alarm shows up without any report.
	bound, stopFn = startRun(t, args)
	if v, ok := findSample(scrape(t, bound.Metrics), `dnslb_state_server_alarmed{server="0"}`); !ok || v != 1 {
		t.Errorf("restored alarm gauge = %v (ok=%v), want 1", v, ok)
	}
	if err := stopFn(); err != nil {
		t.Fatalf("second run returned %v", err)
	}

	// Corrupt checkpoint: the server still starts, cold.
	if err := os.WriteFile(ckptPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	bound, stopFn = startRun(t, args)
	if v, ok := findSample(scrape(t, bound.Metrics), `dnslb_state_server_alarmed{server="0"}`); !ok || v != 0 {
		t.Errorf("cold-start alarm gauge = %v (ok=%v), want 0", v, ok)
	}
	if err := stopFn(); err != nil {
		t.Fatalf("third run returned %v", err)
	}
}

// sendReport delivers one report line and requires an OK response.
func sendReport(t *testing.T, addr, line string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, line)
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "OK") {
		t.Fatalf("report response = %q", buf[:n])
	}
}
