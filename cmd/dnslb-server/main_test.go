package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"dnslb"
	"dnslb/internal/metrics"
)

func TestParseServers(t *testing.T) {
	addrs, caps, err := parseServers("10.0.0.1, 10.0.0.2,10.0.0.3", "100,80,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[1].String() != "10.0.0.2" {
		t.Errorf("addrs = %v", addrs)
	}
	if caps[0] != 100 || caps[2] != 50 {
		t.Errorf("caps = %v", caps)
	}
}

func TestParseServersDefaults(t *testing.T) {
	_, caps, err := parseServers("10.0.0.1,10.0.0.2", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		if c != 100 {
			t.Errorf("default capacity = %v, want 100", c)
		}
	}
}

func TestParseServersErrors(t *testing.T) {
	if _, _, err := parseServers("not-an-ip", ""); err == nil {
		t.Error("bad address should error")
	}
	if _, _, err := parseServers("10.0.0.1,10.0.0.2", "100"); err == nil {
		t.Error("capacity count mismatch should error")
	}
	if _, _, err := parseServers("10.0.0.1", "abc"); err == nil {
		t.Error("bad capacity should error")
	}
}

func TestNextPort(t *testing.T) {
	if got := nextPort("127.0.0.1:5353"); got != "127.0.0.1:5354" {
		t.Errorf("nextPort = %q", got)
	}
	if got := nextPort("garbage"); got != "127.0.0.1:0" {
		t.Errorf("fallback = %q", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	stop := make(chan struct{})
	addrs := make(chan boundAddrs, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-zone", "www.e2e.test",
			"-addr", "127.0.0.1:0",
			"-servers", "10.9.0.1,10.9.0.2",
			"-capacities", "100,50",
			"-policy", "DRR2-TTL/S_K",
			"-domains", "4",
			"-metrics-addr", "127.0.0.1:0",
			"-log-level", "error",
		}, stop, func(b boundAddrs) { addrs <- b })
	}()

	var bound boundAddrs
	select {
	case bound = <-addrs:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start")
	}

	r := &dnslb.Resolver{Server: bound.DNS, Timeout: 2 * time.Second}
	for i := 0; i < 5; i++ {
		answers, err := r.LookupA(context.Background(), "www.e2e.test")
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 1 {
			t.Fatalf("answers = %+v", answers)
		}
	}
	// The report socket accepts an alarm.
	conn, err := net.Dial("tcp", bound.Report)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "ALARM 0 1")
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if string(buf[:2]) != "OK" {
		t.Errorf("report response = %q", buf)
	}

	// /metrics serves valid exposition text with the live query, TTL,
	// per-server decision, liveness, and report series all moving.
	resp, err := http.Get("http://" + bound.Metrics + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if n, err := metrics.CheckText(bytes.NewReader(body)); err != nil {
		t.Errorf("invalid exposition format: %v\n%s", err, body)
	} else if n == 0 {
		t.Error("no samples exposed")
	}
	text := string(body)
	queries := sampleValue(t, text, "dnslb_dns_queries_total")
	if queries < 5 {
		t.Errorf("dnslb_dns_queries_total = %v, want >= 5", queries)
	}
	ttlCount := sampleValue(t, text, "dnslb_dns_ttl_seconds_count")
	if ttlCount < 5 {
		t.Errorf("dnslb_dns_ttl_seconds_count = %v, want >= 5", ttlCount)
	}
	d0 := sampleValue(t, text, `dnslb_policy_decisions_total{policy="DRR2-TTL/S_K",server="0"}`)
	d1 := sampleValue(t, text, `dnslb_policy_decisions_total{policy="DRR2-TTL/S_K",server="1"}`)
	if d0+d1 < 5 {
		t.Errorf("per-server decisions = %v + %v, want >= 5", d0, d1)
	}
	if got := sampleValue(t, text, "dnslb_state_alarm_transitions_total"); got != 1 {
		t.Errorf("alarm transitions = %v, want 1", got)
	}
	if got := sampleValue(t, text, `dnslb_state_server_alarmed{server="0"}`); got != 1 {
		t.Errorf("server 0 alarmed gauge = %v, want 1", got)
	}
	if got := sampleValue(t, text, `dnslb_report_lines_total{status="ok"}`); got != 1 {
		t.Errorf("ok report lines = %v, want 1", got)
	}
	// Liveness series exist from the start (exclusions stay 0 here).
	if got := sampleValue(t, text, `dnslb_liveness_exclusions_total{server="1"}`); got != 0 {
		t.Errorf("exclusions = %v, want 0", got)
	}
	for _, series := range []string{
		`dnslb_liveness_report_age_seconds{server="0"}`,
		"dnslb_dns_query_duration_seconds_count",
		`dnslb_dns_responses_total{outcome="answered"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("series %s missing from exposition", series)
		}
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// sampleValue extracts one sample's value from exposition text by its
// exact series name (including any label set).
func sampleValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s has bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found", series)
	return 0
}

func TestRunValidation(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{}, stop, nil); err == nil {
		t.Error("missing -servers should error")
	}
	if err := run([]string{"-servers", "10.0.0.1", "-policy", "nope"}, stop, nil); err == nil {
		t.Error("unknown policy should error")
	}
	// Capacities not sorted decreasing.
	if err := run([]string{"-servers", "10.0.0.1,10.0.0.2", "-capacities", "50,100"}, stop, nil); err == nil {
		t.Error("unsorted capacities should error")
	}
	// Estimator knobs must fail at flag validation, not in startup.
	for _, alpha := range []string{"0", "-1", "1.01"} {
		err := run([]string{"-servers", "10.0.0.1", "-estimator-alpha", alpha}, stop, nil)
		if err == nil || !strings.Contains(err.Error(), "-estimator-alpha") {
			t.Errorf("-estimator-alpha %s should fail validation, got %v", alpha, err)
		}
	}
	if err := run([]string{"-servers", "10.0.0.1", "-estimator", "bogus"}, stop, nil); err == nil ||
		!strings.Contains(err.Error(), "-estimator") {
		t.Errorf("unknown -estimator kind should fail validation, got %v", err)
	}
	// Probe flags come as a pair and the target list must match -servers.
	if err := run([]string{"-servers", "10.0.0.1", "-probe", "tcp"}, stop, nil); err == nil ||
		!strings.Contains(err.Error(), "-probe-targets") {
		t.Errorf("-probe without -probe-targets should fail, got %v", err)
	}
	if err := run([]string{"-servers", "10.0.0.1", "-probe-targets", "127.0.0.1:80"}, stop, nil); err == nil ||
		!strings.Contains(err.Error(), "-probe") {
		t.Errorf("-probe-targets without -probe should fail, got %v", err)
	}
	if err := run([]string{"-servers", "10.0.0.1,10.0.0.2", "-probe", "tcp",
		"-probe-targets", "127.0.0.1:80"}, stop, nil); err == nil ||
		!strings.Contains(err.Error(), "2 servers") {
		t.Errorf("probe target count mismatch should fail, got %v", err)
	}
	if err := run([]string{"-servers", "10.0.0.1", "-probe", "sonar",
		"-probe-targets", "127.0.0.1:80"}, stop, nil); err == nil ||
		!strings.Contains(err.Error(), "-probe") {
		t.Errorf("unknown probe kind should fail, got %v", err)
	}
	// Overload knobs are validated by the server constructor.
	if err := run([]string{"-servers", "10.0.0.1", "-overload-qps", "10",
		"-overload-ttl", "-1"}, stop, nil); err == nil {
		t.Error("negative -overload-ttl should fail validation")
	}
}

// scrapeValue fetches a /metrics exposition and returns the named
// sample's value, or -1 when the series is absent.
func scrapeValue(metricsAddr, series string) float64 {
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		return -1
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v
			}
		}
	}
	return -1
}

func TestRunTwoReplicaReplication(t *testing.T) {
	// Two dnslb-server processes (in-process run() calls) gossiping over
	// -peers: an alarm reported to replica A must surface in replica B's
	// scheduler through the REPL channel alone.
	reserve, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bReport := reserve.Addr().String()
	_ = reserve.Close()

	common := []string{
		"-zone", "www.repl.test",
		"-addr", "127.0.0.1:0",
		"-servers", "10.9.1.1,10.9.1.2",
		"-capacities", "100,50",
		"-policy", "DRR2-TTL/S_K",
		"-domains", "4",
		"-metrics-addr", "127.0.0.1:0",
		"-replication-interval", "50ms",
		"-liveness-k", "0",
		"-log-level", "error",
	}
	startReplica := func(extra ...string) (boundAddrs, chan struct{}, chan error) {
		t.Helper()
		stop := make(chan struct{})
		addrs := make(chan boundAddrs, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- run(append(append([]string{}, common...), extra...), stop, func(b boundAddrs) { addrs <- b })
		}()
		select {
		case b := <-addrs:
			return b, stop, errc
		case err := <-errc:
			t.Fatalf("replica exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("replica did not start")
		}
		panic("unreachable")
	}

	// A starts first, dialing B's (not yet bound) report port under
	// backoff; B then binds exactly there and peers back at A.
	a, stopA, errA := startReplica("-replica-id", "a", "-peers", bReport)
	b, stopB, errB := startReplica("-replica-id", "b", "-report", bReport, "-peers", a.Report)

	waitMetric := func(addr, series string, want float64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if scrapeValue(addr, series) == want {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("series %s on %s never reached %v (last %v)",
			series, addr, want, scrapeValue(addr, series))
	}
	waitMetric(a.Metrics, `dnslb_repl_connected_peers{replica="a"}`, 1)
	waitMetric(b.Metrics, `dnslb_repl_connected_peers{replica="b"}`, 1)

	conn, err := net.Dial("tcp", a.Report)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "ALARM 0 1")
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The alarm reported to A reaches B's scheduler via gossip.
	waitMetric(b.Metrics, `dnslb_state_server_alarmed{server="0"}`, 1)
	if v := scrapeValue(b.Metrics, `dnslb_repl_deltas_applied_total{replica="b"}`); v < 1 {
		t.Errorf("replica b applied %v deltas, want >= 1", v)
	}

	// Both replicas answer queries throughout.
	for _, dns := range []string{a.DNS, b.DNS} {
		r := &dnslb.Resolver{Server: dns, Timeout: 2 * time.Second}
		if _, err := r.LookupA(context.Background(), "www.repl.test"); err != nil {
			t.Errorf("query to %s: %v", dns, err)
		}
	}

	for _, s := range []struct {
		stop chan struct{}
		errc chan error
	}{{stopA, errA}, {stopB, errB}} {
		close(s.stop)
		select {
		case err := <-s.errc:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("replica did not shut down")
		}
	}
}

func TestRunReplicationValidation(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	err := run([]string{"-servers", "10.0.0.1", "-peers", "127.0.0.1:9"}, stop, nil)
	if err == nil || !strings.Contains(err.Error(), "replica-id") {
		t.Errorf("-peers without -replica-id: err = %v, want replica-id requirement", err)
	}
}
