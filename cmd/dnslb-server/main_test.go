package main

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"dnslb"
)

func TestParseServers(t *testing.T) {
	addrs, caps, err := parseServers("10.0.0.1, 10.0.0.2,10.0.0.3", "100,80,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[1].String() != "10.0.0.2" {
		t.Errorf("addrs = %v", addrs)
	}
	if caps[0] != 100 || caps[2] != 50 {
		t.Errorf("caps = %v", caps)
	}
}

func TestParseServersDefaults(t *testing.T) {
	_, caps, err := parseServers("10.0.0.1,10.0.0.2", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		if c != 100 {
			t.Errorf("default capacity = %v, want 100", c)
		}
	}
}

func TestParseServersErrors(t *testing.T) {
	if _, _, err := parseServers("not-an-ip", ""); err == nil {
		t.Error("bad address should error")
	}
	if _, _, err := parseServers("10.0.0.1,10.0.0.2", "100"); err == nil {
		t.Error("capacity count mismatch should error")
	}
	if _, _, err := parseServers("10.0.0.1", "abc"); err == nil {
		t.Error("bad capacity should error")
	}
}

func TestNextPort(t *testing.T) {
	if got := nextPort("127.0.0.1:5353"); got != "127.0.0.1:5354" {
		t.Errorf("nextPort = %q", got)
	}
	if got := nextPort("garbage"); got != "127.0.0.1:0" {
		t.Errorf("fallback = %q", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	stop := make(chan struct{})
	addrs := make(chan [2]string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-zone", "www.e2e.test",
			"-addr", "127.0.0.1:0",
			"-servers", "10.9.0.1,10.9.0.2",
			"-capacities", "100,50",
			"-policy", "DRR2-TTL/S_K",
			"-domains", "4",
		}, stop, func(dns, report string) { addrs <- [2]string{dns, report} })
	}()

	var bound [2]string
	select {
	case bound = <-addrs:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start")
	}

	r := &dnslb.Resolver{Server: bound[0], Timeout: 2 * time.Second}
	answers, err := r.LookupA(context.Background(), "www.e2e.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("answers = %+v", answers)
	}
	// The report socket accepts an alarm.
	conn, err := net.Dial("tcp", bound[1])
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "ALARM 0 1")
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if string(buf[:2]) != "OK" {
		t.Errorf("report response = %q", buf)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunValidation(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{}, stop, nil); err == nil {
		t.Error("missing -servers should error")
	}
	if err := run([]string{"-servers", "10.0.0.1", "-policy", "nope"}, stop, nil); err == nil {
		t.Error("unknown policy should error")
	}
	// Capacities not sorted decreasing.
	if err := run([]string{"-servers", "10.0.0.1,10.0.0.2", "-capacities", "50,100"}, stop, nil); err == nil {
		t.Error("unsorted capacities should error")
	}
}
