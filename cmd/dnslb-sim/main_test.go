package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RR", "DRR2-TTL/S_K", "PRR2-TTL/K", "DAL", "MRL"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunShortSimulation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "DRR2-TTL/S_K",
		"-duration", "900", "-warmup", "300",
		"-het", "35",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"policy", "DRR2-TTL/S_K",
		"P(MaxUtil < 0.90)",
		"address requests",
		"mean server util",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithCurve(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "RR", "-duration", "600", "-curve"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CumulativeFrequency") {
		t.Error("curve output missing")
	}
}

func TestRunReplicationsFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "RR", "-duration", "600", "-reps", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Error("replicated run should print confidence half-widths")
	}
}

func TestRunUniformIdeal(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "Ideal", "-uniform", "-duration", "600"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEstimatorAndPerturbation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "PRR2-TTL/K", "-duration", "600",
		"-estimator", "reactive", "-error", "20", "-minttl", "60",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "clamped TTLs") {
		t.Error("min TTL run should report clamped TTLs")
	}
}

func TestRunPredictiveWithFlash(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "DRR2-TTL/S_K", "-duration", "1200", "-warmup", "100",
		"-estimator", "predictive", "-flash", "0@600+300:100x20",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "estimator           predictive") {
		t.Errorf("predictive run should report its estimator kind:\n%s", buf.String())
	}
}

func TestEstimatorFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-estimator", "bogus", "-duration", "600"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-estimator") {
		t.Errorf("unknown estimator kind should fail at flag validation, got %v", err)
	}
	for _, alpha := range []string{"0", "-0.5", "1.5"} {
		err := run([]string{"-estimator", "reactive", "-estimator-alpha", alpha, "-duration", "600"}, &buf)
		if err == nil || !strings.Contains(err.Error(), "-estimator-alpha") {
			t.Errorf("alpha %s should fail at flag validation, got %v", alpha, err)
		}
	}
}

func TestParseFlashCrowds(t *testing.T) {
	events, err := parseFlashCrowds("0@1800+600:300x40, 3@900+120:50x5")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if e := events[0]; e.Domain != 0 || e.Time != 1800 || e.Duration != 600 || e.Clients != 300 || e.Resolvers != 40 {
		t.Errorf("first event = %+v", e)
	}
	if e := events[1]; e.Domain != 3 || e.Time != 900 || e.Clients != 50 || e.Resolvers != 5 {
		t.Errorf("second event = %+v", e)
	}
	for _, bad := range []string{"x", "0@900", "0@900+60", "0@900+60:10"} {
		if _, err := parseFlashCrowds(bad); err == nil {
			t.Errorf("parseFlashCrowds(%q) should error", bad)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "bogus", "-duration", "600"}, &buf); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-duration", "-5"}, &buf); err == nil {
		t.Error("negative duration should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunCompareMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policies", "RR,DRR2-TTL/S_K,Ideal",
		"-duration", "900", "-warmup", "300",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"policy", "RR", "DRR2-TTL/S_K", "Ideal", "identical arrivals"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareModeBadPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policies", "RR,bogus", "-duration", "600"}, &buf); err == nil {
		t.Error("bad policy in comparison should error")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-policy", "RR", "-duration", "600", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got["policy"] != "RR" {
		t.Errorf("policy = %v", got["policy"])
	}
	for _, key := range []string{"probMaxUnder98", "addressRequests", "meanServerUtil", "meanResponseSeconds"} {
		if _, ok := got[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
}

func TestParseFaults(t *testing.T) {
	faults, err := parseFaults("0@900+600, 2@100+50")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 4 {
		t.Fatalf("got %d events, want 4 (crash+recover per outage)", len(faults))
	}
	if faults[0].Server != 0 || faults[0].Time != 900 || !faults[0].Down {
		t.Errorf("first event = %+v", faults[0])
	}
	if faults[1].Time != 1500 || faults[1].Down {
		t.Errorf("second event = %+v", faults[1])
	}
	if faults[2].Server != 2 || faults[3].Time != 150 {
		t.Errorf("second outage = %+v %+v", faults[2], faults[3])
	}
	for _, bad := range []string{"x", "0@900", "0@900+0", "0@900-600"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) should error", bad)
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "RR2",
		"-duration", "1500", "-warmup", "100",
		"-fail", "0@600+400",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dead-server hits", "failed resolves", "time to drain"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := run([]string{
		"-policy", "RR2", "-duration", "600", "-warmup", "100",
		"-fail", "0@200+100", "-json",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	var summary jsonSummary
	if err := json.Unmarshal(buf.Bytes(), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.DeadServerHits == 0 {
		t.Error("JSON summary missing dead-server hits")
	}
}

func TestRunBadFailFlag(t *testing.T) {
	if err := run([]string{"-fail", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad -fail should error")
	}
}

func TestParsePartitions(t *testing.T) {
	parts, err := parsePartitions("900+30, 2000+60")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("got %d partitions, want 2", len(parts))
	}
	if parts[0].Start != 900 || parts[0].End != 930 {
		t.Errorf("first partition = %+v", parts[0])
	}
	if parts[1].Start != 2000 || parts[1].End != 2060 {
		t.Errorf("second partition = %+v", parts[1])
	}
	for _, bad := range []string{"x", "900", "900+0", "900-30"} {
		if _, err := parsePartitions(bad); err == nil {
			t.Errorf("parsePartitions(%q) should error", bad)
		}
	}
}

func TestRunReplicated(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "DRR2-TTL/S_K", "-estimator", "reactive",
		"-duration", "1500", "-warmup", "100",
		"-replicas", "2", "-repl-lag", "1", "-partition", "600+30",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"replica decisions", "replica gossip", "replica divergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("replicated output missing %q:\n%s", want, out)
		}
	}

	// Partitions without replicas must be rejected by validation.
	if err := run([]string{"-partition", "600+30"}, &bytes.Buffer{}); err == nil {
		t.Error("-partition without -replicas should error")
	}
	if err := run([]string{"-partition", "junk"}, &bytes.Buffer{}); err == nil {
		t.Error("bad -partition should error")
	}
}

func TestParseDetection(t *testing.T) {
	if d, err := parseDetection(""); err != nil || d != nil {
		t.Errorf("empty spec: %v, %v", d, err)
	}
	d, err := parseDetection("probe:2,3,2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "probe" || d.Interval != 2 || d.FailN != 3 || d.RiseM != 2 {
		t.Errorf("probe spec parsed as %+v", d)
	}
	d, err = parseDetection("report:60,3")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != "report" || d.Interval != 60 || d.K != 3 {
		t.Errorf("report spec parsed as %+v", d)
	}
	for _, bad := range []string{"probe", "sonar:1,2,3", "probe:x,y,z", "report:60"} {
		if _, err := parseDetection(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunWithDetection(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-policy", "RR", "-duration", "900", "-warmup", "100",
		"-fail", "0@300+400", "-detect", "report:60,3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "detection           report") {
		t.Errorf("output missing detection line:\n%s", buf.String())
	}
}
