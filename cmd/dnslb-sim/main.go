// Command dnslb-sim runs one simulation of the distributed Web site
// under a chosen DNS scheduling policy and prints its metrics,
// optionally with the full cumulative-frequency curve of the maximum
// server utilization.
//
// Examples:
//
//	dnslb-sim -policy DRR2-TTL/S_K -het 35
//	dnslb-sim -policy RR -curve
//	dnslb-sim -policy PRR2-TTL/K -minttl 120 -reps 3
//	dnslb-sim -policy DRR2-TTL/S_K -fail 0@900+600
//	dnslb-sim -policy DRR2-TTL/S_K -estimator reactive -reportloss 0.1
//	dnslb-sim -policy DRR2-TTL/S_K -estimator predictive -flash 0@1800+600:300x40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dnslb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-sim", flag.ContinueOnError)
	var (
		policy    = fs.String("policy", "DRR2-TTL/S_K", "scheduling policy (see -list)")
		policies  = fs.String("policies", "", "comma-separated policies to compare on identical workloads")
		list      = fs.Bool("list", false, "list policies and exit")
		het       = fs.Int("het", 20, "heterogeneity level in percent")
		servers   = fs.Int("servers", 7, "number of Web servers")
		domains   = fs.Int("domains", 20, "number of connected domains")
		clients   = fs.Int("clients", 500, "total clients")
		capacity  = fs.Float64("capacity", 500, "total site capacity in hits/s")
		duration  = fs.Float64("duration", 5*3600, "measured virtual seconds")
		warmup    = fs.Float64("warmup", 600, "warm-up virtual seconds (discarded)")
		seed      = fs.Uint64("seed", 1, "random seed")
		reps      = fs.Int("reps", 1, "independent replications")
		minTTL    = fs.Float64("minttl", 0, "minimum TTL imposed by non-cooperative NSes (s)")
		errPct    = fs.Float64("error", 0, "hidden-load estimation error in percent")
		uniform   = fs.Bool("uniform", false, "uniform client distribution (ideal case)")
		estimator = fs.String("estimator", "", "dynamic hidden-load estimator kind instead of oracle weights: reactive or predictive")
		estAlpha  = fs.Float64("estimator-alpha", dnslb.DefaultEstimatorAlpha, "EWMA weight of the newest hidden-load collection interval, in (0,1]")
		flash     = fs.String("flash", "", "comma-separated flash crowds, each domain@start+duration:clientsxresolvers (e.g. 0@1800+600:300x40)")
		curve     = fs.Bool("curve", false, "print the cumulative-frequency curve")
		jsonOut   = fs.Bool("json", false, "emit a JSON summary instead of text")
		fail      = fs.String("fail", "", "comma-separated server outages, each server@start+duration (e.g. 0@900+600)")
		detect    = fs.String("detect", "", "crash detector model for -fail events: probe:interval,failN,riseM or report:interval,k (e.g. probe:2,3,2; empty = instant knowledge)")
		lossProb  = fs.Float64("reportloss", 0, "probability each estimator report is lost in transit [0,1]")
		replicas  = fs.Int("replicas", 0, "run R replicated authoritative DNS servers gossiping soft state (0/1 = single DNS)")
		replIv    = fs.Float64("repl-interval", 8, "inter-replica gossip interval in virtual seconds")
		replLag   = fs.Float64("repl-lag", 0, "inter-replica delta delivery lag in virtual seconds")
		partition = fs.String("partition", "", "comma-separated total link cuts, each start+duration (e.g. 900+30)")
		geoPref   = fs.Float64("geo-preference", 0, "probability of answering with the nearest server instead of the policy's choice (0 = disabled)")
		misalign  = fs.Float64("ecs-misalign", -1, "fraction of domains resolving through a name server located elsewhere (enables the RFC 7871 misalignment extension; -1 = off)")
		useECS    = fs.Bool("ecs", false, "misaligned resolvers forward the clients' true subnet as EDNS Client Subnet (requires -ecs-misalign)")
		ecsShift  = fs.Int("ecs-shift", 0, "how many domains away a misaligned resolver sits (0 = antipode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, strings.Join(dnslb.PolicyNames(), "\n"))
		return nil
	}

	if *policies != "" {
		return comparePolicies(strings.Split(*policies, ","), *het, *duration, *warmup, *seed, out)
	}

	cfg := dnslb.DefaultSimConfig(*policy)
	cfg.HeterogeneityPct = *het
	cfg.Servers = *servers
	cfg.Workload.Domains = *domains
	cfg.Workload.Clients = *clients
	cfg.Workload.Uniform = *uniform
	cfg.Workload.PerturbationPct = *errPct
	cfg.TotalCapacity = *capacity
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.MinNSTTL = *minTTL
	// Satellite guard: reject a bad alpha at flag-parse time with a
	// clear message instead of letting the estimator constructor fail
	// deep inside the run.
	if *estAlpha <= 0 || *estAlpha > 1 {
		return fmt.Errorf("-estimator-alpha %v out of range: must be in (0,1]", *estAlpha)
	}
	switch *estimator {
	case "":
		cfg.OracleWeights = true
	case dnslb.EstimatorReactive, dnslb.EstimatorPredictive:
		cfg.OracleWeights = false
		cfg.Estimator = *estimator
		cfg.EstimatorAlpha = *estAlpha
	default:
		return fmt.Errorf("-estimator %q unknown: want %s or %s",
			*estimator, dnslb.EstimatorReactive, dnslb.EstimatorPredictive)
	}
	cfg.ReportLossProb = *lossProb
	flashes, err := parseFlashCrowds(*flash)
	if err != nil {
		return err
	}
	cfg.FlashCrowds = flashes
	faults, err := parseFaults(*fail)
	if err != nil {
		return err
	}
	cfg.Faults = faults
	detection, err := parseDetection(*detect)
	if err != nil {
		return err
	}
	cfg.Detection = detection
	cfg.Replicas = *replicas
	cfg.ReplicationInterval = *replIv
	cfg.ReplicaLag = *replLag
	partitions, err := parsePartitions(*partition)
	if err != nil {
		return err
	}
	cfg.Partitions = partitions
	cfg.GeoPreference = *geoPref
	if *misalign >= 0 {
		cfg.ECSMisalign = &dnslb.ECSMisalignConfig{
			Fraction: *misalign,
			Shift:    *ecsShift,
			UseECS:   *useECS,
		}
	} else if *useECS || *ecsShift != 0 {
		return fmt.Errorf("-ecs and -ecs-shift require -ecs-misalign")
	}

	results, err := dnslb.RunSimReplications(cfg, *reps)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSON(out, *policy, cfg, results)
	}

	fmt.Fprintf(out, "policy              %s\n", *policy)
	fmt.Fprintf(out, "servers             %d (heterogeneity %d%%, total %.0f hits/s)\n",
		*servers, *het, *capacity)
	fmt.Fprintf(out, "domains / clients   %d / %d\n", *domains, *clients)
	fmt.Fprintf(out, "virtual time        %.0fs warm-up + %.0fs measured, %d replication(s)\n",
		*warmup, *duration, *reps)

	for _, level := range []float64{0.8, 0.9, 0.98} {
		iv := dnslb.ProbMaxUnderCI(results, level, 0.95)
		if *reps > 1 {
			fmt.Fprintf(out, "P(MaxUtil < %.2f)    %.4f ± %.4f\n", level, iv.Mean, iv.HalfWide)
		} else {
			fmt.Fprintf(out, "P(MaxUtil < %.2f)    %.4f\n", level, iv.Mean)
		}
	}

	r := results[0]
	fmt.Fprintf(out, "address requests    %d (%.4f/s, %.2f%% of page requests)\n",
		r.AddressRequests, r.AddressRate(), 100*r.ControlledFraction())
	fmt.Fprintf(out, "NS cache hits       %d\n", r.CacheHits)
	if r.ClampedTTLs > 0 {
		fmt.Fprintf(out, "clamped TTLs        %d (min NS TTL %.0fs)\n", r.ClampedTTLs, *minTTL)
	}
	fmt.Fprintf(out, "hits served         %d in %d pages\n", r.TotalHits, r.TotalPages)
	fmt.Fprintf(out, "alarm signals       %d\n", r.AlarmSignals)
	if len(cfg.Faults) > 0 || r.LostReports > 0 {
		fmt.Fprintf(out, "dead-server hits    %d (pages lost: %d)\n", r.DeadServerHits, r.LostPages)
		fmt.Fprintf(out, "failed resolves     %d\n", r.FailedResolves)
		if r.MeanTimeToDrain > 0 {
			fmt.Fprintf(out, "time to drain       %.1fs mean after recovery\n", r.MeanTimeToDrain)
		}
		if r.LostReports > 0 {
			fmt.Fprintf(out, "lost reports        %d\n", r.LostReports)
		}
		if cfg.Detection != nil {
			fmt.Fprintf(out, "detection           %s: %d crash(es) detected, mean delay %.1fs down / %.1fs up\n",
				cfg.Detection.Kind, r.DetectedCrashes, r.MeanDetectionDelay, r.MeanReviveDelay)
		}
	}
	if cfg.Replicas > 1 {
		fmt.Fprintf(out, "replica decisions  ")
		for _, n := range r.ReplDecisions {
			fmt.Fprintf(out, " %d", n)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "replica gossip      %d deltas applied, %d dropped, %d full syncs\n",
			r.ReplDeltasApplied, r.ReplDeltasDropped, r.ReplFullSyncs)
		fmt.Fprintf(out, "replica divergence  weights %.4f, ledger %.1fs at horizon\n",
			r.ReplMaxWeightDiff, r.ReplLedgerDivergenceSec)
	}
	if cfg.ECSMisalign != nil {
		fmt.Fprintf(out, "ECS misalignment    fraction %.2f shift %d, ecs=%v\n",
			cfg.ECSMisalign.Fraction, cfg.ECSMisalign.Shift, cfg.ECSMisalign.UseECS)
		fmt.Fprintf(out, "  queries           %d (%d with ECS)\n", r.ECSQueries, r.ECSCarried)
		fmt.Fprintf(out, "  misrouted         %d (%.2f%% classified to the wrong domain)\n",
			r.ECSMisrouted, 100*float64(r.ECSMisrouted)/float64(max(r.ECSQueries, 1)))
	}
	if cfg.GeoPreference > 0 {
		fmt.Fprintf(out, "client latency      %.1f ms traffic-weighted mean\n", r.MeanLatencyMS)
	}
	if !cfg.OracleWeights {
		fmt.Fprintf(out, "estimator           %s", cfg.Estimator)
		if r.EstimatorAlarmTime > 0 {
			fmt.Fprintf(out, ", demand alarm at %.0fs", r.EstimatorAlarmTime)
		}
		if r.ForecastAbsError > 0 {
			fmt.Fprintf(out, ", forecast abs err %.2f hits/s", r.ForecastAbsError)
		}
		if r.EstimatorRejected > 0 {
			fmt.Fprintf(out, ", rejected reports %d", r.EstimatorRejected)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "page response time  mean %.3fs, max %.1fs\n", r.MeanResponseTime, r.MaxResponseTime)
	fmt.Fprintf(out, "TTLs handed out     min %.0fs mean %.0fs max %.0fs\n",
		r.Sched.MinTTL, r.Sched.MeanTTL, r.Sched.MaxTTL)
	fmt.Fprint(out, "mean server util   ")
	for _, u := range r.MeanServerUtil {
		fmt.Fprintf(out, " %.3f", u)
	}
	fmt.Fprintln(out)

	if *curve {
		fmt.Fprintln(out, "\nMaxUtil  CumulativeFrequency")
		for x := 0.5; x <= 1.0001; x += 0.025 {
			fmt.Fprintf(out, "%.3f    %.4f\n", x, r.ProbMaxUnder(x))
		}
	}
	return nil
}

// parseDetection parses the -detect syntax: probe:interval,failN,riseM
// or report:interval,k. Empty means instant knowledge (no model).
func parseDetection(spec string) (*dnslb.DetectionConfig, error) {
	if spec == "" {
		return nil, nil
	}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bad -detect %q (want probe:interval,failN,riseM or report:interval,k)", spec)
	}
	d := &dnslb.DetectionConfig{Kind: kind}
	switch kind {
	case dnslb.DetectProbe:
		if _, err := fmt.Sscanf(rest, "%f,%d,%d", &d.Interval, &d.FailN, &d.RiseM); err != nil {
			return nil, fmt.Errorf("bad -detect %q (want probe:interval,failN,riseM): %v", spec, err)
		}
	case dnslb.DetectReport:
		if _, err := fmt.Sscanf(rest, "%f,%d", &d.Interval, &d.K); err != nil {
			return nil, fmt.Errorf("bad -detect %q (want report:interval,k): %v", spec, err)
		}
	default:
		return nil, fmt.Errorf("bad -detect kind %q (want %s or %s)", kind, dnslb.DetectProbe, dnslb.DetectReport)
	}
	return d, nil
}

// parseFaults parses the -fail syntax: comma-separated outages of the
// form server@start+duration, in virtual seconds from run start.
func parseFaults(spec string) ([]dnslb.FaultEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var faults []dnslb.FaultEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		var server int
		var start, duration float64
		if _, err := fmt.Sscanf(part, "%d@%f+%f", &server, &start, &duration); err != nil {
			return nil, fmt.Errorf("bad -fail entry %q (want server@start+duration): %v", part, err)
		}
		if duration <= 0 {
			return nil, fmt.Errorf("bad -fail entry %q: duration must be positive", part)
		}
		faults = append(faults, dnslb.Outage(server, start, duration)...)
	}
	return faults, nil
}

// parsePartitions parses the -partition syntax: comma-separated total
// link cuts of the form start+duration, in virtual seconds.
func parsePartitions(spec string) ([]dnslb.PartitionEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var parts []dnslb.PartitionEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		var start, duration float64
		if _, err := fmt.Sscanf(part, "%f+%f", &start, &duration); err != nil {
			return nil, fmt.Errorf("bad -partition entry %q (want start+duration): %v", part, err)
		}
		if duration <= 0 {
			return nil, fmt.Errorf("bad -partition entry %q: duration must be positive", part)
		}
		parts = append(parts, dnslb.PartitionEvent{Start: start, End: start + duration})
	}
	return parts, nil
}

// parseFlashCrowds parses the -flash syntax: comma-separated events of
// the form domain@start+duration:clientsxresolvers, in virtual seconds.
func parseFlashCrowds(spec string) ([]dnslb.FlashEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var events []dnslb.FlashEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		var domain, clients, resolvers int
		var start, duration float64
		if _, err := fmt.Sscanf(part, "%d@%f+%f:%dx%d", &domain, &start, &duration, &clients, &resolvers); err != nil {
			return nil, fmt.Errorf("bad -flash entry %q (want domain@start+duration:clientsxresolvers): %v", part, err)
		}
		events = append(events, dnslb.FlashEvent{
			Time: start, Domain: domain, Clients: clients,
			Resolvers: resolvers, Duration: duration,
		})
	}
	return events, nil
}

// comparePolicies runs each policy against the same recorded workload
// (identical arrivals via trace replay), so the differences are purely
// the scheduling discipline — the paper's paired-comparison setup.
func comparePolicies(policies []string, het int, duration, warmup float64, seed uint64, out io.Writer) error {
	wl := dnslb.DefaultWorkload()
	records, err := dnslb.GenerateTrace(wl, warmup+duration, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-16s %-12s %-12s %-12s %-10s %-10s\n",
		"policy", "P(<0.8)", "P(<0.9)", "P(<0.98)", "respTime", "meanTTL")
	for _, name := range policies {
		name = strings.TrimSpace(name)
		cfg := dnslb.DefaultSimConfig(name)
		cfg.HeterogeneityPct = het
		cfg.Duration = duration
		cfg.Warmup = warmup
		cfg.Seed = seed
		cfg.Trace = records
		if name == "Ideal" {
			// The Ideal envelope needs the uniform workload, which a
			// Zipf trace cannot provide; run it live instead.
			cfg.Trace = nil
			cfg.Workload.Uniform = true
		}
		res, err := dnslb.RunSim(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "%-16s %-12.4f %-12.4f %-12.4f %-10.3f %-10.0f\n",
			name, res.ProbMaxUnder(0.8), res.ProbMaxUnder(0.9), res.ProbMaxUnder(0.98),
			res.MeanResponseTime, res.Sched.MeanTTL)
	}
	fmt.Fprintln(out, "\nall policies saw identical arrivals (trace-paired); Ideal ran on the uniform workload")
	return nil
}

// jsonSummary is the machine-readable result shape emitted by -json.
type jsonSummary struct {
	Policy           string    `json:"policy"`
	HeterogeneityPct int       `json:"heterogeneityPct"`
	Servers          int       `json:"servers"`
	Domains          int       `json:"domains"`
	DurationSeconds  float64   `json:"durationSeconds"`
	Replications     int       `json:"replications"`
	ProbMaxUnder80   float64   `json:"probMaxUnder80"`
	ProbMaxUnder90   float64   `json:"probMaxUnder90"`
	ProbMaxUnder98   float64   `json:"probMaxUnder98"`
	AddressRequests  uint64    `json:"addressRequests"`
	CacheHits        uint64    `json:"cacheHits"`
	TotalHits        uint64    `json:"totalHits"`
	MeanResponseSec  float64   `json:"meanResponseSeconds"`
	MeanServerUtil   []float64 `json:"meanServerUtil"`
	MeanTTLSeconds   float64   `json:"meanTTLSeconds"`
	DeadServerHits   uint64    `json:"deadServerHits,omitempty"`
	LostPages        uint64    `json:"lostPages,omitempty"`
	FailedResolves   uint64    `json:"failedResolves,omitempty"`
	MeanDrainSeconds float64   `json:"meanDrainSeconds,omitempty"`
	LostReports      uint64    `json:"lostReports,omitempty"`
}

func writeJSON(out io.Writer, policy string, cfg dnslb.SimConfig, results []*dnslb.SimResult) error {
	summary := jsonSummary{
		Policy:           policy,
		HeterogeneityPct: cfg.HeterogeneityPct,
		Servers:          cfg.Servers,
		Domains:          cfg.Workload.Domains,
		DurationSeconds:  cfg.Duration,
		Replications:     len(results),
	}
	for _, level := range []float64{0.8, 0.9, 0.98} {
		iv := dnslb.ProbMaxUnderCI(results, level, 0.95)
		switch level {
		case 0.8:
			summary.ProbMaxUnder80 = iv.Mean
		case 0.9:
			summary.ProbMaxUnder90 = iv.Mean
		default:
			summary.ProbMaxUnder98 = iv.Mean
		}
	}
	r := results[0]
	summary.AddressRequests = r.AddressRequests
	summary.CacheHits = r.CacheHits
	summary.TotalHits = r.TotalHits
	summary.MeanResponseSec = r.MeanResponseTime
	summary.MeanServerUtil = r.MeanServerUtil
	summary.MeanTTLSeconds = r.Sched.MeanTTL
	summary.DeadServerHits = r.DeadServerHits
	summary.LostPages = r.LostPages
	summary.FailedResolves = r.FailedResolves
	summary.MeanDrainSeconds = r.MeanTimeToDrain
	summary.LostReports = r.LostReports
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(summary)
}
