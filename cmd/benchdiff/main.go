// Command benchdiff compares two `go test -bench` outputs and fails
// when a benchmark regressed. CI runs the benchmarks on the PR head
// and on the base commit, then gates the merge on this tool:
//
//	benchdiff -old base.txt -new head.txt -threshold 15 \
//	    -alloc-threshold 0 -bytes-threshold 10 -filter 'Schedule|UDP'
//
// Three metrics gate independently, each with its own budget:
//
//   - ns/op  (-threshold, percent): wall-time regressions;
//   - allocs/op (-alloc-threshold, percent): allocation-count
//     regressions — allocation counts are deterministic, so the
//     default budget is 0 (any growth fails);
//   - B/op (-bytes-threshold, percent): allocated-bytes regressions.
//
// A benchmark run multiple times (-count N, -cpu a,b) contributes one
// entry per distinct name (the -cpu suffix is part of the name); the
// best (minimum) value of the repeats is compared per metric, which
// damps scheduler noise without hiding real regressions. A metric
// growing from a zero baseline is always a failure (the relative
// budget cannot express it). Memory metrics gate only when both sides
// report them (-benchmem).
//
// A gated benchmark present in the baseline but missing from the head
// run fails the gate: silently losing a benchmark is how perf
// regressions sneak past CI. Pass -allow-missing when a benchmark was
// intentionally removed or renamed. New benchmarks never fail.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

var errRegression = fmt.Errorf("benchmark regression over threshold")

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		oldPath      = fs.String("old", "", "baseline `go test -bench` output (required)")
		newPath      = fs.String("new", "", "candidate `go test -bench` output (required)")
		filterStr    = fs.String("filter", "", "regexp; only matching benchmarks gate the exit code (default: all)")
		threshold    = fs.Float64("threshold", 15, "max allowed ns/op regression percent")
		allocThr     = fs.Float64("alloc-threshold", 0, "max allowed allocs/op regression percent")
		bytesThr     = fs.Float64("bytes-threshold", 10, "max allowed B/op regression percent")
		allowMissing = fs.Bool("allow-missing", false, "do not fail when a gated baseline benchmark is missing from -new")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("-old and -new are required")
	}
	var filter *regexp.Regexp
	if *filterStr != "" {
		re, err := regexp.Compile(*filterStr)
		if err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
		filter = re
	}
	oldB, err := parseFile(*oldPath)
	if err != nil {
		return err
	}
	newB, err := parseFile(*newPath)
	if err != nil {
		return err
	}
	gates := thresholds{ns: *threshold, allocs: *allocThr, bytes: *bytesThr, allowMissing: *allowMissing}
	rows, failed := diff(oldB, newB, filter, gates)
	writeReport(out, rows, gates)
	if failed {
		return errRegression
	}
	return nil
}

// bench is one benchmark's best (minimum) reading per metric across
// repeats. hasMem records whether -benchmem columns were present.
type bench struct {
	ns     float64
	bytes  float64
	allocs float64
	hasMem bool
}

type thresholds struct {
	ns, allocs, bytes float64
	allowMissing      bool
}

type result struct {
	name     string
	old, new *bench // nil = missing on that side
	gated    bool   // matched the filter (or no filter)
	fails    []string
}

// parse reads benchmark result lines, keeping the per-metric minimum
// for each benchmark name.
func parse(r io.Reader) (map[string]*bench, error) {
	best := make(map[string]*bench)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, b, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := best[name]
		if !seen {
			c := b
			best[name] = &c
			continue
		}
		if b.ns < prev.ns {
			prev.ns = b.ns
		}
		if b.hasMem {
			if !prev.hasMem {
				prev.hasMem = true
				prev.bytes = b.bytes
				prev.allocs = b.allocs
			} else {
				if b.bytes < prev.bytes {
					prev.bytes = b.bytes
				}
				if b.allocs < prev.allocs {
					prev.allocs = b.allocs
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return best, nil
}

// parseLine extracts the metrics from one standard benchmark line:
//
//	BenchmarkFoo-8   123456   789.0 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (string, bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", bench{}, false
	}
	var b bench
	sawNs := false
	sawBytes, sawAllocs := false, false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || v < 0 {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			if v <= 0 {
				return "", bench{}, false
			}
			b.ns = v
			sawNs = true
		case "B/op":
			b.bytes = v
			sawBytes = true
		case "allocs/op":
			b.allocs = v
			sawAllocs = true
		}
	}
	if !sawNs {
		return "", bench{}, false
	}
	b.hasMem = sawBytes && sawAllocs
	return fields[0], b, true
}

func parseFile(path string) (map[string]*bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// deltaPct is the regression percent of new over old; a growth from a
// zero baseline reports +Inf (always over any relative budget).
func deltaPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (new - old) / old
}

// diff pairs benchmarks by name and flags gated entries whose metrics
// grew past their budgets, or which vanished from the head run.
func diff(oldB, newB map[string]*bench, filter *regexp.Regexp, t thresholds) ([]result, bool) {
	names := make(map[string]bool, len(oldB)+len(newB))
	for n := range oldB {
		names[n] = true
	}
	for n := range newB {
		names[n] = true
	}
	rows := make([]result, 0, len(names))
	failed := false
	for n := range names {
		r := result{name: n, old: oldB[n], new: newB[n]}
		r.gated = filter == nil || filter.MatchString(n)
		switch {
		case r.old == nil: // new benchmark: never a regression
		case r.new == nil:
			if r.gated && !t.allowMissing {
				r.fails = append(r.fails, "missing")
			}
		default:
			if r.gated {
				if deltaPct(r.old.ns, r.new.ns) > t.ns {
					r.fails = append(r.fails, "ns/op")
				}
				if r.old.hasMem && r.new.hasMem {
					if deltaPct(r.old.allocs, r.new.allocs) > t.allocs {
						r.fails = append(r.fails, "allocs/op")
					}
					if deltaPct(r.old.bytes, r.new.bytes) > t.bytes {
						r.fails = append(r.fails, "B/op")
					}
				}
			}
		}
		failed = failed || len(r.fails) > 0
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].name < rows[b].name })
	return rows, failed
}

func writeReport(w io.Writer, rows []result, t thresholds) {
	fmt.Fprintf(w, "%-50s %12s %12s %9s %11s %13s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "B/op")
	for _, r := range rows {
		switch {
		case r.old == nil:
			fmt.Fprintf(w, "%-50s %12s %12.2f %9s %11s %13s\n",
				r.name, "-", r.new.ns, "new", memCol(r.new, memAllocs), memCol(r.new, memBytes))
		case r.new == nil:
			mark := ""
			if len(r.fails) > 0 {
				mark = "  FAIL[missing]"
			}
			fmt.Fprintf(w, "%-50s %12.2f %12s %9s %11s %13s%s\n",
				r.name, r.old.ns, "-", "gone", "", "", mark)
		default:
			mark := ""
			if len(r.fails) > 0 {
				mark = "  FAIL[" + strings.Join(r.fails, ",") + "]"
			} else if !r.gated {
				mark = "  (ungated)"
			}
			fmt.Fprintf(w, "%-50s %12.2f %12.2f %+8.2f%% %11s %13s%s\n",
				r.name, r.old.ns, r.new.ns, deltaPct(r.old.ns, r.new.ns),
				memPair(r.old, r.new, memAllocs), memPair(r.old, r.new, memBytes), mark)
		}
	}
	fmt.Fprintf(w, "gate: ns/op > +%.1f%%, allocs/op > +%.1f%%, B/op > +%.1f%%"+
		", or a gated baseline benchmark missing from -new", t.ns, t.allocs, t.bytes)
	if t.allowMissing {
		fmt.Fprint(w, " (missing allowed)")
	}
	fmt.Fprintln(w)
}

type memMetric int

const (
	memAllocs memMetric = iota
	memBytes
)

func memVal(b *bench, m memMetric) float64 {
	if m == memAllocs {
		return b.allocs
	}
	return b.bytes
}

func memCol(b *bench, m memMetric) string {
	if b == nil || !b.hasMem {
		return ""
	}
	return strconv.FormatFloat(memVal(b, m), 'f', -1, 64)
}

// memPair renders "old→new" for a memory metric, or blank when either
// side lacks -benchmem columns.
func memPair(old, new *bench, m memMetric) string {
	if old == nil || new == nil || !old.hasMem || !new.hasMem {
		return ""
	}
	return memCol(old, m) + "→" + memCol(new, m)
}
