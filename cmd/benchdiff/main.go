// Command benchdiff compares two `go test -bench` outputs and fails
// when a benchmark regressed. CI runs the benchmarks on the PR head
// and on the base commit, then gates the merge on this tool:
//
//	benchdiff -old base.txt -new head.txt -threshold 15 -filter 'Schedule|UDP'
//
// A benchmark run multiple times (-count N, -cpu a,b) contributes one
// entry per distinct name (the -cpu suffix is part of the name); the
// best (minimum) ns/op of the repeats is compared, which damps
// scheduler noise without hiding real regressions. Benchmarks present
// in only one input are reported but never fail the gate — new or
// deleted benchmarks are not regressions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

var errRegression = fmt.Errorf("benchmark regression over threshold")

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		oldPath   = fs.String("old", "", "baseline `go test -bench` output (required)")
		newPath   = fs.String("new", "", "candidate `go test -bench` output (required)")
		filterStr = fs.String("filter", "", "regexp; only matching benchmarks gate the exit code (default: all)")
		threshold = fs.Float64("threshold", 15, "max allowed ns/op regression percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("-old and -new are required")
	}
	var filter *regexp.Regexp
	if *filterStr != "" {
		re, err := regexp.Compile(*filterStr)
		if err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
		filter = re
	}
	oldB, err := parseFile(*oldPath)
	if err != nil {
		return err
	}
	newB, err := parseFile(*newPath)
	if err != nil {
		return err
	}
	rows, failed := diff(oldB, newB, filter, *threshold)
	writeReport(out, rows, *threshold)
	if failed {
		return errRegression
	}
	return nil
}

type result struct {
	name     string
	oldNs    float64 // 0 = missing on that side
	newNs    float64
	deltaPct float64
	gated    bool // matched the filter (or no filter) and present in both
	failed   bool
}

// parse reads benchmark result lines, keeping the minimum ns/op per
// benchmark name.
func parse(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := best[name]; !seen || ns < prev {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return best, nil
}

// parseLine extracts (name, ns/op) from one standard benchmark line:
//
//	BenchmarkFoo-8   123456   789.0 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || ns <= 0 {
				return "", 0, false
			}
			return fields[0], ns, true
		}
	}
	return "", 0, false
}

func parseFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// diff pairs benchmarks by name and flags gated entries whose ns/op
// grew by more than threshold percent.
func diff(oldB, newB map[string]float64, filter *regexp.Regexp, threshold float64) ([]result, bool) {
	names := make(map[string]bool, len(oldB)+len(newB))
	for n := range oldB {
		names[n] = true
	}
	for n := range newB {
		names[n] = true
	}
	rows := make([]result, 0, len(names))
	failed := false
	for n := range names {
		r := result{name: n, oldNs: oldB[n], newNs: newB[n]}
		if r.oldNs > 0 && r.newNs > 0 {
			r.deltaPct = 100 * (r.newNs - r.oldNs) / r.oldNs
			r.gated = filter == nil || filter.MatchString(n)
			r.failed = r.gated && r.deltaPct > threshold
			failed = failed || r.failed
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].name < rows[b].name })
	return rows, failed
}

func writeReport(w io.Writer, rows []result, threshold float64) {
	fmt.Fprintf(w, "%-50s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		switch {
		case r.oldNs == 0:
			fmt.Fprintf(w, "%-50s %12s %12.2f %9s\n", r.name, "-", r.newNs, "new")
		case r.newNs == 0:
			fmt.Fprintf(w, "%-50s %12.2f %12s %9s\n", r.name, r.oldNs, "-", "gone")
		default:
			mark := ""
			if r.failed {
				mark = "  FAIL"
			} else if !r.gated {
				mark = "  (ungated)"
			}
			fmt.Fprintf(w, "%-50s %12.2f %12.2f %+8.2f%%%s\n", r.name, r.oldNs, r.newNs, r.deltaPct, mark)
		}
	}
	fmt.Fprintf(w, "gate: fail when a gated benchmark regresses more than %.1f%%\n", threshold)
}
