package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOutput = `goos: linux
goarch: amd64
BenchmarkScheduleParallel/DRR2-TTL_S_K         	33520830	        35.85 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleParallel/DRR2-TTL_S_K-4       	 9812762	       122.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerUDPThroughput                   	  190346	      6312 ns/op	     720 B/op	      25 allocs/op
BenchmarkServerUDPThroughput-4                 	  176580	      6805 ns/op	     720 B/op	      25 allocs/op
BenchmarkEncodeOnly                            	 5000000	       240.0 ns/op
PASS
ok  	dnslb	4.1s
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseTakesMinimum(t *testing.T) {
	b, err := parse(strings.NewReader(
		"BenchmarkX \t 100 \t 50.0 ns/op\nBenchmarkX \t 100 \t 45.0 ns/op\nBenchmarkX \t 100 \t 60.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b["BenchmarkX"] != 45.0 {
		t.Errorf("min ns/op = %v, want 45", b["BenchmarkX"])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok dnslb 1s\n")); err == nil {
		t.Error("output without benchmark lines should error")
	}
}

func TestParseLine(t *testing.T) {
	name, ns, ok := parseLine("BenchmarkFoo-8   123456   789.25 ns/op   0 B/op   0 allocs/op")
	if !ok || name != "BenchmarkFoo-8" || ns != 789.25 {
		t.Errorf("parseLine = %q %v %v", name, ns, ok)
	}
	if _, _, ok := parseLine("ok  	dnslb	4.1s"); ok {
		t.Error("non-benchmark line accepted")
	}
	if _, _, ok := parseLine("BenchmarkBad 10 notanumber ns/op"); ok {
		t.Error("bad number accepted")
	}
}

func TestNoRegressionPasses(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// 10% slower UDP: inside the 15% budget.
	faster := strings.Replace(baseOutput, "6312 ns/op", "6943 ns/op", 1)
	neu := writeTemp(t, faster)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// 20% slower scheduling: over the 15% budget.
	slower := strings.Replace(baseOutput, "35.85 ns/op", "43.02 ns/op", 1)
	neu := writeTemp(t, slower)
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression", err)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report lacks FAIL marker:\n%s", out.String())
	}
}

func TestFilterExcludesUngated(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// EncodeOnly doubles, but it is outside the filter.
	slower := strings.Replace(baseOutput, "240.0 ns/op", "480.0 ns/op", 1)
	neu := writeTemp(t, slower)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out); err != nil {
		t.Fatalf("ungated regression failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(ungated)") {
		t.Errorf("report lacks ungated marker:\n%s", out.String())
	}
}

func TestNewAndGoneBenchmarksDoNotFail(t *testing.T) {
	old := writeTemp(t, baseOutput)
	neu := writeTemp(t, "BenchmarkBrandNew 	 100 	 1.0 ns/op\nBenchmarkServerUDPThroughput 	 100 	 6312 ns/op\n")
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") || !strings.Contains(out.String(), "gone") {
		t.Errorf("report lacks new/gone rows:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -old/-new should error")
	}
	p := writeTemp(t, baseOutput)
	if err := run([]string{"-old", p, "-new", p, "-filter", "("}, &out); err == nil {
		t.Error("bad filter regexp should error")
	}
	if err := run([]string{"-old", p, "-new", filepath.Join(t.TempDir(), "missing.txt")}, &out); err == nil {
		t.Error("missing file should error")
	}
}
