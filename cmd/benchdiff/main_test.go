package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOutput = `goos: linux
goarch: amd64
BenchmarkScheduleParallel/DRR2-TTL_S_K         	33520830	        35.85 ns/op	       0 B/op	       0 allocs/op
BenchmarkScheduleParallel/DRR2-TTL_S_K-4       	 9812762	       122.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkServerUDPThroughput                   	  190346	      6312 ns/op	     720 B/op	      25 allocs/op
BenchmarkServerUDPThroughput-4                 	  176580	      6805 ns/op	     720 B/op	      25 allocs/op
BenchmarkEncodeOnly                            	 5000000	       240.0 ns/op
PASS
ok  	dnslb	4.1s
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseTakesMinimum(t *testing.T) {
	b, err := parse(strings.NewReader(
		"BenchmarkX \t 100 \t 50.0 ns/op \t 120 B/op \t 4 allocs/op\n" +
			"BenchmarkX \t 100 \t 45.0 ns/op \t 96 B/op \t 5 allocs/op\n" +
			"BenchmarkX \t 100 \t 60.0 ns/op \t 128 B/op \t 6 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	x := b["BenchmarkX"]
	if x == nil || x.ns != 45.0 || x.bytes != 96 || x.allocs != 4 || !x.hasMem {
		t.Errorf("per-metric minimum = %+v, want ns=45 B=96 allocs=4", x)
	}
}

func TestParseMixedMemLines(t *testing.T) {
	// A -benchmem repeat after a plain repeat must still yield memory
	// metrics (and vice versa).
	b, err := parse(strings.NewReader(
		"BenchmarkX \t 100 \t 50.0 ns/op\nBenchmarkX \t 100 \t 55.0 ns/op \t 96 B/op \t 5 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	x := b["BenchmarkX"]
	if x == nil || x.ns != 50.0 || !x.hasMem || x.bytes != 96 || x.allocs != 5 {
		t.Errorf("mixed repeats = %+v, want ns=50 with mem 96/5", x)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok dnslb 1s\n")); err == nil {
		t.Error("output without benchmark lines should error")
	}
}

func TestParseLine(t *testing.T) {
	name, b, ok := parseLine("BenchmarkFoo-8   123456   789.25 ns/op   32 B/op   2 allocs/op")
	if !ok || name != "BenchmarkFoo-8" || b.ns != 789.25 || b.bytes != 32 || b.allocs != 2 || !b.hasMem {
		t.Errorf("parseLine = %q %+v %v", name, b, ok)
	}
	name, b, ok = parseLine("BenchmarkEncodeOnly 	 5000000 	 240.0 ns/op")
	if !ok || name != "BenchmarkEncodeOnly" || b.ns != 240 || b.hasMem {
		t.Errorf("parseLine without -benchmem = %q %+v %v", name, b, ok)
	}
	if _, _, ok := parseLine("ok  	dnslb	4.1s"); ok {
		t.Error("non-benchmark line accepted")
	}
	if _, _, ok := parseLine("BenchmarkBad 10 notanumber ns/op"); ok {
		t.Error("bad number accepted")
	}
}

func TestNoRegressionPasses(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// 10% slower UDP: inside the 15% budget.
	faster := strings.Replace(baseOutput, "6312 ns/op", "6943 ns/op", 1)
	neu := writeTemp(t, faster)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// 20% slower scheduling: over the 15% budget.
	slower := strings.Replace(baseOutput, "35.85 ns/op", "43.02 ns/op", 1)
	neu := writeTemp(t, slower)
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression", err)
	}
	if !strings.Contains(out.String(), "FAIL[ns/op]") {
		t.Errorf("report lacks FAIL[ns/op] marker:\n%s", out.String())
	}
}

func TestAllocRegressionFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// One extra allocation per op at identical ns/op: the default
	// alloc budget is zero, so this alone must fail the gate.
	leaky := strings.Replace(baseOutput, "25 allocs/op", "26 allocs/op", 2)
	neu := writeTemp(t, leaky)
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu, "-filter", "Schedule|UDP"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL[allocs/op]") {
		t.Errorf("report lacks FAIL[allocs/op] marker:\n%s", out.String())
	}
}

func TestAllocGrowthFromZeroFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// The zero-alloc scheduler benchmark gaining its first allocation:
	// no relative threshold can express this, so it must always fail.
	leaky := strings.Replace(baseOutput,
		"35.85 ns/op	       0 B/op	       0 allocs/op",
		"35.85 ns/op	      16 B/op	       1 allocs/op", 1)
	neu := writeTemp(t, leaky)
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu, "-alloc-threshold", "50", "-bytes-threshold", "50", "-filter", "Schedule"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") || !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report lacks alloc failure:\n%s", out.String())
	}
}

func TestBytesRegressionFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// +50% B/op at the same alloc count: over the 10% default budget.
	fatter := strings.Replace(baseOutput, "720 B/op", "1080 B/op", 2)
	neu := writeTemp(t, fatter)
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu, "-filter", "UDP"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL[B/op]") {
		t.Errorf("report lacks FAIL[B/op] marker:\n%s", out.String())
	}
}

func TestBytesWithinThresholdPasses(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// +5% B/op: inside the 10% default budget.
	fatter := strings.Replace(baseOutput, "720 B/op", "756 B/op", 2)
	neu := writeTemp(t, fatter)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-filter", "UDP"}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
}

func TestFilterExcludesUngated(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// EncodeOnly doubles, but it is outside the filter.
	slower := strings.Replace(baseOutput, "240.0 ns/op", "480.0 ns/op", 1)
	neu := writeTemp(t, slower)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-threshold", "15", "-filter", "Schedule|UDP"}, &out); err != nil {
		t.Fatalf("ungated regression failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(ungated)") {
		t.Errorf("report lacks ungated marker:\n%s", out.String())
	}
}

func TestNewBenchmarksDoNotFail(t *testing.T) {
	old := writeTemp(t, baseOutput)
	neu := writeTemp(t, baseOutput+"BenchmarkBrandNew 	 100 	 1.0 ns/op\n")
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Errorf("report lacks new row:\n%s", out.String())
	}
}

func TestMissingGatedBenchmarkFails(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// The head run lost every benchmark but one: each gated baseline
	// entry that vanished must fail, not be silently skipped.
	neu := writeTemp(t, "BenchmarkServerUDPThroughput 	 100 	 6312 ns/op 	 720 B/op 	 25 allocs/op\n")
	var out bytes.Buffer
	err := run([]string{"-old", old, "-new", neu}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want regression for missing benchmarks\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL[missing]") {
		t.Errorf("report lacks FAIL[missing] marker:\n%s", out.String())
	}
}

func TestMissingUngatedBenchmarkPasses(t *testing.T) {
	old := writeTemp(t, baseOutput)
	// EncodeOnly vanished but is outside the filter: reported, not fatal.
	trimmed := strings.Replace(baseOutput, "BenchmarkEncodeOnly                            	 5000000	       240.0 ns/op\n", "", 1)
	neu := writeTemp(t, trimmed)
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-filter", "Schedule|UDP"}, &out); err != nil {
		t.Fatalf("ungated missing benchmark failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gone") {
		t.Errorf("report lacks gone row:\n%s", out.String())
	}
}

func TestAllowMissingSuppressesFailure(t *testing.T) {
	old := writeTemp(t, baseOutput)
	neu := writeTemp(t, "BenchmarkServerUDPThroughput 	 100 	 6312 ns/op 	 720 B/op 	 25 allocs/op\n")
	var out bytes.Buffer
	if err := run([]string{"-old", old, "-new", neu, "-allow-missing"}, &out); err != nil {
		t.Fatalf("-allow-missing still failed: %v\n%s", err, out.String())
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -old/-new should error")
	}
	p := writeTemp(t, baseOutput)
	if err := run([]string{"-old", p, "-new", p, "-filter", "("}, &out); err == nil {
		t.Error("bad filter regexp should error")
	}
	if err := run([]string{"-old", p, "-new", filepath.Join(t.TempDir(), "missing.txt")}, &out); err == nil {
		t.Error("missing file should error")
	}
}
