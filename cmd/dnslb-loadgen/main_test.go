package main

import (
	"bytes"
	"net/netip"
	"strconv"
	"strings"
	"testing"

	"dnslb"
)

// startStack brings up a DNS server over two local HTTP backends that
// share one port on distinct loopback addresses, returning the DNS
// address and the common backend port.
func startStack(t *testing.T) (dnsAddr string, port uint16) {
	t.Helper()
	ips := []netip.Addr{
		netip.MustParseAddr("127.4.0.1"),
		netip.MustParseAddr("127.4.0.2"),
	}
	// First backend picks the port; the second reuses it on its own IP.
	var backends []*dnslb.Backend
	for i, ip := range ips {
		addr := ip.String() + ":0"
		if port != 0 {
			addr = netip.AddrPortFrom(ip, port).String()
		}
		b, err := dnslb.NewBackend(dnslb.BackendConfig{
			Capacity: 10000,
			Domains:  4,
			Simulate: true,
			Addr:     addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
		if i == 0 {
			ap, err := netip.ParseAddrPort(b.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			port = ap.Port()
		}
		backends = append(backends, b)
	}
	cluster, err := dnslb.NewCluster([]float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	state, err := dnslb.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone:        "www.lg.test",
		ServerAddrs: ips,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr().String(), port
}

func TestLoadgenEndToEnd(t *testing.T) {
	dnsAddr, port := startStack(t)
	var buf bytes.Buffer
	err := run([]string{
		"-dns", dnsAddr,
		"-zone", "www.lg.test",
		"-port", itoa(port),
		"-domains", "3",
		"-clients", "6",
		"-duration", "1s",
		"-think", "20ms",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"domain  clients", "total requests:", "127.4.0."} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "total requests: 0") {
		t.Errorf("no requests made:\n%s", out)
	}
}

func TestLoadgenDryRun(t *testing.T) {
	dnsAddr, port := startStack(t)
	var buf bytes.Buffer
	err := run([]string{
		"-dns", dnsAddr,
		"-zone", "www.lg.test",
		"-port", itoa(port),
		"-domains", "2",
		"-clients", "2",
		"-duration", "300ms",
		"-think", "20ms",
		"-n",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "total requests: 0") {
		t.Errorf("dry run should still count resolutions:\n%s", buf.String())
	}
}

func TestLoadgenValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-domains", "5", "-clients", "2"}, &buf); err == nil {
		t.Error("fewer clients than domains should error")
	}
	if err := run([]string{"-port", "0"}, &buf); err == nil {
		t.Error("port 0 should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag should error")
	}
}

func itoa(v uint16) string { return strconv.Itoa(int(v)) }
