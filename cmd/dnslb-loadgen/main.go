// Command dnslb-loadgen drives real HTTP traffic through the DNS load
// balancer: simulated client domains resolve the zone via their own
// caching name servers (tagging queries with EDNS Client Subnet so the
// DNS can classify them), then fetch from whichever backend the
// answer names — the live counterpart of the simulator's workload.
//
// Use together with dnslb-server and HTTP backends (see
// examples/selfbalancing or internal/backend):
//
//	dnslb-loadgen -dns 127.0.0.1:5353 -zone www.site.example \
//	    -port 8080 -domains 4 -clients 40 -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/netip"
	"os"
	"sort"
	"sync"
	"time"

	"dnslb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-loadgen:", err)
		os.Exit(1)
	}
}

// domainLoad aggregates one domain's counters. With -ecs-spread > 1
// the domain's clients are split over several caching name servers,
// each forwarding a distinct /24 of the domain's /16 — the live
// counterpart of a domain whose client base spans many networks.
type domainLoad struct {
	ns       []*dnslb.CachingNS
	requests int
	errors   int
	perIP    map[netip.Addr]int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-loadgen", flag.ContinueOnError)
	var (
		dnsAddr  = fs.String("dns", "127.0.0.1:5353", "DNS server address")
		zone     = fs.String("zone", "www.site.example", "zone to resolve")
		port     = fs.Uint("port", 8080, "backend HTTP port (A records carry no port)")
		domains  = fs.Int("domains", 4, "client domains (each gets its own caching NS + ECS prefix)")
		clients  = fs.Int("clients", 20, "total concurrent clients, split over domains by Zipf")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load")
		think    = fs.Duration("think", 100*time.Millisecond, "mean think time between requests")
		hits     = fs.Int("hits", 10, "hits parameter attached to each request")
		minTTL   = fs.Duration("minttl", 0, "caching NS minimum TTL (non-cooperative mode)")
		dry      = fs.Bool("n", false, "resolve only; skip the HTTP fetches")
		spread   = fs.Int("ecs-spread", 1, "caching NSes per domain, each forwarding a distinct /24 ECS subnet of the domain's /16")
		trans    = fs.String("transport", "udp", "DNS transport: udp, tcp, or doh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *domains < 1 || *clients < *domains {
		return fmt.Errorf("need at least one client per domain (%d clients, %d domains)", *clients, *domains)
	}
	if *port == 0 || *port > 65535 {
		return fmt.Errorf("bad port %d", *port)
	}
	if *spread < 1 || *spread > 256 {
		return fmt.Errorf("bad -ecs-spread %d (want 1..256)", *spread)
	}

	// Caching NSes per domain; ECS subnets within 10.<domain>.0.0/16
	// identify the domain (and with -ecs-spread, the client network) to
	// the DNS: the k-th NS of domain d forwards 10.<d>.<k>.0/24, or the
	// whole /16 when running a single NS per domain.
	loads := make([]*domainLoad, *domains)
	for d := range loads {
		l := &domainLoad{perIP: make(map[netip.Addr]int)}
		for k := 0; k < *spread; k++ {
			prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d), byte(k), 0}), 24)
			if *spread == 1 {
				prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(d), 0, 0}), 16)
			}
			resolver := &dnslb.Resolver{
				Server:       *dnsAddr,
				Transport:    *trans,
				Timeout:      2 * time.Second,
				ClientSubnet: prefix,
			}
			l.ns = append(l.ns, dnslb.NewCachingNS(resolver, *minTTL))
		}
		loads[d] = l
	}

	// Zipf split of clients over domains, at least one each.
	wl := dnslb.DefaultWorkload()
	wl.Domains = *domains
	wl.Clients = *clients
	counts := wl.Partition()

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	httpClient := &http.Client{Timeout: 5 * time.Second}
	for d, n := range counts {
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(domain, client int) {
				defer wg.Done()
				ns := loads[domain].ns[client%len(loads[domain].ns)]
				rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
				for ctx.Err() == nil {
					answers, _, err := ns.LookupA(ctx, *zone)
					if err != nil {
						mu.Lock()
						loads[domain].errors++
						mu.Unlock()
						return
					}
					ip := answers[0].Addr
					fetchErr := error(nil)
					if !*dry {
						fetchErr = fetch(ctx, httpClient, ip, uint16(*port), *hits, domain)
					}
					mu.Lock()
					if fetchErr != nil {
						loads[domain].errors++
					} else {
						loads[domain].requests++
						loads[domain].perIP[ip]++
					}
					mu.Unlock()
					delay := time.Duration(rng.ExpFloat64() * float64(*think))
					select {
					case <-ctx.Done():
						return
					case <-time.After(delay):
					}
				}
			}(d, c)
		}
	}
	wg.Wait()

	// Report.
	total := 0
	perIP := make(map[netip.Addr]int)
	fmt.Fprintln(out, "domain  clients  requests  errors  cache-hit%")
	for d, l := range loads {
		var nsHits, nsMisses uint64
		for _, ns := range l.ns {
			st := ns.Stats()
			nsHits += st.Hits
			nsMisses += st.Misses
		}
		hitPct := 0.0
		if nsHits+nsMisses > 0 {
			hitPct = 100 * float64(nsHits) / float64(nsHits+nsMisses)
		}
		fmt.Fprintf(out, "%6d  %7d  %8d  %6d  %9.1f\n", d, counts[d], l.requests, l.errors, hitPct)
		total += l.requests
		for ip, n := range l.perIP {
			perIP[ip] += n
		}
	}
	fmt.Fprintf(out, "\ntotal requests: %d over %v\n", total, *duration)
	ips := make([]netip.Addr, 0, len(perIP))
	for ip := range perIP {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a].Less(ips[b]) })
	for _, ip := range ips {
		fmt.Fprintf(out, "  %v: %d requests\n", ip, perIP[ip])
	}
	return nil
}

func fetch(ctx context.Context, client *http.Client, ip netip.Addr, port uint16, hits, domain int) error {
	url := fmt.Sprintf("http://%s/?hits=%d&domain=%d", netip.AddrPortFrom(ip, port), hits, domain)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}
