// Command dnslb-bench regenerates the paper's evaluation: every figure
// (1–7) and both parameter tables, printed as aligned text tables or
// CSV. This is the harness behind EXPERIMENTS.md.
//
// Examples:
//
//	dnslb-bench -exp all -quick
//	dnslb-bench -exp fig3
//	dnslb-bench -exp fig1 -csv -out results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dnslb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dnslb-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dnslb-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id: table1, table2, fig1..fig7, ext-*, verify, or all")
		quick    = fs.Bool("quick", false, "1 simulated hour, 1 replication (default: 5 h, 3 reps)")
		reps     = fs.Int("reps", 0, "override replications")
		duration = fs.Float64("duration", 0, "override measured virtual seconds")
		seed     = fs.Uint64("seed", 1, "base random seed")
		workers  = fs.Int("workers", 0, "parallel simulation runs per figure (0 or 1 = sequential; results are identical)")
		csv      = fs.Bool("csv", false, "emit CSV instead of text tables")
		plot     = fs.Bool("plot", false, "also draw each figure as an ASCII chart")
		outDir   = fs.String("out", "", "also write each experiment to <out>/<id>.{txt,csv}")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := dnslb.DefaultExperimentOptions()
	if *quick {
		opts = dnslb.QuickExperimentOptions()
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	opts.Seed = *seed
	opts.Workers = *workers

	if *exp == "verify" {
		failed, err := dnslb.VerifyReproduction(opts, out)
		if err != nil {
			return err
		}
		if failed > 0 {
			return fmt.Errorf("%d claim(s) failed", failed)
		}
		return nil
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = append([]string{"table1"}, dnslb.ExperimentIDs()...)
	}
	for _, id := range ids {
		if err := runOne(id, opts, *csv, *plot, *outDir, out); err != nil {
			return err
		}
	}
	return nil
}

func runOne(id string, opts dnslb.ExperimentOptions, csv, plot bool, outDir string, out io.Writer) error {
	if id == "table1" {
		return writeBoth(id, outDir, out, csv, func(w io.Writer, _ bool) error {
			return printTable1(w, opts)
		})
	}
	runner, ok := dnslb.Experiments[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (known: table1, %v)", id, dnslb.ExperimentIDs())
	}
	start := time.Now()
	fig, err := runner(opts)
	if err != nil {
		return err
	}
	err = writeBoth(id, outDir, out, csv, func(w io.Writer, asCSV bool) error {
		if asCSV {
			return fig.RenderCSV(w)
		}
		return fig.Render(w)
	})
	if err != nil {
		return err
	}
	if plot {
		if err := fig.RenderPlot(out, 64, 16); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeBoth renders to the main stream and, when outDir is set, to
// <outDir>/<id>.txt and <outDir>/<id>.csv.
func writeBoth(id, outDir string, out io.Writer, csv bool, render func(io.Writer, bool) error) error {
	if err := render(out, csv); err != nil {
		return err
	}
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, form := range []struct {
		ext   string
		asCSV bool
	}{{"txt", false}, {"csv", true}} {
		f, err := os.Create(filepath.Join(outDir, id+"."+form.ext))
		if err != nil {
			return err
		}
		err = render(f, form.asCSV)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// printTable1 echoes the model parameters (paper Table 1) alongside
// this reproduction's effective settings.
func printTable1(w io.Writer, opts dnslb.ExperimentOptions) error {
	cfg := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
	rows := [][2]string{
		{"Connected domains K", fmt.Sprintf("%d (sweep 10-100)", cfg.Workload.Domains)},
		{"Clients per domain", "pure Zipf"},
		{"Total clients", fmt.Sprintf("%d", cfg.Workload.Clients)},
		{"Mean think time", fmt.Sprintf("%.0f s (exponential)", cfg.Workload.MeanThinkTime)},
		{"Page requests per session", fmt.Sprintf("%.0f (geometric)", cfg.Workload.PagesPerSession)},
		{"Hits per page request", fmt.Sprintf("uniform %d-%d", cfg.Workload.HitsMin, cfg.Workload.HitsMax)},
		{"Web servers N", fmt.Sprintf("%d (sweep 5-17)", cfg.Servers)},
		{"Total capacity", fmt.Sprintf("%.0f hits/s (constant)", cfg.TotalCapacity)},
		{"Heterogeneity", "20-65% (Table 2)"},
		{"Average utilization", "~0.667 (derived: 500 clients x 10 hits / 15 s)"},
		{"Utilization/alarm interval", fmt.Sprintf("%.0f s", cfg.UtilizationInterval)},
		{"Metric window", fmt.Sprintf("%.0f s (see DESIGN.md)", cfg.MetricWindow)},
		{"Alarm threshold theta", fmt.Sprintf("%.2f", cfg.AlarmThreshold)},
		{"Class threshold beta", "1/K"},
		{"Constant TTL", fmt.Sprintf("%.0f s", cfg.ConstantTTL)},
		{"Simulation length", fmt.Sprintf("%.0f s measured + %.0f s warm-up, %d rep(s)", opts.Duration, opts.Warmup, opts.Reps)},
	}
	fmt.Fprintln(w, "# table1 — Parameters of the system model")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %s\n", r[0], r[1])
	}
	fmt.Fprintln(w)
	return nil
}
