package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Parameters of the system model",
		"Connected domains K",
		"Constant TTL",
		"240 s",
		"Alarm threshold theta",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"heterogeneity levels", "20%", "65%", "0.3500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigureQuick(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "fig3", "-quick", "-duration", "600", "-reps", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig3", "DRR2-TTL/S_K", "DAL", "RR", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestRunCSVAndOutDir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-exp", "table2", "-csv", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Server,20%,35%,50%,65%") {
		t.Errorf("csv header missing:\n%s", buf.String())
	}
	for _, name := range []string{"table2.txt", "table2.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunExtensionExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "ext-window", "-quick", "-duration", "600"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Metric-window ablation") {
		t.Errorf("extension output wrong:\n%s", buf.String())
	}
}

func TestRunPlot(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table2", "-plot"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x: Server") || !strings.Contains(out, "* 20%") {
		t.Errorf("plot output missing chart:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "verify", "-quick", "-duration", "1800"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "12/12 claims hold") {
		t.Errorf("verify output:\n%s", out)
	}
}
