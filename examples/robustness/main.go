// Robustness: the two failure modes the paper studies for adaptive
// TTL schemes in the wild —
//
//  1. non-cooperative name servers that refuse small TTLs (Figures
//     4-5), and
//  2. error in the DNS's estimate of each domain's hidden load
//     (Figures 6-7)
//
// — demonstrated on a 50%-heterogeneity site, plus an extension the
// paper assumes away: how long it takes the DNS to *notice* a crashed
// server, comparing active probing against waiting for missed load
// reports (DESIGN.md §16).
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"dnslb"
)

func probWith(mutate func(*dnslb.SimConfig), policy string) float64 {
	cfg := dnslb.DefaultSimConfig(policy)
	cfg.HeterogeneityPct = 50
	cfg.Duration = 3600
	mutate(&cfg)
	res, err := dnslb.RunSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.ProbMaxUnder(0.98)
}

func main() {
	fmt.Println("== Non-cooperative name servers (minimum accepted TTL) ==")
	fmt.Println("minTTL   DRR2-TTL/S_K   PRR2-TTL/2")
	for _, minTTL := range []float64{0, 120, 300} {
		a := probWith(func(c *dnslb.SimConfig) { c.MinNSTTL = minTTL }, "DRR2-TTL/S_K")
		b := probWith(func(c *dnslb.SimConfig) { c.MinNSTTL = minTTL }, "PRR2-TTL/2")
		fmt.Printf("%5.0fs   %12.3f   %10.3f\n", minTTL, a, b)
	}
	fmt.Println()
	fmt.Println("The fine-grained TTL/S_K scheme needs freedom to hand out small")
	fmt.Println("TTLs; the coarse two-class scheme rarely proposes TTLs below")
	fmt.Println("typical NS minimums, so clamping barely affects it.")
	fmt.Println()

	fmt.Println("== Hidden-load estimation error ==")
	fmt.Println("error   DRR2-TTL/S_K   DRR2-TTL/S_2")
	for _, errPct := range []float64{0, 25, 50} {
		a := probWith(func(c *dnslb.SimConfig) { c.Workload.PerturbationPct = errPct }, "DRR2-TTL/S_K")
		b := probWith(func(c *dnslb.SimConfig) { c.Workload.PerturbationPct = errPct }, "DRR2-TTL/S_2")
		fmt.Printf("%4.0f%%   %12.3f   %12.3f\n", errPct, a, b)
	}
	fmt.Println()
	fmt.Println("Per-domain TTLs (TTL/S_K) degrade gracefully when the busiest")
	fmt.Println("domain's real rate exceeds the DNS's estimate; the two-class")
	fmt.Println("partition is more fragile because a misjudged hot domain can")
	fmt.Println("carry a large hidden load on one mapping.")
	fmt.Println()

	fmt.Println("== Crash-detection latency (15-minute outage of server 0) ==")
	fmt.Println("detector                      delay    pages to dead server")
	for _, d := range []struct {
		name string
		det  *dnslb.DetectionConfig
	}{
		{"instant (paper's bound)", nil},
		{"probe 5s fail-3", &dnslb.DetectionConfig{Kind: dnslb.DetectProbe, Interval: 5, FailN: 3, RiseM: 2}},
		{"reports 60s k=3", &dnslb.DetectionConfig{Kind: dnslb.DetectReport, Interval: 60, K: 3}},
	} {
		cfg := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
		cfg.HeterogeneityPct = 50
		cfg.Duration = 3600
		cfg.Faults = dnslb.Outage(0, 1200, 900)
		cfg.Detection = d.det
		res, err := dnslb.RunSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s  %5.1fs   %20d\n", d.name, res.MeanDetectionDelay, res.DeadServerHits)
	}
	fmt.Println()
	fmt.Println("Every second of detection lag keeps handing the dead server to")
	fmt.Println("fresh resolutions on top of the TTL-pinned mappings; tight")
	fmt.Println("active probes buy back most of what waiting for report silence")
	fmt.Println("loses.")
}
