// Quickstart: simulate the paper's default heterogeneous Web site
// under the conventional RR scheduler and under the best adaptive-TTL
// policy, and compare how often some server is driven near overload.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dnslb"
)

func main() {
	// One simulated hour on the paper's default system: 7 servers at
	// 20% heterogeneity, 500 clients in 20 Zipf-distributed domains.
	policies := []string{"RR", "PRR2-TTL/2", "DRR2-TTL/S_K"}

	fmt.Println("policy         P(maxU<0.9)  P(maxU<0.98)  mean TTL  DNS-controlled")
	for _, name := range policies {
		cfg := dnslb.DefaultSimConfig(name)
		cfg.Duration = 3600
		res, err := dnslb.RunSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f  %11.3f  %7.0fs  %13.2f%%\n",
			name,
			res.ProbMaxUnder(0.9),
			res.ProbMaxUnder(0.98),
			res.Sched.MeanTTL,
			100*res.ControlledFraction())
	}

	fmt.Println()
	fmt.Println("Reading the table: under RR at least one server runs above 90%")
	fmt.Println("utilization most of the time; the adaptive TTL/S_K policy keeps")
	fmt.Println("every server below 90% almost always — while the DNS directly")
	fmt.Println("controls well under 1% of the requests.")
}
