// Self-balancing cluster: the complete feedback loop of the paper,
// fully automatic, on real sockets.
//
// Two capacity-limited HTTP backends (fast and slow) each run a load
// agent that measures busy-time utilization every 250 ms and reports
// ALARM / HITS / ROLL to the authoritative DNS. A client hammers the
// site; when its traffic saturates the slow backend, the backend's own
// agent raises the alarm, the DNS stops handing out that server, and
// the overload drains — no operator in the loop. Clients carry an
// EDNS Client Subnet option so the DNS classifies their origin network
// even though every query arrives from the same resolver socket.
//
// Run with:
//
//	go run ./examples/selfbalancing
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/netip"
	"time"

	"dnslb"
)

const zone = "www.cluster.example"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two backends: S1 is 4x faster than S2.
	capacities := []float64{400, 100}
	backends := make([]*dnslb.Backend, len(capacities))

	// DNS scheduler over the same capacities, TTL/K-adaptive.
	cluster, err := dnslb.NewCluster(capacities)
	if err != nil {
		return err
	}
	const domains = 2
	state, err := dnslb.NewState(cluster, domains)
	if err != nil {
		return err
	}
	start := time.Now()
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{
		Name:  "DRR2-TTL/S_K",
		State: state,
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		return err
	}

	// The DNS answers with the backends' loopback addresses; for this
	// demo both backends share 127.0.0.1 and we route by port below, so
	// the A record payloads are placeholders from TEST-NET.
	dns, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone: zone,
		ServerAddrs: []netip.Addr{
			netip.MustParseAddr("192.0.2.1"),
			netip.MustParseAddr("192.0.2.2"),
		},
		Policy: policy,
		Mapper: dnslb.PrefixHashMapper(domains),
		Addr:   "127.0.0.1:0",
		// Packed-answer reuse across repeat queries; invalidated by the
		// scheduler state version, so rebalancing is never served stale.
		AnswerCache: true,
	})
	if err != nil {
		return err
	}
	if err := dns.Start(); err != nil {
		return err
	}
	defer dns.Close()
	reporter, err := dnslb.NewReportListener(dns, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer reporter.Close()

	// Backends with self-reporting agents (250 ms windows, θ = 0.6).
	byIP := make(map[netip.Addr]*dnslb.Backend, len(capacities))
	answerIPs := []netip.Addr{netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2")}
	for i, c := range capacities {
		b, err := dnslb.NewBackend(dnslb.BackendConfig{
			Capacity:            c,
			Domains:             domains,
			ServerIndex:         i,
			ReportAddr:          reporter.Addr().String(),
			UtilizationInterval: 250 * time.Millisecond,
			AlarmThreshold:      0.6,
			Simulate:            true,
		})
		if err != nil {
			return err
		}
		if err := b.Start(); err != nil {
			return err
		}
		defer b.Close()
		backends[i] = b
		byIP[answerIPs[i]] = b
	}
	fmt.Printf("DNS on %s; backends S1 (400 hits/s) on %s, S2 (100 hits/s) on %s\n\n",
		dns.Addr(), backends[0].Addr(), backends[1].Addr())

	// A client population from network 198.51.100.0/24 (domain via ECS).
	resolver := &dnslb.Resolver{
		Server:       dns.Addr().String(),
		Timeout:      2 * time.Second,
		ClientSubnet: netip.MustParsePrefix("198.51.100.0/24"),
	}
	ns := dnslb.NewCachingNS(resolver, 0)
	ctx := context.Background()

	resolveTarget := func() (*dnslb.Backend, netip.Addr, error) {
		answers, _, err := ns.LookupA(ctx, zone)
		if err != nil {
			return nil, netip.Addr{}, err
		}
		b, ok := byIP[answers[0].Addr]
		if !ok {
			return nil, answers[0].Addr, fmt.Errorf("unknown backend %v", answers[0].Addr)
		}
		return b, answers[0].Addr, nil
	}

	// Phase 1: sustained traffic against whatever the DNS mapped us to.
	target, ip, err := resolveTarget()
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: NS cached mapping to %v; sending 3s of traffic...\n", ip)
	hammerFor := func(b *dnslb.Backend, d time.Duration, hitsPerReq int) error {
		end := time.Now().Add(d)
		url := fmt.Sprintf("http://%s/?hits=%d&domain=0", b.Addr(), hitsPerReq)
		for time.Now().Before(end) {
			resp, err := http.Get(url)
			if err != nil {
				return err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}
	// ~100 requests/s × 3 hits: saturates S2 (100 hits/s), not S1.
	if err := hammerFor(target, 3*time.Second, 3); err != nil {
		return err
	}

	for i, b := range backends {
		fmt.Printf("  S%d utilization %.2f, alarmed=%v, hits=%d\n",
			i+1, b.Utilization(), b.Alarmed(), b.TotalHits())
	}
	fmt.Printf("  DNS sees alarms: S1=%v S2=%v\n\n", state.Alarmed(0), state.Alarmed(1))

	// Phase 2: force a fresh mapping; if the loaded backend alarmed,
	// the DNS must steer us to the other one.
	ns.Flush()
	newTarget, newIP, err := resolveTarget()
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: fresh mapping goes to %v\n", newIP)
	switch {
	case target.Alarmed() && newTarget == target:
		return fmt.Errorf("DNS kept handing out an alarmed backend")
	case target.Alarmed():
		fmt.Println("the saturated backend alarmed itself and the DNS routed around it — ")
		fmt.Println("the paper's asynchronous feedback loop, closed end to end.")
	default:
		fmt.Println("the fast backend absorbed the load without alarming (utilization stayed")
		fmt.Println("under θ=0.6); with the slow backend it would have alarmed and been excluded.")
	}
	return nil
}
