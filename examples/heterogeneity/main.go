// Heterogeneity sweep: how the scheduling policies cope as the Web
// servers become more unequal — a fast version of the paper's
// Figure 3, including the DAL baseline that shows policies designed
// for homogeneous systems do not transfer.
//
// Run with:
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"

	"dnslb"
)

func main() {
	policies := []string{"DRR2-TTL/S_K", "PRR2-TTL/K", "PRR2-TTL/2", "DAL", "RR"}
	levels := []int{20, 35, 50, 65}

	fmt.Print("heterogeneity")
	for _, p := range policies {
		fmt.Printf("  %12s", p)
	}
	fmt.Println()

	for _, het := range levels {
		fmt.Printf("%12d%%", het)
		for _, p := range policies {
			cfg := dnslb.DefaultSimConfig(p)
			cfg.HeterogeneityPct = het
			cfg.Duration = 3600
			res, err := dnslb.RunSim(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.3f", res.ProbMaxUnder(0.98))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Values are Prob(MaxUtilization < 0.98): the fraction of time no")
	fmt.Println("server is saturated. TTL/S_K adapts the TTL to both the domain's")
	fmt.Println("request rate and the chosen server's capacity, so it stays near")
	fmt.Println("1.0 even when the slowest server has 35% of the fastest one's")
	fmt.Println("capacity; DAL and RR collapse.")
}
