// Live DNS: the adaptive-TTL load balancer on a real network stack.
//
// This example assembles the paper's whole system from real parts, all
// on the loopback interface:
//
//   - three HTTP "Web servers" with capacities 100/80/50, each bound
//     to its own loopback address (127.1.0.1-3) on a common port;
//   - the authoritative DNS server running DRR2-TTL/S_K, whose A
//     answers carry per-(domain, server) TTLs;
//   - four client "domains", each with its own caching name server
//     whose resolver socket binds a distinct source address
//     (127.0.1.1-4) so the DNS can classify the querying domain;
//   - an alarm raised over the plain-text load-report socket, showing
//     the DNS steering new mappings away from an overloaded server.
//
// Run with:
//
//	go run ./examples/livedns
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/netip"
	"sync/atomic"
	"time"

	"dnslb"
)

const zone = "www.site.example"

// webServer is one backend: a real HTTP server counting its requests.
type webServer struct {
	addr     netip.Addr
	port     uint16
	capacity float64
	hits     atomic.Int64
	srv      *http.Server
}

func startWebServers() ([]*webServer, error) {
	caps := []float64{100, 80, 50}
	servers := make([]*webServer, len(caps))
	var port uint16
	for i, c := range caps {
		addr := netip.AddrFrom4([4]byte{127, 1, 0, byte(i + 1)})
		listenOn := fmt.Sprintf("%s:%d", addr, port)
		ln, err := net.Listen("tcp", listenOn)
		if err != nil {
			return nil, fmt.Errorf("web server %d: %w", i, err)
		}
		if port == 0 {
			ap, err := netip.ParseAddrPort(ln.Addr().String())
			if err != nil {
				return nil, err
			}
			port = ap.Port()
		}
		ws := &webServer{addr: addr, port: port, capacity: c}
		mux := http.NewServeMux()
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			ws.hits.Add(1)
			fmt.Fprintf(w, "hello from %s (capacity %.0f hits/s)\n", ws.addr, ws.capacity)
		})
		ws.srv = &http.Server{Handler: mux}
		go func() { _ = ws.srv.Serve(ln) }()
		servers[i] = ws
	}
	return servers, nil
}

// domainNS is one connected domain's local name server: a caching
// resolver whose UDP socket binds the domain's source address, so the
// authoritative DNS can tell the domains apart.
type domainNS struct {
	source netip.Addr
	ns     *dnslb.CachingNS
}

func newDomainNS(upstream string, source netip.Addr) *domainNS {
	r := &dnslb.Resolver{
		Server:  upstream,
		Timeout: 2 * time.Second,
		Dialer: net.Dialer{
			LocalAddr: &net.UDPAddr{IP: source.AsSlice()},
		},
	}
	return &domainNS{source: source, ns: dnslb.NewCachingNS(r, 0)}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	webs, err := startWebServers()
	if err != nil {
		return err
	}
	defer func() {
		for _, w := range webs {
			_ = w.srv.Close()
		}
	}()

	// The DNS side: cluster, Zipf-weighted domains, adaptive policy.
	caps := make([]float64, len(webs))
	addrs := make([]netip.Addr, len(webs))
	for i, w := range webs {
		caps[i] = w.capacity
		addrs[i] = w.addr
	}
	cluster, err := dnslb.NewCluster(caps)
	if err != nil {
		return err
	}
	const domains = 4
	state, err := dnslb.NewState(cluster, domains)
	if err != nil {
		return err
	}
	// Zipf-ish weights: domain 0 sends about half the traffic.
	if err := state.SetWeights([]float64{12, 6, 4, 2}); err != nil {
		return err
	}
	start := time.Now()
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{
		Name:  "DRR2-TTL/S_K",
		State: state,
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		return err
	}

	// Source addresses 127.0.1.<domain+1> identify the domains.
	sources := make([]netip.Addr, domains)
	table := make(map[netip.Addr]int, domains)
	for j := range sources {
		sources[j] = netip.AddrFrom4([4]byte{127, 0, 1, byte(j + 1)})
		table[sources[j]] = j
	}
	dns, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone:        zone,
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      dnslb.StaticMapper(table, 0),
		Addr:        "127.0.0.1:0",
		AnswerCache: true,
	})
	if err != nil {
		return err
	}
	if err := dns.Start(); err != nil {
		return err
	}
	defer dns.Close()
	reporter, err := dnslb.NewReportListener(dns, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer reporter.Close()
	fmt.Printf("authoritative DNS for %s on %s, load reports on %s\n\n",
		zone, dns.Addr(), reporter.Addr())

	// Each domain's clients resolve through their local NS and fetch.
	nses := make([]*domainNS, domains)
	for j := range nses {
		nses[j] = newDomainNS(dns.Addr().String(), sources[j])
	}
	ctx := context.Background()
	requestsPerDomain := []int{240, 120, 80, 40} // ∝ the hidden load weights
	fmt.Println("domain  requests  TTL(s)  resolved-to")
	for j, n := range requestsPerDomain {
		answers, _, err := nses[j].ns.LookupA(ctx, zone)
		if err != nil {
			return fmt.Errorf("domain %d resolve: %w", j, err)
		}
		fmt.Printf("%6d  %8d  %6.0f  %v\n", j, n, answers[0].TTL.Seconds(), answers[0].Addr)
		for i := 0; i < n; i++ {
			// Within the TTL every fetch reuses the cached mapping —
			// the "hidden load" the DNS never sees.
			answers, _, err := nses[j].ns.LookupA(ctx, zone)
			if err != nil {
				return err
			}
			if err := fetch(answers[0].Addr, webs[0].port); err != nil {
				return err
			}
		}
	}

	fmt.Println("\nper-server HTTP requests (capacity):")
	for i, w := range webs {
		fmt.Printf("  S%d %v: %4d requests (capacity %.0f hits/s)\n",
			i+1, w.addr, w.hits.Load(), w.capacity)
	}
	st := dns.Stats()
	fmt.Printf("\nDNS queries answered: %d — the other %d requests were routed by NS caches\n",
		st.Answered, totalRequests(requestsPerDomain)-int(st.Answered))

	// Overload feedback: server 1 raises an alarm; once the NS caches
	// are refreshed, no new mapping points at it.
	fmt.Println("\nraising ALARM for S1 over the report socket...")
	if err := report(reporter.Addr().String(), "ALARM 0 1"); err != nil {
		return err
	}
	for j := range nses {
		nses[j].ns.Flush() // simulate TTL expiry
		answers, _, err := nses[j].ns.LookupA(ctx, zone)
		if err != nil {
			return err
		}
		fmt.Printf("  domain %d now maps to %v\n", j, answers[0].Addr)
		if answers[0].Addr == webs[0].addr {
			return fmt.Errorf("alarmed server still handed out")
		}
	}
	fmt.Println("no new mapping points at the alarmed server — feedback works")
	return nil
}

func fetch(addr netip.Addr, port uint16) error {
	url := fmt.Sprintf("http://%s/", netip.AddrPortFrom(addr, port))
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

func report(addr, line string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return err
	}
	buf := make([]byte, 16)
	_, err = conn.Read(buf)
	return err
}

func totalRequests(per []int) int {
	total := len(per) // one initial resolve per domain
	for _, n := range per {
		total += n
	}
	return total
}
