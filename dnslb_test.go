package dnslb_test

import (
	"context"
	"math"
	"net/netip"
	"testing"
	"time"

	"dnslb"
)

func TestFacadeSimulation(t *testing.T) {
	cfg := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
	cfg.Duration = 1800
	res, err := dnslb.RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := res.ProbMaxUnder(0.98); p <= 0 || p > 1 {
		t.Errorf("ProbMaxUnder = %v", p)
	}
}

func TestFacadePolicyCatalog(t *testing.T) {
	names := dnslb.PolicyNames()
	if len(names) == 0 {
		t.Fatal("no policies")
	}
	cluster, err := dnslb.ScaledCluster(7, 35, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := dnslb.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dnslb.NewPolicy(dnslb.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.TTL != dnslb.DefaultConstantTTL {
		t.Errorf("TTL = %v, want %v", d.TTL, dnslb.DefaultConstantTTL)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := dnslb.ExperimentIDs()
	if len(ids) < 8 {
		t.Fatalf("experiments = %v", ids)
	}
	fig, err := dnslb.Experiments["table2"](dnslb.QuickExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "table2" {
		t.Errorf("figure ID = %q", fig.ID)
	}
}

func TestFacadeRealDNSRoundTrip(t *testing.T) {
	cluster, err := dnslb.ScaledCluster(3, 35, 300)
	if err != nil {
		t.Fatal(err)
	}
	state, err := dnslb.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnslb.NewDNSServer(dnslb.DNSServerConfig{
		Zone: "www.demo.test",
		ServerAddrs: []netip.Addr{
			netip.MustParseAddr("10.0.0.1"),
			netip.MustParseAddr("10.0.0.2"),
			netip.MustParseAddr("10.0.0.3"),
		},
		Policy: policy,
		Addr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resolver := &dnslb.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	ns := dnslb.NewCachingNS(resolver, 0)
	answers, fromCache, err := ns.LookupA(context.Background(), "www.demo.test")
	if err != nil {
		t.Fatal(err)
	}
	if fromCache || len(answers) != 1 {
		t.Fatalf("answers = %+v (cache %v)", answers, fromCache)
	}
	if math.Abs(answers[0].TTL.Seconds()-dnslb.DefaultConstantTTL) > 1 {
		t.Errorf("TTL = %v, want the constant %v s", answers[0].TTL, dnslb.DefaultConstantTTL)
	}
	// Second lookup is served by the NS cache.
	_, fromCache, err = ns.LookupA(context.Background(), "www.demo.test")
	if err != nil || !fromCache {
		t.Errorf("cache hit expected (err %v)", err)
	}
}
