# Common targets for the dnslb reproduction.

GO ?= go

.PHONY: all build test race vet fmt bench verify figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# testing.B targets: one bench per paper table/figure plus extensions.
bench:
	$(GO) test -bench=. -benchmem ./...

# Executable check of every claim the paper makes (quick scale).
verify:
	$(GO) run ./cmd/dnslb-bench -exp verify -quick

# Regenerate the full evaluation at paper scale into results/.
figures:
	$(GO) run ./cmd/dnslb-bench -exp all -out results/

clean:
	$(GO) clean ./...
