module dnslb

go 1.22
