// Package dnslb is a reproduction of "Dynamic Load Balancing in
// Geographically Distributed Heterogeneous Web Servers" (Colajanni,
// Cardellini, Yu — ICDCS 1998): the adaptive-TTL family of DNS
// scheduling algorithms, the discrete-event simulation study that
// evaluates them, and a working RFC 1035 DNS server that runs the same
// policies on a real network.
//
// The package is a facade over the implementation packages:
//
//   - Scheduling algorithms (RR, RR2, PRR, PRR2, the DAL/MRL baselines,
//     and the adaptive TTL meta-algorithm TTL/i and TTL/S_i for any
//     class count) — build one with NewPolicy.
//   - The simulator — configure with DefaultSimConfig, run with RunSim.
//   - The paper's experiments (Figures 1–7, Table 2) and the extension
//     sweeps — run via the Experiments registry; VerifyReproduction
//     checks every claim executably.
//   - Workload traces — GenerateTrace, ReadTrace, WriteTrace; replay
//     via SimConfig.Trace.
//   - The real network path — NewDNSServer, NewCachingNS, NewBackend,
//     NewReportListener, NewRateLimiter.
//
// Quick start:
//
//	cfg := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
//	res, err := dnslb.RunSim(cfg)
//	if err != nil { ... }
//	fmt.Println(res.ProbMaxUnder(0.9))
package dnslb

import (
	"dnslb/internal/backend"
	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnsserver"
	"dnslb/internal/engine"
	"dnslb/internal/experiments"
	"dnslb/internal/logging"
	"dnslb/internal/metrics"
	"dnslb/internal/probe"
	"dnslb/internal/replication"
	"dnslb/internal/sim"
	"dnslb/internal/stats"
	"dnslb/internal/trace"
	"dnslb/internal/workload"
)

// Scheduling algorithm types (see internal/core for full docs).
type (
	// Cluster describes the heterogeneous server set.
	Cluster = core.Cluster
	// State is the scheduler's view: weights, classes, alarms. Reads
	// are lock-free against an immutable atomically-published
	// snapshot; mutators may be called concurrently with reads and
	// with Policy.Schedule.
	State = core.State
	// Policy is a complete DNS scheduling policy. Schedule and Stats
	// are safe for concurrent callers: each decision is made against
	// one immutable state snapshot and the counters are atomic (exact
	// once callers quiesce). See DESIGN.md §9 for the full
	// concurrency contract.
	Policy = core.Policy
	// PolicyConfig selects and parameterizes a policy by name.
	PolicyConfig = core.PolicyConfig
	// Decision is a scheduling answer: server index and TTL.
	Decision = core.Decision
	// TTLVariant identifies a member of the adaptive TTL family.
	TTLVariant = core.TTLVariant
	// LoadEstimator is the hidden-load estimation seam: the reactive
	// EWMA and the predictive NS-cache model both implement it, and
	// every catalog policy runs unmodified on either.
	LoadEstimator = core.LoadEstimator
	// Estimator is the paper's reactive estimator: an EWMA over the
	// hidden-load weights the server reports imply.
	Estimator = core.Estimator
	// PredictiveEstimator forecasts hidden load from the TTLs the
	// engine handed out (per-(domain, resolver-class) NS-cache model).
	PredictiveEstimator = core.PredictiveEstimator
	// Forecaster is the optional capability a LoadEstimator implements
	// when it predicts demand from the engine's own decisions.
	Forecaster = core.Forecaster
	// EstimatorState is a LoadEstimator's serializable soft state,
	// kind-tagged and carried inside a Checkpoint.
	EstimatorState = core.EstimatorState
	// DomainClass is the two-tier domain classification.
	DomainClass = core.DomainClass
	// ProximityConfig enables GeoDNS-style proximity steering on a
	// policy (PolicyConfig.Proximity).
	ProximityConfig = core.ProximityConfig
	// LatencyMatrix is a domain×server network latency map.
	LatencyMatrix = core.LatencyMatrix
)

// Domain classes.
const (
	ClassNormal = core.ClassNormal
	ClassHot    = core.ClassHot
)

// DefaultConstantTTL is the paper's 240-second baseline TTL.
const DefaultConstantTTL = core.DefaultConstantTTL

// DefaultEstimatorAlpha is the hidden-load estimator's default EWMA
// weight for the newest collection interval — shared by the simulator
// configuration and the live DNS server so both paths smooth
// identically unless explicitly tuned.
const DefaultEstimatorAlpha = core.DefaultEstimatorAlpha

// Estimator kind tags (SimConfig.Estimator, DNSServerConfig.Estimator,
// the -estimator flags, and EstimatorState.Kind).
const (
	EstimatorReactive   = core.EstimatorReactive
	EstimatorPredictive = core.EstimatorPredictive
)

// Scheduling constructors and helpers.
var (
	// NewPolicy builds a policy from its catalog name (e.g.
	// "DRR2-TTL/S_K"); see PolicyNames.
	NewPolicy = core.NewPolicy
	// PolicyNames lists every scheduling policy in the catalog.
	PolicyNames = core.PolicyNames
	// NewCluster builds a cluster from absolute capacities.
	NewCluster = core.NewCluster
	// ScaledCluster builds a Table 2-style cluster at a heterogeneity
	// level with a fixed total capacity.
	ScaledCluster = core.ScaledCluster
	// HeterogeneityVector returns relative capacities per Table 2.
	HeterogeneityVector = core.HeterogeneityVector
	// NewState creates scheduler state for a cluster and domain count.
	NewState = core.NewState
	// NewEstimator creates the reactive hidden-load estimator.
	NewEstimator = core.NewEstimator
	// NewPredictiveEstimator creates the NS-cache forecasting
	// estimator.
	NewPredictiveEstimator = core.NewPredictiveEstimator
	// NewLoadEstimator creates an estimator by kind tag
	// (EstimatorReactive, EstimatorPredictive; empty = reactive).
	NewLoadEstimator = core.NewLoadEstimator
	// ParseEstimatorState decodes and validates serialized estimator
	// soft state.
	ParseEstimatorState = core.ParseEstimatorState
	// RingProximityConfig builds the synthetic ring-geography
	// ProximityConfig both the simulator and the live server use for
	// proximity steering (nil when preference is 0).
	RingProximityConfig = core.RingProximityConfig
)

// Unified scheduling engine (see internal/engine): the per-query
// decision lifecycle — membership/drain filtering, policy selection,
// TTL assignment, the outstanding-mapping ledger, estimator feedback —
// shared verbatim by the simulator and the live DNS server. The two
// environment seams are the Clock and the policy's Rand stream; the
// conformance suite in internal/engine holds both paths to
// bit-identical decisions.
type (
	// Engine owns one scheduling decision lifecycle.
	Engine = engine.Engine
	// EngineConfig wires a policy, clock, and optional estimator into
	// an Engine.
	EngineConfig = engine.Config
	// EngineClock supplies the engine's notion of current time in
	// seconds (virtual in the simulator, wall time live).
	EngineClock = engine.Clock
	// WallClock is the live path's EngineClock.
	WallClock = engine.WallClock
	// QueryContext is the per-query decision input a front end
	// assembles: resolver address, optional RFC 7871 client subnet, and
	// arrival transport (Engine.DecideQuery).
	QueryContext = engine.QueryContext
	// QueryDecision is DecideQuery's answer: the scheduling decision
	// plus classification provenance and the ECS scope to echo.
	QueryDecision = engine.QueryDecision
	// ECSConfig parameterizes the engine's client-subnet handling
	// (EngineConfig.ECS, DNSServerConfig.ECS).
	ECSConfig = engine.ECSConfig
	// ECSMode is the RFC 7871 deployment mode (passthrough, add,
	// override).
	ECSMode = engine.ECSMode
	// Transport identifies the front end a query arrived through.
	Transport = engine.Transport
	// SubnetRule maps one network prefix to a connected-domain index.
	SubnetRule = core.SubnetRule
	// SubnetMapper classifies addresses into connected domains by
	// longest-prefix match over a rule table.
	SubnetMapper = core.SubnetMapper
)

// ECS deployment modes (ECSConfig.Mode).
const (
	ECSPassthrough = engine.ECSPassthrough
	ECSAdd         = engine.ECSAdd
	ECSOverride    = engine.ECSOverride
)

// Query transports (QueryContext.Transport).
const (
	TransportNone = engine.TransportNone
	TransportUDP  = engine.TransportUDP
	TransportTCP  = engine.TransportTCP
	TransportDoH  = engine.TransportDoH
)

// Engine entry points.
var (
	// NewEngine builds a scheduling engine.
	NewEngine = engine.New
	// NewWallClock creates a wall-time clock with its epoch at now.
	NewWallClock = engine.NewWallClock
	// ParseECSMode parses the -ecs-mode flag spellings (passthrough,
	// add, override; empty = passthrough).
	ParseECSMode = engine.ParseECSMode
	// NewSubnetMapper builds a longest-prefix-match subnet→domain
	// classifier for EngineConfig.Mapper / DNSServerConfig.Mapper.
	NewSubnetMapper = core.NewSubnetMapper
)

// Simulation types.
type (
	// SimConfig configures one simulation run.
	SimConfig = sim.Config
	// SimResult carries a run's metrics.
	SimResult = sim.Result
	// Workload describes the client population.
	Workload = workload.Config
	// Interval is a confidence interval.
	Interval = stats.Interval
	// TraceRecord is one page request of a recorded workload trace.
	TraceRecord = trace.Record
	// TraceSummary aggregates a trace for inspection.
	TraceSummary = trace.Summary
	// FaultEvent is one scheduled crash or recovery of a simulated
	// server (SimConfig.Faults).
	FaultEvent = sim.FaultEvent
	// DrainEvent is one scheduled graceful retirement of a simulated
	// server (SimConfig.Drains).
	DrainEvent = sim.DrainEvent
	// PartitionEvent is one total inter-replica link cut of a
	// replicated simulation (SimConfig.Partitions).
	PartitionEvent = sim.PartitionEvent
	// FlashEvent is one simulated flash crowd: extra clients joining a
	// domain through fresh resolver caches (SimConfig.FlashCrowds).
	FlashEvent = sim.FlashEvent
	// DetectionConfig models how the simulated DNS learns about fault
	// events — active probing or missed reports — instead of the
	// instant-knowledge bound (SimConfig.Detection).
	DetectionConfig = sim.DetectionConfig
	// ECSMisalignConfig enables the resolver/client misalignment
	// extension: a fraction of domains resolve through name servers
	// located elsewhere, with or without ECS forwarding the clients'
	// true subnet (SimConfig.ECSMisalign).
	ECSMisalignConfig = sim.ECSMisalignConfig
)

// Crash-detector kinds for DetectionConfig.Kind.
const (
	DetectProbe  = sim.DetectProbe
	DetectReport = sim.DetectReport
)

// Simulation entry points.
var (
	// DefaultSimConfig returns the paper's Table 1 defaults for a
	// policy name.
	DefaultSimConfig = sim.DefaultConfig
	// RunSim executes one simulation run.
	RunSim = sim.Run
	// RunSimReplications executes independent replications.
	RunSimReplications = sim.RunReplications
	// ProbMaxUnderCI aggregates replications into a confidence
	// interval on Prob(MaxUtilization < x).
	ProbMaxUnderCI = sim.ProbMaxUnderCI
	// DefaultWorkload returns the paper's workload parameters.
	DefaultWorkload = workload.Default
	// GenerateTrace synthesizes a workload trace that replays exactly
	// like a live simulation with the same seed.
	GenerateTrace = trace.Generate
	// WriteTrace and ReadTrace encode/decode trace files.
	WriteTrace = trace.Write
	// ReadTrace decodes a trace file written by WriteTrace.
	ReadTrace = trace.Read
	// SummarizeTrace aggregates a trace.
	SummarizeTrace = trace.Summarize
	// Outage builds the crash+recover fault pair for one server.
	Outage = sim.Outage
)

// ErrNoServers is returned by Policy.Schedule when every server in the
// cluster is down; the DNS server answers SERVFAIL in that case.
var ErrNoServers = core.ErrNoServers

// Experiment types.
type (
	// ExperimentOptions controls duration, replications and seeds.
	ExperimentOptions = experiments.Options
	// FigureData is the reproduced data behind one paper figure.
	FigureData = experiments.Figure
	// FigureSeries is one labelled curve of a figure.
	FigureSeries = experiments.Series
)

// Experiment entry points.
var (
	// Experiments maps experiment IDs (fig1..fig7, table2) to runners.
	Experiments = experiments.Registry
	// ExperimentIDs lists the registered experiment IDs.
	ExperimentIDs = experiments.IDs
	// DefaultExperimentOptions reproduces the paper's 5-hour setup.
	DefaultExperimentOptions = experiments.DefaultOptions
	// QuickExperimentOptions trades precision for speed.
	QuickExperimentOptions = experiments.QuickOptions
	// VerifyReproduction checks every qualitative claim of the paper
	// against fresh simulations and reports PASS/FAIL per claim.
	VerifyReproduction = experiments.Verify
	// ReproductionClaims lists the validator's claims.
	ReproductionClaims = experiments.Claims
)

// Real-network types.
type (
	// DNSServerConfig configures the authoritative DNS server.
	DNSServerConfig = dnsserver.Config
	// DNSServer is the adaptive-TTL authoritative server.
	DNSServer = dnsserver.Server
	// ReportListener accepts load reports from Web servers.
	ReportListener = dnsserver.ReportListener
	// RateLimiter bounds per-source query rates at the DNS server.
	RateLimiter = dnsserver.RateLimiter
	// Resolver is a stub resolver against one upstream.
	Resolver = dnsclient.Resolver
	// CachingNS is a TTL-honouring caching name server.
	CachingNS = dnsclient.CachingNS
	// AnswerA is a resolved address with its TTL.
	AnswerA = dnsclient.AnswerA
	// Backend is a capacity-limited HTTP Web server whose agent
	// reports utilization and per-domain hits to the DNS.
	Backend = backend.Server
	// BackendConfig configures a Backend.
	BackendConfig = backend.Config
	// LivenessMonitor excludes backends that stop reporting from the
	// DNS scheduler and re-admits them on their next report.
	LivenessMonitor = dnsserver.LivenessMonitor
	// Checkpoint is the serialized soft state of a DNSServer: learned
	// domain weights, estimator windows, alarm/down/draining standing,
	// and selector cursors.
	Checkpoint = dnsserver.Checkpoint
	// ServerCheckpoint is one server slot's standing inside a Checkpoint.
	ServerCheckpoint = dnsserver.ServerCheckpoint
	// Checkpointer periodically saves a DNSServer's checkpoint to a file
	// and flushes a final one on Close.
	Checkpointer = dnsserver.Checkpointer
	// ReplicationConfig configures a DNSServer's multi-replica soft-state
	// replication (see DNSServer.StartReplication and DESIGN.md §13).
	ReplicationConfig = dnsserver.ReplicationConfig
	// ReplicaPeerHealth is one replication peer link's health snapshot.
	ReplicaPeerHealth = replication.PeerHealth
	// ProbeConfig configures a DNSServer's active health prober (see
	// DNSServer.StartProbing and DESIGN.md §16).
	ProbeConfig = probe.Config
	// ProbeTarget is one probed backend endpoint; an empty Addr skips
	// the slot.
	ProbeTarget = probe.Target
	// ProbeSpec is the parsed -probe flag: detector kind, cadence and
	// hysteresis thresholds.
	ProbeSpec = probe.Spec
	// Prober runs the probe loops (returned by DNSServer.StartProbing).
	Prober = probe.Prober
	// OverloadConfig configures the DNSServer's graceful-degradation
	// admission layer (DNSServerConfig.Overload, DESIGN.md §16).
	OverloadConfig = dnsserver.OverloadConfig
	// DegradedStats is the degradation controller's counter snapshot.
	DegradedStats = dnsserver.DegradedStats
)

// Observability types (see internal/metrics and internal/logging).
type (
	// MetricsRegistry collects counters, gauges, and histograms and
	// renders them in the Prometheus text exposition format. Pass one
	// via DNSServerConfig.Metrics / BackendConfig.Metrics to
	// instrument the live path; serve Handler() on /metrics.
	MetricsRegistry = metrics.Registry
	// MetricLabels is an ordered key/value list attached to a series.
	MetricLabels = metrics.Labels
	// LogOptions carries the shared -log-level/-log-format flag values
	// and builds slog loggers from them.
	LogOptions = logging.Options
)

// Observability entry points.
var (
	// NewMetricsRegistry creates an empty metrics registry.
	NewMetricsRegistry = metrics.NewRegistry
	// AddLogFlags registers -log-level and -log-format on a FlagSet.
	AddLogFlags = logging.AddFlags
	// DiscardLogger returns a logger that drops every record.
	DiscardLogger = logging.Discard
)

// Real-network entry points.
var (
	// NewDNSServer creates the authoritative server (call Start).
	NewDNSServer = dnsserver.New
	// NewReportListener starts the load-report listener for a server.
	NewReportListener = dnsserver.NewReportListener
	// NewCachingNS creates a caching NS over a resolver.
	NewCachingNS = dnsclient.NewCachingNS
	// PrefixHashMapper maps resolver addresses to domains by prefix.
	PrefixHashMapper = dnsserver.PrefixHashMapper
	// StaticMapper maps exact resolver addresses to domains.
	StaticMapper = dnsserver.StaticMapper
	// NewBackend creates a capacity-limited reporting Web server.
	NewBackend = backend.New
	// NewRateLimiter creates a per-source query rate limiter.
	NewRateLimiter = dnsserver.NewRateLimiter
	// NewLivenessMonitor attaches k-missed-report failure detection to
	// a DNS server.
	NewLivenessMonitor = dnsserver.NewLivenessMonitor
	// NewCheckpointer starts periodic state checkpointing of a server.
	NewCheckpointer = dnsserver.NewCheckpointer
	// LoadCheckpoint reads a checkpoint file written by WriteCheckpoint
	// or a Checkpointer.
	LoadCheckpoint = dnsserver.LoadCheckpoint
	// ParseProbeSpec parses the -probe flag syntax, e.g.
	// "tcp,interval=2s,fail=3,rise=2" or "http=/healthz,interval=5s".
	ParseProbeSpec = probe.ParseSpec
)
