package dnslb_test

import (
	"fmt"

	"dnslb"
)

// ExampleNewPolicy schedules a few address requests by hand: the
// adaptive TTL/S_K policy hands hot domains short TTLs and fast
// servers long ones.
func ExampleNewPolicy() {
	// Three servers, fastest first; capacities in hits/second.
	cluster, err := dnslb.NewCluster([]float64{100, 80, 50})
	if err != nil {
		panic(err)
	}
	state, err := dnslb.NewState(cluster, 4)
	if err != nil {
		panic(err)
	}
	// Hidden load weights: domain 0 sends half the traffic.
	if err := state.SetWeights([]float64{8, 4, 2, 2}); err != nil {
		panic(err)
	}
	policy, err := dnslb.NewPolicy(dnslb.PolicyConfig{
		Name:  "DRR2-TTL/S_K",
		State: state,
	})
	if err != nil {
		panic(err)
	}
	for domain := 0; domain < 4; domain++ {
		d, err := policy.Schedule(domain)
		if err != nil {
			panic(err)
		}
		fmt.Printf("domain %d -> server %d, TTL %.0fs\n", domain, d.Server, d.TTL)
	}
	// Output:
	// domain 0 -> server 0, TTL 170s
	// domain 1 -> server 0, TTL 340s
	// domain 2 -> server 1, TTL 544s
	// domain 3 -> server 2, TTL 340s
}

// ExampleRunSim reproduces the paper's headline comparison on one
// simulated hour.
func ExampleRunSim() {
	rr := dnslb.DefaultSimConfig("RR")
	rr.Duration = 3600
	adaptive := dnslb.DefaultSimConfig("DRR2-TTL/S_K")
	adaptive.Duration = 3600

	a, err := dnslb.RunSim(rr)
	if err != nil {
		panic(err)
	}
	b, err := dnslb.RunSim(adaptive)
	if err != nil {
		panic(err)
	}
	fmt.Println("adaptive avoids >90% utilization more often:",
		b.ProbMaxUnder(0.9) > a.ProbMaxUnder(0.9)+0.5)
	// Output:
	// adaptive avoids >90% utilization more often: true
}

// ExampleGenerateTrace records a workload and replays it against two
// policies: identical arrivals make the comparison perfectly paired.
func ExampleGenerateTrace() {
	wl := dnslb.DefaultWorkload()
	records, err := dnslb.GenerateTrace(wl, 1800, 7)
	if err != nil {
		panic(err)
	}
	run := func(policy string) *dnslb.SimResult {
		cfg := dnslb.DefaultSimConfig(policy)
		cfg.Trace = records
		cfg.Duration = 1200
		cfg.Warmup = 600
		res, err := dnslb.RunSim(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}
	rr := run("RR")
	adaptive := run("DRR2-TTL/S_K")
	fmt.Println("same traffic served:", rr.TotalHits == adaptive.TotalHits)
	fmt.Println("adaptive balances better:", adaptive.ProbMaxUnder(0.9) > rr.ProbMaxUnder(0.9))
	// Output:
	// same traffic served: true
	// adaptive balances better: true
}

// ExampleHeterogeneityVector prints the paper's Table 2 row for 50%
// heterogeneity.
func ExampleHeterogeneityVector() {
	v, err := dnslb.HeterogeneityVector(7, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output:
	// [1 1 0.8 0.8 0.5 0.5 0.5]
}
