package replication

import (
	"math"
	"strings"
	"testing"
)

func TestDeltaRoundTrip(t *testing.T) {
	d := &Delta{
		V:      DeltaVersion,
		Origin: "replica-1",
		Epoch:  42,
		Seq:    7,
		Ledger: []LedgerEntry{{Server: 0, Addr: "10.0.0.1", Expiry: 123.5}},
		Standing: []StandingEntry{
			{Server: 1, Alarmed: true, Epoch: 42, Stamp: 99.25, Origin: "replica-1"},
		},
		Hits: []HitsEntry{{Domain: 3, Hits: 17}},
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsRune(string(enc), '\n') {
		t.Fatal("encoded delta spans lines; report socket is line-framed")
	}
	got, err := ParseDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != d.Origin || got.Epoch != d.Epoch || got.Seq != d.Seq {
		t.Fatalf("envelope mangled: %+v", got)
	}
	if len(got.Ledger) != 1 || got.Ledger[0] != d.Ledger[0] {
		t.Fatalf("ledger mangled: %+v", got.Ledger)
	}
	if len(got.Standing) != 1 || got.Standing[0] != d.Standing[0] {
		t.Fatalf("standing mangled: %+v", got.Standing)
	}
	if len(got.Hits) != 1 || got.Hits[0] != d.Hits[0] {
		t.Fatalf("hits mangled: %+v", got.Hits)
	}
}

func TestParseDeltaRejects(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty", ""},
		{"not json", "REPL not-json"},
		{"wrong version", `{"v":2,"origin":"a","epoch":1,"seq":1}`},
		{"no origin", `{"v":1,"epoch":1,"seq":1}`},
		{"negative epoch", `{"v":1,"origin":"a","epoch":-1,"seq":1}`},
		{"unknown field", `{"v":1,"origin":"a","epoch":1,"seq":1,"evil":true}`},
		{"trailing data", `{"v":1,"origin":"a","epoch":1,"seq":1}{"v":1}`},
		{"negative server", `{"v":1,"origin":"a","epoch":1,"seq":1,"ledger":[{"s":-1,"e":1}]}`},
		{"nan expiry", `{"v":1,"origin":"a","epoch":1,"seq":1,"ledger":[{"s":0,"e":"x"}]}`},
		{"negative hits", `{"v":1,"origin":"a","epoch":1,"seq":1,"hits":[{"dom":0,"h":-1}]}`},
		{"negative domain", `{"v":1,"origin":"a","epoch":1,"seq":1,"hits":[{"dom":-2,"h":1}]}`},
		{"long origin", `{"v":1,"origin":"` + strings.Repeat("x", 200) + `","epoch":1,"seq":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDelta([]byte(tc.line)); err == nil {
				t.Errorf("ParseDelta(%q) accepted invalid input", tc.line)
			}
		})
	}
}

func TestValidateRejectsOversizedDelta(t *testing.T) {
	d := &Delta{V: DeltaVersion, Origin: "a", Epoch: 1, Seq: 1}
	for i := 0; i <= maxDeltaEntries; i++ {
		d.Hits = append(d.Hits, HitsEntry{Domain: i, Hits: 1})
	}
	if err := d.Validate(); err == nil {
		t.Fatal("oversized delta validated")
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	d := &Delta{
		V: DeltaVersion, Origin: "a", Epoch: 1, Seq: 1,
		Ledger: []LedgerEntry{{Server: 0, Expiry: math.Inf(1)}},
	}
	if _, err := d.Encode(); err == nil {
		t.Fatal("non-finite expiry encoded")
	}
}

// FuzzParsePeerDelta hardens the unauthenticated wire entry point: no
// input may panic the parser, and anything it accepts must survive an
// encode/re-parse round trip (CI runs this in the fuzz-smoke job).
func FuzzParsePeerDelta(f *testing.F) {
	f.Add([]byte(`{"v":1,"origin":"a","epoch":1,"seq":1}`))
	f.Add([]byte(`{"v":1,"origin":"r2","epoch":9,"seq":3,"full":true,"ledger":[{"s":0,"addr":"10.0.0.1:80","e":12.5}],"standing":[{"s":1,"a":true,"ep":9,"ts":4.5,"o":"r2"}],"hits":[{"dom":2,"h":8}]}`))
	f.Add([]byte(`{"v":1,"origin":"a","epoch":1,"seq":1,"ledger":[{"s":0,"e":1e308}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`"v"`))
	f.Fuzz(func(t *testing.T, line []byte) {
		d, err := ParseDelta(line)
		if err != nil {
			return
		}
		enc, err := d.Encode()
		if err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		if _, err := ParseDelta(enc); err != nil {
			t.Fatalf("re-encoded delta does not re-parse: %v", err)
		}
	})
}
