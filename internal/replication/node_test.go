package replication

import (
	"math"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/engine"
)

// testReplica is a Node over a freshly built engine with a manual
// clock, the unit the protocol tests compose.
type testReplica struct {
	node  *Node
	eng   *engine.Engine
	clock *engine.ManualClock
}

func newTestReplica(t *testing.T, origin string, epoch int64, servers, domains int) *testReplica {
	t.Helper()
	caps := make([]float64, servers)
	for i := range caps {
		caps[i] = float64(100 - 10*i)
	}
	cluster, err := core.NewCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, domains)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        "RR",
		State:       state,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := &engine.ManualClock{}
	est, err := core.NewEstimator(domains, core.DefaultEstimatorAlpha)
	if err != nil {
		t.Fatal(err)
	}
	var r testReplica
	eng, err := engine.New(engine.Config{
		Policy:    pol,
		Clock:     clock,
		Estimator: est,
		OnDecision: func(domain int, d core.Decision) {
			r.node.Observe(domain, d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{
		Origin: origin,
		Epoch:  epoch,
		Engine: eng,
		Base:   IdentityBase{},
	})
	if err != nil {
		t.Fatal(err)
	}
	r = testReplica{node: node, eng: eng, clock: clock}
	return &r
}

// mergeAll feeds every delta into the receiving node.
func mergeAll(t *testing.T, dst *Node, deltas []*Delta) {
	t.Helper()
	for _, d := range deltas {
		if _, err := dst.Merge(d); err != nil {
			t.Fatalf("merge into %s: %v", dst.Origin(), err)
		}
	}
}

func assertConverged(t *testing.T, a, b *testReplica, servers int) {
	t.Helper()
	for i := 0; i < servers; i++ {
		ae, be := a.eng.MappingExpiry(i), b.eng.MappingExpiry(i)
		if math.Float64bits(ae) != math.Float64bits(be) {
			t.Errorf("ledger slot %d diverges: %s=%v %s=%v", i, a.node.Origin(), ae, b.node.Origin(), be)
		}
		asn, bsn := a.eng.State().Snapshot(), b.eng.State().Snapshot()
		if asn.Alarmed(i) != bsn.Alarmed(i) || asn.Down(i) != bsn.Down(i) || asn.Draining(i) != bsn.Draining(i) {
			t.Errorf("standing slot %d diverges: %s=(%v,%v,%v) %s=(%v,%v,%v)", i,
				a.node.Origin(), asn.Alarmed(i), asn.Down(i), asn.Draining(i),
				b.node.Origin(), bsn.Alarmed(i), bsn.Down(i), bsn.Draining(i))
		}
	}
}

func TestFlushEmitsOnlyChanges(t *testing.T) {
	a := newTestReplica(t, "a", 1, 3, 4)
	if ds := a.node.Flush(); ds != nil {
		t.Fatalf("idle flush emitted %d deltas", len(ds))
	}
	a.clock.Set(10)
	if _, err := a.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	ds := a.node.Flush()
	if len(ds) != 1 {
		t.Fatalf("got %d deltas, want 1", len(ds))
	}
	if len(ds[0].Ledger) == 0 {
		t.Fatal("decision did not surface a ledger entry")
	}
	if ds[0].Seq != 1 || ds[0].Origin != "a" || ds[0].Epoch != 1 {
		t.Fatalf("bad envelope: %+v", ds[0])
	}
	// Nothing changed since: next flush is empty.
	if ds := a.node.Flush(); ds != nil {
		t.Fatalf("no-change flush emitted %d deltas", len(ds))
	}
}

func TestFlushDetectsLocalStandingWrites(t *testing.T) {
	a := newTestReplica(t, "a", 1, 3, 4)
	a.clock.Set(5)
	if err := a.eng.SetAlarm(1, true); err != nil {
		t.Fatal(err)
	}
	ds := a.node.Flush()
	if len(ds) != 1 || len(ds[0].Standing) != 1 {
		t.Fatalf("expected one standing entry, got %+v", ds)
	}
	e := ds[0].Standing[0]
	if e.Server != 1 || !e.Alarmed || e.Origin != "a" || e.Epoch != 1 || e.Stamp != 5 {
		t.Fatalf("bad standing entry: %+v", e)
	}
}

func TestLagZeroPairConverges(t *testing.T) {
	const servers, domains = 4, 6
	a := newTestReplica(t, "a", 1, servers, domains)
	b := newTestReplica(t, "b", 1, servers, domains)
	for step := 0; step < 50; step++ {
		now := float64(step) * 2
		a.clock.Set(now)
		b.clock.Set(now)
		if _, err := a.eng.Decide(step % domains); err != nil {
			t.Fatal(err)
		}
		if step == 20 {
			if err := a.eng.SetAlarm(1, true); err != nil {
				t.Fatal(err)
			}
		}
		if step == 30 {
			if err := b.eng.SetDown(2, true); err != nil {
				t.Fatal(err)
			}
		}
		mergeAll(t, b.node, a.node.Flush())
		mergeAll(t, a.node, b.node.Flush())
	}
	assertConverged(t, a, b, servers)
	if !b.eng.State().Alarmed(1) {
		t.Error("alarm did not replicate a→b")
	}
	if !a.eng.State().Down(2) {
		t.Error("down did not replicate b→a")
	}
}

// TestPartitionHealsInOneRound is the anti-entropy guarantee: after an
// arbitrarily long partition (every delta dropped), one snapshot
// exchange converges both replicas.
func TestPartitionHealsInOneRound(t *testing.T) {
	const servers, domains = 5, 8
	a := newTestReplica(t, "a", 1, servers, domains)
	b := newTestReplica(t, "b", 1, servers, domains)

	// Partitioned phase: both schedule and adjudicate independently;
	// every flush is lost.
	for step := 0; step < 40; step++ {
		now := float64(step) * 3
		a.clock.Set(now)
		b.clock.Set(now)
		if _, err := a.eng.Decide(step % domains); err != nil {
			t.Fatal(err)
		}
		if _, err := b.eng.Decide((step + 1) % domains); err != nil {
			t.Fatal(err)
		}
		a.node.Flush()
		b.node.Flush()
	}
	a.clock.Set(130)
	b.clock.Set(130)
	if err := a.eng.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	b.clock.Set(131) // b's write is later: LWW must pick it everywhere
	if err := b.eng.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	if err := b.eng.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	a.node.Flush()
	b.node.Flush()

	// Heal: exactly one anti-entropy round (snapshot each way).
	a.clock.Set(140)
	b.clock.Set(140)
	mergeAll(t, b.node, a.node.Snapshot())
	mergeAll(t, a.node, b.node.Snapshot())

	assertConverged(t, a, b, servers)
	if !a.eng.State().Down(3) {
		t.Error("partitioned down write did not reach a")
	}
	st := a.node.Stats()
	if st.FullSyncsIn == 0 || st.FullSyncsOut == 0 {
		t.Errorf("full syncs not counted: %+v", st)
	}
}

// TestEpochFencing: a delta from a replica's previous incarnation must
// not override its post-restart state.
func TestEpochFencing(t *testing.T) {
	a := newTestReplica(t, "a", 1, 3, 4)
	b := newTestReplica(t, "b", 1, 3, 4)

	// Pre-crash incarnation of a alarms server 0.
	a.clock.Set(10)
	if err := a.eng.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	stale := a.node.Flush()

	// Post-restart incarnation: higher epoch, clock restarted at an
	// earlier stamp, alarm state reset. Any delta it emits registers
	// the new epoch at its peers.
	a2 := newTestReplica(t, "a", 2, 3, 4)
	a2.clock.Set(1)
	if _, err := a2.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	mergeAll(t, b.node, a2.node.Flush())

	// The stale pre-crash delta arrives late: it must be dropped whole
	// on the envelope epoch despite its larger stamp.
	for _, d := range stale {
		st, err := b.node.Merge(d)
		if err != nil {
			t.Fatal(err)
		}
		if st.Applied || st.Dropped != "epoch" {
			t.Fatalf("stale-epoch delta not fenced: %+v", st)
		}
	}
	if b.eng.State().Alarmed(0) {
		t.Error("pre-restart write overrode post-restart state")
	}
	if got := b.node.Stats().DroppedEpoch; got == 0 {
		t.Error("DroppedEpoch not counted")
	}
}

func TestSeqDedupStopsReplayedHits(t *testing.T) {
	a := newTestReplica(t, "a", 1, 2, 4)
	b := newTestReplica(t, "b", 1, 2, 4)
	a.node.AddHits(0, 100)
	ds := a.node.Flush()
	if len(ds) != 1 || len(ds[0].Hits) != 1 {
		t.Fatalf("expected one hits entry, got %+v", ds)
	}
	st, err := b.node.Merge(ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 {
		t.Fatalf("first merge applied %d hits entries, want 1", st.Hits)
	}
	// A network-level replay of the same delta must be dropped whole.
	st, err = b.node.Merge(ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied || st.Dropped != "dup" {
		t.Fatalf("replay not deduplicated: %+v", st)
	}
	if got := b.node.Stats().DroppedDup; got != 1 {
		t.Errorf("DroppedDup = %d, want 1", got)
	}
}

func TestSelfEchoDropped(t *testing.T) {
	a := newTestReplica(t, "a", 1, 2, 4)
	a.clock.Set(1)
	if _, err := a.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	ds := a.node.Flush()
	st, err := a.node.Merge(ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied || st.Dropped != "self" {
		t.Fatalf("own delta not dropped: %+v", st)
	}
}

// TestMergedStandingNotReclaimed: state learned from a peer must be
// re-gossiped under the original writer's stamp, never re-stamped as a
// local write — otherwise an echo could override the writer's later
// updates.
func TestMergedStandingNotReclaimed(t *testing.T) {
	a := newTestReplica(t, "a", 1, 3, 4)
	b := newTestReplica(t, "b", 1, 3, 4)
	a.clock.Set(10)
	b.clock.Set(10)
	if err := a.eng.SetAlarm(1, true); err != nil {
		t.Fatal(err)
	}
	mergeAll(t, b.node, a.node.Flush())
	if !b.eng.State().Alarmed(1) {
		t.Fatal("alarm did not replicate")
	}
	// b's incremental flush must not re-announce the merged alarm...
	b.clock.Set(20)
	for _, d := range b.node.Flush() {
		if len(d.Standing) != 0 {
			t.Fatalf("peer-merged standing re-emitted as local: %+v", d.Standing)
		}
	}
	// ...and b's snapshot must carry a's original stamp, not b's.
	for _, d := range b.node.Snapshot() {
		for _, e := range d.Standing {
			if e.Server == 1 {
				if e.Origin != "a" || e.Stamp != 10 {
					t.Fatalf("snapshot re-stamped peer state: %+v", e)
				}
			}
		}
	}
}

// TestRefusedWriteKeepsProvenance: when the last-live-server guard
// refuses a remote down, the node must neither record the peer's
// provenance (so the entry can re-apply later) nor re-gossip the
// refusal as its own fresher write.
func TestRefusedWriteKeepsProvenance(t *testing.T) {
	a := newTestReplica(t, "a", 1, 2, 4)
	b := newTestReplica(t, "b", 1, 2, 4)
	a.clock.Set(5)
	b.clock.Set(5)
	if err := b.eng.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	mergeAll(t, a.node, b.node.Flush())
	if !a.eng.State().Down(0) {
		t.Fatal("first down did not replicate")
	}
	// Now b's view would take out a's last live server: refused.
	b.clock.Set(6)
	if err := b.eng.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	mergeAll(t, a.node, b.node.Flush())
	if a.eng.State().Down(1) {
		t.Fatal("guard failed: last live server went down")
	}
	if _, err := a.eng.Decide(0); err != nil {
		t.Fatalf("degraded replica must keep answering: %v", err)
	}
	// a must not gossip "server 1 is up" as a fresh local write.
	a.clock.Set(7)
	for _, d := range a.node.Flush() {
		for _, e := range d.Standing {
			if e.Server == 1 && e.Origin == "a" {
				t.Fatalf("refused write re-stamped as local: %+v", e)
			}
		}
	}
	// Server 0 recovers; b's re-gossiped snapshot now applies cleanly.
	a.clock.Set(8)
	if err := a.eng.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	mergeAll(t, a.node, b.node.Snapshot())
	if !a.eng.State().Down(1) {
		t.Error("re-gossiped down did not apply after recovery")
	}
}

func TestChunkingSplitsLargeState(t *testing.T) {
	a := newTestReplica(t, "a", 1, 2, 4)
	// Fabricate a huge pending-hits backlog to force chunking.
	for d := 0; d < 2*maxDeltaEntries; d++ {
		a.node.pendingHits[d] = 1
	}
	ds := a.node.Flush()
	if len(ds) < 2 {
		t.Fatalf("got %d deltas, want ≥2", len(ds))
	}
	total := 0
	for i, d := range ds {
		n := len(d.Ledger) + len(d.Standing) + len(d.Hits)
		if n > maxDeltaEntries {
			t.Fatalf("delta %d carries %d entries, max %d", i, n, maxDeltaEntries)
		}
		if _, err := d.Encode(); err != nil {
			t.Fatalf("chunk %d does not encode: %v", i, err)
		}
		total += len(d.Hits)
	}
	if total != 2*maxDeltaEntries {
		t.Fatalf("chunking lost entries: %d of %d", total, 2*maxDeltaEntries)
	}
}

func TestWallBaseRoundTrip(t *testing.T) {
	clock := engine.NewWallClock()
	base := WallBase{Clock: clock}
	for _, sec := range []float64{0, 1.5, 3600, 86400.25} {
		got := base.FromWire(base.ToWire(sec))
		if math.Abs(got-sec) > 1e-6 {
			t.Errorf("round trip %v → %v", sec, got)
		}
	}
}

func TestHeartbeatDoesNotAdvanceDedupFence(t *testing.T) {
	// The live flush loop and each peer's delivery loop race: a delta
	// flushed (seq assigned) but still queued can be overtaken by a
	// maintenance-tick heartbeat. The heartbeat must therefore carry
	// the current watermark without consuming a number — otherwise the
	// receiver's fence rises past the queued delta and real state is
	// dup-dropped forever.
	a := newTestReplica(t, "a", 1, 3, 4)
	b := newTestReplica(t, "b", 1, 3, 4)

	a.clock.Set(10)
	if _, err := a.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	flushed := a.node.Flush() // seq 1, still "queued"
	if len(flushed) != 1 {
		t.Fatalf("got %d deltas, want 1", len(flushed))
	}

	// Heartbeat overtakes the queued delta. It must carry seq 0 — any
	// nonzero value could fence out a flushed-but-undelivered delta.
	hb := a.node.Heartbeat()
	if hb.Seq != 0 {
		t.Fatalf("heartbeat seq = %d, want 0", hb.Seq)
	}
	if len(hb.Ledger)+len(hb.Standing)+len(hb.Hits) != 0 || hb.Full {
		t.Fatalf("heartbeat not empty: %+v", hb)
	}
	if _, err := b.node.Merge(hb); err != nil {
		t.Fatal(err)
	}

	// The overtaken delta must still apply.
	st, err := b.node.Merge(flushed[0])
	if err != nil {
		t.Fatal(err)
	}
	if !st.Applied || st.Mappings == 0 {
		t.Fatalf("delta overtaken by heartbeat was dropped: %+v", st)
	}
	assertConverged(t, a, b, 3)

	// A heartbeat arriving after the delta is a harmless duplicate.
	st, err = b.node.Merge(a.node.Heartbeat())
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied || st.Dropped != "dup" {
		t.Fatalf("late heartbeat = %+v, want dup-drop", st)
	}
}

func TestHeartbeatCarriesNewEpoch(t *testing.T) {
	// A restarted replica's heartbeat must register its new epoch at
	// the peer even before any state changes, so the peer's fence
	// rejects the dead incarnation's replayed deltas.
	a1 := newTestReplica(t, "a", 1, 3, 4)
	b := newTestReplica(t, "b", 1, 3, 4)
	a1.clock.Set(10)
	if _, err := a1.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	stale := a1.node.Flush()

	a2 := newTestReplica(t, "a", 2, 3, 4) // restart: epoch 2
	if _, err := b.node.Merge(a2.node.Heartbeat()); err != nil {
		t.Fatal(err)
	}
	st, err := b.node.Merge(stale[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied || st.Dropped != "epoch" {
		t.Fatalf("stale-epoch delta after heartbeat = %+v, want epoch-drop", st)
	}
}
