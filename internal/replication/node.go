package replication

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/engine"
)

// TimeBase translates between engine-clock seconds and the wire clock
// deltas are stamped in. The simulator's replicas share one virtual
// clock, so the identity base suffices; live replicas each count
// seconds from their own start instant and must go through Unix time.
type TimeBase interface {
	ToWire(engineSec float64) float64
	FromWire(wireSec float64) float64
}

// IdentityBase is the TimeBase for replicas sharing one clock (the
// simulator, or tests stepping a common ManualClock).
type IdentityBase struct{}

// ToWire implements TimeBase.
func (IdentityBase) ToWire(s float64) float64 { return s }

// FromWire implements TimeBase.
func (IdentityBase) FromWire(s float64) float64 { return s }

// WallBase translates a live replica's engine seconds to Unix seconds
// on the wire. Replicas are assumed loosely NTP-synced; a skew of δ
// seconds shifts merged ledger windows by δ, which the adaptive-TTL
// scheduler absorbs the same way it absorbs δ of replication lag.
type WallBase struct{ Clock *engine.WallClock }

// ToWire implements TimeBase.
func (b WallBase) ToWire(s float64) float64 {
	t := b.Clock.Time(s)
	return float64(t.UnixNano()) / float64(time.Second)
}

// FromWire implements TimeBase.
func (b WallBase) FromWire(s float64) float64 {
	ns := int64(s * float64(time.Second))
	return b.Clock.Seconds(time.Unix(0, ns))
}

// provenance records who authored a slot's current standing — the
// last-writer-wins register's version vector entry.
type provenance struct {
	epoch  int64
	stamp  float64
	origin string
	// flags as last adjudicated: alarmed, down, draining. Flush compares
	// the engine's current flags against these to detect local writes.
	alarmed, down, draining bool
	set                     bool
}

// wins reports whether a write stamped (epoch, stamp, origin) beats
// this provenance under the LWW order: epoch first (restart fencing),
// then stamp, then origin as a deterministic tie-break.
func (p *provenance) wins(epoch int64, stamp float64, origin string) bool {
	if !p.set {
		return true
	}
	if epoch != p.epoch {
		return epoch > p.epoch
	}
	if stamp != p.stamp {
		return stamp > p.stamp
	}
	return origin > p.origin
}

// peerState is the fencing state kept per remote origin.
type peerState struct {
	epoch int64
	seq   uint64
}

// NodeConfig assembles a Node.
type NodeConfig struct {
	// Origin is this replica's unique id (the -replica-id flag).
	// Required.
	Origin string
	// Epoch fences this replica's writes across restarts: it must be
	// larger than any epoch this origin used before (live servers use
	// start-time Unix nanoseconds). Required (> 0).
	Epoch int64
	// Engine is the scheduling engine whose soft state is replicated.
	// Required.
	Engine *engine.Engine
	// Base translates engine seconds to wire seconds. Required.
	Base TimeBase
	// SlotAddr, when non-nil, annotates outgoing entries with the
	// server's stable address so replicas whose slot order differs
	// still merge correctly; AddrSlot resolves incoming addresses back
	// to local slots (reporting false for servers this replica does not
	// know). Both nil means slot indices are trusted to agree.
	SlotAddr func(slot int) (addr string, ok bool)
	AddrSlot func(addr string) (slot int, ok bool)
}

// Node is one replica's replication endpoint: it watches the local
// engine for soft-state changes (Observe/AddHits feed it, Flush drains
// it), emits versioned deltas, and adjudicates + applies deltas
// received from peers (Merge). It is transport-agnostic: the live
// Replicator and the simulator's exchange loop both drive it.
//
// All methods are safe for concurrent use; Observe is the only one on
// the query hot path and costs one atomic load (plus one store on the
// first decision of an interval).
type Node struct {
	origin string
	epoch  int64
	eng    *engine.Engine
	base   TimeBase

	slotAddr func(int) (string, bool)
	addrSlot func(string) (int, bool)

	ledgerDirty atomic.Bool

	mu          sync.Mutex
	seq         uint64
	lastLedger  []float64 // engine seconds, as last flushed
	prov        []provenance
	pendingHits map[int]float64
	peers       map[string]*peerState

	// Health counters, atomics so metric scrapes never take mu.
	deltasOut     atomic.Uint64
	deltasIn      atomic.Uint64
	deltasApplied atomic.Uint64
	droppedDup    atomic.Uint64
	droppedEpoch  atomic.Uint64
	droppedSelf   atomic.Uint64
	fullSyncsOut  atomic.Uint64
	fullSyncsIn   atomic.Uint64
	entriesMerged atomic.Uint64
}

// NewNode builds a replication node over an engine.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Origin == "" {
		return nil, errors.New("replication: Origin is required")
	}
	if len(cfg.Origin) > 128 {
		return nil, fmt.Errorf("replication: origin %d bytes long, max 128", len(cfg.Origin))
	}
	if cfg.Epoch <= 0 {
		return nil, errors.New("replication: Epoch must be positive")
	}
	if cfg.Engine == nil {
		return nil, errors.New("replication: Engine is required")
	}
	if cfg.Base == nil {
		return nil, errors.New("replication: Base is required")
	}
	if (cfg.SlotAddr == nil) != (cfg.AddrSlot == nil) {
		return nil, errors.New("replication: SlotAddr and AddrSlot must be set together")
	}
	return &Node{
		origin:      cfg.Origin,
		epoch:       cfg.Epoch,
		eng:         cfg.Engine,
		base:        cfg.Base,
		slotAddr:    cfg.SlotAddr,
		addrSlot:    cfg.AddrSlot,
		pendingHits: make(map[int]float64),
		peers:       make(map[string]*peerState),
	}, nil
}

// Origin returns this replica's id.
func (n *Node) Origin() string { return n.origin }

// Observe notes that a scheduling decision extended the mapping
// ledger. It is the engine OnDecision tap: check-then-set on one
// atomic keeps the cache line read-shared on the all-important query
// hot path (the flag is usually already set between flushes).
func (n *Node) Observe(domain int, d core.Decision) {
	if !n.ledgerDirty.Load() {
		n.ledgerDirty.Store(true)
	}
}

// NoteLedger marks the ledger dirty outside the decision path (TTL
// clamps, checkpoint restores).
func (n *Node) NoteLedger() {
	if !n.ledgerDirty.Load() {
		n.ledgerDirty.Store(true)
	}
}

// AddHits accumulates a locally received per-domain hit report for the
// next delta. Hits merged from peers must NOT be teed back through
// AddHits — that would echo them around the mesh.
func (n *Node) AddHits(domain int, hits float64) {
	if domain < 0 || hits <= 0 {
		return
	}
	n.mu.Lock()
	n.pendingHits[domain] += hits
	n.mu.Unlock()
}

// growLocked sizes the per-slot bookkeeping to the engine's current
// cluster (membership can grow at runtime via JOIN).
func (n *Node) growLocked(nServers int) {
	for len(n.lastLedger) < nServers {
		n.lastLedger = append(n.lastLedger, 0)
	}
	for len(n.prov) < nServers {
		n.prov = append(n.prov, provenance{})
	}
}

// entryAddr resolves a slot's wire address annotation ("" when
// address translation is disabled).
func (n *Node) entryAddr(slot int) string {
	if n.slotAddr == nil {
		return ""
	}
	addr, ok := n.slotAddr(slot)
	if !ok {
		return ""
	}
	return addr
}

// Flush drains everything that changed since the previous Flush into
// zero or more deltas (nil when nothing changed): grown ledger
// windows, locally re-adjudicated standing, and pending hit reports.
// Oversized change sets are chunked so every delta encodes under the
// report socket's line limit.
func (n *Node) Flush() []*Delta {
	n.mu.Lock()
	defer n.mu.Unlock()

	sn := n.eng.State().Snapshot()
	nServers := sn.Cluster().N()
	n.growLocked(nServers)

	var ledger []LedgerEntry
	if n.ledgerDirty.Swap(false) {
		for i := 0; i < nServers; i++ {
			exp := n.eng.MappingExpiry(i)
			if exp > n.lastLedger[i] {
				n.lastLedger[i] = exp
				ledger = append(ledger, LedgerEntry{
					Server: i,
					Addr:   n.entryAddr(i),
					Expiry: n.base.ToWire(exp),
				})
			}
		}
	}

	standing := n.collectStandingLocked(sn, false)

	var hits []HitsEntry
	if len(n.pendingHits) > 0 {
		domains := make([]int, 0, len(n.pendingHits))
		for d := range n.pendingHits {
			domains = append(domains, d)
		}
		sort.Ints(domains)
		for _, d := range domains {
			hits = append(hits, HitsEntry{Domain: d, Hits: n.pendingHits[d]})
		}
		n.pendingHits = make(map[int]float64)
	}

	return n.chunkLocked(ledger, standing, hits, false)
}

// Heartbeat returns an empty delta probing link liveness, so an idle
// link still exchanges one message per tick — a cut cable is detected
// within one gossip interval instead of lingering as "connected", and
// a restarted replica's new epoch reaches its peers even before any
// state changes. It always carries sequence number zero: flush and
// per-link delivery run concurrently, so a heartbeat can overtake a
// flushed-but-undelivered delta, and any nonzero sequence would raise
// the receiver's dedup fence past that delta and drop real state.
// Receivers register the epoch, then harmlessly dup-drop the empty
// payload; the sender learns liveness from the write/OK round trip,
// not from the merge outcome.
func (n *Node) Heartbeat() *Delta {
	n.deltasOut.Add(1)
	return &Delta{V: DeltaVersion, Origin: n.origin, Epoch: n.epoch, Seq: 0}
}

// Snapshot captures the node's complete mergeable state as full
// (anti-entropy) deltas: every non-empty ledger window and every
// member slot's standing under its original writer's stamp, so
// forwarding a snapshot never promotes this replica to author of state
// it merely relayed. Hit increments are interval-scoped, not state,
// and are never snapshotted.
func (n *Node) Snapshot() []*Delta {
	n.mu.Lock()
	defer n.mu.Unlock()

	sn := n.eng.State().Snapshot()
	nServers := sn.Cluster().N()
	n.growLocked(nServers)

	var ledger []LedgerEntry
	for i := 0; i < nServers; i++ {
		if exp := n.eng.MappingExpiry(i); exp > 0 {
			if exp > n.lastLedger[i] {
				n.lastLedger[i] = exp
			}
			ledger = append(ledger, LedgerEntry{
				Server: i,
				Addr:   n.entryAddr(i),
				Expiry: n.base.ToWire(exp),
			})
		}
	}
	standing := n.collectStandingLocked(sn, true)
	deltas := n.chunkLocked(ledger, standing, nil, true)
	n.fullSyncsOut.Add(uint64(len(deltas)))
	return deltas
}

// collectStandingLocked detects local standing writes (engine flags
// that differ from the last adjudicated provenance) and stamps them as
// this node's own; with full set it additionally re-gossips unchanged
// slots under their original stamps.
func (n *Node) collectStandingLocked(sn *core.Snapshot, full bool) []StandingEntry {
	now := n.base.ToWire(n.eng.Now())
	var out []StandingEntry
	for i := 0; i < sn.Cluster().N(); i++ {
		if !sn.Member(i) {
			continue
		}
		alarmed, down, draining := sn.Alarmed(i), sn.Down(i), sn.Draining(i)
		p := &n.prov[i]
		changed := !p.set && (alarmed || down || draining) ||
			p.set && (p.alarmed != alarmed || p.down != down || p.draining != draining)
		if changed {
			// A local write: claim authorship with a fresh stamp.
			*p = provenance{
				epoch: n.epoch, stamp: now, origin: n.origin,
				alarmed: alarmed, down: down, draining: draining, set: true,
			}
		}
		if changed || full {
			out = append(out, StandingEntry{
				Server: i, Addr: n.entryAddr(i),
				Alarmed: alarmed, Down: down, Draining: draining,
				Epoch: p.epoch, Stamp: p.stamp, Origin: p.origin,
			})
		}
	}
	return out
}

// chunkLocked packs entries into deltas of at most maxDeltaEntries
// each, stamping each with the next sequence number.
func (n *Node) chunkLocked(ledger []LedgerEntry, standing []StandingEntry, hits []HitsEntry, full bool) []*Delta {
	if len(ledger) == 0 && len(standing) == 0 && len(hits) == 0 && !full {
		return nil
	}
	var out []*Delta
	for {
		d := &Delta{V: DeltaVersion, Origin: n.origin, Epoch: n.epoch, Full: full}
		room := maxDeltaEntries
		take := func(k int) int {
			if k > room {
				k = room
			}
			room -= k
			return k
		}
		k := take(len(ledger))
		d.Ledger, ledger = ledger[:k], ledger[k:]
		k = take(len(standing))
		d.Standing, standing = standing[:k], standing[k:]
		k = take(len(hits))
		d.Hits, hits = hits[:k], hits[k:]
		n.seq++
		d.Seq = n.seq
		out = append(out, d)
		n.deltasOut.Add(1)
		if len(ledger) == 0 && len(standing) == 0 && len(hits) == 0 {
			return out
		}
	}
}

// MergeStats summarizes one Merge call for metrics and tests.
type MergeStats struct {
	// Applied is false when the delta was dropped whole (echo,
	// duplicate, or stale epoch).
	Applied bool
	// Dropped, when Applied is false, names why: "self", "dup",
	// "epoch".
	Dropped string
	// Mappings, Standing, Hits count applied entries.
	Mappings, Standing, Hits int
}

// Merge adjudicates and applies one peer delta: origin fencing first
// (drop echoes of our own deltas, replays within an epoch, and
// anything from a stale epoch), then per-entry translation and
// last-writer-wins adjudication, then a single engine.MergeRemote with
// the surviving entries. Losing or untranslatable entries are skipped
// silently — that is the CRDT contract, not an error.
func (n *Node) Merge(d *Delta) (MergeStats, error) {
	if err := d.Validate(); err != nil {
		return MergeStats{}, err
	}
	n.deltasIn.Add(1)
	if d.Origin == n.origin {
		n.droppedSelf.Add(1)
		return MergeStats{Dropped: "self"}, nil
	}

	n.mu.Lock()
	ps := n.peers[d.Origin]
	if ps == nil {
		ps = &peerState{}
		n.peers[d.Origin] = ps
	}
	if d.Epoch < ps.epoch {
		n.mu.Unlock()
		n.droppedEpoch.Add(1)
		return MergeStats{Dropped: "epoch"}, nil
	}
	if d.Epoch > ps.epoch {
		ps.epoch = d.Epoch
		ps.seq = 0
	}
	// Full snapshots are idempotent and carry no increments, so a
	// replayed one is safe to re-apply; incremental deltas at or below
	// the fence are duplicates.
	if !d.Full && d.Seq <= ps.seq {
		n.mu.Unlock()
		n.droppedDup.Add(1)
		return MergeStats{Dropped: "dup"}, nil
	}
	if d.Seq > ps.seq {
		ps.seq = d.Seq
	}
	if d.Full {
		n.fullSyncsIn.Add(1)
	}

	sn := n.eng.State().Snapshot()
	n.growLocked(sn.Cluster().N())

	var rd engine.RemoteDelta
	var stats MergeStats
	stats.Applied = true
	for _, e := range d.Ledger {
		slot, ok := n.resolveSlot(e.Server, e.Addr)
		if !ok {
			continue
		}
		rd.Mappings = append(rd.Mappings, engine.RemoteMapping{
			Server: slot,
			Expiry: n.base.FromWire(e.Expiry),
		})
		stats.Mappings++
	}
	type pendingProv struct {
		slot  int
		entry StandingEntry
	}
	var won []pendingProv
	for _, e := range d.Standing {
		slot, ok := n.resolveSlot(e.Server, e.Addr)
		if !ok || slot >= len(n.prov) {
			continue
		}
		if !n.prov[slot].wins(e.Epoch, e.Stamp, e.Origin) {
			continue
		}
		rd.Standing = append(rd.Standing, engine.RemoteStanding{
			Server:   slot,
			Alarmed:  e.Alarmed,
			Down:     e.Down,
			Draining: e.Draining,
		})
		won = append(won, pendingProv{slot: slot, entry: e})
		stats.Standing++
	}
	for _, e := range d.Hits {
		rd.Hits = append(rd.Hits, engine.RemoteHits{Domain: e.Domain, Hits: e.Hits})
		stats.Hits++
	}
	n.mu.Unlock()

	err := n.eng.MergeRemote(rd)

	// Record provenance only for entries the engine verifiably applied:
	// a write refused by a safety rail (last-live-server guard) keeps
	// its old provenance so the peer's re-gossip can win later, and the
	// refusal is never re-stamped as a local write of ours.
	after := n.eng.State().Snapshot()
	n.mu.Lock()
	for _, w := range won {
		e := w.entry
		if w.slot >= after.Cluster().N() || !after.Member(w.slot) {
			continue
		}
		if after.Alarmed(w.slot) == e.Alarmed && after.Down(w.slot) == e.Down && after.Draining(w.slot) == e.Draining {
			n.prov[w.slot] = provenance{
				epoch: e.Epoch, stamp: e.Stamp, origin: e.Origin,
				alarmed: e.Alarmed, down: e.Down, draining: e.Draining, set: true,
			}
		}
	}
	n.mu.Unlock()

	if stats.Mappings > 0 {
		// Merged windows may exceed what we last gossiped; let the next
		// Flush re-announce them (receivers dedup by CAS-max anyway).
		n.NoteLedger()
	}
	n.deltasApplied.Add(1)
	n.entriesMerged.Add(uint64(stats.Mappings + stats.Standing + stats.Hits))
	return stats, err
}

// resolveSlot maps a wire entry to a local slot, preferring the
// address annotation when both sides translate addresses.
func (n *Node) resolveSlot(server int, addr string) (int, bool) {
	if n.addrSlot != nil && addr != "" {
		return n.addrSlot(addr)
	}
	if server < 0 {
		return 0, false
	}
	return server, true
}

// Stats is a point-in-time view of the node's health counters.
type Stats struct {
	DeltasOut, DeltasIn, DeltasApplied    uint64
	DroppedDup, DroppedEpoch, DroppedSelf uint64
	FullSyncsOut, FullSyncsIn             uint64
	EntriesMerged                         uint64
}

// Stats returns the node's counters (monotonic since creation).
func (n *Node) Stats() Stats {
	return Stats{
		DeltasOut:     n.deltasOut.Load(),
		DeltasIn:      n.deltasIn.Load(),
		DeltasApplied: n.deltasApplied.Load(),
		DroppedDup:    n.droppedDup.Load(),
		DroppedEpoch:  n.droppedEpoch.Load(),
		DroppedSelf:   n.droppedSelf.Load(),
		FullSyncsOut:  n.fullSyncsOut.Load(),
		FullSyncsIn:   n.fullSyncsIn.Load(),
		EntriesMerged: n.entriesMerged.Load(),
	}
}
