// Package replication makes N dnslb-server replicas converge on one
// soft-state view without coordination. Each replica asynchronously
// gossips versioned deltas of its engine soft state — hidden-load
// ledger windows, per-server standing (alarm/down/draining), and
// estimator hit reports — over the existing report-socket transport
// (one `REPL <json>` line per delta, answered `OK`).
//
// Convergence is CRDT-style, never consensus:
//
//   - ledger windows merge CAS-max (monotone, commutative, idempotent);
//   - standing is a per-slot last-writer-wins register fenced by the
//     writer's (epoch, stamp, origin) — a restarted replica bumps its
//     epoch, so its pre-crash writes can never override post-crash
//     state;
//   - hit reports are increments, deduplicated by the per-origin
//     sequence number every delta carries.
//
// Robustness is the design center: a replica that loses every peer
// keeps scheduling from local state (it never refuses queries), and a
// peer link that heals resyncs via a full-state anti-entropy snapshot,
// so arbitrarily long partitions converge in one round after healing.
package replication

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
)

// DeltaVersion is the wire format version this build speaks. A decoder
// rejects other versions; mixed-version replica sets must be upgraded
// in place (soft state is reconstructible, so a restart is cheap).
const DeltaVersion = 1

// maxDeltaEntries bounds the total entries a single delta may carry —
// both a parser hardening limit (a hostile line cannot allocate
// unboundedly) and the chunking threshold emitters stay under so an
// encoded delta fits the report socket's 64 KiB line limit with wide
// margin.
const maxDeltaEntries = 512

// LedgerEntry is one outstanding-mapping window: the latest expiry
// (wire clock seconds) of server Server / address Addr.
type LedgerEntry struct {
	Server int     `json:"s"`
	Addr   string  `json:"addr,omitempty"`
	Expiry float64 `json:"e"`
}

// StandingEntry is one server's alarm/down/draining standing, stamped
// with its writer so receivers can adjudicate last-writer-wins: Epoch
// fences replica restarts, Stamp orders writes within an epoch (wire
// clock seconds), Origin breaks exact ties deterministically.
type StandingEntry struct {
	Server   int     `json:"s"`
	Addr     string  `json:"addr,omitempty"`
	Alarmed  bool    `json:"a,omitempty"`
	Down     bool    `json:"d,omitempty"`
	Draining bool    `json:"dr,omitempty"`
	Epoch    int64   `json:"ep"`
	Stamp    float64 `json:"ts"`
	Origin   string  `json:"o"`
}

// HitsEntry is one domain's hit-count increment for the hidden-load
// estimator, observed by the origin replica since its previous delta.
type HitsEntry struct {
	Domain int     `json:"dom"`
	Hits   float64 `json:"h"`
}

// Delta is one replication message: a versioned, origin-stamped batch
// of soft-state changes. Seq increases by one per delta an origin
// emits within an epoch, letting receivers drop duplicates and
// replays; Full marks an anti-entropy snapshot (complete state, safe
// to re-apply, never carrying hit increments).
type Delta struct {
	V        int             `json:"v"`
	Origin   string          `json:"origin"`
	Epoch    int64           `json:"epoch"`
	Seq      uint64          `json:"seq"`
	Full     bool            `json:"full,omitempty"`
	Ledger   []LedgerEntry   `json:"ledger,omitempty"`
	Standing []StandingEntry `json:"standing,omitempty"`
	Hits     []HitsEntry     `json:"hits,omitempty"`
}

// ErrVersion reports a delta from a replica speaking a different wire
// version.
var ErrVersion = errors.New("replication: unsupported delta version")

// Encode renders the delta as a single JSON line (no trailing newline)
// — the payload of a `REPL` report-socket command.
func (d *Delta) Encode() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// ParseDelta decodes and validates one wire delta. It is strict about
// everything a hostile or corrupted line could abuse — unknown fields,
// non-finite floats, negative indices, oversized batches — because the
// report socket accepts unauthenticated peers.
func ParseDelta(line []byte) (*Delta, error) {
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	var d Delta
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("replication: parse delta: %w", err)
	}
	if dec.More() {
		return nil, errors.New("replication: trailing data after delta")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the structural invariants shared by encode and
// decode.
func (d *Delta) Validate() error {
	if d.V != DeltaVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, d.V, DeltaVersion)
	}
	if d.Origin == "" {
		return errors.New("replication: delta without origin")
	}
	if len(d.Origin) > 128 {
		return fmt.Errorf("replication: origin %d bytes long, max 128", len(d.Origin))
	}
	if d.Epoch < 0 {
		return fmt.Errorf("replication: negative epoch %d", d.Epoch)
	}
	if n := len(d.Ledger) + len(d.Standing) + len(d.Hits); n > maxDeltaEntries {
		return fmt.Errorf("replication: delta carries %d entries, max %d", n, maxDeltaEntries)
	}
	for i, e := range d.Ledger {
		if e.Server < 0 {
			return fmt.Errorf("replication: ledger entry %d has negative server %d", i, e.Server)
		}
		if math.IsNaN(e.Expiry) || math.IsInf(e.Expiry, 0) {
			return fmt.Errorf("replication: ledger entry %d has non-finite expiry", i)
		}
	}
	for i, e := range d.Standing {
		if e.Server < 0 {
			return fmt.Errorf("replication: standing entry %d has negative server %d", i, e.Server)
		}
		if e.Epoch < 0 {
			return fmt.Errorf("replication: standing entry %d has negative epoch", i)
		}
		if math.IsNaN(e.Stamp) || math.IsInf(e.Stamp, 0) {
			return fmt.Errorf("replication: standing entry %d has non-finite stamp", i)
		}
		if len(e.Origin) > 128 {
			return fmt.Errorf("replication: standing entry %d origin too long", i)
		}
	}
	for i, e := range d.Hits {
		if e.Domain < 0 {
			return fmt.Errorf("replication: hits entry %d has negative domain %d", i, e.Domain)
		}
		if e.Hits < 0 || math.IsNaN(e.Hits) || math.IsInf(e.Hits, 0) {
			return fmt.Errorf("replication: hits entry %d has invalid count", i)
		}
	}
	return nil
}
