package replication

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakePeer is a minimal report-socket endpoint: it answers REPL lines
// with OK and records the parsed deltas.
type fakePeer struct {
	t  *testing.T
	ln net.Listener

	mu     sync.Mutex
	deltas []*Delta
	reject bool
	conns  []net.Conn
}

// down severs the peer: stop listening and kill live connections.
func (p *fakePeer) down() {
	_ = p.ln.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		_ = c.Close()
	}
	p.conns = nil
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePeer{t: t, ln: ln}
	go p.acceptLoop(ln)
	t.Cleanup(func() { _ = ln.Close() })
	return p
}

func (p *fakePeer) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *fakePeer) serve(conn net.Conn) {
	defer conn.Close()
	p.mu.Lock()
	p.conns = append(p.conns, conn)
	p.mu.Unlock()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "REPL ") {
			_, _ = conn.Write([]byte("ERR want REPL\n"))
			continue
		}
		p.mu.Lock()
		reject := p.reject
		p.mu.Unlock()
		if reject {
			_, _ = conn.Write([]byte("ERR rejected\n"))
			continue
		}
		d, err := ParseDelta([]byte(strings.TrimPrefix(line, "REPL ")))
		if err != nil {
			_, _ = conn.Write([]byte("ERR parse\n"))
			continue
		}
		p.mu.Lock()
		p.deltas = append(p.deltas, d)
		p.mu.Unlock()
		_, _ = conn.Write([]byte("OK\n"))
	}
}

func (p *fakePeer) addr() string { return p.ln.Addr().String() }

func (p *fakePeer) received() []*Delta {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Delta(nil), p.deltas...)
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicatorShipsDeltas(t *testing.T) {
	peer := newFakePeer(t)
	a := newTestReplica(t, "a", 1, 3, 4)
	r, err := NewReplicator(ReplicatorConfig{
		Node:     a.node,
		Peers:    []string{peer.addr()},
		Interval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	// First contact is a full sync even with no local changes yet.
	waitFor(t, "initial full sync", func() bool {
		for _, d := range peer.received() {
			if d.Full {
				return true
			}
		}
		return false
	})
	waitFor(t, "connected health", func() bool { return r.ConnectedPeers() == 1 && !r.Degraded() })

	a.clock.Set(3)
	if _, err := a.eng.Decide(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "incremental delta", func() bool {
		for _, d := range peer.received() {
			if !d.Full && len(d.Ledger) > 0 {
				return true
			}
		}
		return false
	})
	h := r.Health()
	if len(h) != 1 || h[0].Sent == 0 || h[0].FullSyncs == 0 {
		t.Fatalf("bad health: %+v", h)
	}
}

func TestReplicatorSurvivesPeerLossAndResyncs(t *testing.T) {
	peer := newFakePeer(t)
	a := newTestReplica(t, "a", 1, 3, 4)
	r, err := NewReplicator(ReplicatorConfig{
		Node:       a.node,
		Peers:      []string{peer.addr()},
		Interval:   10 * time.Millisecond,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	waitFor(t, "connect", func() bool { return r.ConnectedPeers() == 1 })

	// Peer goes away: the replica degrades to local-only but keeps
	// scheduling.
	peer.down()
	a.clock.Set(1)
	if _, err := a.eng.Decide(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "degraded", func() bool { return r.Degraded() })
	if _, err := a.eng.Decide(1); err != nil {
		t.Fatalf("degraded replica refused a query: %v", err)
	}

	// Peer returns on the same address: the link must reconnect under
	// backoff and lead with a fresh full sync.
	before := len(peer.received())
	ln, err := net.Listen("tcp", peer.addr())
	if err != nil {
		t.Skipf("could not rebind %s: %v", peer.addr(), err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go peer.acceptLoop(ln)

	waitFor(t, "reconnect", func() bool { return r.ConnectedPeers() == 1 })
	waitFor(t, "post-heal full sync", func() bool {
		for _, d := range peer.received()[before:] {
			if d.Full {
				return true
			}
		}
		return false
	})
	h := r.Health()[0]
	if h.SendErrors == 0 {
		t.Error("outage produced no send errors")
	}
	if h.FullSyncs < 2 {
		t.Errorf("FullSyncs = %d, want ≥2 (initial + post-heal)", h.FullSyncs)
	}
}

func TestReplicatorRejectedDeltaTearsLinkDown(t *testing.T) {
	peer := newFakePeer(t)
	peer.mu.Lock()
	peer.reject = true
	peer.mu.Unlock()
	a := newTestReplica(t, "a", 1, 2, 4)
	r, err := NewReplicator(ReplicatorConfig{
		Node:       a.node,
		Peers:      []string{peer.addr()},
		Interval:   10 * time.Millisecond,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	waitFor(t, "send errors counted", func() bool { return r.Health()[0].SendErrors > 0 })

	// Once the peer stops rejecting, the link recovers.
	peer.mu.Lock()
	peer.reject = false
	peer.mu.Unlock()
	waitFor(t, "recovery", func() bool {
		for _, d := range peer.received() {
			if d.Full {
				return true
			}
		}
		return false
	})
}

func TestNewReplicatorValidation(t *testing.T) {
	a := newTestReplica(t, "a", 1, 2, 4)
	if _, err := NewReplicator(ReplicatorConfig{Peers: []string{"x"}}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewReplicator(ReplicatorConfig{Node: a.node}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewReplicator(ReplicatorConfig{Node: a.node, Peers: []string{" ", ""}}); err == nil {
		t.Error("blank peer list accepted")
	}
	if _, err := NewReplicator(ReplicatorConfig{
		Node: a.node, Peers: []string{"x"},
		BackoffMin: time.Second, BackoffMax: time.Millisecond,
	}); err == nil {
		t.Error("inverted backoff bounds accepted")
	}
}
