package replication

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/logging"
)

// ReplicatorConfig assembles a live Replicator.
type ReplicatorConfig struct {
	// Node is the replication endpoint whose deltas are shipped.
	// Required.
	Node *Node
	// Peers are the other replicas' report-socket addresses. Required
	// (at least one).
	Peers []string
	// Interval is the flush/gossip cadence. Default 1s.
	Interval time.Duration
	// DialTimeout bounds one connection attempt. Default 3s.
	DialTimeout time.Duration
	// IOTimeout bounds one delta round trip (write + OK). Default 3s.
	IOTimeout time.Duration
	// BackoffMin/BackoffMax bound the per-peer reconnect backoff.
	// Defaults 200ms / 30s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// QueueLen bounds each peer's outbound delta queue; overflow drops
	// the oldest delta and schedules a full-state resync. Default 64.
	QueueLen int
	// Logger receives link state transitions; nil discards.
	Logger *slog.Logger
}

// Replicator ships a Node's deltas to a fixed peer set over the report
// socket protocol and keeps each link healthy: bounded exponential
// backoff with jitter on dial failures, per-delta IO deadlines, and a
// full-state anti-entropy snapshot whenever a link (re)connects or
// overflowed its queue. Losing every peer only degrades gossip — the
// local engine keeps scheduling from its own state, so queries are
// never refused on account of replication.
type Replicator struct {
	node     *Node
	peers    []*peerLink
	interval time.Duration
	log      *slog.Logger

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// peerLink is one outbound replication link.
type peerLink struct {
	addr  string
	queue chan *Delta

	dialTimeout time.Duration
	ioTimeout   time.Duration
	backoffMin  time.Duration
	backoffMax  time.Duration

	// Owned by the link's goroutine.
	conn     net.Conn
	rd       *bufio.Reader
	backoff  time.Duration
	nextDial time.Time

	needsFull atomic.Bool
	connected atomic.Bool

	sent       atomic.Uint64
	sendErrors atomic.Uint64
	dials      atomic.Uint64
	dialErrors atomic.Uint64
	drops      atomic.Uint64
	fullSyncs  atomic.Uint64
}

// NewReplicator builds a replicator; Start launches it.
func NewReplicator(cfg ReplicatorConfig) (*Replicator, error) {
	if cfg.Node == nil {
		return nil, errors.New("replication: Node is required")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("replication: at least one peer is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 3 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 200 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 30 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		return nil, fmt.Errorf("replication: BackoffMax %v < BackoffMin %v", cfg.BackoffMax, cfg.BackoffMin)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	log := cfg.Logger
	if log == nil {
		log = logging.Discard()
	}
	r := &Replicator{
		node:     cfg.Node,
		interval: cfg.Interval,
		log:      log,
		stop:     make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		p := &peerLink{
			addr:        addr,
			queue:       make(chan *Delta, cfg.QueueLen),
			dialTimeout: cfg.DialTimeout,
			ioTimeout:   cfg.IOTimeout,
			backoffMin:  cfg.BackoffMin,
			backoffMax:  cfg.BackoffMax,
		}
		p.needsFull.Store(true) // first contact always starts with a snapshot
		r.peers = append(r.peers, p)
	}
	if len(r.peers) == 0 {
		return nil, errors.New("replication: peer list is empty after trimming")
	}
	return r, nil
}

// Start launches the flush loop and one goroutine per peer link.
func (r *Replicator) Start() {
	r.wg.Add(1 + len(r.peers))
	go r.flushLoop()
	for _, p := range r.peers {
		go r.runPeer(p)
	}
}

// Stop terminates all link goroutines and waits for them.
func (r *Replicator) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// flushLoop drains the node every interval and fans the deltas out to
// every peer queue.
func (r *Replicator) flushLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			for _, d := range r.node.Flush() {
				for _, p := range r.peers {
					p.enqueue(d)
				}
			}
		}
	}
}

// enqueue adds a delta to the link's bounded queue; on overflow the
// oldest delta is dropped and the link is marked for a full resync
// (the snapshot supersedes anything dropped).
func (p *peerLink) enqueue(d *Delta) {
	for {
		select {
		case p.queue <- d:
			return
		default:
		}
		select {
		case <-p.queue:
			p.drops.Add(1)
			p.needsFull.Store(true)
		default:
		}
	}
}

// runPeer is a link's delivery loop: it wakes on queued deltas and on
// the gossip tick (so reconnects and pending full syncs proceed even
// when nothing new is flushing).
func (r *Replicator) runPeer(p *peerLink) {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			p.closeConn()
			return
		case d := <-p.queue:
			r.deliver(p, d)
		case <-t.C:
			r.deliver(p, nil)
		}
	}
}

// deliver pushes one delta (nil for a pure maintenance tick) down the
// link, dialing and full-syncing as needed. While the link is down,
// incremental deltas are dropped — by design: the full-state snapshot
// sent on reconnect supersedes every dropped ledger/standing change,
// and dropped hit increments age out of the estimator within an
// interval (same failure model as a lost backend report).
func (r *Replicator) deliver(p *peerLink, d *Delta) {
	if p.conn == nil {
		if d != nil {
			p.needsFull.Store(true)
		}
		if time.Now().Before(p.nextDial) {
			return
		}
		p.dials.Add(1)
		conn, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
		if err != nil {
			p.dialErrors.Add(1)
			p.bumpBackoff()
			r.log.Debug("replication dial failed", "peer", p.addr, "err", err, "retry_in", p.backoff)
			return
		}
		p.conn = conn
		p.rd = bufio.NewReader(conn)
		p.backoff = 0
		p.nextDial = time.Time{}
		p.connected.Store(true)
		r.log.Info("replication peer connected", "peer", p.addr)
	}
	if p.needsFull.Load() {
		for _, s := range r.node.Snapshot() {
			if err := p.send(s); err != nil {
				r.fail(p, err)
				return
			}
		}
		p.needsFull.Store(false)
		p.fullSyncs.Add(1)
		r.log.Info("replication full sync sent", "peer", p.addr)
	}
	if d == nil {
		// Maintenance tick with nothing queued: probe the link with an
		// empty heartbeat delta so a dead peer is noticed within one
		// interval even when no state is changing.
		if err := p.send(r.node.Heartbeat()); err != nil {
			r.fail(p, err)
		}
		return
	}
	if err := p.send(d); err != nil {
		r.fail(p, err)
	}
}

// fail tears the link down after an IO error; the next tick redials
// under backoff and resyncs with a snapshot.
func (r *Replicator) fail(p *peerLink, err error) {
	p.sendErrors.Add(1)
	p.needsFull.Store(true)
	p.closeConn()
	p.bumpBackoff()
	r.log.Warn("replication peer lost", "peer", p.addr, "err", err, "retry_in", p.backoff)
}

// send writes one REPL line and waits for the peer's OK under the IO
// deadline.
func (p *peerLink) send(d *Delta) error {
	enc, err := d.Encode()
	if err != nil {
		return err
	}
	if err := p.conn.SetDeadline(time.Now().Add(p.ioTimeout)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(p.conn, "REPL %s\n", enc); err != nil {
		return err
	}
	reply, err := p.rd.ReadString('\n')
	if err != nil {
		return err
	}
	if reply = strings.TrimSpace(reply); reply != "OK" {
		return fmt.Errorf("replication: peer rejected delta: %q", reply)
	}
	p.sent.Add(1)
	return nil
}

// bumpBackoff doubles the link's reconnect delay (bounded, jittered
// ±50% so a replica fleet restarting together does not dial in
// lockstep).
func (p *peerLink) bumpBackoff() {
	if p.backoff == 0 {
		p.backoff = p.backoffMin
	} else {
		p.backoff *= 2
		if p.backoff > p.backoffMax {
			p.backoff = p.backoffMax
		}
	}
	jitter := 0.5 + rand.Float64() // 0.5–1.5×
	p.nextDial = time.Now().Add(time.Duration(float64(p.backoff) * jitter))
}

// closeConn drops the link's connection state.
func (p *peerLink) closeConn() {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
		p.rd = nil
	}
	p.connected.Store(false)
}

// PeerHealth is one link's scrape-time state.
type PeerHealth struct {
	Addr       string
	Connected  bool
	Sent       uint64
	SendErrors uint64
	Dials      uint64
	DialErrors uint64
	Drops      uint64
	FullSyncs  uint64
}

// Health returns every link's state.
func (r *Replicator) Health() []PeerHealth {
	out := make([]PeerHealth, len(r.peers))
	for i, p := range r.peers {
		out[i] = PeerHealth{
			Addr:       p.addr,
			Connected:  p.connected.Load(),
			Sent:       p.sent.Load(),
			SendErrors: p.sendErrors.Load(),
			Dials:      p.dials.Load(),
			DialErrors: p.dialErrors.Load(),
			Drops:      p.drops.Load(),
			FullSyncs:  p.fullSyncs.Load(),
		}
	}
	return out
}

// ConnectedPeers returns how many links are currently up.
func (r *Replicator) ConnectedPeers() int {
	n := 0
	for _, p := range r.peers {
		if p.connected.Load() {
			n++
		}
	}
	return n
}

// Degraded reports whether the replica has lost every peer and is
// scheduling from local state only.
func (r *Replicator) Degraded() bool { return r.ConnectedPeers() == 0 }

// Peers returns the configured peer addresses.
func (r *Replicator) Peers() []string {
	out := make([]string, len(r.peers))
	for i, p := range r.peers {
		out[i] = p.addr
	}
	return out
}
