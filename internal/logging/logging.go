// Package logging centralizes log/slog construction for the dnslb
// commands and servers: one flag pair (-log-level, -log-format) shared
// by every binary, plus a true discard logger for libraries whose
// callers opted out of logging.
//
// Structured keys are part of the observability contract (DESIGN.md
// §10): packages log with stable keys (err, server, domain, addr,
// policy) so both the human-readable text format and the line-JSON
// format stay machine-filterable.
package logging

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Options carries the parsed logging flags; zero value means info-level
// text logging.
type Options struct {
	// Level is one of "debug", "info", "warn", "error".
	Level string
	// Format is "text" or "json".
	Format string
}

// AddFlags registers -log-level and -log-format on fs and returns the
// Options they populate.
func AddFlags(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&o.Format, "log-format", "text", "log format: text, json")
	return o
}

// New builds a slog.Logger writing to w per the options.
func (o *Options) New(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("logging: unknown level %q (want debug, info, warn, error)", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(o.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("logging: unknown format %q (want text, json)", o.Format)
	}
}

// Discard returns a logger that drops every record without formatting
// it. (slog.DiscardHandler needs go 1.24; this repo's floor is 1.22.)
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
