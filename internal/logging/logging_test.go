package logging

import (
	"context"
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

func TestAddFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Level != "info" || o.Format != "text" {
		t.Errorf("defaults = %+v, want info/text", o)
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	log, err := (&Options{Level: "warn", Format: "text"}).New(&b)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "server", 3)
	out := b.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info line not filtered: %q", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "server=3") {
		t.Errorf("warn line missing or unstructured: %q", out)
	}
}

func TestJSONFormat(t *testing.T) {
	var b strings.Builder
	log, err := (&Options{Level: "debug", Format: "json"}).New(&b)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", "domain", 7)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, b.String())
	}
	if rec["msg"] != "hello" || rec["domain"] != float64(7) {
		t.Errorf("record = %v", rec)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := (&Options{Level: "loud"}).New(nil); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (&Options{Format: "xml"}).New(nil); err == nil {
		t.Error("bad format accepted")
	}
}

func TestDiscard(t *testing.T) {
	log := Discard()
	// Must not panic and must report disabled at every level.
	log.Error("nothing")
	if log.Enabled(context.Background(), 0) {
		t.Error("discard logger claims to be enabled")
	}
}
