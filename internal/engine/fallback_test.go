package engine

import (
	"errors"
	"math"
	"testing"

	"dnslb/internal/core"
)

func TestDecideFallbackWeightedRR(t *testing.T) {
	clock := &ManualClock{}
	clock.Set(10)
	eng := testEngine(t, "RR", nil, clock) // capacities 120, 100, 80

	const rounds = 3000
	counts := make([]int, 3)
	for i := 0; i < rounds; i++ {
		d, err := eng.DecideFallback(5)
		if err != nil {
			t.Fatal(err)
		}
		if d.TTL != 5 {
			t.Fatalf("TTL = %v, want 5", d.TTL)
		}
		counts[d.Server]++
	}
	// Smooth WRR tracks the capacity shares exactly over a full cycle;
	// allow 1% slack for the partial final cycle.
	total := 120.0 + 100.0 + 80.0
	for i, cap := range []float64{120, 100, 80} {
		want := float64(rounds) * cap / total
		if math.Abs(float64(counts[i])-want) > float64(rounds)/100 {
			t.Errorf("server %d: %d decisions, want ~%.0f", i, counts[i], want)
		}
	}
	// Consecutive decisions interleave rather than bursting: the first
	// three picks must cover distinct servers given near-equal weights.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		d, _ := eng.DecideFallback(5)
		seen[d.Server] = true
	}
	if len(seen) != 3 {
		t.Errorf("first cycle picked %d distinct servers, want 3", len(seen))
	}
}

func TestDecideFallbackHonorsDownAndLedger(t *testing.T) {
	clock := &ManualClock{}
	clock.Set(100)
	eng := testEngine(t, "RR", nil, clock)

	if err := eng.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d, err := eng.DecideFallback(4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Server == 0 {
			t.Fatal("fallback handed out a down server")
		}
	}
	// Fallback extends the outstanding-mapping ledger like Decide does.
	d, _ := eng.DecideFallback(4)
	if got := eng.MappingExpiry(d.Server); got != 104 {
		t.Errorf("ledger expiry = %v, want 104", got)
	}

	_ = eng.SetDown(1, true)
	_ = eng.SetDown(2, true)
	if _, err := eng.DecideFallback(4); !errors.Is(err, core.ErrNoServers) {
		t.Fatalf("all-down fallback error = %v, want ErrNoServers", err)
	}
}

func TestDecideFallbackIgnoresAlarms(t *testing.T) {
	clock := &ManualClock{}
	eng := testEngine(t, "RR", nil, clock)
	for i := 0; i < 3; i++ {
		if err := eng.SetAlarm(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.DecideFallback(5); err != nil {
		t.Fatalf("alarmed-but-alive cluster must still be schedulable: %v", err)
	}
}
