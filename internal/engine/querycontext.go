package engine

import (
	"errors"
	"fmt"
	"net/netip"

	"dnslb/internal/core"
)

// QueryContext promotes the per-query decision input from a bare
// domain index to what a real front end knows: the querying resolver's
// transport address, the optional RFC 7871 EDNS-Client-Subnet the
// resolver forwarded, and which transport the query arrived through.
// The engine classifies the originating domain from the client subnet
// when one is in effect and falls back to the resolver address
// otherwise — the geo-proximity fix for resolvers whose location
// disagrees with their clients' (the misalignment ECS exists to
// repair).
//
// DecideQuery is deliberately a thin, deterministic shell around
// Decide: with no client subnet in effect it is exactly
// Decide(Mapper(Resolver)), so every existing caller, golden and
// conformance guarantee is preserved bit-for-bit, and the conformance
// suite extends to the full QueryContext by feeding both paths the
// same recorded contexts.

// Transport identifies the front end a query arrived through. The
// engine itself never branches on it; it rides the QueryContext so
// transports share one decision path while the server keeps
// per-transport accounting.
type Transport uint8

const (
	// TransportNone marks a context with no transport attribution
	// (direct engine callers, the simulator).
	TransportNone Transport = iota
	// TransportUDP is the datagram front end (plain DNS over UDP).
	TransportUDP
	// TransportTCP is the stream front end (RFC 7766, pipelined).
	TransportTCP
	// TransportDoH is the HTTP front end (RFC 8484 wire + JSON).
	TransportDoH
)

// numTransports bounds Transport values for per-transport counters.
const numTransports = 4

// String returns the transport's metric-label form.
func (t Transport) String() string {
	switch t {
	case TransportUDP:
		return "udp"
	case TransportTCP:
		return "tcp"
	case TransportDoH:
		return "doh"
	default:
		return "none"
	}
}

// ECSMode selects how the engine combines a query's client subnet with
// the resolver address (RFC 7871 deployment modes).
type ECSMode uint8

const (
	// ECSPassthrough (default) honours a forwarded client subnet as the
	// classification key and uses the resolver address when none was
	// sent.
	ECSPassthrough ECSMode = iota
	// ECSAdd behaves like passthrough but synthesizes a subnet from the
	// resolver address when the query carries none — useful when a
	// fleet of non-ECS resolvers should still be classified at subnet
	// rather than host granularity.
	ECSAdd
	// ECSOverride ignores any forwarded subnet and always classifies by
	// a subnet synthesized from the resolver address; answers are never
	// tailored to the client subnet (scope 0 is echoed).
	ECSOverride
)

// String returns the mode's flag/config spelling.
func (m ECSMode) String() string {
	switch m {
	case ECSAdd:
		return "add"
	case ECSOverride:
		return "override"
	default:
		return "passthrough"
	}
}

// ParseECSMode parses the -ecs-mode flag values. The empty string is
// passthrough.
func ParseECSMode(s string) (ECSMode, error) {
	switch s {
	case "", "passthrough":
		return ECSPassthrough, nil
	case "add":
		return ECSAdd, nil
	case "override":
		return ECSOverride, nil
	default:
		return ECSPassthrough, fmt.Errorf("engine: unknown ECS mode %q (want passthrough, add or override)", s)
	}
}

// Default source-prefix lengths for synthesized and clamped subnets —
// RFC 7871 §11's recommended privacy-preserving granularity.
const (
	DefaultECSv4Prefix = 24
	DefaultECSv6Prefix = 56
)

// ECSConfig parameterizes the engine's client-subnet handling. The
// zero value is passthrough with the RFC-recommended /24 (IPv4) and
// /56 (IPv6) source prefixes.
type ECSConfig struct {
	// Mode is the RFC 7871 deployment mode.
	Mode ECSMode
	// V4Prefix and V6Prefix bound the source-prefix granularity per
	// family: forwarded subnets more specific than this are clamped
	// (and the clamp echoed as the answer scope), and subnets
	// synthesized in add/override mode use exactly this length. Zero
	// means the RFC-recommended default.
	V4Prefix int
	V6Prefix int
}

func (c ECSConfig) v4() int {
	if c.V4Prefix == 0 {
		return DefaultECSv4Prefix
	}
	return c.V4Prefix
}

func (c ECSConfig) v6() int {
	if c.V6Prefix == 0 {
		return DefaultECSv6Prefix
	}
	return c.V6Prefix
}

func (c ECSConfig) validate() error {
	if c.Mode > ECSOverride {
		return fmt.Errorf("engine: unknown ECS mode %d", c.Mode)
	}
	if c.V4Prefix < 0 || c.V4Prefix > 32 {
		return fmt.Errorf("engine: ECS v4 prefix %d out of [0,32]", c.V4Prefix)
	}
	if c.V6Prefix < 0 || c.V6Prefix > 128 {
		return fmt.Errorf("engine: ECS v6 prefix %d out of [0,128]", c.V6Prefix)
	}
	return nil
}

// maxBits returns the family-appropriate source-prefix clamp.
func (c ECSConfig) maxBits(addr netip.Addr) int {
	if addr.Is6() && !addr.Is4In6() {
		return c.v6()
	}
	return c.v4()
}

// QueryContext is the decision input a front end assembles per query.
type QueryContext struct {
	// Resolver is the querying name server's transport address — the
	// only locality signal available without ECS.
	Resolver netip.Addr
	// ClientSubnet is the RFC 7871 client subnet forwarded with the
	// query; the invalid zero Prefix means the query carried none.
	ClientSubnet netip.Prefix
	// Transport tags which front end the query arrived through.
	Transport Transport
}

// QueryDecision is DecideQuery's answer: the scheduling decision plus
// how the query was classified and what ECS scope the response should
// echo.
type QueryDecision struct {
	core.Decision
	// Domain is the connected-domain index the query was classified
	// into (valid even when the decision itself failed).
	Domain int
	// ClientScoped reports that the forwarded client subnet (not the
	// resolver address) drove the classification — the condition under
	// which a cached answer must never be served across subnets.
	ClientScoped bool
	// Scope is the RFC 7871 scope prefix length to echo with the
	// answer: the honoured source-prefix length (after clamping) when
	// ClientScoped, 0 otherwise ("answer not tailored to your subnet").
	Scope uint8
}

// ErrNoMapper reports a DecideQuery call on an engine assembled
// without a Mapper.
var ErrNoMapper = errors.New("engine: DecideQuery requires Config.Mapper")

// DecideQuery answers one address request described by a QueryContext:
// it derives the classification subnet per the configured ECS mode,
// maps it (or the bare resolver address) to a connected domain, and
// runs the exact Decide lifecycle on that domain. With no client
// subnet in effect the call is precisely Decide(Mapper(Resolver)) —
// same decision, same ledger write, same estimator feed — so enabling
// the QueryContext path changes nothing for ECS-less traffic.
//
// DecideQuery is safe for concurrent callers.
func (e *Engine) DecideQuery(qc QueryContext) (QueryDecision, error) {
	if e.mapper == nil {
		return QueryDecision{Domain: -1}, ErrNoMapper
	}
	subnet, scoped := e.classifySubnet(qc)
	var domain int
	if subnet.IsValid() {
		domain = e.mapper(subnet.Addr())
	} else {
		domain = e.mapper(qc.Resolver)
	}
	qd := QueryDecision{Domain: domain, ClientScoped: scoped}
	if scoped {
		qd.Scope = uint8(subnet.Bits())
	}
	d, err := e.Decide(domain)
	qd.Decision = d
	return qd, err
}

// classifySubnet applies the ECS mode: the subnet that should drive
// domain classification (invalid = use the resolver address), and
// whether that subnet is the client's own (scoped) rather than
// synthesized from the resolver.
func (e *Engine) classifySubnet(qc QueryContext) (netip.Prefix, bool) {
	if e.ecs.Mode != ECSOverride && qc.ClientSubnet.IsValid() {
		return clampPrefix(qc.ClientSubnet, e.ecs.maxBits(qc.ClientSubnet.Addr())), true
	}
	if e.ecs.Mode == ECSAdd || e.ecs.Mode == ECSOverride {
		return e.synthSubnet(qc.Resolver), false
	}
	return netip.Prefix{}, false
}

// clampPrefix bounds a forwarded subnet to the configured source
// granularity: /32 host prefixes become /24 under the default clamp,
// which is both the privacy posture RFC 7871 recommends and what keeps
// the scoped answer-cache key space bounded.
func clampPrefix(p netip.Prefix, maxBits int) netip.Prefix {
	if p.Bits() <= maxBits {
		return p.Masked()
	}
	cp, err := p.Addr().Prefix(maxBits)
	if err != nil {
		return p.Masked()
	}
	return cp
}

// synthSubnet derives a classification subnet from the resolver
// address for the add/override modes; invalid when the resolver
// address itself is invalid (classification then falls back to the
// mapper's invalid-address behavior).
func (e *Engine) synthSubnet(resolver netip.Addr) netip.Prefix {
	if !resolver.IsValid() {
		return netip.Prefix{}
	}
	p, err := resolver.Prefix(e.ecs.maxBits(resolver))
	if err != nil {
		return netip.Prefix{}
	}
	return p
}
