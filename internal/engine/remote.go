package engine

import (
	"fmt"
	"math"
)

// Multi-replica soft-state merging: when N engines schedule the same
// population behind an NS set, each replica's soft state — the
// hidden-load ledger, the per-server standing flags, and the hidden-load
// hit counts feeding the estimator — must converge without coordination.
// MergeRemote is the engine-side entry point: it applies a peer
// replica's already-adjudicated delta with commutative, idempotent
// operations only (CAS-max on ledger windows, flag assignment on
// standing, addition on hit counts), so replicas merging each other's
// deltas in any order and any number of times reach the same state.
//
// The protocol brains — per-origin sequence fencing, epoch fencing of
// restarted replicas, last-writer-wins adjudication of standing, and
// wall-clock translation — live one layer up (internal/replication);
// MergeRemote trusts its input to have won those arguments already.

// RemoteMapping is one peer-observed outstanding-mapping window:
// server slot → latest expiry in this engine's clock seconds.
type RemoteMapping struct {
	Server int
	Expiry float64
}

// RemoteStanding is one peer-adjudicated server standing: the
// alarm/down/draining flags the replica set should converge on.
type RemoteStanding struct {
	Server   int
	Alarmed  bool
	Down     bool
	Draining bool
}

// RemoteHits is one peer-observed per-domain hit count for the
// hidden-load estimator.
type RemoteHits struct {
	Domain int
	Hits   float64
}

// RemoteDelta is a peer replica's soft-state delta, translated to this
// engine's clock base and already fenced/adjudicated by the caller.
type RemoteDelta struct {
	Mappings []RemoteMapping
	Standing []RemoteStanding
	Hits     []RemoteHits
}

// MergeRemote folds a peer replica's soft state into this engine:
//
//   - mapping windows merge CAS-max into the ledger (never shrink);
//   - standing flags are assigned, with two safety rails: entries for
//     slots this engine does not consider members are skipped (each
//     replica's operator config is authoritative for its membership),
//     and a remote down=true that would take out the last live server
//     is refused — a partitioned peer's poisoned view must never make
//     this replica refuse queries (graceful-degradation invariant);
//   - hit counts accumulate into the estimator (a no-op without one).
//
// Out-of-range and non-finite entries are skipped, not errors: a peer
// may legitimately know slots this replica has not admitted yet, and a
// soft-state merge must never wedge on a partially applicable delta.
// The returned error is the first hard application failure, with the
// rest of the delta still applied (merging is per-entry idempotent, so
// the next anti-entropy round retries what failed).
func (e *Engine) MergeRemote(d RemoteDelta) error {
	for _, m := range d.Mappings {
		if m.Server < 0 || math.IsNaN(m.Expiry) || math.IsInf(m.Expiry, 0) {
			continue
		}
		e.ledger.Extend(m.Server, m.Expiry)
	}
	var firstErr error
	st := e.policy.State()
	for _, rs := range d.Standing {
		sn := st.Snapshot()
		if rs.Server < 0 || rs.Server >= sn.Cluster().N() || !sn.Member(rs.Server) {
			continue
		}
		if rs.Down && !sn.Down(rs.Server) && sn.LiveServers() <= 1 {
			// Refusing the write keeps this replica scheduling; the
			// peer's view re-gossips next round and applies once another
			// server is live again.
			continue
		}
		if err := st.SetAlarm(rs.Server, rs.Alarmed); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: merge alarm for server %d: %w", rs.Server, err)
		}
		if err := st.SetDown(rs.Server, rs.Down); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("engine: merge liveness for server %d: %w", rs.Server, err)
		}
		switch {
		case rs.Draining && !sn.Draining(rs.Server):
			if err := st.DrainServer(rs.Server); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("engine: merge drain for server %d: %w", rs.Server, err)
			}
		case !rs.Draining && sn.Draining(rs.Server):
			// A peer observed the drain cancelled (re-JOIN). Reinstate at
			// the locally known capacity, then re-assert the entry's
			// alarm/down flags (ReinstateServer clears both).
			if err := st.ReinstateServer(rs.Server, sn.Cluster().Capacity(rs.Server)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("engine: merge reinstate for server %d: %w", rs.Server, err)
				}
				continue
			}
			_ = st.SetAlarm(rs.Server, rs.Alarmed)
			_ = st.SetDown(rs.Server, rs.Down)
		}
	}
	for _, h := range d.Hits {
		if h.Hits < 0 || math.IsNaN(h.Hits) || math.IsInf(h.Hits, 0) {
			continue
		}
		e.RecordHits(h.Domain, h.Hits)
	}
	return firstErr
}

// SnapshotDelta captures the engine's full mergeable soft state — every
// non-zero ledger window and every member slot's standing — as a
// RemoteDelta in this engine's clock seconds. It is the anti-entropy
// unit: merging a snapshot into a peer that missed arbitrarily many
// deltas converges its ledger and standing in one round. Hit counts are
// interval-scoped, not state, so a snapshot never carries them.
func (e *Engine) SnapshotDelta() RemoteDelta {
	sn := e.policy.State().Snapshot()
	n := sn.Cluster().N()
	var d RemoteDelta
	for i := 0; i < n; i++ {
		if exp := e.ledger.Expiry(i); exp > 0 {
			d.Mappings = append(d.Mappings, RemoteMapping{Server: i, Expiry: exp})
		}
		if sn.Member(i) {
			d.Standing = append(d.Standing, RemoteStanding{
				Server:   i,
				Alarmed:  sn.Alarmed(i),
				Down:     sn.Down(i),
				Draining: sn.Draining(i),
			})
		}
	}
	return d
}
