// Package engine owns the DNS scheduler's per-query decision
// lifecycle, shared verbatim by the discrete-event simulator and the
// live authoritative DNS server: membership/liveness/drain filtering
// and server selection (via core.Policy over immutable state
// snapshots), TTL assignment, the outstanding-mapping (hidden-load)
// ledger, and the estimator feedback loop that turns server hit
// reports into domain weights.
//
// The engine is parameterized by exactly two environment seams:
//
//   - a Clock — virtual time in the simulator, wall time live — and
//   - the policy's random stream (core.LockRand over any core.Rand),
//     injected when the policy is built.
//
// Everything else is identical on both paths, which is what the
// conformance suite asserts: the same recorded request stream fed to a
// sim-clocked engine and a wall-style (manually clocked) engine yields
// bit-identical (server, TTL) decision sequences for every policy.
//
// Decide is safe for concurrent callers and takes no engine-level
// lock: the policy schedules against atomically published snapshots
// and the ledger is CAS-max per slot. The estimator keeps mutable
// running sums and is serialized by its own mutex — off the query
// path entirely (feedback arrives on report/collection intervals).
package engine

import (
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"

	"dnslb/internal/core"
)

// lockedEstimator serializes estimator mutations. Feedback arrives on
// report/collection intervals, never per query, so one mutex suffices.
// fc is the estimator's Forecaster capability, type-asserted once at
// assembly: nil for the reactive kind, which therefore pays nothing on
// the query path.
type lockedEstimator struct {
	mu  sync.Mutex
	est core.LoadEstimator
	fc  core.Forecaster
}

// Config assembles an Engine.
type Config struct {
	// Policy is the scheduling policy (selection + TTL assignment).
	// Required. Its Rand stream is the engine's second seam: inject a
	// deterministic stream for reproducibility, an entropy-seeded one
	// for production.
	Policy *core.Policy
	// Clock supplies current time in engine seconds. Required.
	Clock Clock
	// Estimator optionally closes the hidden-load feedback loop:
	// RecordHits accumulates per-domain hit reports and RollEstimates
	// installs the re-estimated weights into the scheduler state. Any
	// core.LoadEstimator kind plugs in here; when it also implements
	// core.Forecaster (the predictive kind), Decide feeds it every TTL
	// handout. Nil disables feedback (the simulator's oracle-weights
	// setting) — note a typed-nil pointer in an interface is NOT nil,
	// so callers must leave the field unset rather than assign a nil
	// concrete estimator.
	Estimator core.LoadEstimator
	// OnDecision, when non-nil, observes every successful decision in
	// scheduling order — the tap the conformance and replay tests
	// record from. It is called synchronously on the query path and
	// must be cheap and concurrency-safe on the live path.
	OnDecision func(domain int, d core.Decision)
	// Mapper classifies an address (a resolver's, or the address of an
	// ECS client subnet) into a connected-domain index; required for
	// DecideQuery, unused by Decide. It is called concurrently from the
	// query path and must be pure and lock-free.
	Mapper func(addr netip.Addr) int
	// ECS selects the RFC 7871 client-subnet handling DecideQuery
	// applies (see ECSConfig); the zero value is passthrough with the
	// RFC-recommended source-prefix granularity.
	ECS ECSConfig
}

// Engine is the unified decision lifecycle.
type Engine struct {
	policy      *core.Policy
	clock       Clock
	ledger      *Ledger
	est         *lockedEstimator // nil when feedback is disabled
	onDecision  func(domain int, d core.Decision)
	mapper      func(addr netip.Addr) int // nil: DecideQuery unavailable
	ecs         ECSConfig
	estRejected atomic.Uint64 // hit reports the estimator refused

	// fallback is the degraded-ladder smooth-WRR accumulator; see
	// fallback.go. Zero value ready.
	fallback fallbackState
}

// New creates an engine with a ledger sized to the policy's cluster.
func New(cfg Config) (*Engine, error) {
	if cfg.Policy == nil {
		return nil, errors.New("engine: Policy is required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("engine: Clock is required")
	}
	if err := cfg.ECS.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		policy:     cfg.Policy,
		clock:      cfg.Clock,
		ledger:     NewLedger(cfg.Policy.State().Cluster().N()),
		onDecision: cfg.OnDecision,
		mapper:     cfg.Mapper,
		ecs:        cfg.ECS,
	}
	if cfg.Estimator != nil {
		le := &lockedEstimator{est: cfg.Estimator}
		le.fc, _ = cfg.Estimator.(core.Forecaster)
		e.est = le
	}
	return e, nil
}

// Policy returns the engine's scheduling policy.
func (e *Engine) Policy() *core.Policy { return e.policy }

// State returns the scheduler state the engine reads and mutates.
func (e *Engine) State() *core.State { return e.policy.State() }

// Clock returns the engine's time source.
func (e *Engine) Clock() Clock { return e.clock }

// Now returns the current engine time in seconds.
func (e *Engine) Now() float64 { return e.clock.Now() }

// Decide answers one address request from the given domain: it runs
// the policy (membership, liveness and drain filtering happen inside
// the selection, against one immutable state snapshot), assigns the
// adaptive TTL, and extends the chosen server's outstanding-mapping
// window to now+TTL. When every server is unavailable it returns
// core.ErrNoServers and touches nothing.
//
// Decide is safe for concurrent callers and may race freely with the
// state mutators and with membership changes.
func (e *Engine) Decide(domain int) (core.Decision, error) {
	now := e.clock.Now()
	d, err := e.policy.Schedule(domain)
	if err != nil {
		return d, err
	}
	e.ledger.Extend(d.Server, now+d.TTL)
	if e.est != nil && e.est.fc != nil {
		// Feed the TTL handout to the forecasting estimator: this is
		// the NS-cache model's input. Only the predictive kind takes
		// this lock on the query path; the reactive kind's fc is nil.
		e.est.mu.Lock()
		e.est.fc.ObserveDecision(domain, now, d.TTL)
		e.est.mu.Unlock()
	}
	if e.onDecision != nil {
		e.onDecision(domain, d)
	}
	return d, nil
}

// Ledger returns the outstanding-mapping ledger.
func (e *Engine) Ledger() *Ledger { return e.ledger }

// StateVersion returns the scheduler state's current snapshot version
// — the monotone counter bumped by every weight, β, membership,
// liveness, or capacity change (one atomic load). Because the TTL
// calibration is itself keyed on this version (core.TTLPolicy
// recalibrates per version), a decision's TTL is a pure function of
// (version, domain, server): any cache of decision-derived artifacts
// — the live server's pre-packed hot-answer cache — keys on it, and a
// version bump is exactly the event that invalidates such entries.
func (e *Engine) StateVersion() uint64 { return e.policy.State().Version() }

// NoteMapping extends server i's outstanding-mapping window to expire
// no earlier than expiry (engine seconds). Decide already notes
// now+TTL; callers use this for externally lengthened windows — a
// non-cooperative name server clamping the TTL up, or a checkpoint
// restore carrying a pre-restart window.
func (e *Engine) NoteMapping(server int, expiry float64) { e.ledger.Extend(server, expiry) }

// MappingExpiry returns the latest engine-clock instant at which a
// mapping handed to server i can still be cached downstream, or 0 when
// none was ever handed out — the earliest moment a drain of i may
// complete.
func (e *Engine) MappingExpiry(server int) float64 { return e.ledger.Expiry(server) }

// DrainDeadline returns when server i's hidden-load window closes:
// its largest outstanding mapping expiry, but never before now.
func (e *Engine) DrainDeadline(server int) float64 {
	now := e.clock.Now()
	if exp := e.ledger.Expiry(server); exp > now {
		return exp
	}
	return now
}

// SetAlarm relays a server's alarm/normal signal into the scheduler
// state; alarmed servers are deprioritized by the selectors.
func (e *Engine) SetAlarm(server int, alarmed bool) error {
	return e.policy.State().SetAlarm(server, alarmed)
}

// SetDown marks a server crashed (true) or recovered (false); down
// servers receive no new mappings.
func (e *Engine) SetDown(server int, down bool) error {
	return e.policy.State().SetDown(server, down)
}

// HasEstimator reports whether the hidden-load feedback loop is
// enabled.
func (e *Engine) HasEstimator() bool { return e.est != nil }

// EstimatorKind returns the enabled estimator's kind tag
// (core.EstimatorReactive, core.EstimatorPredictive), or "" when
// feedback is disabled.
func (e *Engine) EstimatorKind() string {
	if e.est == nil {
		return ""
	}
	return e.est.est.Kind()
}

// RecordHits accumulates per-domain hits reported by a server since
// the last RollEstimates. A no-op when feedback is disabled. Rejected
// observations (out-of-range domain, negative hits) are counted and
// readable via EstimatorRejected.
func (e *Engine) RecordHits(domain int, hits float64) {
	if e.est == nil {
		return
	}
	e.est.mu.Lock()
	ok := e.est.est.Record(domain, hits)
	e.est.mu.Unlock()
	if !ok {
		e.estRejected.Add(1)
	}
}

// EstimatorRejected returns how many hit observations the estimator
// refused (out-of-range domains or negative counts) — malformed or
// stale reports that would otherwise vanish silently.
func (e *Engine) EstimatorRejected() uint64 { return e.estRejected.Load() }

// RollEstimates closes an estimation interval of the given length in
// seconds and installs the re-estimated hidden-load weights into the
// scheduler state. A no-op when feedback is disabled.
func (e *Engine) RollEstimates(intervalSeconds float64) error {
	if e.est == nil {
		return nil
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	e.est.est.Roll(intervalSeconds)
	return e.policy.State().SetWeights(e.est.est.Weights())
}

// EstimatorState captures the estimator's serializable soft state for
// a checkpoint; ok is false when feedback is disabled.
func (e *Engine) EstimatorState() (st core.EstimatorState, ok bool) {
	if e.est == nil {
		return core.EstimatorState{}, false
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	return e.est.est.State(), true
}

// RestoreEstimator replaces the estimator's soft state with a
// checkpointed one; an error (including disabled feedback or a state
// written by a different estimator kind) leaves the estimator
// unchanged.
func (e *Engine) RestoreEstimator(st core.EstimatorState) error {
	if e.est == nil {
		return errors.New("engine: no estimator to restore")
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	return e.est.est.Restore(st)
}

// EstimatorRates returns the estimator's current absolute per-domain
// demand view in hits/s (the forecast for the predictive kind); ok is
// false when feedback is disabled.
func (e *Engine) EstimatorRates() (rates []float64, ok bool) {
	if e.est == nil {
		return nil, false
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	return e.est.est.Rates(), true
}

// ForecastRates returns the predicted per-domain demand in hits/s at
// engine time now; ok is false unless the enabled estimator is a
// forecaster (the predictive kind).
func (e *Engine) ForecastRates(now float64) (rates []float64, ok bool) {
	if e.est == nil || e.est.fc == nil {
		return nil, false
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	return e.est.fc.ForecastRates(now), true
}

// ForecastError returns the estimator's smoothed mean absolute
// forecast error in hits/s; ok is false unless the enabled estimator
// is a forecaster.
func (e *Engine) ForecastError() (abs float64, ok bool) {
	if e.est == nil || e.est.fc == nil {
		return 0, false
	}
	e.est.mu.Lock()
	defer e.est.mu.Unlock()
	return e.est.fc.ForecastError(), true
}
