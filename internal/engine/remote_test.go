package engine

import (
	"math"
	"testing"

	"dnslb/internal/core"
)

func remoteTestEngine(t *testing.T, servers int) *Engine {
	t.Helper()
	caps := make([]float64, servers)
	for i := range caps {
		caps[i] = float64(100 - 10*i)
	}
	cluster, err := core.NewCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        "RR",
		State:       state,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := &ManualClock{}
	est, err := core.NewEstimator(4, core.DefaultEstimatorAlpha)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestMergeRemoteLedgerCASMax(t *testing.T) {
	e := remoteTestEngine(t, 3)
	e.NoteMapping(0, 50)
	if err := e.MergeRemote(RemoteDelta{Mappings: []RemoteMapping{
		{Server: 0, Expiry: 40}, // behind local: must not shrink
		{Server: 1, Expiry: 70},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := e.MappingExpiry(0); got != 50 {
		t.Errorf("slot 0 expiry = %v, want 50 (CAS-max must not shrink)", got)
	}
	if got := e.MappingExpiry(1); got != 70 {
		t.Errorf("slot 1 expiry = %v, want 70", got)
	}
	// Re-merging the same delta is a no-op.
	if err := e.MergeRemote(RemoteDelta{Mappings: []RemoteMapping{{Server: 1, Expiry: 70}}}); err != nil {
		t.Fatal(err)
	}
	if got := e.MappingExpiry(1); got != 70 {
		t.Errorf("idempotent re-merge moved slot 1 to %v", got)
	}
}

func TestMergeRemoteSkipsGarbage(t *testing.T) {
	e := remoteTestEngine(t, 2)
	err := e.MergeRemote(RemoteDelta{
		Mappings: []RemoteMapping{
			{Server: -1, Expiry: 10},
			{Server: 0, Expiry: math.NaN()},
			{Server: 0, Expiry: math.Inf(1)},
			{Server: 99, Expiry: 10}, // unknown slot: peer is ahead on membership
		},
		Standing: []RemoteStanding{
			{Server: -1, Alarmed: true},
			{Server: 99, Down: true},
		},
		Hits: []RemoteHits{
			{Domain: 0, Hits: -3},
			{Domain: 1, Hits: math.NaN()},
		},
	})
	if err != nil {
		t.Fatalf("garbage entries must be skipped, not errors: %v", err)
	}
	if got := e.MappingExpiry(0); got != 0 {
		t.Errorf("slot 0 expiry = %v, want 0", got)
	}
	if e.State().Alarmed(0) || e.State().Down(0) || e.State().Down(1) {
		t.Error("garbage standing entries mutated state")
	}
}

func TestMergeRemoteStanding(t *testing.T) {
	e := remoteTestEngine(t, 3)
	if err := e.MergeRemote(RemoteDelta{Standing: []RemoteStanding{
		{Server: 0, Alarmed: true},
		{Server: 1, Down: true},
		{Server: 2, Draining: true},
	}}); err != nil {
		t.Fatal(err)
	}
	st := e.State()
	if !st.Alarmed(0) || !st.Down(1) || !st.Draining(2) {
		t.Fatalf("standing not applied: alarm0=%v down1=%v drain2=%v",
			st.Alarmed(0), st.Down(1), st.Draining(2))
	}
	// Clearing propagates too.
	if err := e.MergeRemote(RemoteDelta{Standing: []RemoteStanding{
		{Server: 0, Alarmed: false},
		{Server: 1, Down: false},
	}}); err != nil {
		t.Fatal(err)
	}
	if st.Alarmed(0) || st.Down(1) {
		t.Errorf("standing not cleared: alarm0=%v down1=%v", st.Alarmed(0), st.Down(1))
	}
}

// TestMergeRemoteLastLiveGuard is the graceful-degradation invariant: a
// partitioned peer's poisoned liveness view must never make this
// replica mark its last live server down and start refusing queries.
func TestMergeRemoteLastLiveGuard(t *testing.T) {
	e := remoteTestEngine(t, 3)
	for i := 0; i < 2; i++ {
		if err := e.SetDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.MergeRemote(RemoteDelta{Standing: []RemoteStanding{
		{Server: 2, Down: true},
	}}); err != nil {
		t.Fatal(err)
	}
	if e.State().Down(2) {
		t.Fatal("remote delta took down the last live server")
	}
	if _, err := e.Decide(0); err != nil {
		t.Fatalf("replica must keep answering after poisoned merge: %v", err)
	}
	// Once another server recovers, the same re-gossiped entry applies.
	if err := e.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if err := e.MergeRemote(RemoteDelta{Standing: []RemoteStanding{
		{Server: 2, Down: true},
	}}); err != nil {
		t.Fatal(err)
	}
	if !e.State().Down(2) {
		t.Error("re-gossiped down entry did not apply after recovery")
	}
}

// TestMergeRemoteUndrainReinstates covers the drain-cancelled path: a
// peer observing a re-JOIN gossips draining=false, which must reinstate
// the slot at the locally known capacity.
func TestMergeRemoteUndrainReinstates(t *testing.T) {
	e := remoteTestEngine(t, 3)
	if err := e.State().DrainServer(1); err != nil {
		t.Fatal(err)
	}
	if err := e.MergeRemote(RemoteDelta{Standing: []RemoteStanding{
		{Server: 1, Draining: false, Alarmed: true},
	}}); err != nil {
		t.Fatal(err)
	}
	st := e.State()
	if st.Draining(1) {
		t.Error("remote un-drain did not cancel the drain")
	}
	if !st.Member(1) {
		t.Error("reinstated server lost membership")
	}
	if !st.Alarmed(1) {
		t.Error("reinstate dropped the entry's alarm flag")
	}
}

func TestMergeRemoteHitsFeedEstimator(t *testing.T) {
	e := remoteTestEngine(t, 2)
	if err := e.MergeRemote(RemoteDelta{Hits: []RemoteHits{
		{Domain: 0, Hits: 90},
		{Domain: 1, Hits: 10},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RollEstimates(30); err != nil {
		t.Fatal(err)
	}
	w := e.State().Weights()
	if w[0] <= w[1] {
		t.Errorf("merged hits did not skew weights: %v", w)
	}
}

// TestSnapshotDeltaExcludesEstimatorState pins the replication
// contract: deltas carry interval-scoped hit counts only, never the
// estimator's rolled soft state (rates, rolls, learned per-mapping
// models). A peer that merges another replica's full snapshot must see
// its own estimator completely untouched — each replica smooths the
// hidden load it observes, and anti-entropy must not overwrite local
// learning with a remote replica's view.
func TestSnapshotDeltaExcludesEstimatorState(t *testing.T) {
	a := remoteTestEngine(t, 3)
	b := remoteTestEngine(t, 3)

	// Both replicas learn different hidden-load profiles.
	a.RecordHits(0, 900)
	if err := a.RollEstimates(30); err != nil {
		t.Fatal(err)
	}
	b.RecordHits(1, 60)
	if err := b.RollEstimates(30); err != nil {
		t.Fatal(err)
	}
	before, ok := b.EstimatorState()
	if !ok {
		t.Fatal("test engine should have an estimator")
	}

	d := a.SnapshotDelta()
	if len(d.Hits) != 0 {
		t.Fatalf("snapshot delta carries %d hit entries; snapshots must never carry estimator input", len(d.Hits))
	}
	if err := b.MergeRemote(d); err != nil {
		t.Fatal(err)
	}

	after, _ := b.EstimatorState()
	if after.Rolls != before.Rolls {
		t.Errorf("merge changed estimator rolls: %d → %d", before.Rolls, after.Rolls)
	}
	for j := range before.Rates {
		if math.Float64bits(after.Rates[j]) != math.Float64bits(before.Rates[j]) {
			t.Errorf("merge changed rolled rate[%d]: %v → %v", j, before.Rates[j], after.Rates[j])
		}
	}
	for j := range before.Counts {
		if after.Counts[j] != before.Counts[j] {
			t.Errorf("merge changed pending count[%d]: %v → %v", j, before.Counts[j], after.Counts[j])
		}
	}
}

func TestSnapshotDeltaRoundTrip(t *testing.T) {
	a := remoteTestEngine(t, 4)
	b := remoteTestEngine(t, 4)
	a.NoteMapping(0, 33)
	a.NoteMapping(2, 77)
	if err := a.SetAlarm(1, true); err != nil {
		t.Fatal(err)
	}
	if err := a.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	if err := a.State().DrainServer(2); err != nil {
		t.Fatal(err)
	}
	if err := b.MergeRemote(a.SnapshotDelta()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if ae, be := a.MappingExpiry(i), b.MappingExpiry(i); math.Float64bits(ae) != math.Float64bits(be) {
			t.Errorf("slot %d expiry: a=%v b=%v", i, ae, be)
		}
	}
	asn, bsn := a.State().Snapshot(), b.State().Snapshot()
	for i := 0; i < 4; i++ {
		if asn.Alarmed(i) != bsn.Alarmed(i) || asn.Down(i) != bsn.Down(i) || asn.Draining(i) != bsn.Draining(i) {
			t.Errorf("slot %d standing: a=(%v,%v,%v) b=(%v,%v,%v)", i,
				asn.Alarmed(i), asn.Down(i), asn.Draining(i),
				bsn.Alarmed(i), bsn.Down(i), bsn.Draining(i))
		}
	}
}
