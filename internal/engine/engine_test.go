package engine

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

func testEngine(t *testing.T, policy string, est core.LoadEstimator, clock Clock) *Engine {
	t.Helper()
	cluster, err := core.NewCluster([]float64{120, 100, 80})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:  policy,
		State: state,
		Rand:  simcore.NewStream(1, "policy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil policy must be rejected")
	}
	cluster, _ := core.NewCluster([]float64{100})
	state, _ := core.NewState(cluster, 1)
	pol, err := core.NewPolicy(core.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Policy: pol}); err == nil {
		t.Error("nil clock must be rejected")
	}
}

func TestDecideExtendsLedger(t *testing.T) {
	clock := &ManualClock{}
	clock.Set(100)
	eng := testEngine(t, "DRR-TTL/S_K", nil, clock)
	d, err := eng.Decide(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + d.TTL
	if got := eng.MappingExpiry(d.Server); got != want {
		t.Errorf("ledger expiry = %v, want %v", got, want)
	}
	// An earlier expiry never shrinks the window.
	eng.NoteMapping(d.Server, 50)
	if got := eng.MappingExpiry(d.Server); got != want {
		t.Errorf("ledger shrank to %v after stale note, want %v", got, want)
	}
	// A clamped-up TTL extends it.
	eng.NoteMapping(d.Server, want+60)
	if got := eng.MappingExpiry(d.Server); got != want+60 {
		t.Errorf("ledger expiry = %v after extension, want %v", got, want+60)
	}
}

func TestDecideNoServers(t *testing.T) {
	clock := &ManualClock{}
	eng := testEngine(t, "RR", nil, clock)
	for i := 0; i < 3; i++ {
		if err := eng.SetDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Decide(0); !errors.Is(err, core.ErrNoServers) {
		t.Errorf("err = %v, want ErrNoServers", err)
	}
	for i := 0; i < 3; i++ {
		if got := eng.MappingExpiry(i); got != 0 {
			t.Errorf("server %d ledger touched (%v) by a failed decision", i, got)
		}
	}
}

func TestDrainDeadline(t *testing.T) {
	clock := &ManualClock{}
	clock.Set(10)
	eng := testEngine(t, "RR", nil, clock)
	// No mapping ever handed out: deadline is now.
	if got := eng.DrainDeadline(2); got != 10 {
		t.Errorf("deadline = %v, want now (10)", got)
	}
	eng.NoteMapping(2, 250)
	if got := eng.DrainDeadline(2); got != 250 {
		t.Errorf("deadline = %v, want 250", got)
	}
	clock.Set(300) // window already closed
	if got := eng.DrainDeadline(2); got != 300 {
		t.Errorf("deadline = %v, want now (300)", got)
	}
}

func TestEstimatorFeedback(t *testing.T) {
	est, err := core.NewEstimator(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, "DRR-TTL/S_K", est, &ManualClock{})
	if !eng.HasEstimator() {
		t.Fatal("estimator not attached")
	}
	eng.RecordHits(0, 300)
	eng.RecordHits(1, 100)
	if err := eng.RollEstimates(10); err != nil {
		t.Fatal(err)
	}
	st := eng.State()
	if w0, w1 := st.Weight(0), st.Weight(1); math.Abs(w0-0.75) > 1e-12 || math.Abs(w1-0.25) > 1e-12 {
		t.Errorf("weights after roll = %v, %v, want 0.75, 0.25", w0, w1)
	}
	snap, ok := eng.EstimatorState()
	if !ok {
		t.Fatal("EstimatorState unavailable")
	}
	if snap.Rolls != 1 {
		t.Errorf("rolls = %d, want 1", snap.Rolls)
	}
	if err := eng.RestoreEstimator(snap); err != nil {
		t.Errorf("restore round-trip: %v", err)
	}
}

func TestEstimatorDisabled(t *testing.T) {
	eng := testEngine(t, "RR", nil, &ManualClock{})
	eng.RecordHits(0, 100) // must not panic
	if err := eng.RollEstimates(10); err != nil {
		t.Errorf("RollEstimates without estimator = %v, want nil", err)
	}
	if _, ok := eng.EstimatorState(); ok {
		t.Error("EstimatorState must report disabled feedback")
	}
	if err := eng.RestoreEstimator(core.EstimatorState{}); err == nil {
		t.Error("RestoreEstimator without estimator must error")
	}
}

func TestLedgerGrowAndConcurrentExtend(t *testing.T) {
	l := NewLedger(2)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Grow(8)
	if l.Len() != 8 {
		t.Fatalf("len after grow = %d", l.Len())
	}
	l.Grow(4) // never shrinks
	if l.Len() != 8 {
		t.Fatalf("len after smaller grow = %d", l.Len())
	}
	// Concurrent CAS-max across growth: the final value per slot is the
	// maximum ever written, regardless of interleaving.
	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				l.Extend(10+k%3, float64(k+w))
			}
		}(w)
	}
	wg.Wait()
	for i := 10; i < 13; i++ {
		if got := l.Expiry(i); got < 999 {
			t.Errorf("slot %d = %v, want ≥ 999", i, got)
		}
	}
	if got := l.Expiry(-1); got != 0 {
		t.Errorf("negative slot expiry = %v", got)
	}
	if got := l.Expiry(1000); got != 0 {
		t.Errorf("out-of-range expiry = %v", got)
	}
}

func TestWallClockRoundTrip(t *testing.T) {
	c := NewWallClock()
	at := c.Time(90)
	if got := c.Seconds(at); math.Abs(got-90) > 1e-6 {
		t.Errorf("round trip = %v, want 90", got)
	}
	if d := time.Until(at); d < 80*time.Second || d > 91*time.Second {
		t.Errorf("Time(90) is %v away, want ≈90s", d)
	}
	if now := c.Now(); now < 0 || now > 60 {
		t.Errorf("wall Now = %v, want small positive", now)
	}
}

func TestDecisionTap(t *testing.T) {
	cluster, _ := core.NewCluster([]float64{100, 100})
	state, _ := core.NewState(cluster, 2)
	pol, err := core.NewPolicy(core.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	var seen []core.Decision
	eng, err := New(Config{
		Policy: pol,
		Clock:  &ManualClock{},
		OnDecision: func(domain int, d core.Decision) {
			seen = append(seen, d)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Decide(0); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("tap saw %d decisions, want 3", len(seen))
	}
}
