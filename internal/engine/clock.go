package engine

import (
	"math"
	"sync/atomic"
	"time"
)

// Clock supplies the engine's notion of current time, in seconds from
// an arbitrary but fixed epoch. The simulator passes its virtual clock
// (simcore.Simulator.Now); the live DNS server passes a WallClock.
// Implementations must be safe for concurrent callers when the engine
// is (the simulator's single-threaded clock is exempt by construction).
type Clock interface {
	Now() float64
}

// ClockFunc adapts a plain function to the Clock interface, e.g.
// ClockFunc(simulator.Now).
type ClockFunc func() float64

// Now implements Clock.
func (f ClockFunc) Now() float64 { return f() }

// WallClock is the live path's Clock: wall time in seconds since the
// clock's creation. It also converts between engine seconds and
// time.Time, so callers that speak wall time (drain deadlines,
// checkpoints) can translate ledger instants losslessly.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock whose epoch is now. The epoch is
// stripped of its monotonic reading (Round(0)) so every time.Time the
// clock derives compares by wall clock alone — matching times that
// have crossed a serialization boundary (checkpoints).
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now().Round(0)} }

// Now returns seconds elapsed since the clock's epoch.
func (c *WallClock) Now() float64 { return time.Since(c.epoch).Seconds() }

// Time converts an engine-clock instant back to wall time. Rounding
// to the nearest nanosecond makes Time∘Seconds the identity for any
// instant within ~10⁵ s of the epoch, so ledger values survive a
// checkpoint round trip through time.Time bit-exactly.
func (c *WallClock) Time(sec float64) time.Time {
	return c.epoch.Add(time.Duration(math.Round(sec * float64(time.Second))))
}

// Seconds converts a wall time to engine-clock seconds. Times before
// the epoch map to negative seconds; the ledger treats those as
// already expired.
func (c *WallClock) Seconds(t time.Time) float64 { return t.Sub(c.epoch).Seconds() }

// ManualClock is a settable Clock for tests and conformance harnesses:
// it lets a live-style engine be stepped through the exact instants a
// recorded request stream prescribes. Safe for concurrent use.
type ManualClock struct {
	bits atomic.Uint64 // float64 bits of the current time
}

// Now returns the last time Set.
func (c *ManualClock) Now() float64 { return bitsToFloat(c.bits.Load()) }

// Set moves the clock to t (seconds).
func (c *ManualClock) Set(t float64) { c.bits.Store(floatToBits(t)) }
