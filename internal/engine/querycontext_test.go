package engine

import (
	"net/netip"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

func queryTestEngine(t *testing.T, ecs ECSConfig) *Engine {
	t.Helper()
	clock := &ManualClock{}
	clock.Set(1)
	cluster, err := core.NewCluster([]float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, confDomains)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        "RR",
		State:       state,
		Rand:        simcore.NewStream(1, "policy"),
		Now:         clock.Now,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock, Mapper: confQueryMapper, ECS: ecs})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestDecideQueryWithoutMapper(t *testing.T) {
	clock := &ManualClock{}
	cluster, err := core.NewCluster([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        "RR",
		State:       state,
		Rand:        simcore.NewStream(1, "policy"),
		Now:         clock.Now,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DecideQuery(QueryContext{Resolver: confQueryAddr(0)}); err != ErrNoMapper {
		t.Fatalf("DecideQuery without mapper: err = %v, want ErrNoMapper", err)
	}
}

func TestClassifySubnetModes(t *testing.T) {
	resolver := netip.MustParseAddr("10.0.3.1")
	client24 := netip.MustParsePrefix("10.0.5.0/24")
	client32 := netip.MustParsePrefix("10.0.5.9/32")
	v6Client := netip.MustParsePrefix("2001:db8:0:42::/64")

	cases := []struct {
		name       string
		ecs        ECSConfig
		qc         QueryContext
		wantSubnet string // "" = invalid (classify by resolver)
		wantScoped bool
	}{
		{"passthrough no ECS", ECSConfig{}, QueryContext{Resolver: resolver}, "", false},
		{"passthrough /24", ECSConfig{}, QueryContext{Resolver: resolver, ClientSubnet: client24}, "10.0.5.0/24", true},
		{"passthrough clamps /32", ECSConfig{}, QueryContext{Resolver: resolver, ClientSubnet: client32}, "10.0.5.0/24", true},
		{"passthrough clamps v6 to /56", ECSConfig{}, QueryContext{Resolver: resolver, ClientSubnet: v6Client}, "2001:db8:0:0::/56", true},
		{"custom clamp /16", ECSConfig{V4Prefix: 16}, QueryContext{Resolver: resolver, ClientSubnet: client24}, "10.0.0.0/16", true},
		{"add synthesizes from resolver", ECSConfig{Mode: ECSAdd}, QueryContext{Resolver: resolver}, "10.0.3.0/24", false},
		{"add keeps forwarded subnet", ECSConfig{Mode: ECSAdd}, QueryContext{Resolver: resolver, ClientSubnet: client24}, "10.0.5.0/24", true},
		{"override ignores forwarded subnet", ECSConfig{Mode: ECSOverride}, QueryContext{Resolver: resolver, ClientSubnet: client24}, "10.0.3.0/24", false},
		{"override invalid resolver", ECSConfig{Mode: ECSOverride}, QueryContext{}, "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := queryTestEngine(t, c.ecs)
			subnet, scoped := eng.classifySubnet(c.qc)
			if c.wantSubnet == "" {
				if subnet.IsValid() {
					t.Fatalf("classifySubnet = %v, want invalid", subnet)
				}
			} else if subnet != netip.MustParsePrefix(c.wantSubnet) {
				t.Fatalf("classifySubnet = %v, want %s", subnet, c.wantSubnet)
			}
			if scoped != c.wantScoped {
				t.Fatalf("scoped = %v, want %v", scoped, c.wantScoped)
			}
		})
	}
}

func TestDecideQueryScopeEcho(t *testing.T) {
	// Scoped decisions echo the honoured (post-clamp) source length;
	// unscoped ones echo 0 per RFC 7871 ("not tailored to your subnet").
	eng := queryTestEngine(t, ECSConfig{})
	qd, err := eng.DecideQuery(QueryContext{
		Resolver:     confQueryAddr(1),
		ClientSubnet: netip.MustParsePrefix("10.0.2.9/32"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !qd.ClientScoped || qd.Scope != 24 {
		t.Fatalf("clamped /32: scoped %v scope %d, want true/24", qd.ClientScoped, qd.Scope)
	}
	if qd.Domain != 2 {
		t.Fatalf("classified domain %d, want 2 (by subnet, not resolver)", qd.Domain)
	}

	over := queryTestEngine(t, ECSConfig{Mode: ECSOverride})
	qd, err = over.DecideQuery(QueryContext{
		Resolver:     confQueryAddr(1),
		ClientSubnet: netip.MustParsePrefix("10.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if qd.ClientScoped || qd.Scope != 0 {
		t.Fatalf("override: scoped %v scope %d, want false/0", qd.ClientScoped, qd.Scope)
	}
	if qd.Domain != 1 {
		t.Fatalf("override classified domain %d, want 1 (by resolver)", qd.Domain)
	}
}

func TestECSConfigValidation(t *testing.T) {
	for _, bad := range []ECSConfig{
		{V4Prefix: -1},
		{V4Prefix: 33},
		{V6Prefix: 129},
		{Mode: ECSOverride + 1},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("ECSConfig %+v should fail validation", bad)
		}
	}
	if err := (ECSConfig{Mode: ECSAdd, V4Prefix: 20, V6Prefix: 48}).validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseECSMode(t *testing.T) {
	for s, want := range map[string]ECSMode{
		"":            ECSPassthrough,
		"passthrough": ECSPassthrough,
		"add":         ECSAdd,
		"override":    ECSOverride,
	} {
		got, err := ParseECSMode(s)
		if err != nil || got != want {
			t.Errorf("ParseECSMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseECSMode("bogus"); err == nil {
		t.Error("ParseECSMode(bogus) should error")
	}
	for m, s := range map[ECSMode]string{ECSPassthrough: "passthrough", ECSAdd: "add", ECSOverride: "override"} {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestTransportString(t *testing.T) {
	for tr, s := range map[Transport]string{
		TransportNone: "none", TransportUDP: "udp", TransportTCP: "tcp", TransportDoH: "doh",
	} {
		if tr.String() != s {
			t.Errorf("Transport(%d).String() = %q, want %q", tr, tr.String(), s)
		}
	}
}
