package engine

import (
	"math"
	"net/netip"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

// QueryContext conformance: the PR-10 extension of the suite. The same
// recorded stream of QueryContexts — resolver addresses, some
// misaligned, with ECS client subnets present on part of the queries —
// must classify and schedule bit-identically on a sim-built and a
// live-built engine for every policy and both estimator kinds. This
// pins down the full DecideQuery lifecycle (subnet classification,
// clamping, scope computation, then the shared Decide core) as
// environment-independent beyond the two declared seams.

// confQueryAddr returns the conformance resolver address of domain d
// (10.0.d.1) and confQuerySubnet the client /24 (10.0.d.0/24); the
// mapper decodes octet 2. Domain indexes stay below confDomains.
func confQueryAddr(d int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(d), 1})
}

func confQuerySubnet(d int, bits int) netip.Prefix {
	p, _ := netip.AddrFrom4([4]byte{10, 0, byte(d), 0}).Prefix(bits)
	return p
}

func confQueryMapper(addr netip.Addr) int {
	if !addr.IsValid() {
		return 0
	}
	b := addr.As4()
	return int(b[2]) % confDomains
}

// confQueryContext builds the i-th query's context: every third query
// arrives from a misaligned resolver (two domains over), every second
// query carries the clients' true subnet as ECS — alternating source
// prefix /24 and /28, the latter exercising the clamp — so the stream
// covers aligned/misaligned × ECS/no-ECS and both exact and clamped
// source-prefix lengths.
func confQueryContext(i int) QueryContext {
	domain := i % confDomains
	resolver := domain
	if i%3 == 0 {
		resolver = (domain + 2) % confDomains
	}
	qc := QueryContext{Resolver: confQueryAddr(resolver), Transport: TransportUDP}
	if i%2 == 0 {
		bits := 24
		if i%4 == 0 {
			bits = 28
		}
		qc.ClientSubnet = confQuerySubnet(domain, bits)
	}
	return qc
}

// confQueryDecision is one recorded DecideQuery outcome; compared for
// bit-identity like confDecision, plus the classification fields.
type confQueryDecision struct {
	domain  int
	server  int
	ttlBits uint64
	scoped  bool
	scope   uint8
	failed  bool
}

func applyQueryEvent(t *testing.T, eng *Engine, i int, out *[]confQueryDecision) {
	t.Helper()
	qd, err := eng.DecideQuery(confQueryContext(i))
	if err != nil {
		if qd.Domain < -1 || qd.Domain >= confDomains {
			t.Fatalf("query %d: domain %d out of range", i, qd.Domain)
		}
		*out = append(*out, confQueryDecision{domain: qd.Domain, failed: true})
		return
	}
	*out = append(*out, confQueryDecision{
		domain:  qd.Domain,
		server:  qd.Server,
		ttlBits: math.Float64bits(qd.TTL),
		scoped:  qd.ClientScoped,
		scope:   qd.Scope,
	})
}

// conformanceQueryEngine is conformanceEngine plus the DecideQuery
// seams: the conformance mapper and passthrough ECS defaults.
func conformanceQueryEngine(t *testing.T, policyName, estKind string, rng core.Rand, now func() float64, clock Clock) *Engine {
	t.Helper()
	cluster, err := core.NewCluster([]float64{140, 120, 100, 80, 60})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, confDomains)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights([]float64{0.30, 0.25, 0.18, 0.12, 0.09, 0.06}); err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        policyName,
		State:       state,
		Rand:        rng,
		Now:         now,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewLoadEstimator(estKind, confDomains, core.DefaultEstimatorAlpha)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock, Estimator: est, Mapper: confQueryMapper})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// runQuerySimPath and runQueryLivePath mirror runSimPath/runLivePath
// with queries routed through DecideQuery; control events reuse
// applyConfEvent (their kinds never produce decisions).
func runQuerySimPath(t *testing.T, policyName, estKind string, events []confEvent) ([]confQueryDecision, []float64) {
	t.Helper()
	sc := simcore.New(confSeed)
	eng := conformanceQueryEngine(t, policyName, estKind, sc.Stream("policy"), sc.Now, ClockFunc(sc.Now))
	var out []confQueryDecision
	horizon := 0.0
	qi := 0
	for _, ev := range events {
		ev := ev
		if ev.kind == "query" {
			i := qi
			qi++
			sc.ScheduleAt(ev.time, func() { applyQueryEvent(t, eng, i, &out) })
		} else {
			var sink []confDecision
			sc.ScheduleAt(ev.time, func() { applyConfEvent(t, eng, ev, &sink) })
		}
		if ev.time > horizon {
			horizon = ev.time
		}
	}
	sc.Run(horizon + 1)
	return out, ledgerExpiries(eng)
}

func runQueryLivePath(t *testing.T, policyName, estKind string, events []confEvent) ([]confQueryDecision, []float64) {
	t.Helper()
	clock := &ManualClock{}
	eng := conformanceQueryEngine(t, policyName, estKind, simcore.NewStream(confSeed, "policy"), clock.Now, clock)
	var out []confQueryDecision
	var sink []confDecision
	qi := 0
	for _, ev := range events {
		clock.Set(ev.time)
		if ev.kind == "query" {
			applyQueryEvent(t, eng, qi, &out)
			qi++
		} else {
			applyConfEvent(t, eng, ev, &sink)
		}
	}
	return out, ledgerExpiries(eng)
}

// TestSimLiveQueryConformance asserts bit-identical DecideQuery
// behavior across the sim and live assemblies for every policy and
// both estimator kinds, ECS present and absent.
func TestSimLiveQueryConformance(t *testing.T) {
	events := conformanceEvents()
	for _, estKind := range core.EstimatorKinds() {
		for _, policyName := range core.PolicyNames() {
			estKind, policyName := estKind, policyName
			t.Run(estKind+"/"+policyName, func(t *testing.T) {
				simD, simLedger := runQuerySimPath(t, policyName, estKind, events)
				liveD, liveLedger := runQueryLivePath(t, policyName, estKind, events)
				if len(simD) != len(liveD) {
					t.Fatalf("decision counts diverge: sim %d, live %d", len(simD), len(liveD))
				}
				for i := range simD {
					if simD[i] != liveD[i] {
						s, l := simD[i], liveD[i]
						t.Fatalf("query %d diverges: sim (domain %d → server %d, ttl %v, scoped %v/%d, failed %v), live (domain %d → server %d, ttl %v, scoped %v/%d, failed %v)",
							i,
							s.domain, s.server, math.Float64frombits(s.ttlBits), s.scoped, s.scope, s.failed,
							l.domain, l.server, math.Float64frombits(l.ttlBits), l.scoped, l.scope, l.failed)
					}
				}
				for i := range simLedger {
					if math.Float64bits(simLedger[i]) != math.Float64bits(liveLedger[i]) {
						t.Errorf("ledger slot %d diverges: sim %v, live %v", i, simLedger[i], liveLedger[i])
					}
				}
			})
		}
	}
}

// TestQueryConformanceStreamShape guards the query stream: it must mix
// scoped and unscoped decisions, clamp at least one source prefix, and
// classify ECS queries by the client subnet (not the misaligned
// resolver) — otherwise the suite could conform on a stream that never
// exercises the new lifecycle.
func TestQueryConformanceStreamShape(t *testing.T) {
	events := conformanceEvents()
	decisions, _ := runQuerySimPath(t, "PRR2-TTL/K", core.EstimatorReactive, events)
	var scoped, unscoped, clamped int
	qi := 0
	for _, d := range decisions {
		qc := confQueryContext(qi)
		qi++
		if d.failed {
			continue
		}
		if d.scoped {
			scoped++
			if d.scope != 24 {
				t.Errorf("query %d: /%d subnet reported scope %d, want the /24 granularity",
					qi-1, qc.ClientSubnet.Bits(), d.scope)
			}
			if d.scope < uint8(qc.ClientSubnet.Bits()) {
				clamped++
			}
			if want := confQueryMapper(qc.ClientSubnet.Addr()); d.domain != want {
				t.Errorf("query %d: classified domain %d, subnet says %d", qi-1, d.domain, want)
			}
		} else {
			unscoped++
			if want := confQueryMapper(qc.Resolver); d.domain != want {
				t.Errorf("query %d: classified domain %d, resolver says %d", qi-1, d.domain, want)
			}
		}
	}
	if scoped == 0 || unscoped == 0 {
		t.Fatalf("stream too weak: %d scoped, %d unscoped", scoped, unscoped)
	}
	if clamped == 0 {
		t.Error("stream never exercised the /28 → /24 source-prefix clamp")
	}
}

// TestDecideQueryMatchesDecide pins the compatibility guarantee: with
// no ECS in effect, DecideQuery(resolver) is Decide(mapper(resolver))
// bit-for-bit — same decision stream, same ledger.
func TestDecideQueryMatchesDecide(t *testing.T) {
	clockA, clockB := &ManualClock{}, &ManualClock{}
	a := conformanceQueryEngine(t, "DRR2-TTL/S_K", core.EstimatorReactive,
		simcore.NewStream(confSeed, "policy"), clockA.Now, clockA)
	b := conformanceQueryEngine(t, "DRR2-TTL/S_K", core.EstimatorReactive,
		simcore.NewStream(confSeed, "policy"), clockB.Now, clockB)
	for i := 0; i < 200; i++ {
		tm := 0.5 * float64(i+1)
		clockA.Set(tm)
		clockB.Set(tm)
		resolver := confQueryAddr(i % confDomains)
		qd, qerr := a.DecideQuery(QueryContext{Resolver: resolver})
		d, derr := b.Decide(confQueryMapper(resolver))
		if (qerr == nil) != (derr == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, qerr, derr)
		}
		if qerr != nil {
			continue
		}
		if qd.Server != d.Server || math.Float64bits(qd.TTL) != math.Float64bits(d.TTL) {
			t.Fatalf("query %d: DecideQuery (server %d, ttl %v) != Decide (server %d, ttl %v)",
				i, qd.Server, qd.TTL, d.Server, d.TTL)
		}
		if qd.ClientScoped || qd.Scope != 0 {
			t.Fatalf("query %d: unexpected scoping %v/%d without ECS", i, qd.ClientScoped, qd.Scope)
		}
	}
	la, lb := ledgerExpiries(a), ledgerExpiries(b)
	for i := range la {
		if math.Float64bits(la[i]) != math.Float64bits(lb[i]) {
			t.Errorf("ledger slot %d diverges: %v vs %v", i, la[i], lb[i])
		}
	}
}
