package engine

import (
	"math"
	"sync/atomic"
)

// Ledger is the outstanding-mapping (hidden-load) ledger: it tracks,
// per server slot, the latest engine-clock instant at which a mapping
// handed out for that server can still sit in a downstream resolver
// cache. This is the paper's hidden-load window — the interval during
// which cached (domain → server) mappings keep directing traffic the
// scheduler no longer controls — and the graceful-drain deadline on
// both the simulated and the live path.
//
// Updates are lock-free CAS-max on one atomic word per slot; the slot
// table grows copy-on-write when a dynamically joined server exceeds
// the allocated slots, sharing the individual cells between old and
// new tables so no update is ever lost to a race.
type Ledger struct {
	slots atomic.Pointer[[]*atomic.Uint64] // float64 bits of the expiry instant
}

func floatToBits(v float64) uint64 { return math.Float64bits(v) }
func bitsToFloat(b uint64) float64 { return math.Float64frombits(b) }

// NewLedger creates a ledger with n pre-allocated slots.
func NewLedger(n int) *Ledger {
	if n < 0 {
		n = 0
	}
	l := &Ledger{}
	cells := make([]*atomic.Uint64, n)
	for i := range cells {
		cells[i] = new(atomic.Uint64)
	}
	l.slots.Store(&cells)
	return l
}

// slot returns the cell for server i, growing the table copy-on-write
// when i exceeds the allocated slots.
func (l *Ledger) slot(i int) *atomic.Uint64 {
	for {
		cur := l.slots.Load()
		if i < len(*cur) {
			return (*cur)[i]
		}
		next := make([]*atomic.Uint64, i+1)
		copy(next, *cur)
		for j := len(*cur); j <= i; j++ {
			next[j] = new(atomic.Uint64)
		}
		if l.slots.CompareAndSwap(cur, &next) {
			return next[i]
		}
	}
}

// Grow pre-allocates slots up to n so subsequent Extend calls on the
// query path never pay the copy-on-write growth. It never shrinks.
func (l *Ledger) Grow(n int) {
	if n > 0 {
		l.slot(n - 1)
	}
}

// Len returns the number of allocated slots.
func (l *Ledger) Len() int { return len(*l.slots.Load()) }

// Extend records that a mapping for server i can stay cached until
// expiry (engine-clock seconds): the slot becomes max(current, expiry).
// Lock-free; safe for concurrent callers.
func (l *Ledger) Extend(i int, expiry float64) {
	if i < 0 || math.IsNaN(expiry) {
		return
	}
	cell := l.slot(i)
	newBits := floatToBits(expiry)
	for {
		old := cell.Load()
		if expiry <= bitsToFloat(old) || cell.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Expiry returns the latest recorded mapping expiry for server i in
// engine-clock seconds, or 0 when no mapping was ever recorded (and
// for out-of-range slots).
func (l *Ledger) Expiry(i int) float64 {
	cur := *l.slots.Load()
	if i < 0 || i >= len(cur) {
		return 0
	}
	return bitsToFloat(cur[i].Load())
}
