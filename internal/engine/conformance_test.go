package engine

import (
	"errors"
	"math"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

// Conformance suite: the tentpole guarantee of the unified engine. One
// recorded request stream — queries interleaved with alarm, liveness,
// drain and hidden-load-report events at fixed instants — is applied
// to two engines built exactly as the two production paths build them:
//
//   - the "sim" engine runs under simcore virtual time, events fired
//     by the discrete-event loop, the policy stream drawn from the
//     simulator (as internal/sim wires it);
//   - the "live" engine runs under a manually stepped clock with a
//     standalone named stream (as the DNS server wires it, minus the
//     entropy seed).
//
// For every catalog policy the two must yield bit-identical
// (server, TTL) decision sequences and final mapping-ledger windows.
// Any divergence means the lifecycle leaked an environment dependency
// beyond the two declared seams (Clock and the policy's Rand stream).

const (
	confSeed    = 99
	confDomains = 6
	confServers = 5
)

type confEvent struct {
	time   float64
	kind   string // "query", "alarm", "down", "drain", "report"
	domain int
	server int
	on     bool
}

// conformanceEvents builds the shared recorded stream: a query from a
// rotating domain every half second, with control events woven in —
// an alarm episode on server 1, a crash/recovery of server 2, a
// graceful drain of server 4, and two hidden-load report/roll rounds
// that move the weight estimates mid-stream.
func conformanceEvents() []confEvent {
	var evs []confEvent
	for i := 0; i < 300; i++ {
		t := 0.5 * float64(i+1)
		switch i {
		case 40:
			evs = append(evs, confEvent{time: t, kind: "alarm", server: 1, on: true})
		case 90:
			evs = append(evs, confEvent{time: t, kind: "alarm", server: 1, on: false})
		case 120:
			evs = append(evs, confEvent{time: t, kind: "down", server: 2, on: true})
		case 150:
			evs = append(evs, confEvent{time: t, kind: "report"})
		case 180:
			evs = append(evs, confEvent{time: t, kind: "down", server: 2, on: false})
		case 220:
			evs = append(evs, confEvent{time: t, kind: "drain", server: 4})
		case 260:
			evs = append(evs, confEvent{time: t, kind: "report"})
		}
		evs = append(evs, confEvent{time: t, kind: "query", domain: i % confDomains})
	}
	return evs
}

// confDecision is one recorded lifecycle outcome. TTLs compare as raw
// float64 bits: conformance is bit-identity, not tolerance.
type confDecision struct {
	domain  int
	server  int
	ttlBits uint64
	failed  bool
}

// conformanceEngine builds an engine exactly once per path, over a
// fresh heterogeneous state with skewed domain weights. estKind picks
// the load-estimator implementation; every policy must conform on
// either one.
func conformanceEngine(t *testing.T, policyName, estKind string, rng core.Rand, now func() float64, clock Clock) *Engine {
	t.Helper()
	cluster, err := core.NewCluster([]float64{140, 120, 100, 80, 60})
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, confDomains)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights([]float64{0.30, 0.25, 0.18, 0.12, 0.09, 0.06}); err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(core.PolicyConfig{
		Name:        policyName,
		State:       state,
		Rand:        rng,
		Now:         now,
		ConstantTTL: core.DefaultConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.NewLoadEstimator(estKind, confDomains, core.DefaultEstimatorAlpha)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Policy: pol, Clock: clock, Estimator: est})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// applyConfEvent replays one event against an engine; queries append
// their outcome to out.
func applyConfEvent(t *testing.T, eng *Engine, ev confEvent, out *[]confDecision) {
	t.Helper()
	switch ev.kind {
	case "query":
		d, err := eng.Decide(ev.domain)
		if err != nil {
			if !errors.Is(err, core.ErrNoServers) {
				t.Fatalf("Decide(%d): %v", ev.domain, err)
			}
			*out = append(*out, confDecision{domain: ev.domain, failed: true})
			return
		}
		*out = append(*out, confDecision{
			domain:  ev.domain,
			server:  d.Server,
			ttlBits: math.Float64bits(d.TTL),
		})
	case "alarm":
		if err := eng.SetAlarm(ev.server, ev.on); err != nil {
			t.Fatalf("SetAlarm(%d, %v): %v", ev.server, ev.on, err)
		}
	case "down":
		if err := eng.SetDown(ev.server, ev.on); err != nil {
			t.Fatalf("SetDown(%d, %v): %v", ev.server, ev.on, err)
		}
	case "drain":
		if err := eng.State().DrainServer(ev.server); err != nil {
			t.Fatalf("DrainServer(%d): %v", ev.server, err)
		}
	case "report":
		for j := 0; j < confDomains; j++ {
			eng.RecordHits(j, float64((j+3)*17%40)+1)
		}
		if err := eng.RollEstimates(30); err != nil {
			t.Fatalf("RollEstimates: %v", err)
		}
	default:
		t.Fatalf("unknown event kind %q", ev.kind)
	}
}

// runSimPath drives the stream through a sim-built engine: virtual
// clock, events fired by the discrete-event loop.
func runSimPath(t *testing.T, policyName, estKind string, events []confEvent) ([]confDecision, []float64) {
	t.Helper()
	sc := simcore.New(confSeed)
	eng := conformanceEngine(t, policyName, estKind, sc.Stream("policy"), sc.Now, ClockFunc(sc.Now))
	var out []confDecision
	horizon := 0.0
	for _, ev := range events {
		ev := ev
		sc.ScheduleAt(ev.time, func() { applyConfEvent(t, eng, ev, &out) })
		if ev.time > horizon {
			horizon = ev.time
		}
	}
	sc.Run(horizon + 1)
	return out, ledgerExpiries(eng)
}

// runLivePath drives the same stream through a live-built engine:
// manual wall-style clock stepped to each event's instant, standalone
// named policy stream.
func runLivePath(t *testing.T, policyName, estKind string, events []confEvent) ([]confDecision, []float64) {
	t.Helper()
	clock := &ManualClock{}
	eng := conformanceEngine(t, policyName, estKind, simcore.NewStream(confSeed, "policy"), clock.Now, clock)
	var out []confDecision
	for _, ev := range events {
		clock.Set(ev.time)
		applyConfEvent(t, eng, ev, &out)
	}
	return out, ledgerExpiries(eng)
}

func ledgerExpiries(eng *Engine) []float64 {
	out := make([]float64, confServers)
	for i := range out {
		out[i] = eng.MappingExpiry(i)
	}
	return out
}

// TestSimLiveConformance asserts the unified-engine guarantee for
// every policy in the catalog, on both estimator kinds: the estimator
// seam must not leak an environment dependency either.
func TestSimLiveConformance(t *testing.T) {
	events := conformanceEvents()
	for _, estKind := range core.EstimatorKinds() {
		for _, policyName := range core.PolicyNames() {
			estKind, policyName := estKind, policyName
			t.Run(estKind+"/"+policyName, func(t *testing.T) {
				simDecisions, simLedger := runSimPath(t, policyName, estKind, events)
				liveDecisions, liveLedger := runLivePath(t, policyName, estKind, events)
				if len(simDecisions) != len(liveDecisions) {
					t.Fatalf("decision counts diverge: sim %d, live %d", len(simDecisions), len(liveDecisions))
				}
				for i := range simDecisions {
					if simDecisions[i] != liveDecisions[i] {
						s, l := simDecisions[i], liveDecisions[i]
						t.Fatalf("decision %d diverges: sim (domain %d → server %d, ttl %v, failed %v), live (domain %d → server %d, ttl %v, failed %v)",
							i,
							s.domain, s.server, math.Float64frombits(s.ttlBits), s.failed,
							l.domain, l.server, math.Float64frombits(l.ttlBits), l.failed)
					}
				}
				for i := range simLedger {
					if math.Float64bits(simLedger[i]) != math.Float64bits(liveLedger[i]) {
						t.Errorf("ledger slot %d diverges: sim %v, live %v", i, simLedger[i], liveLedger[i])
					}
				}
			})
		}
	}
}

// TestReplicaPairConformance asserts the multi-replica guarantee at
// lag zero: replica A runs the full conformance stream while replica B
// never decides anything and only merges A's deltas after every event.
// After the run, B's mapping ledger and standing flags must be
// bit-identical to A's, which in turn must match the single-engine
// reference — replication at lag 0 is invisible. A final B→A
// back-merge must change nothing (merge idempotence/commutativity).
func TestReplicaPairConformance(t *testing.T) {
	events := conformanceEvents()
	for _, policyName := range core.PolicyNames() {
		policyName := policyName
		t.Run(policyName, func(t *testing.T) {
			_, singleLedger := runLivePath(t, policyName, core.EstimatorReactive, events)

			clock := &ManualClock{}
			a := conformanceEngine(t, policyName, core.EstimatorReactive, simcore.NewStream(confSeed, "policy"), clock.Now, clock)
			b := conformanceEngine(t, policyName, core.EstimatorReactive, simcore.NewStream(confSeed, "policy"), clock.Now, clock)
			var out []confDecision
			for _, ev := range events {
				clock.Set(ev.time)
				applyConfEvent(t, a, ev, &out)
				if err := b.MergeRemote(a.SnapshotDelta()); err != nil {
					t.Fatalf("MergeRemote at t=%v: %v", ev.time, err)
				}
			}

			aLedger, bLedger := ledgerExpiries(a), ledgerExpiries(b)
			for i := range aLedger {
				if math.Float64bits(aLedger[i]) != math.Float64bits(singleLedger[i]) {
					t.Errorf("replica A ledger slot %d diverges from single engine: %v vs %v",
						i, aLedger[i], singleLedger[i])
				}
				if math.Float64bits(bLedger[i]) != math.Float64bits(aLedger[i]) {
					t.Errorf("replica B ledger slot %d diverges from A after merge: %v vs %v",
						i, bLedger[i], aLedger[i])
				}
			}

			asn, bsn := a.State().Snapshot(), b.State().Snapshot()
			for i := 0; i < confServers; i++ {
				if asn.Alarmed(i) != bsn.Alarmed(i) || asn.Down(i) != bsn.Down(i) ||
					asn.Draining(i) != bsn.Draining(i) || asn.Member(i) != bsn.Member(i) {
					t.Errorf("server %d standing diverges: A (alarm %v down %v drain %v member %v), B (alarm %v down %v drain %v member %v)",
						i,
						asn.Alarmed(i), asn.Down(i), asn.Draining(i), asn.Member(i),
						bsn.Alarmed(i), bsn.Down(i), bsn.Draining(i), bsn.Member(i))
				}
			}

			if err := a.MergeRemote(b.SnapshotDelta()); err != nil {
				t.Fatalf("back-merge B into A: %v", err)
			}
			for i, after := range ledgerExpiries(a) {
				if math.Float64bits(after) != math.Float64bits(aLedger[i]) {
					t.Errorf("back-merge moved A's ledger slot %d: %v → %v", i, aLedger[i], after)
				}
			}
		})
	}
}

// TestConformanceStreamExercisesOutcomes guards the stream itself: it
// must produce at least one decision for every live server and keep
// scheduling away from the drained slot afterwards, or the suite
// would silently conform on a trivial stream.
func TestConformanceStreamExercisesOutcomes(t *testing.T) {
	events := conformanceEvents()
	decisions, ledger := runSimPath(t, "PRR2-TTL/K", core.EstimatorReactive, events)
	seen := make(map[int]int)
	for _, d := range decisions {
		if !d.failed {
			seen[d.server]++
		}
	}
	for i := 0; i < confServers; i++ {
		if seen[i] == 0 {
			t.Errorf("server %d never chosen; stream too weak", i)
		}
		if ledger[i] == 0 {
			t.Errorf("server %d ledger never extended", i)
		}
	}
	drainAt := -1.0
	for _, ev := range events {
		if ev.kind == "drain" {
			drainAt = ev.time
		}
	}
	if drainAt < 0 {
		t.Fatal("stream has no drain event")
	}
}
