package engine

import (
	"sync"

	"dnslb/internal/core"
)

// Degraded decision ladder. When the live server's soft state cannot
// be trusted — query load above the admission ceiling, or replication
// degraded while the estimator has gone stale — the right answer is
// not SERVFAIL: any live backend is better than none, and the paper's
// own baseline (capacity-proportional assignment with no feedback) is
// a perfectly serviceable static policy. DecideFallback implements
// that ladder rung: smooth capacity-weighted round robin over the
// currently schedulable slots, with a caller-chosen short TTL so
// clients re-resolve quickly once the feedback loop is healthy again.
//
// The fallback deliberately ignores alarm flags — alarms are derived
// from the very soft state degraded mode distrusts — but still honors
// membership, liveness, and draining, which are hard operational
// facts. Fallback decisions extend the outstanding-mapping ledger and
// reach the decision tap like any other handout (replication peers
// must account for them); they bypass the policy, its TTL schedule,
// and the estimator's decision feed.

// fallbackState is the smooth-WRR accumulator for DecideFallback,
// lazily sized. Same algorithm as core's WRR selector: add each
// eligible server's weight to its running value, pick the largest,
// subtract the total from the winner.
type fallbackState struct {
	mu      sync.Mutex
	current []float64
}

// DecideFallback answers one request through the static
// capacity-weighted round-robin ladder with the given TTL in seconds.
// It returns core.ErrNoServers when no slot is schedulable (not a
// member, down, or draining).
func (e *Engine) DecideFallback(ttl float64) (core.Decision, error) {
	sn := e.policy.State().Snapshot()
	n := sn.Cluster().N()
	fb := &e.fallback
	fb.mu.Lock()
	if len(fb.current) != n {
		fb.current = make([]float64, n)
	}
	best := -1
	var total float64
	for i := 0; i < n; i++ {
		if !sn.Member(i) || sn.Down(i) || sn.Draining(i) {
			continue
		}
		w := sn.Alpha(i)
		fb.current[i] += w
		total += w
		if best == -1 || fb.current[i] > fb.current[best] {
			best = i
		}
	}
	if best == -1 {
		fb.mu.Unlock()
		return core.Decision{}, core.ErrNoServers
	}
	fb.current[best] -= total
	fb.mu.Unlock()

	d := core.Decision{Server: best, TTL: ttl}
	e.ledger.Extend(best, e.clock.Now()+ttl)
	if e.onDecision != nil {
		e.onDecision(-1, d)
	}
	return d, nil
}
