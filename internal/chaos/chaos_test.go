package chaos

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"
)

// echoUDP starts a UDP echo server and returns its address.
func echoUDP(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 65535)
		for {
			n, addr, err := conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				return
			}
			conn.WriteToUDPAddrPort(buf[:n], addr)
		}
	}()
	return conn.LocalAddr().String()
}

// echoTCP starts a TCP echo server and returns its address.
func echoTCP(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func udpExchange(t *testing.T, conn *net.UDPConn, payload []byte, timeout time.Duration) ([]byte, error) {
	t.Helper()
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func dialUDP(t *testing.T, addr string) *net.UDPConn {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestUDPProxyTransparent(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn := dialUDP(t, p.Addr())
	msg := []byte("hello through the proxy")
	got, err := udpExchange(t, conn, msg, 2*time.Second)
	if err != nil {
		t.Fatalf("echo through transparent proxy: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if s := p.Stats(); s.Forwarded < 2 {
		t.Fatalf("expected >=2 forwarded datagrams, got %+v", s)
	}
}

func TestUDPProxyCutDropsEverything(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetFault(Fault{Cut: true}); err != nil {
		t.Fatal(err)
	}

	conn := dialUDP(t, p.Addr())
	if _, err := udpExchange(t, conn, []byte("into the void"), 150*time.Millisecond); err == nil {
		t.Fatal("expected timeout through cut link")
	}
	if s := p.Stats(); s.Dropped == 0 {
		t.Fatalf("cut link should count drops, got %+v", s)
	}

	// Heal and verify traffic resumes.
	if err := p.SetFault(Fault{}); err != nil {
		t.Fatal(err)
	}
	if _, err := udpExchange(t, conn, []byte("back again"), 2*time.Second); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestUDPProxyDropRate(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Drop everything client->upstream; responses unaffected (none arrive).
	if err := p.SetFault(Fault{Drop: 1.0}); err != nil {
		t.Fatal(err)
	}
	conn := dialUDP(t, p.Addr())
	for i := 0; i < 5; i++ {
		conn.Write([]byte("x"))
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Dropped >= 5 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s := p.Stats(); s.Dropped < 5 || s.Forwarded != 0 {
		t.Fatalf("drop=1.0 should drop all 5, got %+v", s)
	}
}

func TestUDPProxyDelayAndDuplication(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetFault(Fault{Delay: 30 * time.Millisecond, Dup: 1.0}); err != nil {
		t.Fatal(err)
	}

	conn := dialUDP(t, p.Addr())
	start := time.Now()
	if _, err := udpExchange(t, conn, []byte("slow"), 2*time.Second); err != nil {
		t.Fatalf("delayed echo: %v", err)
	}
	// Two proxy traversals, each >=30ms.
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("round trip %v, want >= 60ms of injected delay", el)
	}
	// dup=1.0 duplicates in both directions; at least one duplicate seen.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && p.Stats().Dupped == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if s := p.Stats(); s.Dupped == 0 {
		t.Fatalf("dup=1.0 produced no duplicates: %+v", s)
	}
}

func TestUDPProxyCorruption(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetFault(Fault{Corrupt: 1.0}); err != nil {
		t.Fatal(err)
	}
	conn := dialUDP(t, p.Addr())
	msg := []byte("pristine payload")
	got, err := udpExchange(t, conn, msg, 2*time.Second)
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt=1.0 returned the payload unmodified")
	}
	if p.Stats().Corrupted == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestUDPProxyReorderReleasesHeld(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Hold every datagram; the 100ms safety valve must still deliver it,
	// so reorder never silently becomes drop.
	if err := p.SetFault(Fault{Reorder: 1.0}); err != nil {
		t.Fatal(err)
	}
	conn := dialUDP(t, p.Addr())
	if _, err := udpExchange(t, conn, []byte("held"), 2*time.Second); err != nil {
		t.Fatalf("held datagram never released: %v", err)
	}
	if p.Stats().Reordered == 0 {
		t.Fatal("reorder not counted")
	}
}

func TestTCPProxyCutAndHeal(t *testing.T) {
	echo := echoTCP(t)
	p, err := NewTCPProxy("127.0.0.1:0", echo, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := c.Read(buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo through proxy: n=%d err=%v", n, err)
	}

	p.Cut()
	// The established connection dies...
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on cut connection succeeded")
	}
	// ...and new connections are refused or immediately closed.
	if c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second); err == nil {
		c2.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := c2.Read(buf); err == nil {
			t.Fatal("cut proxy served a new connection")
		}
		c2.Close()
	}

	p.Heal()
	c3, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer c3.Close()
	if _, err := c3.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	c3.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := c3.Read(buf); err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("echo after heal: n=%d err=%v", n, err)
	}
	if p.Stats().Refused == 0 {
		t.Fatal("cut produced no refused count")
	}
}

func TestTCPProxyCorruptsStream(t *testing.T) {
	echo := echoTCP(t)
	p, err := NewTCPProxy("127.0.0.1:0", echo, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.SetFault(Fault{Corrupt: 1.0}); err != nil {
		t.Fatal(err)
	}
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("immaculate bytes")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf[:n], msg[:n]) {
		t.Fatal("corrupt=1.0 left the stream intact")
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	in := "@0s drop=0.1 delay=5ms jitter=2ms; @10s cut; @15s heal"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("got %d events, want 3", len(sched))
	}
	if sched[0].Fault.Drop != 0.1 || sched[0].Fault.Delay != 5*time.Millisecond || sched[0].Fault.Jitter != 2*time.Millisecond {
		t.Fatalf("event 0 parsed wrong: %+v", sched[0])
	}
	if !sched[1].Fault.Cut || sched[1].At != 10*time.Second {
		t.Fatalf("event 1 parsed wrong: %+v", sched[1])
	}
	if !sched[2].Fault.IsZero() {
		t.Fatalf("heal should be zero fault: %+v", sched[2])
	}
	// Round-trip: rendering and reparsing yields the same schedule.
	again, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sched.String(), err)
	}
	if len(again) != len(sched) {
		t.Fatalf("round trip changed length: %d vs %d", len(again), len(sched))
	}
	for i := range sched {
		if again[i] != sched[i] {
			t.Fatalf("round trip changed event %d: %+v vs %+v", i, again[i], sched[i])
		}
	}
}

func TestParseScheduleSortsAndRejects(t *testing.T) {
	sched, err := ParseSchedule("@10s cut; @0s drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].At != 0 || sched[1].At != 10*time.Second {
		t.Fatalf("schedule not sorted: %+v", sched)
	}
	for _, bad := range []string{
		"",
		"cut",                  // missing @time
		"@5s",                  // no terms
		"@-1s cut",             // negative time
		"@0s drop=1.5",         // out of range
		"@0s drop=nope",        // not a number
		"@0s delay=fast",       // not a duration
		"@0s explode",          // unknown term
		"@0s frob=1",           // unknown key
		"@bogus cut",           // bad duration
		"@0s corrupt=-0.1",     // negative probability
		"; ;",                  // only separators
		"@0s drop=0.1 dup=2.0", // second term out of range
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted invalid input", bad)
		}
	}
}

func TestScheduleApply(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sched, err := ParseSchedule("@0s cut; @60ms heal")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	done := sched.Apply(p, stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("schedule did not finish")
	}
	if f := p.Fault(); !f.IsZero() {
		t.Fatalf("after heal, fault = %+v, want zero", f)
	}
}

func TestScheduleApplyStop(t *testing.T) {
	echo := echoUDP(t)
	p, err := NewUDPProxy("127.0.0.1:0", echo, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sched, err := ParseSchedule("@0s cut; @10m heal")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := sched.Apply(p, stop)
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stopped schedule did not unwind")
	}
	if f := p.Fault(); !f.Cut {
		t.Fatalf("stop should leave the cut in place, fault = %+v", f)
	}
}

func TestFaultValidate(t *testing.T) {
	if err := (Fault{Drop: 0.5, Delay: time.Millisecond}).validate(); err != nil {
		t.Fatalf("valid fault rejected: %v", err)
	}
	for _, f := range []Fault{
		{Drop: -0.1}, {Dup: 1.01}, {Reorder: 2}, {Corrupt: -1},
		{Delay: -time.Second}, {Jitter: -time.Second},
	} {
		if err := f.validate(); err == nil {
			t.Errorf("invalid fault %+v accepted", f)
		}
	}
	if !strings.Contains((Schedule{{At: time.Second, Fault: Fault{Cut: true}}}).String(), "cut") {
		t.Fatal("String omitted cut")
	}
}
