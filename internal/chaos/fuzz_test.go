package chaos

import "testing"

// FuzzParseSchedule asserts the schedule parser never panics and that
// every accepted schedule survives a String() round trip: rendering a
// parsed schedule and reparsing it must yield the same events.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"@0s drop=0.1 delay=5ms jitter=2ms; @10s cut; @15s heal",
		"@1s cut",
		"@0s heal",
		"@500ms dup=0.5 reorder=0.25 corrupt=0.01",
		"@2m drop=1",
		"@0s cut drop=0.9; @1h heal",
		"@3s delay=1s",
		"",
		"@-1s cut",
		"@0s drop=2",
		"@0s frobnicate",
		"; ; ;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			return
		}
		if len(sched) == 0 {
			t.Fatalf("ParseSchedule(%q) returned empty schedule without error", s)
		}
		for i := 1; i < len(sched); i++ {
			if sched[i].At < sched[i-1].At {
				t.Fatalf("ParseSchedule(%q) not sorted: %v before %v", s, sched[i-1].At, sched[i].At)
			}
		}
		for _, ev := range sched {
			if err := ev.Fault.validate(); err != nil {
				t.Fatalf("ParseSchedule(%q) accepted invalid fault: %v", s, err)
			}
		}
		again, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", s, sched.String(), err)
		}
		if len(again) != len(sched) {
			t.Fatalf("round trip of %q changed event count %d -> %d", s, len(sched), len(again))
		}
		for i := range sched {
			if again[i] != sched[i] {
				t.Fatalf("round trip of %q changed event %d: %+v -> %+v", s, i, sched[i], again[i])
			}
		}
	})
}
