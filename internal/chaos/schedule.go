package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Event is one step of a fault schedule: at offset At from the start
// of the run, the proxy's fault becomes Fault (absolute replacement,
// not a delta).
type Event struct {
	At    time.Duration
	Fault Fault
}

// Schedule is a time-ordered fault script for one proxy.
type Schedule []Event

// ParseSchedule parses a compact fault script of the form
//
//	@0s drop=0.1 delay=5ms jitter=2ms; @10s cut; @15s heal
//
// Events are separated by semicolons. Each event starts with
// "@<duration>" followed by one or more terms:
//
//	cut            sever the link
//	heal           fully transparent (explicit no-fault marker)
//	drop=<p>       drop probability in [0,1]
//	dup=<p>        duplication probability
//	reorder=<p>    reorder probability
//	corrupt=<p>    byte-corruption probability
//	delay=<dur>    fixed added latency (Go duration syntax)
//	jitter=<dur>   extra uniform latency
//
// Each event's fault starts from zero, so terms state the full fault
// active from that point on. The returned schedule is sorted by time.
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	for _, raw := range strings.Split(s, ";") {
		ev := strings.TrimSpace(raw)
		if ev == "" {
			continue
		}
		fields := strings.Fields(ev)
		if !strings.HasPrefix(fields[0], "@") {
			return nil, fmt.Errorf("chaos: event %q must start with @<duration>", ev)
		}
		at, err := time.ParseDuration(strings.TrimPrefix(fields[0], "@"))
		if err != nil {
			return nil, fmt.Errorf("chaos: event time %q: %v", fields[0], err)
		}
		if at < 0 {
			return nil, fmt.Errorf("chaos: negative event time %v", at)
		}
		if len(fields) == 1 {
			return nil, fmt.Errorf("chaos: event %q has no fault terms", ev)
		}
		var f Fault
		for _, term := range fields[1:] {
			if err := applyTerm(&f, term); err != nil {
				return nil, err
			}
		}
		if err := f.validate(); err != nil {
			return nil, err
		}
		sched = append(sched, Event{At: at, Fault: f})
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule")
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

func applyTerm(f *Fault, term string) error {
	switch term {
	case "cut":
		f.Cut = true
		return nil
	case "heal":
		// Explicit transparency marker; the fault already starts zeroed,
		// so heal on its own means "back to normal".
		return nil
	}
	key, val, ok := strings.Cut(term, "=")
	if !ok {
		return fmt.Errorf("chaos: unknown term %q", term)
	}
	switch key {
	case "drop", "dup", "reorder", "corrupt":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("chaos: %s=%q: %v", key, val, err)
		}
		switch key {
		case "drop":
			f.Drop = p
		case "dup":
			f.Dup = p
		case "reorder":
			f.Reorder = p
		case "corrupt":
			f.Corrupt = p
		}
	case "delay", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("chaos: %s=%q: %v", key, val, err)
		}
		if key == "delay" {
			f.Delay = d
		} else {
			f.Jitter = d
		}
	default:
		return fmt.Errorf("chaos: unknown term %q", term)
	}
	return nil
}

// String renders the schedule back into ParseSchedule syntax.
func (s Schedule) String() string {
	var b strings.Builder
	for i, ev := range s {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "@%s", ev.At)
		f := ev.Fault
		if f.IsZero() {
			b.WriteString(" heal")
			continue
		}
		if f.Cut {
			b.WriteString(" cut")
		}
		if f.Drop > 0 {
			fmt.Fprintf(&b, " drop=%g", f.Drop)
		}
		if f.Dup > 0 {
			fmt.Fprintf(&b, " dup=%g", f.Dup)
		}
		if f.Reorder > 0 {
			fmt.Fprintf(&b, " reorder=%g", f.Reorder)
		}
		if f.Corrupt > 0 {
			fmt.Fprintf(&b, " corrupt=%g", f.Corrupt)
		}
		if f.Delay > 0 {
			fmt.Fprintf(&b, " delay=%s", f.Delay)
		}
		if f.Jitter > 0 {
			fmt.Fprintf(&b, " jitter=%s", f.Jitter)
		}
	}
	return b.String()
}

// faultSetter is the subset of proxy behavior Apply needs; both proxy
// types satisfy it.
type faultSetter interface {
	SetFault(Fault) error
}

// Apply replays the schedule against a proxy in real time, starting
// now. It returns a channel closed when the last event has fired; send
// on stop (or close it) to abandon the remaining events.
func (s Schedule) Apply(target faultSetter, stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		start := time.Now()
		for _, ev := range s {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stop:
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
			target.SetFault(ev.Fault) //nolint:errcheck // validated at parse time
		}
	}()
	return done
}
