// Package chaos provides seeded, reusable network fault injection for
// tests and soak harnesses. It generalizes the ad-hoc cuttable TCP
// forwarders used by the replication end-to-end tests into two proxy
// types — UDPProxy for datagram traffic (DNS queries) and TCPProxy for
// stream traffic (report/replication sockets, probe targets) — that
// apply a configurable Fault to everything flowing through them:
// probabilistic drop, duplication, reordering, byte corruption, fixed
// delay plus uniform jitter, and a hard link cut.
//
// Proxies are seeded so a failing soak run can be replayed with the
// same fault decisions (modulo goroutine scheduling). Faults are
// swapped atomically with SetFault, so a test can cut a link, heal it,
// and ramp loss rates mid-run; Schedule/ParseSchedule give that a
// declarative form.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what a proxy does to traffic. The zero value is a
// transparent proxy. Probabilities are per-datagram (UDP) or per-chunk
// (TCP) and must lie in [0, 1].
type Fault struct {
	Drop    float64       // probability a datagram is silently dropped
	Dup     float64       // probability a datagram is delivered twice
	Reorder float64       // probability a datagram is held and released after its successor
	Corrupt float64       // probability one random byte is flipped
	Delay   time.Duration // fixed latency added to every delivery
	Jitter  time.Duration // extra uniform latency in [0, Jitter)
	Cut     bool          // sever the link: drop all datagrams, refuse/kill TCP conns
}

// IsZero reports whether the fault is fully transparent.
func (f Fault) IsZero() bool {
	return f == Fault{}
}

func (f Fault) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", f.Drop}, {"dup", f.Dup}, {"reorder", f.Reorder}, {"corrupt", f.Corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if f.Delay < 0 || f.Jitter < 0 {
		return errors.New("chaos: negative delay/jitter")
	}
	return nil
}

// Stats counts what a proxy did to traffic. Retrieved atomically via
// the proxy's Stats method.
type Stats struct {
	Forwarded uint64 // datagrams/chunks delivered (duplicates counted)
	Dropped   uint64 // datagrams discarded by Drop or Cut
	Dupped    uint64 // extra copies delivered by Dup
	Reordered uint64 // datagrams delivered out of order
	Corrupted uint64 // datagrams/chunks with a flipped byte
	Refused   uint64 // TCP connections refused or killed by Cut
}

type counters struct {
	forwarded atomic.Uint64
	dropped   atomic.Uint64
	dupped    atomic.Uint64
	reordered atomic.Uint64
	corrupted atomic.Uint64
	refused   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Forwarded: c.forwarded.Load(),
		Dropped:   c.dropped.Load(),
		Dupped:    c.dupped.Load(),
		Reordered: c.reordered.Load(),
		Corrupted: c.corrupted.Load(),
		Refused:   c.refused.Load(),
	}
}

// rng is a mutex-guarded seeded source shared by a proxy's goroutines.
type rng struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newRNG(seed uint64) *rng {
	return &rng{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

func (g *rng) float64() float64 {
	g.mu.Lock()
	v := g.r.Float64()
	g.mu.Unlock()
	return v
}

func (g *rng) intN(n int) int {
	g.mu.Lock()
	v := g.r.IntN(n)
	g.mu.Unlock()
	return v
}

// faultState holds the active fault behind an atomic pointer so the
// datapath never takes a lock to read it.
type faultState struct {
	p atomic.Pointer[Fault]
}

func (s *faultState) store(f Fault) { s.p.Store(&f) }
func (s *faultState) load() Fault   { return *s.p.Load() }

// delayFor draws the total delivery delay for one datagram.
func delayFor(f Fault, g *rng) time.Duration {
	d := f.Delay
	if f.Jitter > 0 {
		d += time.Duration(g.float64() * float64(f.Jitter))
	}
	return d
}

// corruptInPlace flips one random byte of b.
func corruptInPlace(b []byte, g *rng) {
	if len(b) == 0 {
		return
	}
	b[g.intN(len(b))] ^= 1 << uint(g.intN(8))
}

// ---------------------------------------------------------------------------
// UDPProxy

// UDPProxy forwards datagrams between clients and a single upstream
// target, applying the active Fault in both directions. Each client
// source address gets its own upstream socket so responses route back
// to the right client.
type UDPProxy struct {
	ln     *net.UDPConn
	target string
	fault  faultState
	rng    *rng
	stats  counters

	mu       sync.Mutex
	sessions map[netip.AddrPort]*udpSession
	held     map[bool][]heldPacket // per-direction reorder slots (toUpstream key)
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

type heldPacket struct {
	payload []byte
	send    func([]byte)
}

type udpSession struct {
	up     *net.UDPConn
	client netip.AddrPort
}

// NewUDPProxy listens on listenAddr (use "127.0.0.1:0" in tests) and
// forwards datagrams to target. The seed fixes the fault-decision
// stream.
func NewUDPProxy(listenAddr, target string, seed uint64) (*UDPProxy, error) {
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen addr: %w", err)
	}
	ln, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &UDPProxy{
		ln:       ln,
		target:   target,
		rng:      newRNG(seed),
		sessions: make(map[netip.AddrPort]*udpSession),
		held:     map[bool][]heldPacket{},
		done:     make(chan struct{}),
	}
	p.fault.store(Fault{})
	p.wg.Add(1)
	go p.readClients()
	return p, nil
}

// Addr returns the proxy's listen address to hand to clients.
func (p *UDPProxy) Addr() string { return p.ln.LocalAddr().String() }

// SetFault atomically replaces the active fault. It returns an error
// only for out-of-range probabilities.
func (p *UDPProxy) SetFault(f Fault) error {
	if err := f.validate(); err != nil {
		return err
	}
	p.fault.store(f)
	return nil
}

// Fault returns the active fault.
func (p *UDPProxy) Fault() Fault { return p.fault.load() }

// Stats returns a snapshot of the proxy's traffic counters.
func (p *UDPProxy) Stats() Stats { return p.stats.snapshot() }

// Close stops the proxy and releases all sockets.
func (p *UDPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	sessions := p.sessions
	p.sessions = map[netip.AddrPort]*udpSession{}
	p.held = map[bool][]heldPacket{}
	p.mu.Unlock()

	p.ln.Close()
	for _, s := range sessions {
		s.up.Close()
	}
	p.wg.Wait()
	return nil
}

func (p *UDPProxy) readClients() {
	defer p.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, client, err := p.ln.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			if isTemporary(err) {
				continue
			}
			return
		}
		sess, err := p.session(client)
		if err != nil {
			continue
		}
		pkt := append([]byte(nil), buf[:n]...)
		p.deliver(pkt, true, func(b []byte) {
			sess.up.Write(b) //nolint:errcheck // lossy by design
		})
	}
}

// session returns (creating on first use) the upstream socket for a
// client, plus its upstream→client pump goroutine.
func (p *UDPProxy) session(client netip.AddrPort) (*udpSession, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, net.ErrClosed
	}
	if s, ok := p.sessions[client]; ok {
		return s, nil
	}
	raddr, err := net.ResolveUDPAddr("udp", p.target)
	if err != nil {
		return nil, err
	}
	up, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	s := &udpSession{up: up, client: client}
	p.sessions[client] = s
	p.wg.Add(1)
	go p.readUpstream(s)
	return s, nil
}

func (p *UDPProxy) readUpstream(s *udpSession) {
	defer p.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, err := s.up.Read(buf)
		if err != nil {
			return
		}
		pkt := append([]byte(nil), buf[:n]...)
		p.deliver(pkt, false, func(b []byte) {
			p.ln.WriteToUDPAddrPort(b, s.client) //nolint:errcheck // lossy by design
		})
	}
}

// deliver applies the active fault to one datagram and hands surviving
// copies to send, possibly from a timer goroutine when delayed.
func (p *UDPProxy) deliver(pkt []byte, toUpstream bool, send func([]byte)) {
	f := p.fault.load()
	if f.Cut || (f.Drop > 0 && p.rng.float64() < f.Drop) {
		p.stats.dropped.Add(1)
		return
	}
	if f.Corrupt > 0 && p.rng.float64() < f.Corrupt {
		corruptInPlace(pkt, p.rng)
		p.stats.corrupted.Add(1)
	}

	// Reordering: hold this datagram; it is released right after the
	// next one in the same direction goes out (or by a safety timer if
	// no successor arrives).
	if f.Reorder > 0 && p.rng.float64() < f.Reorder {
		p.hold(pkt, toUpstream, send)
		return
	}

	p.send(pkt, f, send)
	if f.Dup > 0 && p.rng.float64() < f.Dup {
		p.stats.dupped.Add(1)
		p.send(append([]byte(nil), pkt...), f, send)
	}
	p.releaseHeld(toUpstream)
}

func (p *UDPProxy) send(pkt []byte, f Fault, send func([]byte)) {
	d := delayFor(f, p.rng)
	p.stats.forwarded.Add(1)
	if d <= 0 {
		send(pkt)
		return
	}
	time.AfterFunc(d, func() {
		select {
		case <-p.done:
		default:
			send(pkt)
		}
	})
}

func (p *UDPProxy) hold(pkt []byte, toUpstream bool, send func([]byte)) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.held[toUpstream] = append(p.held[toUpstream], heldPacket{payload: pkt, send: send})
	p.mu.Unlock()
	// Safety valve: a held datagram with no successor would be lost
	// forever, which turns "reorder" into "drop" on quiet links.
	time.AfterFunc(100*time.Millisecond, func() { p.releaseHeld(toUpstream) })
}

func (p *UDPProxy) releaseHeld(toUpstream bool) {
	p.mu.Lock()
	held := p.held[toUpstream]
	p.held[toUpstream] = nil
	p.mu.Unlock()
	f := p.fault.load()
	for _, h := range held {
		p.stats.reordered.Add(1)
		p.send(h.payload, f, h.send)
	}
}

// ---------------------------------------------------------------------------
// TCPProxy

// TCPProxy forwards byte streams between clients and a single upstream
// target. Cut kills existing connections and refuses new ones; Heal
// (SetFault with Cut=false) restores service for new connections.
// Delay/Jitter throttle each copied chunk; Corrupt flips a byte per
// chunk with the given probability. Drop/Dup/Reorder do not apply to
// streams and are ignored.
type TCPProxy struct {
	ln     net.Listener
	target string
	fault  faultState
	rng    *rng
	stats  counters

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewTCPProxy listens on listenAddr and forwards connections to target.
func NewTCPProxy(listenAddr, target string, seed uint64) (*TCPProxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &TCPProxy{
		ln:     ln,
		target: target,
		rng:    newRNG(seed),
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	p.fault.store(Fault{})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *TCPProxy) Addr() string { return p.ln.Addr().String() }

// SetFault atomically replaces the active fault. Setting Cut also
// severs all established connections.
func (p *TCPProxy) SetFault(f Fault) error {
	if err := f.validate(); err != nil {
		return err
	}
	p.fault.store(f)
	if f.Cut {
		p.killConns()
	}
	return nil
}

// Fault returns the active fault.
func (p *TCPProxy) Fault() Fault { return p.fault.load() }

// Cut severs the link, preserving the other fault fields.
func (p *TCPProxy) Cut() {
	f := p.fault.load()
	f.Cut = true
	p.SetFault(f) //nolint:errcheck // fields already validated
}

// Heal restores the link, preserving the other fault fields.
func (p *TCPProxy) Heal() {
	f := p.fault.load()
	f.Cut = false
	p.SetFault(f) //nolint:errcheck // fields already validated
}

// Stats returns a snapshot of the proxy's traffic counters.
func (p *TCPProxy) Stats() Stats { return p.stats.snapshot() }

// Close stops the proxy and severs all connections.
func (p *TCPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.ln.Close()
	p.killConns()
	p.wg.Wait()
	return nil
}

func (p *TCPProxy) killConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
		p.stats.refused.Add(1)
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

func (p *TCPProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *TCPProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *TCPProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			if isTemporary(err) {
				continue
			}
			return
		}
		if p.fault.load().Cut {
			p.stats.refused.Add(1)
			client.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			p.stats.refused.Add(1)
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(up) {
			client.Close()
			up.Close()
			return
		}
		p.wg.Add(2)
		go p.pipe(client, up)
		go p.pipe(up, client)
	}
}

func (p *TCPProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	defer func() {
		dst.Close()
		src.Close()
		p.untrack(dst)
		p.untrack(src)
	}()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := p.fault.load()
			if f.Cut {
				return
			}
			chunk := buf[:n]
			if f.Corrupt > 0 && p.rng.float64() < f.Corrupt {
				corruptInPlace(chunk, p.rng)
				p.stats.corrupted.Add(1)
			}
			if d := delayFor(f, p.rng); d > 0 {
				select {
				case <-time.After(d):
				case <-p.done:
					return
				}
			}
			if _, err := dst.Write(chunk); err != nil {
				return
			}
			p.stats.forwarded.Add(1)
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}

func isTemporary(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
