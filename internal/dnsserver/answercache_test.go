package dnsserver

import (
	"bytes"
	"math"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
	"dnslb/internal/simcore"
)

// cacheServer builds (without starting — the tests drive handle
// directly) a cache-enabled server over the standard 7-node test
// cluster with every query mapped to domain 0.
func cacheServer(t *testing.T, policyName string) (*Server, *core.State) {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "cache"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      func(netip.Addr) int { return 0 },
		AnswerCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, state
}

// askA sends one IN A query for the zone through the handler and
// returns the decoded response.
func askA(t *testing.T, srv *Server, id uint16, rd bool) *dnswire.Message {
	t.Helper()
	q := &dnswire.Message{
		Header:    dnswire.Header{ID: id, RecursionDesired: rd},
		Questions: []dnswire.Question{{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := srv.handle(wire, netip.MustParseAddr("127.0.0.1"), engine.TransportUDP, dnswire.MaxUDPPayload, nil)
	if out == nil {
		t.Fatal("query dropped")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatalf("bad response: %v", err)
	}
	return resp
}

// answerServer extracts the chosen server index from the A answer.
func answerServer(t *testing.T, resp *dnswire.Message) int {
	t.Helper()
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("unexpected response: rcode %v, %d answers", resp.Header.RCode, len(resp.Answers))
	}
	a, ok := resp.Answers[0].Data.(dnswire.A)
	if !ok {
		t.Fatalf("answer is %T, want A", resp.Answers[0].Data)
	}
	b := a.Addr.As4()
	return int(b[3]) - 1
}

// freshTTL computes what a fresh TTL calibration returns right now for
// (domain 0, server) — the value any served answer must carry.
func freshTTL(t *testing.T, state *core.State, server int) uint32 {
	t.Helper()
	tp, err := core.NewTTLPolicy(core.TTLVariant{Classes: core.PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	ttl := uint32(math.Round(tp.TTL(state.Snapshot(), 0, server)))
	if ttl == 0 {
		ttl = 1
	}
	return ttl
}

// TestAnswerCacheHitServesIdenticalBytes warms the cache and proves a
// hit is byte-identical to the miss that filled it, up to the message
// ID and the echoed RD flag.
func TestAnswerCacheHitServesIdenticalBytes(t *testing.T) {
	srv, _ := cacheServer(t, "RR")
	// RR over 7 servers: queries 0..6 fill one entry per server,
	// queries 7..13 revisit them in the same order as hits.
	first := make([][]byte, 7)
	for i := 0; i < 7; i++ {
		resp := askA(t, srv, uint16(i), true)
		wire, err := resp.Pack()
		if err != nil {
			t.Fatal(err)
		}
		first[answerServer(t, resp)] = wire
	}
	if st := srv.AnswerCache(); st.Hits != 0 || st.Misses != 7 {
		t.Fatalf("after warmup: %+v, want 7 misses, 0 hits", st)
	}
	for i := 7; i < 14; i++ {
		resp := askA(t, srv, uint16(i), true)
		wire, err := resp.Pack()
		if err != nil {
			t.Fatal(err)
		}
		prev := first[answerServer(t, resp)]
		if prev == nil {
			t.Fatalf("query %d hit server never seen in warmup", i)
		}
		// Neutralize the ID (bytes 0-1); RD was true both times.
		pw := append([]byte(nil), prev...)
		ww := append([]byte(nil), wire...)
		pw[0], pw[1], ww[0], ww[1] = 0, 0, 0, 0
		if !bytes.Equal(pw, ww) {
			t.Fatalf("hit response differs from miss response beyond the ID:\n%x\n%x", prev, wire)
		}
	}
	if st := srv.AnswerCache(); st.Hits != 7 {
		t.Fatalf("after revisit: %+v, want 7 hits", st)
	}
	// RD must be echoed per query, not taken from the cached bytes.
	resp := askA(t, srv, 99, false)
	if resp.Header.RecursionDesired {
		t.Error("RD=0 query got RD=1 response from the cache")
	}
	if resp.Header.ID != 99 {
		t.Errorf("response ID %d, want 99", resp.Header.ID)
	}
}

// warm fills the cache for every currently scheduled server and
// returns per-server response TTLs observed.
func warm(t *testing.T, srv *Server, n int) map[int]uint32 {
	t.Helper()
	seen := make(map[int]uint32)
	for i := 0; i < n; i++ {
		resp := askA(t, srv, uint16(i), true)
		seen[answerServer(t, resp)] = resp.Answers[0].TTL
	}
	return seen
}

// TestAnswerCacheInvalidation proves every reconfiguration event that
// changes the TTL calibration or membership evicts: after the event,
// served TTLs equal a fresh calibration (never the cached ones) and
// the invalidation counter advances.
func TestAnswerCacheInvalidation(t *testing.T) {
	t.Run("weights (estimator roll, TTL recalibration)", func(t *testing.T) {
		srv, state := cacheServer(t, "DRR2-TTL/S_K")
		warm(t, srv, 40)
		inv := srv.AnswerCache().Invalidations
		// Triple the hot domain's weight: domain 0's TTL shrinks.
		w := make([]float64, 20)
		copy(w, simcore.ZipfWeights(20, 1))
		w[0] *= 3
		if err := state.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			resp := askA(t, srv, uint16(100+i), true)
			server := answerServer(t, resp)
			if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
				t.Fatalf("stale TTL after weight change: server %d got %d, want %d",
					server, resp.Answers[0].TTL, want)
			}
		}
		if got := srv.AnswerCache().Invalidations; got <= inv {
			t.Errorf("invalidations did not advance across weight change: %d -> %d", inv, got)
		}
	})

	t.Run("capacity (reconfigure/SIGHUP reload)", func(t *testing.T) {
		srv, state := cacheServer(t, "DRR2-TTL/S_K")
		warm(t, srv, 40)
		inv := srv.AnswerCache().Invalidations
		// Same membership, server 0 at half capacity — the reload path.
		caps := make([]float64, 7)
		for i := range caps {
			caps[i] = state.Snapshot().Cluster().Capacity(i)
		}
		caps[0] /= 2
		if err := srv.Reconfigure(srv.serverAddrs(), caps); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			resp := askA(t, srv, uint16(100+i), true)
			server := answerServer(t, resp)
			if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
				t.Fatalf("stale TTL after capacity change: server %d got %d, want %d",
					server, resp.Answers[0].TTL, want)
			}
		}
		if got := srv.AnswerCache().Invalidations; got <= inv {
			t.Errorf("invalidations did not advance across capacity change: %d -> %d", inv, got)
		}
	})

	t.Run("join", func(t *testing.T) {
		srv, state := cacheServer(t, "DRR2-TTL/S_K")
		warm(t, srv, 40)
		inv := srv.AnswerCache().Invalidations
		if _, err := srv.Join(netip.MustParseAddr("10.0.0.8"), 400); err != nil {
			t.Fatal(err)
		}
		servers := make(map[int]bool)
		for i := 0; i < 80; i++ {
			resp := askA(t, srv, uint16(100+i), true)
			server := answerServer(t, resp)
			servers[server] = true
			if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
				t.Fatalf("stale TTL after join: server %d got %d, want %d",
					server, resp.Answers[0].TTL, want)
			}
		}
		if !servers[7] {
			t.Error("joined server 7 never scheduled after join")
		}
		if got := srv.AnswerCache().Invalidations; got <= inv {
			t.Errorf("invalidations did not advance across join: %d -> %d", inv, got)
		}
	})

	t.Run("drain", func(t *testing.T) {
		srv, state := cacheServer(t, "DRR2-TTL/S_K")
		warm(t, srv, 40)
		inv := srv.AnswerCache().Invalidations
		if _, err := srv.Drain(3); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			resp := askA(t, srv, uint16(100+i), true)
			server := answerServer(t, resp)
			if server == 3 {
				t.Fatal("draining server 3 still scheduled")
			}
			if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
				t.Fatalf("stale TTL after drain: server %d got %d, want %d",
					server, resp.Answers[0].TTL, want)
			}
		}
		if got := srv.AnswerCache().Invalidations; got <= inv {
			t.Errorf("invalidations did not advance across drain: %d -> %d", inv, got)
		}
	})

	t.Run("checkpoint restore", func(t *testing.T) {
		srv, state := cacheServer(t, "DRR2-TTL/S_K")
		warm(t, srv, 40)
		cp := srv.Checkpoint() // weights W1
		w := make([]float64, 20)
		copy(w, simcore.ZipfWeights(20, 1))
		w[0] *= 3
		if err := state.SetWeights(w); err != nil { // now W2
			t.Fatal(err)
		}
		warm(t, srv, 40) // cache holds W2-calibrated answers
		inv := srv.AnswerCache().Invalidations
		if err := srv.RestoreCheckpoint(cp, 0); err != nil { // back to W1
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			resp := askA(t, srv, uint16(200+i), true)
			server := answerServer(t, resp)
			if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
				t.Fatalf("stale TTL after checkpoint restore: server %d got %d, want %d",
					server, resp.Answers[0].TTL, want)
			}
		}
		if got := srv.AnswerCache().Invalidations; got <= inv {
			t.Errorf("invalidations did not advance across restore: %d -> %d", inv, got)
		}
	})
}

// TestAnswerCacheNoStaleUnderReloadLoad is the -race e2e: query
// workers hammer the handler while weights flip between two known
// settings. Every served TTL must match one of the two calibrations
// for the answered server — a third value would be a stale mix — and
// once the flipping stops, every answer must match the final
// calibration exactly.
func TestAnswerCacheNoStaleUnderReloadLoad(t *testing.T) {
	srv, state := cacheServer(t, "DRR2-TTL/S_K")

	w1 := simcore.ZipfWeights(20, 1)
	w2 := make([]float64, 20)
	copy(w2, w1)
	w2[0] *= 3

	tp, err := core.NewTTLPolicy(core.TTLVariant{Classes: core.PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	// The two admissible TTLs per server, one per weight setting.
	if err := state.SetWeights(w1); err != nil {
		t.Fatal(err)
	}
	want1 := make([]uint32, 7)
	for i := range want1 {
		want1[i] = uint32(math.Round(tp.TTL(state.Snapshot(), 0, i)))
	}
	if err := state.SetWeights(w2); err != nil {
		t.Fatal(err)
	}
	want2 := make([]uint32, 7)
	for i := range want2 {
		want2[i] = uint32(math.Round(tp.TTL(state.Snapshot(), 0, i)))
	}

	query := &dnswire.Message{
		Header:    dnswire.Header{ID: 1, RecursionDesired: true},
		Questions: []dnswire.Question{{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := query.Pack()
	if err != nil {
		t.Fatal(err)
	}
	from := netip.MustParseAddr("127.0.0.1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out := srv.handle(wire, from, engine.TransportUDP, dnswire.MaxUDPPayload, nil)
				resp, err := dnswire.Unpack(out)
				if err != nil {
					errs <- "unparseable response: " + err.Error()
					return
				}
				a, ok := resp.Answers[0].Data.(dnswire.A)
				if !ok {
					errs <- "non-A answer under load"
					return
				}
				b := a.Addr.As4()
				server := int(b[3]) - 1
				ttl := resp.Answers[0].TTL
				if ttl != want1[server] && ttl != want2[server] {
					errs <- "stale TTL mix under reload"
					return
				}
			}
		}()
	}
	// The reloader: flip the weights back and forth for a while.
	for i := 0; i < 200; i++ {
		w := w1
		if i%2 == 0 {
			w = w2
		}
		if err := state.SetWeights(w); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Settle on w1 and verify exact freshness.
	if err := state.SetWeights(w1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		resp := askA(t, srv, uint16(i), true)
		server := answerServer(t, resp)
		if resp.Answers[0].TTL != want1[server] {
			t.Fatalf("stale TTL after reload settled: server %d got %d, want %d",
				server, resp.Answers[0].TTL, want1[server])
		}
	}
	if st := srv.AnswerCache(); st.Hits == 0 {
		t.Error("cache never hit under load; test exercised nothing")
	}
}

// TestAnswerCacheDisabled proves the cache-off path still answers and
// reports zero counters.
func TestAnswerCacheDisabled(t *testing.T) {
	srv, state := testServerNoStart(t, "DRR2-TTL/S_K")
	resp := askA(t, srv, 5, true)
	server := answerServer(t, resp)
	if want := freshTTL(t, state, server); resp.Answers[0].TTL != want {
		t.Fatalf("TTL %d, want %d", resp.Answers[0].TTL, want)
	}
	if st := srv.AnswerCache(); st != (AnswerCacheStats{}) {
		t.Errorf("disabled cache has non-zero stats: %+v", st)
	}
}

// testServerNoStart is cacheServer without the cache.
func testServerNoStart(t *testing.T, policyName string) (*Server, *core.State) {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "cache-off"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      func(netip.Addr) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, state
}
