package dnsserver

import (
	"fmt"
	"math"
	"net/netip"
	"runtime/debug"

	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
)

// The query path: one wire-format message in, one out, whatever front
// end it arrived through (UDP, pipelined TCP, DoH). Scheduling goes
// through the engine's DecideQuery — the same lifecycle (snapshot
// filtering, selection, TTL, mapping ledger) the simulator drives —
// fed by an engine.QueryContext carrying the resolver address, the
// RFC 7871 client subnet when the query forwarded one, and the
// transport tag. This file only adds DNS semantics around it: message
// validation, rate limiting, scoped ECS echo, record assembly and
// truncation.
//
// Decoding uses the pooled zero-alloc decoder (dnswire.UnpackQuery);
// the cacheable query shape — IN A for the zone, standard opcode —
// is additionally served through the versioned hot-answer cache
// (answercache.go), making the steady-state query entirely
// allocation-free: pooled decode, cache hit, copy into the pooled
// response buffer, two-byte ID patch. ECS-carrying queries take the
// same path under a subnet-scoped cache key, so a scoped entry is
// never served across subnets. Every other shape (FORMERR, REFUSED,
// NOTIMP, NXDOMAIN, ANY, TXT, negative answers) builds a
// dnswire.Message as before; those paths are rare and their behavior
// is byte-compatible with the pre-cache server.

// safeHandle is handle behind a panic recovery: a bug in the query
// path must not kill the serve worker. The panic is logged with its
// stack, counted, and the query dropped (the client retries; losing
// one datagram is the UDP failure model anyway).
func (s *Server) safeHandle(wire []byte, from netip.Addr, tr engine.Transport, maxSize int, dst []byte) (resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.logger.Error("panic in query handler",
				"panic", r, "raddr", from, "transport", tr, "stack", string(debug.Stack()))
			resp = nil
		}
	}()
	return s.handle(wire, from, tr, maxSize, dst)
}

// handle processes one wire-format query and returns the wire-format
// response (nil to drop), packed into dst's capacity when possible.
// dst must be a zero-length slice (or nil to allocate). handle touches
// no server-level lock: the engine and state are internally safe, and
// counters go to the caller's stats shard.
func (s *Server) handle(wire []byte, from netip.Addr, tr engine.Transport, maxSize int, dst []byte) []byte {
	idx := s.statsIndex(from)
	st := &s.stats[idx]
	st.queries.Add(1)
	if int(tr) < numTransports {
		s.tquery[idx].counts[tr].Add(1)
	}
	q := dnswire.GetQuery()
	defer dnswire.PutQuery(q)
	if err := q.UnpackQuery(wire); err != nil || q.QDCount == 0 {
		st.formerr.Add(1)
		if len(wire) < 2 {
			return nil // cannot even echo an ID
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(wire[0])<<8 | uint16(wire[1]),
			Response: true,
			RCode:    dnswire.RCodeFormErr,
		}}
		return mustPack(resp, dst)
	}
	if q.Header.Response {
		return nil // never answer responses
	}
	if s.limiter != nil && !s.limiter.Allow(from) {
		st.ratelimited.Add(1)
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       q.Header.ID,
			Response: true,
			OpCode:   q.Header.OpCode,
			RCode:    dnswire.RCodeRefused,
		}}
		return mustPack(resp, dst)
	}
	// Degraded mode (overload.go): while the admission controller has
	// the server degraded, address queries for the zone skip the policy,
	// the estimator feed, and the answer cache, and are served by the
	// engine's static capacity-weighted round-robin ladder with a short
	// TTL. Checked before the hot path so no degraded answer is ever
	// cached (its TTL is not the policy's) and no cached pre-degradation
	// answer is served (its TTL may outlive the episode).
	if s.over != nil && s.over.active() && q.Header.OpCode == dnswire.OpQuery &&
		(q.Type == dnswire.TypeA || q.Type == dnswire.TypeANY) &&
		q.Class == dnswire.ClassIN && string(q.Name) == s.zone {
		return s.handleDegraded(q, from, idx, st, maxSize, dst)
	}
	// The wire-speed fast path. string(q.Name) in a comparison does not
	// allocate; the name is already canonical (lower-case, trailing
	// dot), so this is the same zone test the slow path performs.
	// ECS-carrying queries qualify too: the cache key grows the scoped
	// subnet, so a scoped entry only ever serves its own subnet.
	if s.answers != nil && q.Header.OpCode == dnswire.OpQuery &&
		q.Type == dnswire.TypeA && q.Class == dnswire.ClassIN &&
		string(q.Name) == s.zone {
		return s.handleHot(q, from, tr, idx, st, maxSize, dst)
	}
	return s.handleCold(q, from, tr, idx, st, maxSize, dst)
}

// queryContext assembles the engine's decision input for one query.
func queryContext(q *dnswire.Query, from netip.Addr, tr engine.Transport) engine.QueryContext {
	qc := engine.QueryContext{Resolver: from, Transport: tr}
	if q.HasECS && q.ECS.Prefix.IsValid() {
		qc.ClientSubnet = q.ECS.Prefix
	}
	return qc
}

// echoECS attaches the RFC 7871 response option: the query's option
// echoed with the scope the decision reports (the honoured source
// prefix when the answer was tailored to the client's subnet, 0
// otherwise). Observes the scope histogram when instrumented.
func (s *Server) echoECS(resp *dnswire.Message, q *dnswire.Query, from netip.Addr, idx uint32, scope uint8) {
	if err := resp.SetClientSubnet(dnswire.EchoClientSubnet(q.ECS, scope), dnswire.MaxUDPPayload); err != nil {
		s.logger.Debug("ECS echo failed", "err", err, "raddr", from)
		return
	}
	if s.metrics != nil {
		s.metrics.ecsScope.ObserveHint(idx, float64(scope))
	}
}

// handleHot answers the cacheable query shape — IN A for the zone,
// standard opcode — through the versioned hot-answer cache. One
// DecideQuery per query as always (the cache stores response bytes,
// not decisions); a hit serves the pre-packed response with an ID/RD
// patch, a miss packs once and publishes the bytes for the next query
// that draws the same (domain, server, subnet) triple at the same
// state version. Subnet-blind queries use the invalid zero subnet as
// their key dimension, preserving the pre-ECS cache behavior exactly.
func (s *Server) handleHot(q *dnswire.Query, from netip.Addr, tr engine.Transport, idx uint32, st *statsShard, maxSize int, dst []byte) []byte {
	qc := queryContext(q, from, tr)
	// The version is read before Decide; if a reconfiguration lands in
	// between, the stored entry's TTL/address equality checks still
	// guarantee any bytes served are identical to a fresh pack.
	ver := s.eng.StateVersion()
	qd, err := s.eng.DecideQuery(qc)
	if err != nil {
		st.servfail.Add(1)
		resp := &dnswire.Message{
			Header: dnswire.Header{
				ID:               q.Header.ID,
				Response:         true,
				OpCode:           dnswire.OpQuery,
				Authoritative:    true,
				RecursionDesired: q.Header.RecursionDesired,
				RCode:            dnswire.RCodeServFail,
			},
			Questions: []dnswire.Question{{Name: s.zone, Type: q.Type, Class: q.Class}},
		}
		return mustPack(resp, dst)
	}
	ttl := uint32(math.Round(qd.TTL))
	if ttl == 0 {
		ttl = 1
	}
	if s.metrics != nil {
		s.metrics.ttl.ObserveHint(idx, qd.TTL)
	}
	// The cache key's subnet dimension: the scoped client subnet when
	// it drove classification, invalid (subnet-blind) otherwise. Exact
	// prefix equality in the cache guarantees a scoped entry is never
	// served across subnets. An ECS query whose subnet did NOT scope the
	// decision (override mode) bypasses the cache entirely: its response
	// still echoes the option (scope 0), so its bytes are neither
	// reusable under the blind key nor keyed by any subnet.
	var subnet netip.Prefix
	if qd.ClientScoped {
		subnet = qc.ClientSubnet.Masked()
	}
	cacheable := !q.HasECS || qd.ClientScoped
	addr := s.serverAddrs()[qd.Server]
	if cacheable {
		if e := s.answers.lookup(qd.Domain, qd.Server, ver, ttl, addr, subnet); e != nil && len(e.wire) <= maxSize {
			st.answered.Add(1)
			if q.HasECS && s.metrics != nil {
				s.metrics.ecsScope.ObserveHint(idx, float64(qd.Scope))
			}
			return e.appendAnswer(dst, q.Header.ID, q.Header.RecursionDesired)
		}
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			OpCode:           dnswire.OpQuery,
			Authoritative:    true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: []dnswire.Question{{Name: s.zone, Type: q.Type, Class: q.Class}},
		Answers: []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: addr},
		}},
	}
	if q.HasECS {
		s.echoECS(resp, q, from, idx, qd.Scope)
	}
	st.answered.Add(1)
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		// Unreachable for UDP (a single compressed A answer plus the
		// OPT record fits 512 bytes), but kept for parity with the slow
		// path.
		resp.Answers = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		return mustPack(resp, out[:0])
	}
	if out != nil && cacheable {
		s.answers.store(qd.Domain, qd.Server, ver, ttl, addr, subnet, out)
	}
	return out
}

// handleDegraded answers an address query for the zone through the
// degraded decision ladder: engine.DecideFallback (static
// capacity-weighted smooth WRR over live members) with the configured
// short TTL. SERVFAIL is still possible — but only when every server
// is genuinely unschedulable, never because of load. ECS options are
// echoed with scope zero ("answer not tailored to your subnet"), which
// is exactly true of the static ladder.
func (s *Server) handleDegraded(q *dnswire.Query, from netip.Addr, idx uint32, st *statsShard, maxSize int, dst []byte) []byte {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			OpCode:           dnswire.OpQuery,
			Authoritative:    true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: []dnswire.Question{{Name: s.zone, Type: q.Type, Class: q.Class}},
	}
	d, err := s.eng.DecideFallback(s.over.cfg.DegradedTTL)
	if err != nil {
		resp.Header.RCode = dnswire.RCodeServFail
		st.servfail.Add(1)
		return mustPack(resp, dst)
	}
	ttl := uint32(math.Round(d.TTL))
	if ttl == 0 {
		ttl = 1
	}
	if s.metrics != nil {
		s.metrics.ttl.ObserveHint(idx, d.TTL)
	}
	resp.Answers = []dnswire.ResourceRecord{{
		Name:  s.zone,
		Type:  dnswire.TypeA,
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: s.serverAddrs()[d.Server]},
	}}
	if q.HasECS {
		s.echoECS(resp, q, from, idx, 0)
	}
	st.answered.Add(1)
	s.over.noteDegradedAnswer(idx)
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		out = mustPack(resp, out[:0])
	}
	return out
}

// handleCold serves every non-cacheable shape by building a
// dnswire.Message, exactly as the server did before the cache: NOTIMP,
// NXDOMAIN, ECS-classified answers, ANY, TXT, negative answers, and
// all A traffic when the cache is disabled.
func (s *Server) handleCold(q *dnswire.Query, from netip.Addr, tr engine.Transport, idx uint32, st *statsShard, maxSize int, dst []byte) []byte {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			OpCode:           q.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: []dnswire.Question{{Name: string(q.Name), Type: q.Type, Class: q.Class}},
	}
	if q.Header.OpCode != dnswire.OpQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		st.notimp.Add(1)
		return mustPack(resp, dst)
	}
	if resp.Questions[0].Name != s.zone {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.nxdomain.Add(1)
		return mustPack(resp, dst)
	}
	switch q.Type {
	case dnswire.TypeA, dnswire.TypeANY:
		// RFC 7871 Client Subnet: DecideQuery classifies the
		// originating domain from the forwarded client subnet (per the
		// configured ECS mode) instead of the resolver's own transport
		// address, and reports the scope to echo with the option.
		qd, err := s.eng.DecideQuery(queryContext(q, from, tr))
		if err != nil {
			resp.Header.RCode = dnswire.RCodeServFail
			st.servfail.Add(1)
			return mustPack(resp, dst)
		}
		ttl := uint32(math.Round(qd.TTL))
		if ttl == 0 {
			ttl = 1
		}
		if s.metrics != nil {
			s.metrics.ttl.ObserveHint(idx, qd.TTL)
		}
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: s.serverAddrs()[qd.Server]},
		}}
		if q.HasECS {
			s.echoECS(resp, q, from, idx, qd.Scope)
		}
		st.answered.Add(1)
	case dnswire.TypeTXT:
		// Debug visibility: the policy name and decision counters.
		stats := s.policy.Stats()
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeTXT,
			Class: dnswire.ClassIN,
			TTL:   0,
			Data: dnswire.TXT{Strings: []string{
				"policy=" + s.policy.Name(),
				fmt.Sprintf("decisions=%d", stats.Decisions),
			}},
		}}
		st.answered.Add(1)
	default:
		// Name exists but no data of this type: NOERROR + SOA.
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.answered.Add(1)
	}
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Authority = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		out = mustPack(resp, out[:0])
	}
	return out
}

// soa returns the zone's SOA record, used in negative responses.
func (s *Server) soa() dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  s.zone,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data: dnswire.SOA{
			MName:   "ns1." + s.zone,
			RName:   "hostmaster." + s.zone,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
	}
}

// mustPack appends the encoded message to dst (a zero-length slice or
// nil), returning nil on encode failure: responses are built from
// validated parts, so a pack failure is a programming error, but in
// production we drop the response instead of crashing.
func mustPack(m *dnswire.Message, dst []byte) []byte {
	out, err := m.AppendPack(dst)
	if err != nil {
		return nil
	}
	return out
}
