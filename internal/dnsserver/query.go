package dnsserver

import (
	"fmt"
	"math"
	"net/netip"
	"runtime/debug"

	"dnslb/internal/dnswire"
)

// The query path: one wire-format message in, one out. Scheduling goes
// through the engine's Decide — the same lifecycle (snapshot
// filtering, selection, TTL, mapping ledger) the simulator drives —
// and this file only adds DNS semantics around it: message validation,
// rate limiting, ECS classification, record assembly and truncation.

// safeHandle is handle behind a panic recovery: a bug in the query
// path must not kill the serve worker. The panic is logged with its
// stack, counted, and the query dropped (the client retries; losing
// one datagram is the UDP failure model anyway).
func (s *Server) safeHandle(wire []byte, from netip.Addr, maxSize int, dst []byte) (resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.logger.Error("panic in query handler",
				"panic", r, "raddr", from, "stack", string(debug.Stack()))
			resp = nil
		}
	}()
	return s.handle(wire, from, maxSize, dst)
}

// handle processes one wire-format query and returns the wire-format
// response (nil to drop), packed into dst's capacity when possible.
// dst must be a zero-length slice (or nil to allocate). handle touches
// no server-level lock: the engine and state are internally safe, and
// counters go to the caller's stats shard.
func (s *Server) handle(wire []byte, from netip.Addr, maxSize int, dst []byte) []byte {
	idx := s.statsIndex(from)
	st := &s.stats[idx]
	st.queries.Add(1)
	query, err := dnswire.Unpack(wire)
	if err != nil || len(query.Questions) == 0 {
		st.formerr.Add(1)
		if len(wire) < 2 {
			return nil // cannot even echo an ID
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(wire[0])<<8 | uint16(wire[1]),
			Response: true,
			RCode:    dnswire.RCodeFormErr,
		}}
		return mustPack(resp, dst)
	}
	if query.Header.Response {
		return nil // never answer responses
	}
	if s.limiter != nil && !s.limiter.Allow(from) {
		st.ratelimited.Add(1)
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			OpCode:   query.Header.OpCode,
			RCode:    dnswire.RCodeRefused,
		}}
		return mustPack(resp, dst)
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions[:1],
	}
	if query.Header.OpCode != dnswire.OpQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		st.notimp.Add(1)
		return mustPack(resp, dst)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)
	if name != s.zone {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.nxdomain.Add(1)
		return mustPack(resp, dst)
	}
	// RFC 7871 Client Subnet: when the resolver forwarded the client's
	// network prefix, classify the originating domain from it instead
	// of the resolver's own transport address, and echo the option with
	// the scope we used.
	clientAddr := from
	ecs, hasECS := query.ClientSubnet()
	if hasECS && ecs.Prefix.IsValid() {
		clientAddr = ecs.Prefix.Addr()
	}
	switch q.Type {
	case dnswire.TypeA, dnswire.TypeANY:
		domain := s.mapper(clientAddr)
		d, err := s.eng.Decide(domain)
		if err != nil {
			resp.Header.RCode = dnswire.RCodeServFail
			st.servfail.Add(1)
			return mustPack(resp, dst)
		}
		ttl := uint32(math.Round(d.TTL))
		if ttl == 0 {
			ttl = 1
		}
		if s.metrics != nil {
			s.metrics.ttl.ObserveHint(idx, d.TTL)
		}
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: s.serverAddrs()[d.Server]},
		}}
		if hasECS {
			echo := ecs
			echo.ScopePrefixLen = uint8(ecs.Prefix.Bits())
			if err := resp.SetClientSubnet(echo, dnswire.MaxUDPPayload); err != nil {
				s.logger.Debug("ECS echo failed", "err", err, "raddr", from)
			}
		}
		st.answered.Add(1)
	case dnswire.TypeTXT:
		// Debug visibility: the policy name and decision counters.
		stats := s.policy.Stats()
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeTXT,
			Class: dnswire.ClassIN,
			TTL:   0,
			Data: dnswire.TXT{Strings: []string{
				"policy=" + s.policy.Name(),
				fmt.Sprintf("decisions=%d", stats.Decisions),
			}},
		}}
		st.answered.Add(1)
	default:
		// Name exists but no data of this type: NOERROR + SOA.
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.answered.Add(1)
	}
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Authority = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		out = mustPack(resp, out[:0])
	}
	return out
}

// soa returns the zone's SOA record, used in negative responses.
func (s *Server) soa() dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  s.zone,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data: dnswire.SOA{
			MName:   "ns1." + s.zone,
			RName:   "hostmaster." + s.zone,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
	}
}

// mustPack appends the encoded message to dst (a zero-length slice or
// nil), returning nil on encode failure: responses are built from
// validated parts, so a pack failure is a programming error, but in
// production we drop the response instead of crashing.
func mustPack(m *dnswire.Message, dst []byte) []byte {
	out, err := m.AppendPack(dst)
	if err != nil {
		return nil
	}
	return out
}
