package dnsserver

import (
	"strconv"
	"sync"

	"dnslb/internal/core"
	"dnslb/internal/engine"
	"dnslb/internal/metrics"
)

// Metric series exposed by an instrumented Server (Config.Metrics).
// Naming follows DESIGN.md §10: dnslb_<subsystem>_<quantity>_<unit>,
// with low-cardinality labels only (server index, policy name, outcome,
// class). Everything the hot path already counts — the sharded serve
// counters, the policy's atomic decision counters, the state's
// transition counters — is exported through Func series read at scrape
// time, so enabling exposition adds zero work per query for those. The
// only new per-query work is the two histograms (latency, returned
// TTL), whose updates are a bucket increment plus a sharded sum CAS.
//
// Per-server series are registered through ensureServerSeries so a
// server joined at runtime (JOIN verb, SIGHUP reload) gets its series
// on admission; the registry refuses duplicate registration, so the
// registered count is tracked under a mutex.

// queryDurationBuckets covers the serve path from ~5µs (decode+schedule
// +encode on loopback) up to 50ms (a struggling server); seconds.
var queryDurationBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2,
}

// ttlBuckets covers the adaptive-TTL range: the paper's TTL/i values
// run from a few seconds for hot domains on slow servers up past the
// 240 s constant-TTL baseline; seconds.
var ttlBuckets = []float64{1, 5, 15, 30, 60, 120, 240, 480, 960, 1920}

// ecsScopeBuckets covers the RFC 7871 scope prefix lengths the server
// echoes: 0 (answer not subnet-tailored), the v4 granularities up to
// the /24 recommendation and full /32, and the v6 ladder up to /128.
var ecsScopeBuckets = []float64{0, 8, 16, 24, 32, 48, 56, 64, 96, 128}

// serverMetrics holds the handles the serve path updates directly.
type serverMetrics struct {
	reg *metrics.Registry
	srv *Server

	latency  *metrics.Histogram
	ttl      *metrics.Histogram
	ecsScope *metrics.Histogram

	reportOK  *metrics.Counter
	reportErr *metrics.Counter

	reportConnOpened *metrics.Counter
	reportConnClosed *metrics.Counter
	reportConnErrors *metrics.Counter

	mu          sync.Mutex
	serverSlots int // per-server series registered for slots [0, serverSlots)
}

// newServerMetrics registers the server's series on reg and returns
// the hot-path handles. Called once from New, before any serving.
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{reg: reg, srv: s}

	// DNS front end: query totals by outcome, pulled from the sharded
	// serve counters the handlers already maintain.
	reg.NewCounterFunc("dnslb_dns_queries_total",
		"DNS queries received, before any classification.",
		nil, s.statsTotal(func(sh *statsShard) uint64 { return sh.queries.Load() }))
	for _, tr := range []engine.Transport{engine.TransportUDP, engine.TransportTCP, engine.TransportDoH} {
		tr := tr
		reg.NewCounterFunc("dnslb_dns_queries_total",
			"DNS queries received, before any classification.",
			metrics.Labels{"transport", tr.String()},
			func() uint64 { return s.TransportQueries(tr) })
	}
	for _, oc := range []struct {
		name string
		load func(*statsShard) uint64
	}{
		{"answered", func(sh *statsShard) uint64 { return sh.answered.Load() }},
		{"nxdomain", func(sh *statsShard) uint64 { return sh.nxdomain.Load() }},
		{"formerr", func(sh *statsShard) uint64 { return sh.formerr.Load() }},
		{"notimp", func(sh *statsShard) uint64 { return sh.notimp.Load() }},
		{"servfail", func(sh *statsShard) uint64 { return sh.servfail.Load() }},
		{"truncated", func(sh *statsShard) uint64 { return sh.truncated.Load() }},
		{"ratelimited", func(sh *statsShard) uint64 { return sh.ratelimited.Load() }},
	} {
		reg.NewCounterFunc("dnslb_dns_responses_total",
			"DNS responses by outcome (formerr counts malformed packets, ratelimited counts rate-limit drops).",
			metrics.Labels{"outcome", oc.name}, s.statsTotal(oc.load))
	}
	m.latency = reg.NewHistogram("dnslb_dns_query_duration_seconds",
		"Per-query serve latency (decode, schedule, encode), measured in each UDP worker.",
		nil, queryDurationBuckets)
	m.ttl = reg.NewHistogram("dnslb_dns_ttl_seconds",
		"TTL values handed out with A answers, before rounding to the wire.",
		nil, ttlBuckets)
	m.ecsScope = reg.NewHistogram("dnslb_dns_ecs_scope_prefix",
		"RFC 7871 scope prefix lengths echoed with ECS-carrying answers (0 = answer not tailored to the client subnet).",
		nil, ecsScopeBuckets)
	reg.NewCounterFunc("dnslb_dns_panics_total",
		"Query-handler panics recovered by the serve workers.",
		nil, s.panics.Load)

	// Transport shape: worker count and whether the batched
	// SO_REUSEPORT loops are active (platform + configuration).
	reg.NewGaugeFunc("dnslb_dns_udp_workers",
		"Parallel UDP serve workers.",
		nil, func() float64 { return float64(s.udpWorkers) })
	reg.NewGaugeFunc("dnslb_dns_udp_batch_active",
		"1 while the batched recvmmsg/sendmmsg serve loops are running.",
		nil, func() float64 { return boolGauge(s.batchMode.Load()) })

	// DoH front end (doh.go): request outcomes. The series exist even
	// when no HTTP listener is configured (all zero) so dashboards need
	// no conditional scrape config.
	reg.NewCounterFunc("dnslb_doh_requests_total",
		"DoH requests answered successfully.",
		metrics.Labels{"outcome", "ok"}, s.dohOK.Load)
	reg.NewCounterFunc("dnslb_doh_requests_total",
		"DoH requests rejected before reaching the query path (method, media type, encoding, size).",
		metrics.Labels{"outcome", "bad_request"}, s.dohBadRequest.Load)
	reg.NewCounterFunc("dnslb_doh_requests_total",
		"DoH requests whose query the handler dropped (unanswerable wire message).",
		metrics.Labels{"outcome", "dropped"}, s.dohDropped.Load)

	// TCP connection bound (satellite of the robustness layer): the live
	// connection count next to the configured cap.
	reg.NewGaugeFunc("dnslb_dns_tcp_conns",
		"TCP connections currently being served.",
		nil, func() float64 { return float64(s.TCPConns()) })
	reg.NewGaugeFunc("dnslb_dns_tcp_conns_max",
		"Configured concurrent TCP connection cap (0 = unlimited).",
		nil, func() float64 { return float64(s.maxTCPConns) })

	// Overload graceful degradation (overload.go). The series exist even
	// when the controller is disabled (all zero) so dashboards need no
	// conditional scrape config.
	reg.NewGaugeFunc("dnslb_dns_degraded_mode",
		"1 while the overload controller has the server serving the static degraded ladder.",
		nil, func() float64 { return boolGauge(s.DegradedMode()) })
	reg.NewCounterFunc("dnslb_dns_degraded_transitions_total",
		"Degraded-mode transitions (enter and leave each count once).",
		nil, func() uint64 { return s.Degraded().Transitions })
	reg.NewCounterFunc("dnslb_dns_degraded_answers_total",
		"Address answers served by the static capacity-weighted ladder while degraded.",
		nil, func() uint64 { return s.Degraded().Answers })
	reg.NewGaugeFunc("dnslb_dns_overload_rate_qps",
		"Aggregate query rate at the overload controller's last sample.",
		nil, func() float64 { return s.Degraded().LastRateQPS })

	// Versioned hot-answer cache (answercache.go). The series exist
	// even when the cache is disabled (all zero) so dashboards need no
	// conditional scrape config.
	reg.NewCounterFunc("dnslb_dns_answer_cache_hits_total",
		"Queries answered from the pre-packed hot-answer cache.",
		nil, func() uint64 { return s.AnswerCache().Hits })
	reg.NewCounterFunc("dnslb_dns_answer_cache_misses_total",
		"Cacheable queries that had to pack a fresh response.",
		nil, func() uint64 { return s.AnswerCache().Misses })
	reg.NewCounterFunc("dnslb_dns_answer_cache_invalidations_total",
		"Cache entries found stale (snapshot version, TTL calibration, or address change).",
		nil, func() uint64 { return s.AnswerCache().Invalidations })

	// Scheduling policy: class-level decision counters and no-server
	// failures from the policy's own atomics (per-server decisions are
	// registered in ensureServerSeries).
	pol := s.policy
	polLabel := pol.Name()
	for _, class := range []core.DomainClass{core.ClassNormal, core.ClassHot} {
		class := class
		reg.NewCounterFunc("dnslb_policy_decisions_class_total",
			"Scheduling decisions by domain class.",
			metrics.Labels{"policy", polLabel, "class", class.String()},
			func() uint64 { return pol.ClassDecisions(class) })
	}
	reg.NewCounterFunc("dnslb_policy_no_server_errors_total",
		"Schedule calls that failed because every server was down.",
		metrics.Labels{"policy", polLabel},
		func() uint64 { return pol.NoServerErrors() })

	// Scheduler state: alarm/liveness standing and transition counts.
	st := pol.State()
	reg.NewCounterFunc("dnslb_state_alarm_transitions_total",
		"Alarm flag flips across all servers (raise and clear each count once).",
		nil, st.AlarmTransitions)
	reg.NewCounterFunc("dnslb_state_down_transitions_total",
		"Liveness flag flips across all servers (exclusion and re-admission each count once).",
		nil, st.DownTransitions)
	reg.NewGaugeFunc("dnslb_state_live_servers",
		"Servers currently eligible for new mappings.",
		nil, func() float64 { return float64(st.LiveServers()) })
	reg.NewGaugeFunc("dnslb_state_hot_domains",
		"Domains currently classified hot (weight above beta).",
		nil, func() float64 { return float64(st.HotDomains()) })

	// Membership reconfiguration and checkpointing.
	reg.NewCounterFunc("dnslb_reconfig_joins_total",
		"Servers admitted (or re-admitted) through JOIN or config reload.",
		nil, s.joins.Load)
	reg.NewCounterFunc("dnslb_reconfig_drains_total",
		"Graceful drains started through DRAIN or config reload.",
		nil, s.drains.Load)
	reg.NewCounterFunc("dnslb_reconfig_removals_total",
		"Servers removed from membership after their drain window closed.",
		nil, s.removals.Load)
	reg.NewCounterFunc("dnslb_reconfig_reloads_total",
		"Configuration reloads applied successfully.",
		nil, s.reloads.Load)
	reg.NewCounterFunc("dnslb_reconfig_reload_errors_total",
		"Configuration reloads that failed validation or application.",
		nil, s.reloadErrs.Load)
	reg.NewGaugeFunc("dnslb_reconfig_member_servers",
		"Server slots currently in membership (active or draining).",
		nil, func() float64 { return float64(st.MemberServers()) })
	reg.NewCounterFunc("dnslb_checkpoint_saves_total",
		"State checkpoints written successfully.",
		nil, s.ckptSaves.Load)
	reg.NewCounterFunc("dnslb_checkpoint_errors_total",
		"State checkpoint writes that failed.",
		nil, s.ckptErrs.Load)

	// Hidden-load estimator: kind-tagged feedback-loop health. The
	// forecast series exist only for a forecasting estimator (the
	// predictive kind): forecast demand is its current prediction of
	// total hidden load, and the error gauge is its smoothed mean
	// absolute per-domain miss — the calibration signal for
	// forecast-driven alarms.
	kind := s.eng.EstimatorKind()
	reg.NewCounterFunc("dnslb_estimator_rejected_total",
		"Hit observations the estimator refused (out-of-range domain or negative count).",
		metrics.Labels{"kind", kind},
		s.eng.EstimatorRejected)
	reg.NewGaugeFunc("dnslb_estimator_rolls_total",
		"Completed hidden-load collection intervals.",
		metrics.Labels{"kind", kind},
		func() float64 {
			if st, ok := s.eng.EstimatorState(); ok {
				return float64(st.Rolls)
			}
			return 0
		})
	if _, ok := s.eng.ForecastError(); ok {
		reg.NewGaugeFunc("dnslb_estimator_forecast_abs_error_hits_per_second",
			"Smoothed mean absolute per-domain forecast error of the predictive estimator.",
			metrics.Labels{"kind", kind},
			func() float64 { abs, _ := s.eng.ForecastError(); return abs })
		reg.NewGaugeFunc("dnslb_estimator_forecast_demand_hits_per_second",
			"Predicted total hidden-load demand across domains at scrape time.",
			metrics.Labels{"kind", kind},
			func() float64 {
				rates, ok := s.eng.ForecastRates(s.eng.Now())
				if !ok {
					return 0
				}
				var sum float64
				for _, r := range rates {
					sum += r
				}
				return sum
			})
	}

	// Report protocol: accepted and rejected lines, plus connection
	// lifecycle — the link-health signal backend agents and replication
	// peers share (both ride the same socket).
	m.reportOK = reg.NewCounter("dnslb_report_lines_total",
		"Load-report lines by result.", metrics.Labels{"status", "ok"})
	m.reportErr = reg.NewCounter("dnslb_report_lines_total",
		"Load-report lines by result.", metrics.Labels{"status", "error"})
	m.reportConnOpened = reg.NewCounter("dnslb_report_conn_opened_total",
		"Report-socket connections accepted.", nil)
	m.reportConnClosed = reg.NewCounter("dnslb_report_conn_closed_total",
		"Report-socket connections closed (any reason).", nil)
	m.reportConnErrors = reg.NewCounter("dnslb_report_conn_errors_total",
		"Report-socket connections torn down by read or write errors.", nil)

	m.ensureServerSeries(s.Servers())
	return m
}

// ensureServerSeries registers the per-server series for any slot in
// [0, n) that does not have them yet. Idempotent; safe to call from
// joinLocked when a fresh slot is admitted. The registry panics on
// duplicate registration, so the already-registered count is the
// guard.
func (m *serverMetrics) ensureServerSeries(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= m.serverSlots {
		return
	}
	pol := m.srv.policy
	polLabel := pol.Name()
	st := pol.State()
	for i := m.serverSlots; i < n; i++ {
		i := i
		m.reg.NewCounterFunc("dnslb_policy_decisions_total",
			"Scheduling decisions that chose each Web server.",
			metrics.Labels{"policy", polLabel, "server", strconv.Itoa(i)},
			func() uint64 { return pol.ServerDecisions(i) })
		lbl := metrics.Labels{"server", strconv.Itoa(i)}
		m.reg.NewGaugeFunc("dnslb_state_server_alarmed",
			"1 while the server's alarm is raised.", lbl,
			func() float64 { return boolGauge(st.Alarmed(i)) })
		m.reg.NewGaugeFunc("dnslb_state_server_down",
			"1 while the server is excluded as failed.", lbl,
			func() float64 { return boolGauge(st.Down(i)) })
		m.reg.NewGaugeFunc("dnslb_state_server_draining",
			"1 while the server is draining (no new mappings, hidden-load window still open).", lbl,
			func() float64 { return boolGauge(st.Draining(i)) })
	}
	m.serverSlots = n
}

// statsTotal returns a scrape-time reader summing one counter across
// the stats shards.
func (s *Server) statsTotal(load func(*statsShard) uint64) func() uint64 {
	return func() uint64 {
		var t uint64
		for i := range s.stats {
			t += load(&s.stats[i])
		}
		return t
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
