package dnsserver

import (
	"errors"
	"fmt"
	"time"

	"dnslb/internal/metrics"
	"dnslb/internal/replication"
)

// Multi-replica wiring: StartReplication attaches a replication.Node
// to the server's engine and launches a Replicator that gossips deltas
// to the peer replicas' report sockets. Incoming deltas arrive on this
// server's own report socket as REPL lines (see report.go) and are
// merged through the node's fencing/LWW adjudication.
//
// Replication is strictly additive to scheduling: with zero peers
// reachable the server keeps answering from local state — the
// degradation ladder is "converged → stale → local-only", never
// "refusing".

// ReplicationConfig configures a server's replication endpoint.
type ReplicationConfig struct {
	// ReplicaID uniquely names this replica in the set (-replica-id).
	// Required.
	ReplicaID string
	// Peers are the other replicas' report-socket addresses (-peers).
	// Required.
	Peers []string
	// Interval is the gossip cadence (-replication-interval). Zero
	// defaults to 1s.
	Interval time.Duration
	// Epoch fences this replica's writes across restarts. Zero defaults
	// to the current Unix time in nanoseconds, which is monotone across
	// restarts on any sanely clocked host.
	Epoch int64
}

// StartReplication builds the node, announces any pre-start soft state
// (e.g. a restored checkpoint) for the first flush, starts the peer
// links, and registers the dnslb_repl_* metric series. Call at most
// once, before heavy query load (the node attaches to the engine's
// decision tap atomically, so earlier decisions are simply not
// observed — the first full sync covers them).
func (s *Server) StartReplication(cfg ReplicationConfig) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.replicator != nil {
		return errors.New("dnsserver: replication already started")
	}
	epoch := cfg.Epoch
	if epoch == 0 {
		epoch = time.Now().UnixNano()
	}
	node, err := replication.NewNode(replication.NodeConfig{
		Origin: cfg.ReplicaID,
		Epoch:  epoch,
		Engine: s.eng,
		Base:   replication.WallBase{Clock: s.clock},
		SlotAddr: func(slot int) (string, bool) {
			addrs := s.serverAddrs()
			if slot < 0 || slot >= len(addrs) {
				return "", false
			}
			return addrs[slot].String(), true
		},
		AddrSlot: func(addr string) (int, bool) {
			for i, a := range s.serverAddrs() {
				if a.String() == addr {
					return i, true
				}
			}
			return 0, false
		},
	})
	if err != nil {
		return err
	}
	repl, err := replication.NewReplicator(replication.ReplicatorConfig{
		Node:     node,
		Peers:    cfg.Peers,
		Interval: cfg.Interval,
		Logger:   s.logger,
	})
	if err != nil {
		return err
	}
	s.replNode.Store(node)
	node.NoteLedger() // ship anything restored before start with the first flush
	if s.registry != nil {
		registerReplicationMetrics(s.registry, cfg.ReplicaID, node, repl)
	}
	repl.Start()
	s.replicator = repl
	s.logger.Info("replication started",
		"replica_id", cfg.ReplicaID, "peers", repl.Peers(), "epoch", epoch)
	return nil
}

// StopReplication stops the peer links (idempotent). The node stays
// attached so late REPL lines still merge; it simply stops gossiping.
func (s *Server) StopReplication() {
	s.replMu.Lock()
	repl := s.replicator
	s.replicator = nil
	s.replMu.Unlock()
	if repl != nil {
		repl.Stop()
	}
}

// Replicator returns the live replicator, or nil when replication is
// not started (tests and health surfaces).
func (s *Server) Replicator() *replication.Replicator {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replicator
}

// mergeReplLine handles one REPL report-socket line: parse, fence,
// merge. Replication does not need to be *started* for merges to apply
// — a replica configured without outbound peers can still be fed — but
// a node must exist, so lines arriving before StartReplication are
// rejected.
func (s *Server) mergeReplLine(payload string) error {
	n := s.replNode.Load()
	if n == nil {
		return errors.New("replication not enabled")
	}
	d, err := replication.ParseDelta([]byte(payload))
	if err != nil {
		return err
	}
	if _, err := n.Merge(d); err != nil {
		return fmt.Errorf("merge delta from %s: %w", d.Origin, err)
	}
	return nil
}

// registerReplicationMetrics exposes the dnslb_repl_* series: node
// protocol counters, per-peer link health, and the degraded gauge. All
// readers are scrape-time atomics — replication adds no per-query
// metric work.
func registerReplicationMetrics(reg *metrics.Registry, replicaID string, node *replication.Node, repl *replication.Replicator) {
	idLbl := metrics.Labels{"replica", replicaID}
	reg.NewCounterFunc("dnslb_repl_deltas_out_total",
		"Replication deltas emitted (flushes and snapshots, before per-peer fan-out).",
		idLbl, func() uint64 { return node.Stats().DeltasOut })
	reg.NewCounterFunc("dnslb_repl_deltas_in_total",
		"Replication deltas received on the report socket.",
		idLbl, func() uint64 { return node.Stats().DeltasIn })
	reg.NewCounterFunc("dnslb_repl_deltas_applied_total",
		"Received deltas that passed fencing and were merged.",
		idLbl, func() uint64 { return node.Stats().DeltasApplied })
	for _, reason := range []struct {
		name string
		load func() uint64
	}{
		{"duplicate", func() uint64 { return node.Stats().DroppedDup }},
		{"stale_epoch", func() uint64 { return node.Stats().DroppedEpoch }},
		{"self_echo", func() uint64 { return node.Stats().DroppedSelf }},
	} {
		reg.NewCounterFunc("dnslb_repl_deltas_dropped_total",
			"Received deltas dropped whole by fencing, by reason.",
			metrics.Labels{"replica", replicaID, "reason", reason.name}, reason.load)
	}
	reg.NewCounterFunc("dnslb_repl_entries_merged_total",
		"Individual ledger/standing/hits entries applied from peers.",
		idLbl, func() uint64 { return node.Stats().EntriesMerged })
	reg.NewCounterFunc("dnslb_repl_full_syncs_total",
		"Anti-entropy snapshot deltas, by direction.",
		metrics.Labels{"replica", replicaID, "direction", "out"},
		func() uint64 { return node.Stats().FullSyncsOut })
	reg.NewCounterFunc("dnslb_repl_full_syncs_total",
		"Anti-entropy snapshot deltas, by direction.",
		metrics.Labels{"replica", replicaID, "direction", "in"},
		func() uint64 { return node.Stats().FullSyncsIn })
	reg.NewGaugeFunc("dnslb_repl_connected_peers",
		"Peer links currently established.",
		idLbl, func() float64 { return float64(repl.ConnectedPeers()) })
	reg.NewGaugeFunc("dnslb_repl_degraded",
		"1 while every peer link is down and the replica schedules from local state only.",
		idLbl, func() float64 { return boolGauge(repl.Degraded()) })
	for i, addr := range repl.Peers() {
		i := i
		peerLbl := metrics.Labels{"peer", addr}
		health := func() replication.PeerHealth { return repl.Health()[i] }
		reg.NewGaugeFunc("dnslb_repl_peer_connected",
			"1 while the link to this peer is established.", peerLbl,
			func() float64 { return boolGauge(health().Connected) })
		reg.NewCounterFunc("dnslb_repl_peer_sent_total",
			"Deltas acknowledged by this peer.", peerLbl,
			func() uint64 { return health().Sent })
		reg.NewCounterFunc("dnslb_repl_peer_errors_total",
			"Send or dial failures on this peer link.", peerLbl,
			func() uint64 { h := health(); return h.SendErrors + h.DialErrors })
		reg.NewCounterFunc("dnslb_repl_peer_dropped_total",
			"Outbound deltas dropped on queue overflow (superseded by the next full sync).",
			peerLbl, func() uint64 { return health().Drops })
	}
}
