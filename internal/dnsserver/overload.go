package dnsserver

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Overload graceful degradation: a global admission layer distinct
// from the per-source rate limiter. The per-source limiter protects
// the server from one abusive resolver; this layer decides what to do
// when the server as a whole can no longer afford — or no longer
// trust — the full decision lifecycle:
//
//   - aggregate query rate above a configured ceiling, or
//   - soft state gone stale: replication degraded (no connected peers)
//     while the hidden-load estimator has not rolled for StaleRolls
//     intervals.
//
// In degraded mode the zone's A queries are answered by the engine's
// static capacity-weighted round-robin ladder (engine.DecideFallback)
// with a short TTL, bypassing the policy, the estimator feed, and the
// answer cache. No query is dropped and nothing is answered SERVFAIL
// merely because the server is overloaded — a deliberately "dumber but
// always on" posture, with short TTLs pulling clients back to the
// adaptive policy quickly after recovery.
//
// Mode transitions carry hysteresis in both directions (EnterTicks
// consecutive over-ceiling samples to enter, ExitTicks consecutive
// samples below ExitRatio×ceiling to leave) so a load level hovering
// at the ceiling cannot flap the mode per sample.

// OverloadConfig configures the degradation controller. The zero value
// disables it entirely.
type OverloadConfig struct {
	// QPSCeiling is the aggregate queries/second above which the server
	// degrades. Zero disables the rate trigger.
	QPSCeiling float64
	// ExitRatio is the fraction of QPSCeiling the rate must fall below
	// to arm mode exit, in (0,1]. Zero defaults to 0.8.
	ExitRatio float64
	// EnterTicks and ExitTicks are the consecutive sample counts
	// required to enter and leave degraded mode. Zero defaults to 2
	// and 5 respectively.
	EnterTicks int
	ExitTicks  int
	// Tick is the sampling period. Zero defaults to 1s.
	Tick time.Duration
	// DegradedTTL is the TTL (seconds) handed out with degraded-mode
	// answers. Zero defaults to 5.
	DegradedTTL float64
	// StaleRolls arms the staleness trigger: the server degrades when
	// replication is degraded AND the estimator has not rolled for
	// StaleRolls times its last roll interval. Zero disables the
	// staleness trigger. A server that never rolled is cold, not stale.
	StaleRolls int
}

// Enabled reports whether any trigger is configured.
func (c OverloadConfig) Enabled() bool { return c.QPSCeiling > 0 || c.StaleRolls > 0 }

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.ExitRatio <= 0 || c.ExitRatio > 1 {
		c.ExitRatio = 0.8
	}
	if c.EnterTicks <= 0 {
		c.EnterTicks = 2
	}
	if c.ExitTicks <= 0 {
		c.ExitTicks = 5
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.DegradedTTL <= 0 {
		c.DegradedTTL = 5
	}
	return c
}

func (c OverloadConfig) validate() error {
	if c.QPSCeiling < 0 {
		return fmt.Errorf("dnsserver: overload ceiling %v must be >= 0", c.QPSCeiling)
	}
	if c.StaleRolls < 0 {
		return fmt.Errorf("dnsserver: overload stale rolls %d must be >= 0", c.StaleRolls)
	}
	if c.DegradedTTL < 0 {
		return fmt.Errorf("dnsserver: degraded TTL %v must be >= 0", c.DegradedTTL)
	}
	return nil
}

// overloadController samples the aggregate query rate and the soft
// state's health on a ticker and drives the degraded-mode flag.
type overloadController struct {
	srv *Server
	cfg OverloadConfig

	degraded    atomic.Bool
	transitions atomic.Uint64
	lastRate    atomic.Uint64 // float64 bits of the last sampled qps
	shed        [statsShards]paddedCounter

	// hysteresis counters, owned by the loop goroutine
	overStreak  int
	clearStreak int
	lastQueries uint64

	stop chan struct{}
	done chan struct{}
}

// paddedCounter is an atomic counter on its own cache line, so the
// degraded hot path (which is by definition under heavy load) shards
// its answer count like the serve counters do.
type paddedCounter struct {
	n atomic.Uint64
	_ [56]byte
}

func newOverloadController(s *Server, cfg OverloadConfig) *overloadController {
	c := &overloadController{
		srv:  s,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.lastQueries = s.Stats().Queries
	go c.loop()
	return c
}

// active is the query path's gate: one atomic load.
func (c *overloadController) active() bool { return c.degraded.Load() }

// noteDegradedAnswer counts one answer served by the degraded ladder.
func (c *overloadController) noteDegradedAnswer(shard uint32) {
	c.shed[shard&(statsShards-1)].n.Add(1)
}

// DegradedAnswers sums the degraded-mode answer counter.
func (c *overloadController) degradedAnswers() uint64 {
	var t uint64
	for i := range c.shed {
		t += c.shed[i].n.Load()
	}
	return t
}

func (c *overloadController) close() {
	select {
	case <-c.stop:
		return
	default:
	}
	close(c.stop)
	<-c.done
}

func (c *overloadController) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.sample()
		}
	}
}

// sample takes one rate measurement, evaluates the triggers, and
// applies the hysteresis rules.
func (c *overloadController) sample() {
	queries := c.srv.Stats().Queries
	rate := float64(queries-c.lastQueries) / c.cfg.Tick.Seconds()
	c.lastQueries = queries
	c.lastRate.Store(floatBits(rate))

	overRate := c.cfg.QPSCeiling > 0 && rate > c.cfg.QPSCeiling
	stale := c.stale()

	if c.degraded.Load() {
		// Exit requires every trigger clear, with the rate holding below
		// the exit threshold for ExitTicks consecutive samples.
		calm := !stale && (c.cfg.QPSCeiling == 0 || rate < c.cfg.ExitRatio*c.cfg.QPSCeiling)
		if calm {
			c.clearStreak++
			if c.clearStreak >= c.cfg.ExitTicks {
				c.setDegraded(false, rate, stale)
			}
		} else {
			c.clearStreak = 0
		}
		return
	}
	// Staleness is slow-moving by construction (it took StaleRolls
	// intervals to arise), so it enters immediately; the rate trigger
	// needs EnterTicks consecutive over-ceiling samples.
	if stale {
		c.setDegraded(true, rate, stale)
		return
	}
	if overRate {
		c.overStreak++
		if c.overStreak >= c.cfg.EnterTicks {
			c.setDegraded(true, rate, stale)
		}
	} else {
		c.overStreak = 0
	}
}

func (c *overloadController) setDegraded(on bool, rate float64, stale bool) {
	c.degraded.Store(on)
	c.transitions.Add(1)
	c.overStreak = 0
	c.clearStreak = 0
	if on {
		c.srv.logger.Warn("entering degraded mode",
			"rate_qps", rate, "ceiling_qps", c.cfg.QPSCeiling, "stale", stale,
			"degraded_ttl", c.cfg.DegradedTTL)
	} else {
		c.srv.logger.Info("leaving degraded mode", "rate_qps", rate)
	}
}

// stale reports the soft-state staleness trigger: replication degraded
// while the estimator's last roll is older than StaleRolls of its own
// intervals.
func (c *overloadController) stale() bool {
	if c.cfg.StaleRolls == 0 {
		return false
	}
	c.srv.replMu.Lock()
	repl := c.srv.replicator
	c.srv.replMu.Unlock()
	if repl == nil || !repl.Degraded() {
		return false
	}
	lastRoll := c.srv.lastRoll.Load()
	interval := floatFromBits(c.srv.lastRollInterval.Load())
	if lastRoll == 0 || interval <= 0 {
		return false // never rolled: cold, not stale
	}
	age := time.Since(time.Unix(0, lastRoll)).Seconds()
	return age > float64(c.cfg.StaleRolls)*interval
}

// Rate returns the last sampled aggregate query rate in qps.
func (c *overloadController) rate() float64 { return floatFromBits(c.lastRate.Load()) }

// --- Server surface -------------------------------------------------------

// DegradedMode reports whether the overload controller currently has
// the server in degraded mode (always false when not configured).
func (s *Server) DegradedMode() bool { return s.over != nil && s.over.active() }

// DegradedStats reports the degradation controller's counters: answers
// served by the static ladder and mode transitions (enter and leave
// each count once). All zero when the controller is not configured.
type DegradedStats struct {
	Answers     uint64
	Transitions uint64
	Degraded    bool
	LastRateQPS float64
}

// Degraded returns a snapshot of the degradation controller's state.
func (s *Server) Degraded() DegradedStats {
	if s.over == nil {
		return DegradedStats{}
	}
	return DegradedStats{
		Answers:     s.over.degradedAnswers(),
		Transitions: s.over.transitions.Load(),
		Degraded:    s.over.active(),
		LastRateQPS: s.over.rate(),
	}
}

// stopOverload stops the controller's sampling loop, if configured.
func (s *Server) stopOverload() {
	if s.over != nil {
		s.over.close()
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
