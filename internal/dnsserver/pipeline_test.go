package dnsserver

import (
	"io"
	"net"
	"testing"
	"time"

	"dnslb/internal/dnswire"
)

// TCP pipelining edge cases (RFC 7766 §6.2.1.1): the read loop keeps
// consuming queries while handlers answer earlier ones concurrently,
// responses interleave under the write lock, and framing errors cut
// the connection only after earlier responses drain.

// pipelineQueryWire builds a query with the given ID.
func pipelineQueryWire(t *testing.T, id uint16) []byte {
	t.Helper()
	wire, err := (&dnswire.Message{
		Header: dnswire.Header{ID: id, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestTCPPipelineInterleaved writes a burst of queries down one
// connection without waiting for responses, then collects them all:
// every query must be answered on that same connection, matched by
// message ID (responses may arrive in any order).
func TestTCPPipelineInterleaved(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const depth = 12
	var burst []byte
	for id := uint16(1); id <= depth; id++ {
		burst = append(burst, frameTCP(pipelineQueryWire(t, id))...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make(map[uint16]bool)
	for i := 0; i < depth; i++ {
		raw, err := readTCPResponse(conn)
		if err != nil {
			t.Fatalf("response %d/%d: %v", i+1, depth, err)
		}
		msg, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatalf("response %d unparseable: %v", i+1, err)
		}
		if msg.Header.RCode != dnswire.RCodeNoError || len(msg.Answers) != 1 {
			t.Fatalf("response %d: rcode=%v answers=%d", i+1, msg.Header.RCode, len(msg.Answers))
		}
		if got[msg.Header.ID] {
			t.Fatalf("duplicate response for ID %d", msg.Header.ID)
		}
		got[msg.Header.ID] = true
	}
	for id := uint16(1); id <= depth; id++ {
		if !got[id] {
			t.Errorf("query ID %d never answered", id)
		}
	}
}

// TestTCPPipelineDeeperThanCap sends more queries than maxTCPPipeline
// in one burst: the reader's semaphore stalls intake, handlers drain,
// and every query is still answered exactly once.
func TestTCPPipelineDeeperThanCap(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const depth = 3 * maxTCPPipeline
	done := make(chan error, 1)
	go func() {
		var burst []byte
		for id := uint16(1); id <= depth; id++ {
			burst = append(burst, frameTCP(pipelineQueryWire(t, id))...)
		}
		_, err := conn.Write(burst)
		done <- err
	}()

	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got := make(map[uint16]bool)
	for i := 0; i < depth; i++ {
		raw, err := readTCPResponse(conn)
		if err != nil {
			t.Fatalf("response %d/%d: %v", i+1, depth, err)
		}
		msg, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatal(err)
		}
		if got[msg.Header.ID] {
			t.Fatalf("duplicate response for ID %d", msg.Header.ID)
		}
		got[msg.Header.ID] = true
	}
	if len(got) != depth {
		t.Fatalf("answered %d distinct IDs, want %d", len(got), depth)
	}
	if err := <-done; err != nil {
		t.Fatalf("write side: %v", err)
	}
}

// TestTCPPipelineSlowReader holds off reading while the burst is
// served: responses queue in the socket buffers under the write lock
// and must all arrive intact once the client starts draining.
func TestTCPPipelineSlowReader(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const depth = 8
	var burst []byte
	for id := uint16(1); id <= depth; id++ {
		burst = append(burst, frameTCP(pipelineQueryWire(t, id))...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let every handler write first

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make(map[uint16]bool)
	for i := 0; i < depth; i++ {
		raw, err := readTCPResponse(conn)
		if err != nil {
			t.Fatalf("response %d/%d after slow start: %v", i+1, depth, err)
		}
		msg, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatalf("interleaved frame corrupt: %v", err)
		}
		got[msg.Header.ID] = true
	}
	if len(got) != depth {
		t.Fatalf("answered %d distinct IDs, want %d", len(got), depth)
	}
}

// TestTCPPipelineBadPrefixMidStream follows valid pipelined queries
// with a corrupt length prefix: the earlier queries' responses drain
// before the connection is cut.
func TestTCPPipelineBadPrefixMidStream(t *testing.T) {
	for _, tc := range []struct {
		name   string
		prefix [2]byte
	}{
		{"zero", [2]byte{0, 0}},
		{"oversized", [2]byte{0xff, 0xff}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := testServer(t, "RR", nil)
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			const depth = 3
			var burst []byte
			for id := uint16(1); id <= depth; id++ {
				burst = append(burst, frameTCP(pipelineQueryWire(t, id))...)
			}
			burst = append(burst, tc.prefix[:]...)
			if _, err := conn.Write(burst); err != nil {
				t.Fatal(err)
			}

			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			got := make(map[uint16]bool)
			for i := 0; i < depth; i++ {
				raw, err := readTCPResponse(conn)
				if err != nil {
					t.Fatalf("response %d/%d should drain before the cut: %v", i+1, depth, err)
				}
				msg, err := dnswire.Unpack(raw)
				if err != nil {
					t.Fatal(err)
				}
				got[msg.Header.ID] = true
			}
			if len(got) != depth {
				t.Fatalf("answered %d distinct IDs before the cut, want %d", len(got), depth)
			}
			var one [1]byte
			if _, err := conn.Read(one[:]); err != io.EOF {
				t.Fatalf("read after bad prefix = %v, want EOF (connection cut)", err)
			}
		})
	}
}

// TestTCPPipelineUnderConnCap: pipelining multiplies throughput per
// connection but consumes exactly one semaphore slot. With the cap at
// 1, a pipelined connection serves its whole burst while a second
// connection waits, then gets served once the slot frees.
func TestTCPPipelineUnderConnCap(t *testing.T) {
	srv := testServerMaxTCP(t, 1)
	addr := srv.Addr().String()

	first, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	const depth = 6
	var burst []byte
	for id := uint16(1); id <= depth; id++ {
		burst = append(burst, frameTCP(pipelineQueryWire(t, id))...)
	}
	if _, err := first.Write(burst); err != nil {
		t.Fatal(err)
	}
	_ = first.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < depth; i++ {
		if _, err := readTCPResponse(first); err != nil {
			t.Fatalf("pipelined response %d under cap: %v", i+1, err)
		}
	}

	// The second connection handshakes in the backlog but is not
	// accepted while the first holds the only slot.
	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.Write(frameTCP(pipelineQueryWire(t, 99))); err != nil {
		t.Fatal(err)
	}
	_ = second.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := readTCPResponse(second); err == nil {
		t.Fatal("second connection served while the only slot was held")
	}

	first.Close()
	_ = second.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := readTCPResponse(second)
	if err != nil {
		t.Fatalf("second connection never served after the slot freed: %v", err)
	}
	msg, err := dnswire.Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.ID != 99 || msg.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("id=%d rcode=%v, want 99/NOERROR", msg.Header.ID, msg.Header.RCode)
	}
}
