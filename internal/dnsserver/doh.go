package dnsserver

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"strings"

	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
)

// DNS-over-HTTPS front end (enabled by Config.HTTPAddr).
//
// Two endpoints share the engine, the answer cache, the rate limiter,
// the overload-degradation ladder, and the per-transport metrics with
// the UDP and TCP fronts, because every request funnels into the same
// safeHandle the socket serve loops call:
//
//   - /dns-query — RFC 8484 wire format: GET with a ?dns= base64url
//     parameter, or POST with an application/dns-message body. The
//     response body is the verbatim wire response, so a stub resolver
//     speaking DoH gets bit-identical answers to one speaking UDP.
//   - /resolve — a dns-json style debugging endpoint: ?name=…&type=…
//     [&edns_client_subnet=…] rendered as JSON. The subnet parameter
//     builds a real ECS option into the synthesized query, so the
//     JSON endpoint exercises the identical classification path.
//
// The front end is HTTP (not TLS): production deployments terminate
// TLS ahead of the process, and the tests exercise the protocol, not
// the transport security.

// maxDoHRequest bounds an accepted DoH request body; same budget as a
// TCP query, and for the same reason.
const maxDoHRequest = maxTCPQuery

// dohMux routes the two DoH endpoints.
func (s *Server) dohMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/dns-query", s.handleDoHWire)
	mux.HandleFunc("/resolve", s.handleDoHJSON)
	return mux
}

// dohClientAddr recovers the querying client's address from the HTTP
// request for rate limiting and (absent ECS) domain classification —
// the same role the source address plays on the socket paths.
func dohClientAddr(r *http.Request) netip.Addr {
	if ap, err := netip.ParseAddrPort(r.RemoteAddr); err == nil {
		return ap.Addr()
	}
	// httptest and exotic transports may hand a bare host.
	if a, err := netip.ParseAddr(r.RemoteAddr); err == nil {
		return a
	}
	return netip.Addr{}
}

// handleDoHWire serves RFC 8484 wire-format exchanges.
func (s *Server) handleDoHWire(w http.ResponseWriter, r *http.Request) {
	var wire []byte
	switch r.Method {
	case http.MethodGet:
		enc := r.URL.Query().Get("dns")
		if enc == "" {
			s.dohBadRequest.Add(1)
			http.Error(w, "missing dns parameter", http.StatusBadRequest)
			return
		}
		// RFC 8484 requires unpadded base64url; accept padded as a
		// courtesy (curl users add it).
		dec, err := base64.RawURLEncoding.DecodeString(strings.TrimRight(enc, "="))
		if err != nil {
			s.dohBadRequest.Add(1)
			http.Error(w, "bad dns parameter", http.StatusBadRequest)
			return
		}
		wire = dec
	case http.MethodPost:
		if ct := r.Header.Get("Content-Type"); ct != "application/dns-message" {
			s.dohBadRequest.Add(1)
			http.Error(w, "content type must be application/dns-message", http.StatusUnsupportedMediaType)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxDoHRequest+1))
		if err != nil || len(body) == 0 || len(body) > maxDoHRequest {
			s.dohBadRequest.Add(1)
			http.Error(w, "bad request body", http.StatusBadRequest)
			return
		}
		wire = body
	default:
		s.dohBadRequest.Add(1)
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if len(wire) == 0 || len(wire) > maxDoHRequest {
		s.dohBadRequest.Add(1)
		http.Error(w, "bad dns message size", http.StatusBadRequest)
		return
	}
	bp := packPool.Get().(*[]byte)
	resp := s.safeHandle(wire, dohClientAddr(r), engine.TransportDoH, maxDoHResponse, (*bp)[:0])
	if resp == nil {
		packPool.Put(bp)
		s.dohDropped.Add(1)
		http.Error(w, "query dropped", http.StatusInternalServerError)
		return
	}
	s.dohOK.Add(1)
	w.Header().Set("Content-Type", "application/dns-message")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	_, _ = w.Write(resp)
	if cap(resp) > cap(*bp) {
		*bp = resp[:0]
	}
	packPool.Put(bp)
}

// maxDoHResponse is the response size budget handed to the handler:
// HTTP has no 512-byte constraint, so DoH gets the TCP budget and
// never truncates a single-answer response.
const maxDoHResponse = 65535

// dohJSONAnswer is one answer record in the /resolve rendering,
// following the de-facto dns-json field names.
type dohJSONAnswer struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
	TTL  uint32 `json:"TTL"`
	Data string `json:"data"`
}

// dohJSONResponse is the /resolve response body.
type dohJSONResponse struct {
	Status   uint16          `json:"Status"`
	TC       bool            `json:"TC"`
	Question []dohJSONQ      `json:"Question"`
	Answer   []dohJSONAnswer `json:"Answer,omitempty"`
	Subnet   string          `json:"edns_client_subnet,omitempty"`
}

type dohJSONQ struct {
	Name string `json:"name"`
	Type uint16 `json:"type"`
}

// parseDoHType maps a ?type= parameter (mnemonic or numeric) to a
// record type; empty means A.
func parseDoHType(s string) (dnswire.Type, bool) {
	switch strings.ToUpper(s) {
	case "", "A":
		return dnswire.TypeA, true
	case "AAAA":
		return dnswire.TypeAAAA, true
	case "TXT":
		return dnswire.TypeTXT, true
	case "ANY", "*":
		return dnswire.TypeANY, true
	}
	if n, err := strconv.ParseUint(s, 10, 16); err == nil {
		return dnswire.Type(n), true
	}
	return 0, false
}

// parseDoHSubnet parses an ?edns_client_subnet= parameter: an address
// with an optional /bits suffix (defaulting to a full-length prefix,
// as dns-json does).
func parseDoHSubnet(s string) (netip.Prefix, bool) {
	if strings.Contains(s, "/") {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return netip.Prefix{}, false
		}
		return p.Masked(), true
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, false
	}
	return netip.PrefixFrom(a, a.BitLen()), true
}

// handleDoHJSON serves the dns-json style /resolve endpoint by
// synthesizing a wire query (including a real ECS option when
// edns_client_subnet is given), running it through the standard
// handler, and rendering the wire response as JSON.
func (s *Server) handleDoHJSON(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.dohBadRequest.Add(1)
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	params := r.URL.Query()
	name := params.Get("name")
	if name == "" {
		s.dohBadRequest.Add(1)
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	qtype, ok := parseDoHType(params.Get("type"))
	if !ok {
		s.dohBadRequest.Add(1)
		http.Error(w, "bad type parameter", http.StatusBadRequest)
		return
	}
	q := &dnswire.Message{
		Header:    dnswire.Header{OpCode: dnswire.OpQuery},
		Questions: []dnswire.Question{{Name: strings.ToLower(name), Type: qtype, Class: dnswire.ClassIN}},
	}
	if sn := params.Get("edns_client_subnet"); sn != "" {
		p, ok := parseDoHSubnet(sn)
		if !ok {
			s.dohBadRequest.Add(1)
			http.Error(w, "bad edns_client_subnet parameter", http.StatusBadRequest)
			return
		}
		if err := q.SetClientSubnet(dnswire.ClientSubnet{Prefix: p}, dnswire.MaxUDPPayload); err != nil {
			s.dohBadRequest.Add(1)
			http.Error(w, "bad edns_client_subnet parameter", http.StatusBadRequest)
			return
		}
	}
	wire, err := q.Pack()
	if err != nil {
		s.dohBadRequest.Add(1)
		http.Error(w, "bad query", http.StatusBadRequest)
		return
	}
	bp := packPool.Get().(*[]byte)
	respWire := s.safeHandle(wire, dohClientAddr(r), engine.TransportDoH, maxDoHResponse, (*bp)[:0])
	if respWire == nil {
		packPool.Put(bp)
		s.dohDropped.Add(1)
		http.Error(w, "query dropped", http.StatusInternalServerError)
		return
	}
	m, err := dnswire.Unpack(respWire)
	packPool.Put(bp)
	if err != nil {
		s.dohDropped.Add(1)
		http.Error(w, "bad response", http.StatusInternalServerError)
		return
	}
	out := dohJSONResponse{
		Status: uint16(m.Header.RCode),
		TC:     m.Header.Truncated,
	}
	for _, qq := range m.Questions {
		out.Question = append(out.Question, dohJSONQ{Name: qq.Name, Type: uint16(qq.Type)})
	}
	for _, rr := range m.Answers {
		out.Answer = append(out.Answer, dohJSONAnswer{
			Name: rr.Name,
			Type: uint16(rr.Type),
			TTL:  rr.TTL,
			Data: renderRData(rr.Data),
		})
	}
	if cs, ok := m.ClientSubnet(); ok {
		out.Subnet = cs.Prefix.Addr().String() + "/" +
			strconv.Itoa(cs.Prefix.Bits()) + "/" + strconv.Itoa(int(cs.ScopePrefixLen))
	}
	s.dohOK.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// renderRData renders a record's data as the dns-json presentation
// string.
func renderRData(d dnswire.RData) string {
	switch v := d.(type) {
	case dnswire.A:
		return v.Addr.String()
	case dnswire.AAAA:
		return v.Addr.String()
	case dnswire.TXT:
		return strings.Join(v.Strings, " ")
	default:
		return ""
	}
}
