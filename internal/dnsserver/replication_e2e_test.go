package dnsserver

import (
	"context"
	"io"
	"math"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

// chaosProxy is a cuttable TCP forwarder standing in for the network
// between two replicas: Cut severs live connections and refuses new
// ones, Heal restores forwarding — the partition injector for the e2e
// test.
type chaosProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	cut   bool
	conns map[net.Conn]struct{}
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(func() { _ = ln.Close(); p.Cut() })
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.cut {
			p.mu.Unlock()
			_ = conn.Close()
			continue
		}
		p.mu.Unlock()
		up, err := net.DialTimeout("tcp", p.target, time.Second)
		if err != nil {
			_ = conn.Close()
			continue
		}
		p.mu.Lock()
		if p.cut {
			p.mu.Unlock()
			_ = conn.Close()
			_ = up.Close()
			continue
		}
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go p.pipe(conn, up)
		go p.pipe(up, conn)
	}
}

func (p *chaosProxy) pipe(dst, src net.Conn) {
	_, _ = io.Copy(dst, src)
	_ = dst.Close()
	_ = src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// Cut severs the link: live connections die, new ones are refused.
func (p *chaosProxy) Cut() {
	p.mu.Lock()
	p.cut = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// Heal restores forwarding for new connections.
func (p *chaosProxy) Heal() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// testReplicaServer builds one of two identically configured replicas.
func testReplicaServer(t *testing.T, seed uint64) *Server {
	t.Helper()
	cluster, err := core.ScaledCluster(5, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 8)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "DRR2-TTL/S_K",
		State: state,
		Rand:  simcore.NewStream(seed, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 5)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      func(netip.Addr) int { return 0 },
		Addr:        "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationPartitionHealE2E is the live partition/heal scenario
// (CI runs it under -race): two replicas gossiping through cuttable
// links keep answering queries through a full partition — the
// partition itself causes zero SERVFAILs — and converge within one
// anti-entropy round of healing, settling conflicting split-brain
// writes by last-writer-wins.
func TestReplicationPartitionHealE2E(t *testing.T) {
	a := testReplicaServer(t, 1)
	b := testReplicaServer(t, 2)
	rlA := startReportListener(t, a)
	rlB := startReportListener(t, b)

	linkAtoB := newChaosProxy(t, rlB.Addr().String())
	linkBtoA := newChaosProxy(t, rlA.Addr().String())

	if err := a.StartReplication(ReplicationConfig{
		ReplicaID: "replica-a",
		Peers:     []string{linkAtoB.addr()},
		Interval:  20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.StartReplication(ReplicationConfig{
		ReplicaID: "replica-b",
		Peers:     []string{linkBtoA.addr()},
		Interval:  20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "initial peering", 5*time.Second, func() bool {
		return a.Replicator().ConnectedPeers() == 1 && b.Replicator().ConnectedPeers() == 1
	})

	// Connected phase: a decision on A must surface in B's ledger.
	resA, resB := resolverFor(t, a), resolverFor(t, b)
	ctx := context.Background()
	ans, err := resA.LookupA(ctx, "www.site.example")
	if err != nil || len(ans) != 1 {
		t.Fatalf("LookupA on a: %v (%d answers)", err, len(ans))
	}
	chosen := int(ans[0].Addr.As4()[3]) - 1
	waitUntil(t, "ledger replication a→b", 5*time.Second, func() bool {
		return !b.MappingExpiry(chosen).IsZero()
	})
	if diff := a.MappingExpiry(chosen).Sub(b.MappingExpiry(chosen)); math.Abs(diff.Seconds()) > 1 {
		t.Errorf("replicated window differs by %v across replicas", diff)
	}

	// Partition: cut both directions.
	linkAtoB.Cut()
	linkBtoA.Cut()
	waitUntil(t, "both replicas degraded", 5*time.Second, func() bool {
		return a.Replicator().Degraded() && b.Replicator().Degraded()
	})

	// Split-brain writes: A alarms server 1; for server 3 both write,
	// B later (LWW must settle on B's clear).
	if got := sendReports(t, rlA.Addr().String(), "ALARM 1 1", "ALARM 3 1"); got[0] != "OK\n" || got[1] != "OK\n" {
		t.Fatalf("reports to a: %q", got)
	}
	time.Sleep(50 * time.Millisecond) // order the wall-clock stamps
	if got := sendReports(t, rlB.Addr().String(), "ALARM 3 1"); got[0] != "OK\n" {
		t.Fatalf("report to b: %q", got)
	}
	time.Sleep(50 * time.Millisecond)
	if got := sendReports(t, rlB.Addr().String(), "ALARM 3 0"); got[0] != "OK\n" {
		t.Fatalf("report to b: %q", got)
	}

	// Both partitioned replicas must keep answering: the partition
	// itself causes zero SERVFAILs.
	failsBeforeA, failsBeforeB := a.Stats().ServFail, b.Stats().ServFail
	for i := 0; i < 10; i++ {
		if _, err := resA.LookupA(ctx, "www.site.example"); err != nil {
			t.Fatalf("query to partitioned a: %v", err)
		}
		if _, err := resB.LookupA(ctx, "www.site.example"); err != nil {
			t.Fatalf("query to partitioned b: %v", err)
		}
	}
	if a.Stats().ServFail != failsBeforeA || b.Stats().ServFail != failsBeforeB {
		t.Error("partition caused SERVFAILs")
	}
	if b.Alarmed(1) {
		t.Error("alarm crossed a cut link")
	}

	// Heal: reconnect leads with a full-state snapshot; state converges
	// without any further local writes.
	healedAt := time.Now()
	linkAtoB.Heal()
	linkBtoA.Heal()
	waitUntil(t, "post-heal convergence", 10*time.Second, func() bool {
		return b.Alarmed(1) && !a.Alarmed(3) && !b.Alarmed(3)
	})
	t.Logf("converged %v after heal", time.Since(healedAt).Round(time.Millisecond))

	for _, h := range append(a.Replicator().Health(), b.Replicator().Health()...) {
		if h.FullSyncs < 2 {
			t.Errorf("peer %s: FullSyncs = %d, want ≥2 (initial + post-heal)", h.Addr, h.FullSyncs)
		}
	}
}
