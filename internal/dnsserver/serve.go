package dnsserver

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
)

// Serve loops and lifecycle: socket binding, the parallel UDP
// reader/responder workers, the TCP accept loop and its pipelined
// per-connection handlers, the optional DoH front end, and the two
// stop paths (immediate Close, graceful Shutdown).

// Start binds the UDP socket and TCP listener and begins serving with
// the configured number of parallel UDP workers.
//
// DNS needs the same port on both transports. With an explicit port
// that either binds or fails; with an ephemeral port (":0") the kernel
// picks the UDP port without consulting the TCP namespace, so the
// paired TCP bind can collide with an unrelated TCP socket (commonly
// one in TIME_WAIT) — in that case a fresh UDP port is drawn and the
// pair is retried.
func (s *Server) Start() error {
	uaddr, err := net.ResolveUDPAddr("udp", s.addrOrDefault())
	if err != nil {
		return fmt.Errorf("dnsserver: resolve: %w", err)
	}
	const pairAttempts = 16
	for attempt := 0; ; attempt++ {
		if err := s.bindUDP(uaddr); err != nil {
			return fmt.Errorf("dnsserver: listen udp: %w", err)
		}
		s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
		if err == nil {
			break
		}
		for _, c := range s.udpConns {
			_ = c.Close()
		}
		if uaddr.Port != 0 || attempt == pairAttempts-1 {
			return fmt.Errorf("dnsserver: listen tcp: %w", err)
		}
	}
	if s.httpAddr != "" {
		ln, err := net.Listen("tcp", s.httpAddr)
		if err != nil {
			for _, c := range s.udpConns {
				_ = c.Close()
			}
			_ = s.tcp.Close()
			return fmt.Errorf("dnsserver: listen http: %w", err)
		}
		s.httpLn = ln
		s.httpSrv = &http.Server{
			Handler:           s.dohMux(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       tcpIdleTimeout,
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				select {
				case <-s.closed:
				default:
					s.logger.Warn("http serve failed", "err", err)
				}
			}
		}()
	}
	if s.overCfg.Enabled() && s.over == nil {
		s.over = newOverloadController(s, s.overCfg)
	}
	s.wg.Add(s.udpWorkers + 1)
	if s.batchMode.Load() {
		for i := 0; i < s.udpWorkers; i++ {
			go s.serveUDPBatch(i, s.udpConns[i])
		}
	} else {
		for i := 0; i < s.udpWorkers; i++ {
			go s.serveUDP(i)
		}
	}
	go s.serveTCP()
	return nil
}

// bindUDP binds the UDP side: one SO_REUSEPORT socket per worker when
// batching is configured and the platform supports it, otherwise one
// shared socket for the portable loop. Config.UDPWorkers governs the
// worker count identically in both modes. s.udp always aliases the
// first socket (the bound address).
func (s *Server) bindUDP(uaddr *net.UDPAddr) error {
	if s.udpBatch > 0 && batchSupported {
		conns, err := listenUDPBatchConns(uaddr, s.udpWorkers)
		if err == nil {
			s.udpConns = conns
			s.udp = conns[0]
			s.batchMode.Store(true)
			return nil
		}
		// SO_REUSEPORT can be refused by hardened kernels or policy;
		// serving on the portable path beats not serving.
		s.logger.Warn("batched UDP unavailable; using the portable serve loop", "err", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return err
	}
	s.udp = conn
	s.udpConns = []*net.UDPConn{conn}
	s.batchMode.Store(false)
	return nil
}

// configured listen address; stored via Config at New time.
func (s *Server) addrOrDefault() string {
	if s.listenAddr == "" {
		return "127.0.0.1:0"
	}
	return s.listenAddr
}

// Addr returns the bound UDP address (valid after Start).
func (s *Server) Addr() net.Addr { return s.udp.LocalAddr() }

// HTTPAddr returns the bound DoH listener address, or nil when no HTTP
// front end is configured (valid after Start).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Close stops serving immediately and waits for the serve loops to
// exit; in-flight exchanges may be cut off. For a drain-then-stop, use
// Shutdown.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.cancelDrainTimers()
	s.StopReplication()
	s.stopProbing()
	s.stopOverload()
	var first error
	for _, c := range s.udpConns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Closing the listener does not close accepted connections; do it
	// explicitly so Close never waits out a TCP idle deadline.
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return first
}

// Shutdown stops the server gracefully: new work is refused, but
// queries already read from the sockets are answered before the serve
// loops exit. The UDP socket stays open (writable) until every worker
// has finished its in-flight response; TCP stops accepting at once and
// each open connection completes its current exchange. When ctx
// expires first, the remaining work is cut off as in Close and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.cancelDrainTimers()
	s.StopReplication()
	s.stopProbing()
	s.stopOverload()
	// Unblock the UDP readers without closing the sockets: a worker
	// blocked in read (or in recvmmsg under the netpoller) observes the
	// deadline error, sees closed, and exits; a worker mid-response can
	// still write it.
	for _, c := range s.udpConns {
		_ = c.SetReadDeadline(time.Now())
	}
	var first error
	if s.tcp != nil {
		first = s.tcp.Close()
	}
	if s.httpSrv != nil {
		// Graceful: in-flight DoH exchanges complete; if ctx expires the
		// Close fallback below cuts whatever remains.
		if err := s.httpSrv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if first == nil {
			first = ctx.Err()
		}
		if s.httpSrv != nil {
			_ = s.httpSrv.Close()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connsMu.Unlock()
	}
	for _, c := range s.udpConns {
		_ = c.Close()
	}
	<-done
	return first
}

// cancelDrainTimers stops every pending drain-completion timer; used
// on shutdown so no removal fires into a closing server.
func (s *Server) cancelDrainTimers() {
	s.reconfigMu.Lock()
	for i, t := range s.drainTimers {
		t.Stop()
		delete(s.drainTimers, i)
	}
	s.reconfigMu.Unlock()
}

// packPool recycles response buffers across queries; serve loops pack
// into a pooled buffer via dnswire.AppendPack and return it after the
// write, so steady-state encoding allocates nothing.
var packPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// Read/accept error backoff: persistent socket errors (ENOBUFS, EMFILE)
// would otherwise hot-spin the serve loop and flood the log. The delay
// doubles per consecutive failure up to the cap and resets to zero on
// the first success.
const (
	errBackoffMin = time.Millisecond
	errBackoffMax = time.Second
)

// nextBackoff returns the delay to sleep after a serve-loop error and
// the successor backoff value.
func nextBackoff(cur time.Duration) (sleep, next time.Duration) {
	if cur <= 0 {
		return errBackoffMin, 2 * errBackoffMin
	}
	if cur > errBackoffMax {
		return errBackoffMax, errBackoffMax
	}
	return cur, cur * 2
}

// sleepOrClosed sleeps for d, returning early (true) when the server
// is shutting down.
func (s *Server) sleepOrClosed(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.closed:
		return true
	case <-t.C:
		return false
	}
}

// serveUDP is one of UDPWorkers identical reader/responder loops over
// the shared socket. The kernel distributes datagrams across blocked
// readers; each worker owns its read buffer, so the loops never touch
// shared mutable server state. When instrumented, each worker times
// its own queries and accumulates the latency histogram sum on its own
// shard (the worker index is the hint), keeping the measurement as
// contention-free as the serving.
func (s *Server) serveUDP(worker int) {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	m := s.metrics
	hint := uint32(worker)
	var backoff time.Duration
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("udp read failed", "err", err, "worker", worker)
				var sleep time.Duration
				sleep, backoff = nextBackoff(backoff)
				if s.sleepOrClosed(sleep) {
					return
				}
				continue
			}
		}
		backoff = 0
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		bp := packPool.Get().(*[]byte)
		resp := s.safeHandle(buf[:n], raddr.Addr(), engine.TransportUDP, dnswire.MaxUDPPayload, (*bp)[:0])
		if resp != nil {
			if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
				s.logger.Warn("udp write failed", "err", err, "worker", worker, "raddr", raddr)
			}
			if cap(resp) > cap(*bp) {
				*bp = resp[:0] // keep the grown buffer
			}
		}
		packPool.Put(bp)
		if m != nil {
			m.latency.ObserveHint(hint, time.Since(start).Seconds())
		}
	}
}

// DefaultMaxTCPConns is the concurrent TCP connection cap applied when
// Config.MaxTCPConns is zero. Each connection costs one goroutine plus
// a pooled read buffer; 512 comfortably covers legitimate TCP retry
// traffic (truncated UDP responses) while bounding a connection flood.
const DefaultMaxTCPConns = 512

// TCPConns returns the number of TCP connections currently being
// served (the dnslb_dns_tcp_conns gauge).
func (s *Server) TCPConns() int64 { return s.tcpConns.Load() }

func (s *Server) serveTCP() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		// Acquire a connection slot BEFORE accepting: when the server is
		// at its cap the accept loop pauses and the kernel's SYN backlog
		// (and the clients' retries) absorb the burst. Pausing beats
		// accept-and-close — a closed connection makes the client retry
		// immediately, pausing makes it wait exactly as long as needed.
		if s.tcpSem != nil {
			select {
			case s.tcpSem <- struct{}{}:
			case <-s.closed:
				return
			}
		}
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.tcpSem != nil {
				<-s.tcpSem
			}
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("tcp accept failed", "err", err)
				var sleep time.Duration
				sleep, backoff = nextBackoff(backoff)
				if s.sleepOrClosed(sleep) {
					return
				}
				continue
			}
		}
		backoff = 0
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.tcpConns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
				s.tcpConns.Add(-1)
				if s.tcpSem != nil {
					<-s.tcpSem
				}
			}()
			s.serveTCPConn(conn)
		}()
	}
}

// tcpIdleTimeout bounds how long a TCP client may sit between
// messages, so idle or slowloris connections cannot pin goroutines.
const tcpIdleTimeout = 30 * time.Second

// maxTCPQuery bounds the accepted TCP query size. Legitimate queries
// are tiny (name + fixed sections + EDNS options); anything beyond 4
// KiB is either garbage or an attempt to make the server allocate —
// either way the connection is cut before reading the payload.
const maxTCPQuery = 4096

// tcpBufPool recycles TCP read buffers: one Get per in-flight message
// keeps the steady-state read path allocation-free while a flood of
// short-lived connections recycles instead of churning 4 KiB slabs.
var tcpBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxTCPQuery)
		return &b
	},
}

// maxTCPPipeline bounds how many queries one TCP connection may have in
// flight at once (RFC 7766 §6.2.1.1 pipelining). The reader stalls —
// applying natural backpressure through the kernel's receive window —
// once the cap is reached, so one connection can neither spawn
// unbounded handler goroutines nor pin unbounded pooled buffers.
const maxTCPPipeline = 16

// serveTCPConn serves one TCP connection with pipelining per RFC 7766:
// the read loop keeps consuming length-prefixed queries while up to
// maxTCPPipeline handler goroutines process earlier ones concurrently,
// and each handler writes its length-prefixed response under the
// connection's write lock the moment it is ready — so responses may
// interleave in any order (clients match on message ID) and one slow
// decision never convoys the queries behind it.
//
// Framing errors (zero or oversized length prefix) and unanswerable
// messages cut the connection exactly as the sequential loop did;
// in-flight handlers for earlier queries still complete and write
// their responses before the deferred Wait returns.
func (s *Server) serveTCPConn(conn net.Conn) {
	var raddr netip.Addr
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		raddr = ap.Addr()
	}
	var (
		wmu    sync.Mutex // serializes response writes
		wg     sync.WaitGroup
		broken atomic.Bool // a handler failed to write or dropped its query
		sem    = make(chan struct{}, maxTCPPipeline)
	)
	// Cut the connection: mark it broken so the read loop stops, and
	// close it so concurrent handlers' writes fail fast. Handlers call
	// this too, making a mid-pipeline failure converge from both sides.
	cut := func() {
		broken.Store(true)
		_ = conn.Close()
	}
	defer wg.Wait()
	var lenBuf [2]byte
	for {
		// A graceful shutdown lets in-flight exchanges finish but takes
		// no further messages from the connection.
		select {
		case <-s.closed:
			return
		default:
		}
		if broken.Load() {
			return
		}
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := readFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		// Validate the length prefix BEFORE reading the payload: a
		// zero-length message carries nothing answerable, and an
		// oversized one is read-and-discard work no legitimate resolver
		// ever asks for. Both stop the read loop; responses already in
		// flight drain through the deferred Wait before the caller
		// closes the connection.
		if n == 0 || n > maxTCPQuery {
			return
		}
		// The message gets its own pooled buffer: the handler goroutine
		// owns it until done, while the read loop moves on to the next
		// length prefix.
		msgp := tcpBufPool.Get().(*[]byte)
		msg := (*msgp)[:n]
		if _, err := readFull(conn, msg); err != nil {
			tcpBufPool.Put(msgp)
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() {
				<-sem
				wg.Done()
			}()
			bp := packPool.Get().(*[]byte)
			resp := s.safeHandle(msg, raddr, engine.TransportTCP, math.MaxUint16, (*bp)[:0])
			tcpBufPool.Put(msgp)
			if resp == nil {
				packPool.Put(bp)
				cut()
				return
			}
			var pfx [2]byte
			pfx[0], pfx[1] = byte(len(resp)>>8), byte(len(resp))
			// Two-buffer writev under the write lock: length prefix +
			// pooled response body, no copy into a combined slice, and
			// no interleaving of partial responses from other handlers.
			wmu.Lock()
			_ = conn.SetWriteDeadline(time.Now().Add(tcpIdleTimeout))
			bufs := net.Buffers{pfx[:], resp}
			_, err := bufs.WriteTo(conn)
			wmu.Unlock()
			if cap(resp) > cap(*bp) {
				*bp = resp[:0]
			}
			packPool.Put(bp)
			if err != nil {
				cut()
			}
		}()
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}
