package dnsserver

import (
	"net/netip"
	"sync/atomic"
)

// Versioned hot-answer cache.
//
// The dominant query shape — an IN A question for the zone — always
// produces the same response bytes for a given (domain, chosen server,
// client subnet) triple while the scheduler state stands still: the
// answer's address comes from the immutable address table, the TTL is
// a pure function of (state version, domain, server) because the TTL
// calibration is itself keyed on the snapshot version, and the RFC
// 7871 echo (family, source prefix, address, scope) is a pure function
// of the query's subnet, which is part of the key. The cache exploits
// that: it stores the fully packed response (ID zeroed, RD clear) and
// serves hits with a copy plus a two-byte ID patch and one flag-bit OR
// — zero allocations, no message construction.
//
// The subnet key dimension uses exact prefix equality: subnet-blind
// entries (invalid prefix — queries that carried no ECS) behave
// exactly as the pre-ECS cache did, and a subnet-scoped entry can only
// ever be served to a query carrying that identical masked prefix —
// never across subnets, and never to a query without ECS.
//
// Validity is enforced by equality, not by eager purging: an entry is
// served only when its snapshot version, wire TTL, AND baked-in
// answer address all match the decision just made and the current
// address table. The version check makes every reconfiguration event
// (JOIN, DRAIN, SIGHUP reload, capacity change, weight roll,
// checkpoint restore — each bumps the state version) evict, and the
// TTL/address equality makes the design airtight even against the
// benign race where the state changes between the version read and
// the policy's snapshot load: bytes can only leave the cache if they
// are byte-identical to what a fresh pack would produce.
//
// The table is a fixed power-of-two array of atomic entry pointers
// indexed by a (domain, server) hash; a colliding store simply
// replaces the previous occupant (direct-mapped, lossy — correctness
// never depends on residency). Entries are immutable once published.

// answerCacheSlots bounds the cache: 4096 pointers (32 KiB of table)
// covers domains × servers for any realistic deployment; collisions
// degrade hit rate, never correctness.
const answerCacheSlots = 4096

// hotAnswer is one immutable cache entry: the full key and the packed
// response with the ID zeroed and the RD flag clear. subnet is the
// invalid zero Prefix for subnet-blind entries.
type hotAnswer struct {
	domain  int
	server  int
	version uint64
	ttl     uint32
	addr    netip.Addr
	subnet  netip.Prefix
	wire    []byte
}

// answerCache is the table plus its observability counters.
type answerCache struct {
	entries [answerCacheSlots]atomic.Pointer[hotAnswer]

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

func newAnswerCache() *answerCache { return &answerCache{} }

// slot hashes a (domain, server, subnet) triple to a table index. The
// subnet contribution folds the masked address bytes and prefix length
// in; the invalid (subnet-blind) prefix contributes nothing, keeping
// blind entries in the exact slots the pre-ECS cache used.
func cacheSlot(domain, server int, subnet netip.Prefix) uint32 {
	h := uint32(domain)*0x9E3779B1 ^ uint32(server)*0x85EBCA77
	if subnet.IsValid() {
		b := subnet.Addr().As16()
		for i := 0; i < 16; i += 4 {
			h = h*0x01000193 ^ (uint32(b[i])<<24 | uint32(b[i+1])<<16 | uint32(b[i+2])<<8 | uint32(b[i+3]))
		}
		h = h*0x01000193 ^ uint32(subnet.Bits())
	}
	h ^= h >> 16
	return h & (answerCacheSlots - 1)
}

// lookup returns the entry for the decision iff it is exactly valid:
// same (domain, server, subnet), packed at the same snapshot version,
// carrying the same wire TTL, and answering with the same address the
// current table holds. The subnet comparison is exact Prefix equality,
// so a scoped entry never serves another subnet (or a subnet-blind
// query) regardless of hash collisions. A key-matching entry that
// fails the validity checks is a stale survivor of a reconfiguration;
// it is counted as an invalidation (and will be replaced by the
// following store).
func (c *answerCache) lookup(domain, server int, version uint64, ttl uint32, addr netip.Addr, subnet netip.Prefix) *hotAnswer {
	e := c.entries[cacheSlot(domain, server, subnet)].Load()
	if e == nil || e.domain != domain || e.server != server || e.subnet != subnet {
		c.misses.Add(1)
		return nil
	}
	if e.version != version || e.ttl != ttl || e.addr != addr {
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// store publishes a freshly packed response. wire is the on-the-wire
// response for the query that missed; the entry keeps a normalized
// copy (ID zeroed, RD clear) so any later query can be served from it.
func (c *answerCache) store(domain, server int, version uint64, ttl uint32, addr netip.Addr, subnet netip.Prefix, wire []byte) {
	norm := make([]byte, len(wire))
	copy(norm, wire)
	norm[0], norm[1] = 0, 0
	norm[2] &^= 0x01 // RD is echoed per query; cache the RD-clear form
	c.entries[cacheSlot(domain, server, subnet)].Store(&hotAnswer{
		domain:  domain,
		server:  server,
		version: version,
		ttl:     ttl,
		addr:    addr,
		subnet:  subnet,
		wire:    norm,
	})
}

// appendAnswer copies the cached response into dst and patches the
// two per-query bytes: the message ID and the echoed RD flag.
func (e *hotAnswer) appendAnswer(dst []byte, id uint16, rd bool) []byte {
	base := len(dst)
	dst = append(dst, e.wire...)
	dst[base] = byte(id >> 8)
	dst[base+1] = byte(id)
	if rd {
		dst[base+2] |= 0x01
	}
	return dst
}

// Hits returns how many queries were answered from the cache.
func (c *answerCache) Hits() uint64 { return c.hits.Load() }

// Misses returns how many cacheable queries had to pack a response.
func (c *answerCache) Misses() uint64 { return c.misses.Load() }

// Invalidations returns how many lookups found a key-matching entry
// staled by a snapshot-version, TTL-calibration, or address change.
func (c *answerCache) Invalidations() uint64 { return c.invalidations.Load() }
