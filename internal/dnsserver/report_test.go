package dnsserver

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnslb/internal/dnsclient"
)

func startReportListener(t *testing.T, srv *Server) *ReportListener {
	t.Helper()
	rl, err := NewReportListener(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rl.Close() })
	return rl
}

// sendReports writes lines and returns each response line.
func sendReports(t *testing.T, addr string, lines ...string) []string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	var out []string
	for _, line := range lines {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, resp)
	}
	return out
}

func TestReportAlarmProtocol(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	resp := sendReports(t, rl.Addr().String(), "ALARM 2 1")
	if resp[0] != "OK\n" {
		t.Fatalf("response = %q", resp[0])
	}
	if !srv.Alarmed(2) {
		t.Error("alarm not applied")
	}
	resp = sendReports(t, rl.Addr().String(), "ALARM 2 0")
	if resp[0] != "OK\n" || srv.Alarmed(2) {
		t.Error("alarm not cleared")
	}
}

func TestReportHitsAndRoll(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	lines := []string{"HITS 7 900"}
	for j := 0; j < 20; j++ {
		if j != 7 {
			lines = append(lines, fmt.Sprintf("HITS %d 10", j))
		}
	}
	lines = append(lines, "ROLL 60")
	for i, resp := range sendReports(t, rl.Addr().String(), lines...) {
		if resp != "OK\n" {
			t.Fatalf("line %d response = %q", i, resp)
		}
	}
	// Weights now reflect the reported skew: domain 7 dominates.
	if srv.DomainWeight(7) < 0.5 {
		t.Errorf("estimated weight of domain 7 = %v, want dominant", srv.DomainWeight(7))
	}
}

func TestReportErrors(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	resps := sendReports(t, rl.Addr().String(),
		"BOGUS 1 2",
		"ALARM x 1",
		"ALARM 1 7",
		"ALARM 1",
		"HITS 1 -5",
		"HITS 1",
		"ROLL 0",
		"ROLL",
	)
	for i, resp := range resps {
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Errorf("line %d: response %q, want ERR", i, resp)
		}
	}
}

func TestReportDrivenSchedulingEndToEnd(t *testing.T) {
	// Alarm a server over the report socket; DNS answers must avoid it.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	sendReports(t, rl.Addr().String(), "ALARM 0 1")

	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	excluded := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	for i := 0; i < 14; i++ {
		answers, err := r.LookupA(t.Context(), "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if answers[0].Addr == excluded {
			t.Fatal("alarmed server still answered")
		}
	}
}

func TestReportListenerCloseIdempotent(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReportListenerCloseWithOpenConn(t *testing.T) {
	// Regression: Close used to wait on the handler WaitGroup without
	// closing accepted connections, so a client holding its socket open
	// hung shutdown forever.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	conn, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove the connection is accepted and served before closing.
	if resp := roundTrip(t, conn, "ALARM 1 1"); resp != "OK\n" {
		t.Fatalf("response = %q", resp)
	}

	done := make(chan error, 1)
	go func() { done <- rl.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hangs while a report connection is open")
	}
}

func roundTrip(t *testing.T, conn net.Conn, line string) string {
	t.Helper()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintln(conn, line); err != nil {
		t.Fatal(err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestReportAlarmOutOfRange(t *testing.T) {
	// An out-of-range server index must come back as ERR over the wire,
	// not be silently swallowed.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	resps := sendReports(t, rl.Addr().String(), "ALARM 99 1", "ALARM -1 0")
	for i, resp := range resps {
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Errorf("line %d: response %q, want ERR", i, resp)
		}
	}
}

func TestReportAliveProtocol(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	resps := sendReports(t, rl.Addr().String(),
		"ALIVE 3",
		"ALIVE 99",
		"ALIVE x",
		"ALIVE",
	)
	if resps[0] != "OK\n" {
		t.Errorf("ALIVE 3 response = %q", resps[0])
	}
	for i, resp := range resps[1:] {
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Errorf("line %d: response %q, want ERR", i+1, resp)
		}
	}
}

func TestReportOversizedLine(t *testing.T) {
	// A line beyond bufio.Scanner's 64 KiB token limit must get the
	// client disconnected with an error, and the listener must keep
	// serving new connections afterwards.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	conn, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	huge := make([]byte, 80*1024)
	for i := range huge {
		huge[i] = 'A'
	}
	huge = append(huge, '\n')
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	resp, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) < 3 || resp[:3] != "ERR" {
		t.Errorf("oversized line response = %q, want ERR", resp)
	}
	// The connection is gone after the protocol violation.
	if _, err := r.ReadString('\n'); err == nil {
		t.Error("connection still open after oversized line")
	}
	// Fresh connections still work.
	if resp := sendReports(t, rl.Addr().String(), "ALARM 1 1"); resp[0] != "OK\n" {
		t.Errorf("post-violation response = %q", resp[0])
	}
}

func TestReportTruncatedWrite(t *testing.T) {
	// A client that dies mid-line must not wedge the listener or apply
	// the partial command.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	conn, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ALARM 2")); err != nil { // no newline
		t.Fatal(err)
	}
	_ = conn.Close()

	// The listener still answers other clients, and the torn line was
	// parsed as an (incomplete) command, not applied as an alarm.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Alarmed(2) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Alarmed(2) {
		t.Error("truncated ALARM line was applied")
	}
	if resp := sendReports(t, rl.Addr().String(), "ALARM 2 1"); resp[0] != "OK\n" {
		t.Errorf("response after truncated client = %q", resp[0])
	}
}

func TestReportConcurrentBackends(t *testing.T) {
	// Many backends reporting ALARM/HITS/ROLL/ALIVE at once: every line
	// is answered and the listener state stays consistent (run with
	// -race to check for data races).
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	const backends = 8
	var wg sync.WaitGroup
	errc := make(chan error, backends)
	for b := 0; b < backends; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", rl.Addr().String())
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
			r := bufio.NewReader(conn)
			for i := 0; i < 50; i++ {
				lines := []string{
					fmt.Sprintf("ALIVE %d", b%7),
					fmt.Sprintf("ALARM %d %d", b%7, i%2),
					fmt.Sprintf("HITS %d 10", i%20),
					"ROLL 8",
				}
				for _, line := range lines {
					if _, err := fmt.Fprintln(conn, line); err != nil {
						errc <- err
						return
					}
					resp, err := r.ReadString('\n')
					if err != nil {
						errc <- err
						return
					}
					if resp != "OK\n" {
						errc <- fmt.Errorf("backend %d: %q -> %q", b, line, resp)
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
