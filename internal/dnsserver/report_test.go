package dnsserver

import (
	"bufio"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/dnsclient"
)

func startReportListener(t *testing.T, srv *Server) *ReportListener {
	t.Helper()
	rl, err := NewReportListener(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rl.Close() })
	return rl
}

// sendReports writes lines and returns each response line.
func sendReports(t *testing.T, addr string, lines ...string) []string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	r := bufio.NewReader(conn)
	var out []string
	for _, line := range lines {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, resp)
	}
	return out
}

func TestReportAlarmProtocol(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	resp := sendReports(t, rl.Addr().String(), "ALARM 2 1")
	if resp[0] != "OK\n" {
		t.Fatalf("response = %q", resp[0])
	}
	if !srv.Alarmed(2) {
		t.Error("alarm not applied")
	}
	resp = sendReports(t, rl.Addr().String(), "ALARM 2 0")
	if resp[0] != "OK\n" || srv.Alarmed(2) {
		t.Error("alarm not cleared")
	}
}

func TestReportHitsAndRoll(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)

	lines := []string{"HITS 7 900"}
	for j := 0; j < 20; j++ {
		if j != 7 {
			lines = append(lines, fmt.Sprintf("HITS %d 10", j))
		}
	}
	lines = append(lines, "ROLL 60")
	for i, resp := range sendReports(t, rl.Addr().String(), lines...) {
		if resp != "OK\n" {
			t.Fatalf("line %d response = %q", i, resp)
		}
	}
	// Weights now reflect the reported skew: domain 7 dominates.
	if srv.DomainWeight(7) < 0.5 {
		t.Errorf("estimated weight of domain 7 = %v, want dominant", srv.DomainWeight(7))
	}
}

func TestReportErrors(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	resps := sendReports(t, rl.Addr().String(),
		"BOGUS 1 2",
		"ALARM x 1",
		"ALARM 1 7",
		"ALARM 1",
		"HITS 1 -5",
		"HITS 1",
		"ROLL 0",
		"ROLL",
	)
	for i, resp := range resps {
		if len(resp) < 3 || resp[:3] != "ERR" {
			t.Errorf("line %d: response %q, want ERR", i, resp)
		}
	}
}

func TestReportDrivenSchedulingEndToEnd(t *testing.T) {
	// Alarm a server over the report socket; DNS answers must avoid it.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	sendReports(t, rl.Addr().String(), "ALARM 0 1")

	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	excluded := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	for i := 0; i < 14; i++ {
		answers, err := r.LookupA(t.Context(), "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if answers[0].Addr == excluded {
			t.Fatal("alarmed server still answered")
		}
	}
}

func TestReportListenerCloseIdempotent(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
}
