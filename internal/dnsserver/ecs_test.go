package dnsserver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
)

// TestECSDrivesDomainClassification verifies the modern deployment
// path: when a shared resolver forwards the client network via the
// EDNS Client Subnet option, the scheduler classifies the originating
// domain from that prefix rather than from the resolver's transport
// address, and TTLs adapt accordingly.
func TestECSDrivesDomainClassification(t *testing.T) {
	// Map two client networks to the hottest and coldest domains.
	hotNet := netip.MustParseAddr("198.51.100.0")
	coldNet := netip.MustParseAddr("203.0.113.0")
	mapper := StaticMapper(map[netip.Addr]int{hotNet: 0, coldNet: 19}, 5)
	srv, _ := testServer(t, "PRR2-TTL/K", mapper)

	query := func(prefix string) (ttl time.Duration, scoped bool) {
		t.Helper()
		r := &dnsclient.Resolver{
			Server:       srv.Addr().String(),
			Timeout:      2 * time.Second,
			ClientSubnet: netip.MustParsePrefix(prefix),
		}
		resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("answers = %d", len(resp.Answers))
		}
		_, hasEcho := resp.ClientSubnet()
		return time.Duration(resp.Answers[0].TTL) * time.Second, hasEcho
	}

	hotTTL, hotScoped := query("198.51.100.0/24")
	coldTTL, coldScoped := query("203.0.113.0/24")
	if !hotScoped || !coldScoped {
		t.Error("server must echo the ECS option in scoped answers")
	}
	// TTL/K with pure Zipf: domain 19's TTL is 20× domain 0's.
	ratio := coldTTL.Seconds() / hotTTL.Seconds()
	if ratio < 15 || ratio > 25 {
		t.Errorf("cold/hot TTL ratio = %v (cold %v, hot %v), want ≈ 20", ratio, coldTTL, hotTTL)
	}
}

func TestECSEchoCarriesScope(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := &dnsclient.Resolver{
		Server:       srv.Addr().String(),
		Timeout:      2 * time.Second,
		ClientSubnet: netip.MustParsePrefix("192.0.2.0/24"),
	}
	resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := resp.ClientSubnet()
	if !ok {
		t.Fatal("no ECS echo")
	}
	if cs.Prefix != netip.MustParsePrefix("192.0.2.0/24") {
		t.Errorf("echoed prefix = %v", cs.Prefix)
	}
	if cs.ScopePrefixLen != 24 {
		t.Errorf("scope = %d, want 24 (full prefix used for scheduling)", cs.ScopePrefixLen)
	}
}

func TestQueriesWithoutECSStillWork(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.ClientSubnet(); ok {
		t.Error("server must not add ECS when the query had none")
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}
