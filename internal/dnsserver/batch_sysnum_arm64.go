//go:build linux

package dnsserver

// Syscall numbers for the batch path (arm64 uses the generic table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
