package dnsserver

import (
	"net"
	"testing"
	"time"

	"dnslb/internal/probe"
)

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestVoteCombination exercises the detector-combination rule directly:
// down when any detector votes down, up only when every detector has
// withdrawn its vote.
func TestVoteCombination(t *testing.T) {
	srv, _ := testServerNoStart(t, "RR")

	// Single detector degenerates to that detector's standing.
	if err := srv.voteDown(detectorPassive, 1, true); err != nil {
		t.Fatal(err)
	}
	if !srv.Down(1) {
		t.Fatal("passive vote alone should mark down")
	}
	if err := srv.voteDown(detectorPassive, 1, false); err != nil {
		t.Fatal(err)
	}
	if srv.Down(1) {
		t.Fatal("withdrawn passive vote should re-admit")
	}

	// Two detectors: either marks down, both must agree to revive.
	_ = srv.voteDown(detectorPassive, 2, true)
	if !srv.Down(2) {
		t.Fatal("passive vote should mark down")
	}
	_ = srv.voteDown(detectorActive, 2, true)
	if !srv.Down(2) {
		t.Fatal("both votes should keep down")
	}
	_ = srv.voteDown(detectorPassive, 2, false)
	if !srv.Down(2) {
		t.Fatal("active vote still held: server must stay down")
	}
	if !srv.votes.holds(detectorActive, 2) || srv.votes.holds(detectorPassive, 2) {
		t.Fatal("vote ledger inconsistent")
	}
	_ = srv.voteDown(detectorActive, 2, false)
	if srv.Down(2) {
		t.Fatal("all votes withdrawn: server must be up")
	}

	// Re-voting the same standing is idempotent (no transition churn).
	before := srv.policy.State().DownTransitions()
	_ = srv.voteDown(detectorActive, 3, true)
	_ = srv.voteDown(detectorActive, 3, true)
	_ = srv.voteDown(detectorPassive, 3, true)
	after := srv.policy.State().DownTransitions()
	if got := after - before; got != 1 {
		t.Fatalf("three redundant down votes caused %d transitions, want 1", got)
	}

	// Out-of-range slots are rejected by the engine.
	if err := srv.voteDown(detectorPassive, 99, true); err == nil {
		t.Fatal("out-of-range vote accepted")
	}
}

// TestStartProbingDetectsCrashAndRevives runs a real prober against
// real listeners: closing a backend's listener must mark the slot down
// via the active vote, and restoring it must re-admit the slot (the
// passive detector never voted).
func TestStartProbingDetectsCrashAndRevives(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)

	// Backends for slots 0 and 1; the remaining slots are unprobed.
	listeners := make([]net.Listener, 2)
	targets := make([]probe.Target, srv.Servers())
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func(ln net.Listener) {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}(ln)
		listeners[i] = ln
		targets[i] = probe.Target{Addr: ln.Addr().String()}
	}

	p, err := srv.StartProbing(probe.Config{
		Targets:  targets,
		Interval: 20 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		FailN:    2,
		RiseM:    2,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 2*time.Second, func() bool { return p.Stats()[0].Probes >= 3 }, "probes not running")
	for i := 0; i < srv.Servers(); i++ {
		if srv.Down(i) {
			t.Fatalf("server %d down with healthy backends", i)
		}
	}

	// Crash backend 1.
	addr := listeners[1].Addr().String()
	listeners[1].Close()
	waitCond(t, 2*time.Second, func() bool { return srv.Down(1) }, "crashed backend never excluded")
	if !srv.ProbeDown(1) {
		t.Fatal("ProbeDown(1) should report the active detector's vote")
	}
	if srv.Down(0) {
		t.Fatal("healthy backend excluded")
	}

	// Restore it on the same address: rise-M successes re-admit.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	waitCond(t, 3*time.Second, func() bool { return !srv.Down(1) }, "restored backend never re-admitted")
}

// TestProbeReviveWaitsForPassiveAgreement: with both detectors voting
// down, a probe recovery alone must not re-admit the backend.
func TestProbeReviveWaitsForPassiveAgreement(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)

	targets := make([]probe.Target, srv.Servers())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	addr := ln.Addr().String()
	targets[0] = probe.Target{Addr: addr}
	if _, err := srv.StartProbing(probe.Config{
		Targets:  targets,
		Interval: 20 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		FailN:    2,
		RiseM:    1,
		Seed:     1,
	}); err != nil {
		t.Fatal(err)
	}

	// Passive detector (simulated) votes down, then the backend "dies".
	_ = srv.voteDown(detectorPassive, 0, true)
	ln.Close()
	waitCond(t, 2*time.Second, func() bool { return srv.ProbeDown(0) }, "probe never failed")
	if !srv.Down(0) {
		t.Fatal("server should be down")
	}

	// Backend comes back: the probe revives, but the passive vote holds.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	go func() {
		for {
			c, err := ln2.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	waitCond(t, 3*time.Second, func() bool { return !srv.ProbeDown(0) }, "probe never recovered")
	if !srv.Down(0) {
		t.Fatal("probe recovery alone re-admitted the server despite the passive vote")
	}

	// Passive agreement (a report arriving) completes the revival.
	_ = srv.voteDown(detectorPassive, 0, false)
	if srv.Down(0) {
		t.Fatal("both detectors agree up; server still down")
	}
}

func TestStartProbingValidation(t *testing.T) {
	srv, _ := testServerNoStart(t, "RR")
	if _, err := srv.StartProbing(probe.Config{Targets: []probe.Target{{Addr: "1.2.3.4:80"}}}); err == nil {
		t.Fatal("target/slot count mismatch accepted")
	}
	targets := make([]probe.Target, srv.Servers())
	if _, err := srv.StartProbing(probe.Config{Targets: targets, Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.StartProbing(probe.Config{Targets: targets, Interval: time.Hour}); err == nil {
		t.Fatal("double StartProbing accepted")
	}
	if srv.ProbeDown(0) {
		t.Fatal("all-empty targets should never be down")
	}
}
