package dnsserver

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
	"dnslb/internal/metrics"
	"dnslb/internal/simcore"
)

// dohServer starts a server with the HTTP front end (and optionally the
// answer cache) enabled, a metrics registry attached, and a mapper that
// classifies 10.d.0.0/16 client networks to domain d.
func dohServer(t *testing.T, answerCache bool) (*Server, *metrics.Registry) {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "DRR2-TTL/S_K",
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	reg := metrics.NewRegistry()
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper: func(a netip.Addr) int {
			if !a.IsValid() || !a.Is4() {
				return 0
			}
			return int(a.As4()[1]) % 20
		},
		Addr:        "127.0.0.1:0",
		HTTPAddr:    "127.0.0.1:0",
		AnswerCache: answerCache,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, reg
}

func dohBase(t *testing.T, srv *Server) string {
	t.Helper()
	ha := srv.HTTPAddr()
	if ha == nil {
		t.Fatal("HTTP front end not bound")
	}
	return "http://" + ha.String()
}

func TestDoHWireGetAndPost(t *testing.T) {
	srv, _ := dohServer(t, false)
	base := dohBase(t, srv)
	wire := testQueryWire(t)
	client := &http.Client{Timeout: 3 * time.Second}

	check := func(hr *http.Response, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("status %s", hr.Status)
		}
		if ct := hr.Header.Get("Content-Type"); ct != "application/dns-message" {
			t.Fatalf("content type %q", ct)
		}
		body, err := io.ReadAll(hr.Body)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := dnswire.Unpack(body)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Header.RCode != dnswire.RCodeNoError || len(msg.Answers) != 1 {
			t.Fatalf("rcode=%v answers=%d", msg.Header.RCode, len(msg.Answers))
		}
	}

	check(client.Get(base + "/dns-query?dns=" + base64.RawURLEncoding.EncodeToString(wire)))
	// Padded base64 is tolerated (curl users).
	check(client.Get(base + "/dns-query?dns=" + base64.URLEncoding.EncodeToString(wire)))
	check(client.Post(base+"/dns-query", "application/dns-message", bytes.NewReader(wire)))
}

func TestDoHWireRejections(t *testing.T) {
	srv, reg := dohServer(t, false)
	base := dohBase(t, srv)
	client := &http.Client{Timeout: 3 * time.Second}

	status := func(hr *http.Response, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		_, _ = io.Copy(io.Discard, hr.Body)
		return hr.StatusCode
	}

	if got := status(client.Get(base + "/dns-query")); got != http.StatusBadRequest {
		t.Errorf("missing dns param: %d, want 400", got)
	}
	if got := status(client.Get(base + "/dns-query?dns=!!!not-base64!!!")); got != http.StatusBadRequest {
		t.Errorf("bad base64: %d, want 400", got)
	}
	if got := status(client.Post(base+"/dns-query", "text/plain", strings.NewReader("hi"))); got != http.StatusUnsupportedMediaType {
		t.Errorf("wrong content type: %d, want 415", got)
	}
	if got := status(client.Post(base+"/dns-query", "application/dns-message",
		bytes.NewReader(make([]byte, maxDoHRequest+1)))); got != http.StatusBadRequest {
		t.Errorf("oversized body: %d, want 400", got)
	}
	req, err := http.NewRequest(http.MethodDelete, base+"/dns-query", nil)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	allow := hr.Header.Get("Allow")
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed || !strings.Contains(allow, "GET") {
		t.Errorf("DELETE: %d Allow=%q, want 405 with GET", hr.StatusCode, allow)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := seriesValue(t, buf.String(), `dnslb_doh_requests_total{outcome="bad_request"}`); got < 5 {
		t.Errorf("bad_request outcome counter = %v, want >= 5", got)
	}
}

func TestDoHJSONResolve(t *testing.T) {
	srv, _ := dohServer(t, false)
	base := dohBase(t, srv)
	client := &http.Client{Timeout: 3 * time.Second}

	hr, err := client.Get(base + "/resolve?name=www.site.example&type=A&edns_client_subnet=10.3.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %s", hr.Status)
	}
	var out struct {
		Status   uint16 `json:"Status"`
		Question []struct {
			Name string `json:"name"`
		} `json:"Question"`
		Answer []struct {
			Type uint16 `json:"type"`
			TTL  uint32 `json:"TTL"`
			Data string `json:"data"`
		} `json:"Answer"`
		Subnet string `json:"edns_client_subnet"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != 0 || len(out.Answer) != 1 {
		t.Fatalf("Status=%d answers=%d", out.Status, len(out.Answer))
	}
	if out.Answer[0].Type != uint16(dnswire.TypeA) || out.Answer[0].TTL == 0 {
		t.Errorf("answer = %+v", out.Answer[0])
	}
	addr, err := netip.ParseAddr(out.Answer[0].Data)
	if err != nil || !addr.Is4() {
		t.Errorf("answer data %q is not an IPv4 address", out.Answer[0].Data)
	}
	if out.Subnet != "10.3.0.0/16/16" {
		t.Errorf("edns_client_subnet = %q, want 10.3.0.0/16/16", out.Subnet)
	}

	// Bad parameters are 400s, not panics.
	for _, q := range []string{
		"/resolve",
		"/resolve?name=www.site.example&type=BOGUS",
		"/resolve?name=www.site.example&edns_client_subnet=not-an-addr",
	} {
		hr, err := client.Get(base + q)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, hr.StatusCode)
		}
	}
}

// TestMultiTransportEquivalence is the PR's acceptance gate: the same
// wire query sent over UDP, pipelined TCP and DoH must produce
// byte-equivalent answers (the message ID is the client's own and the
// decision differs per query; equivalence means structure, zone,
// record shape and scope, not the rotated server address).
func TestMultiTransportEquivalence(t *testing.T) {
	srv, reg := dohServer(t, false)

	subnet := netip.MustParsePrefix("10.5.0.0/16")
	build := func(id uint16) []byte {
		q := &dnswire.Message{
			Header: dnswire.Header{ID: id, RecursionDesired: true},
			Questions: []dnswire.Question{
				{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
			},
		}
		if err := q.SetClientSubnet(dnswire.ClientSubnet{Prefix: subnet}, dnswire.MaxUDPPayload); err != nil {
			t.Fatal(err)
		}
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}

	// UDP.
	uconn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer uconn.Close()
	if _, err := uconn.Write(build(1)); err != nil {
		t.Fatal(err)
	}
	_ = uconn.SetReadDeadline(time.Now().Add(3 * time.Second))
	ubuf := make([]byte, 65535)
	n, err := uconn.Read(ubuf)
	if err != nil {
		t.Fatal(err)
	}
	udpResp := append([]byte(nil), ubuf[:n]...)

	// Pipelined TCP.
	tconn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tconn.Close()
	if _, err := tconn.Write(frameTCP(build(2))); err != nil {
		t.Fatal(err)
	}
	_ = tconn.SetReadDeadline(time.Now().Add(3 * time.Second))
	tcpResp, err := readTCPResponse(tconn)
	if err != nil {
		t.Fatal(err)
	}

	// DoH POST.
	hr, err := (&http.Client{Timeout: 3 * time.Second}).Post(
		dohBase(t, srv)+"/dns-query", "application/dns-message", bytes.NewReader(build(3)))
	if err != nil {
		t.Fatal(err)
	}
	dohResp, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Normalize: zero the ID and the answer A record's last octet (the
	// scheduler legitimately rotates servers between queries), then
	// require byte equality.
	normalize := func(raw []byte) ([]byte, netip.Addr, uint8) {
		msg, err := dnswire.Unpack(raw)
		if err != nil {
			t.Fatalf("unparseable response: %v", err)
		}
		if msg.Header.RCode != dnswire.RCodeNoError || len(msg.Answers) != 1 {
			t.Fatalf("rcode=%v answers=%d", msg.Header.RCode, len(msg.Answers))
		}
		a := msg.Answers[0].Data.(dnswire.A)
		cs, ok := msg.ClientSubnet()
		if !ok {
			t.Fatal("response lost the ECS echo")
		}
		out := append([]byte(nil), raw...)
		out[0], out[1] = 0, 0 // ID
		// Find and zero the 4-byte A rdata (last 4 bytes of the answer
		// record) and the TTL, which adapts with the rotating choice.
		idx := bytes.LastIndex(out, a.Addr.AsSlice())
		if idx < 0 {
			t.Fatal("answer address bytes not found")
		}
		copy(out[idx:idx+4], []byte{0, 0, 0, 0})
		copy(out[idx-6:idx-2], []byte{0, 0, 0, 0}) // 4-byte TTL, then 2-byte RDLENGTH
		return out, a.Addr, cs.ScopePrefixLen
	}

	nu, au, su := normalize(udpResp)
	nt, at, st := normalize(tcpResp)
	nd, ad, sd := normalize(dohResp)
	if !bytes.Equal(nu, nt) || !bytes.Equal(nu, nd) {
		t.Errorf("normalized responses differ across transports:\nudp %x\ntcp %x\ndoh %x", nu, nt, nd)
	}
	if su != 16 || st != 16 || sd != 16 {
		t.Errorf("ECS scopes = %d/%d/%d, want 16 on every transport", su, st, sd)
	}
	for _, a := range []netip.Addr{au, at, ad} {
		if a4 := a.As4(); a4[0] != 10 || a4[3] < 1 || a4[3] > 7 {
			t.Errorf("answer %v is not a site server", a)
		}
	}

	// Per-transport counters saw exactly one query each.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, tr := range []string{"udp", "tcp", "doh"} {
		if got := seriesValue(t, text, fmt.Sprintf(`dnslb_dns_queries_total{transport=%q}`, tr)); got != 1 {
			t.Errorf("queries_total{transport=%q} = %v, want 1", tr, got)
		}
	}
	if got := seriesValue(t, text, `dnslb_doh_requests_total{outcome="ok"}`); got != 1 {
		t.Errorf("doh ok counter = %v, want 1", got)
	}
	// The scope histogram observed all three scoped answers.
	if got := seriesValue(t, text, "dnslb_dns_ecs_scope_prefix_count"); got != 3 {
		t.Errorf("ecs scope histogram count = %v, want 3", got)
	}
}

// TestScopedAnswerCacheNeverCrossesSubnets drives two client subnets
// through the hot answer cache: repeat queries may be served from
// cache, but an entry stored for one subnet must never answer the
// other (the echoed ECS prefix always matches the asking subnet).
func TestScopedAnswerCacheNeverCrossesSubnets(t *testing.T) {
	srv, _ := dohServer(t, true)

	query := func(prefix netip.Prefix) dnswire.ClientSubnet {
		t.Helper()
		r := &dnsclient.Resolver{
			Server:       srv.Addr().String(),
			Timeout:      2 * time.Second,
			ClientSubnet: prefix,
		}
		resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		cs, ok := resp.ClientSubnet()
		if !ok {
			t.Fatal("scoped answer lost its ECS echo")
		}
		return cs
	}

	a := netip.MustParsePrefix("10.4.0.0/16")
	b := netip.MustParsePrefix("10.9.0.0/16")
	for i := 0; i < 10; i++ {
		pick := a
		if i%2 == 1 {
			pick = b
		}
		cs := query(pick)
		if cs.Prefix != pick {
			t.Fatalf("query %d for %v answered with ECS %v: cached entry crossed subnets",
				i, pick, cs.Prefix)
		}
	}

	// And a subnet-blind query must not receive anyone's ECS echo.
	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.ClientSubnet(); ok {
		t.Error("ECS-less query received an ECS option from the cache")
	}
}

// TestDoHResolverTransport exercises the dnsclient "doh" transport
// against the real front end.
func TestDoHResolverTransport(t *testing.T) {
	srv, _ := dohServer(t, false)
	r := &dnsclient.Resolver{
		Server:    srv.HTTPAddr().String(),
		Transport: "doh",
		Timeout:   2 * time.Second,
	}
	answers, err := r.LookupA(context.Background(), "www.site.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || !answers[0].Addr.Is4() {
		t.Fatalf("answers = %v", answers)
	}
}

// FuzzDoHRequest fuzzes the wire endpoint's request parsing: arbitrary
// methods, URLs and bodies must never panic the handler; the handler
// either serves a DNS response or fails with an HTTP error.
func FuzzDoHRequest(f *testing.F) {
	cluster, err := core.ScaledCluster(3, 20, 300)
	if err != nil {
		f.Fatal(err)
	}
	state, err := core.NewState(cluster, 5)
	if err != nil {
		f.Fatal(err)
	}
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "RR",
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return 0 },
	})
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: []netip.Addr{netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("10.0.0.3")},
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		HTTPAddr:    "127.0.0.1:0",
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = srv.Close() })
	base := dohBase(&testing.T{}, srv)
	client := &http.Client{Timeout: 2 * time.Second}

	wire := func() []byte {
		w, _ := (&dnswire.Message{
			Header:    dnswire.Header{ID: 1},
			Questions: []dnswire.Question{{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		}).Pack()
		return w
	}()
	f.Add("GET", "/dns-query?dns="+base64.RawURLEncoding.EncodeToString(wire), []byte{})
	f.Add("POST", "/dns-query", wire)
	f.Add("GET", "/resolve?name=www.site.example&type=A", []byte{})
	f.Add("GET", "/resolve?name=x&edns_client_subnet=10.0.0.0/8", []byte{})
	f.Add("PUT", "/dns-query?dns=AAAA", []byte("junk"))

	f.Fuzz(func(t *testing.T, method, target string, body []byte) {
		if strings.ContainsAny(method, " \t\r\n/") || method == "" {
			t.Skip()
		}
		if !strings.HasPrefix(target, "/") || strings.ContainsAny(target, " \r\n") {
			t.Skip()
		}
		req, err := http.NewRequest(method, base+target, bytes.NewReader(body))
		if err != nil {
			t.Skip()
		}
		req.Header.Set("Content-Type", "application/dns-message")
		hr, err := client.Do(req)
		if err != nil {
			// Transport-level refusals are fine; panics in the handler
			// would surface as 502-style errors plus a crashed test binary.
			return
		}
		_, _ = io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	})
}
