package dnsserver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
)

func TestRateLimiterBasics(t *testing.T) {
	l := NewRateLimiter(10, 3)
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	src := netip.MustParseAddr("192.0.2.1")

	// Burst of 3 allowed, 4th refused.
	for i := 0; i < 3; i++ {
		if !l.Allow(src) {
			t.Fatalf("query %d within burst refused", i)
		}
	}
	if l.Allow(src) {
		t.Fatal("burst exceeded but allowed")
	}
	// 100 ms at 10 qps refills one token.
	now = now.Add(100 * time.Millisecond)
	if !l.Allow(src) {
		t.Fatal("refilled token refused")
	}
	if l.Allow(src) {
		t.Fatal("double spend allowed")
	}
	// A different source has its own bucket.
	if !l.Allow(netip.MustParseAddr("192.0.2.2")) {
		t.Fatal("independent source refused")
	}
}

func TestRateLimiterTokensCapAtBurst(t *testing.T) {
	l := NewRateLimiter(100, 2)
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })
	src := netip.MustParseAddr("10.1.1.1")
	if !l.Allow(src) {
		t.Fatal("first refused")
	}
	// A long idle period must not bank more than `burst` tokens.
	now = now.Add(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Allow(src) {
			allowed++
		}
	}
	if allowed != 2 {
		t.Errorf("allowed %d after idle, want burst cap 2", allowed)
	}
}

func TestRateLimiterInvalidAddrAlwaysAllowed(t *testing.T) {
	l := NewRateLimiter(1, 1)
	for i := 0; i < 5; i++ {
		if !l.Allow(netip.Addr{}) {
			t.Fatal("invalid address should bypass limiting")
		}
	}
}

func TestRateLimiterEviction(t *testing.T) {
	l := NewRateLimiter(1000, 1)
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })
	// One source slot per shard: every shard must evict on each new
	// address, so the tracked set stays bounded no matter how many
	// distinct sources probe the limiter.
	l.maxSources = rateShards
	for i := 0; i < 20*rateShards; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		l.Allow(addr)
		now = now.Add(time.Second) // older entries refill and become evictable
	}
	if got := l.Sources(); got > rateShards {
		t.Errorf("tracked sources = %d, want bounded by maxSources %d", got, rateShards)
	}
}

func TestRateLimiterDefaultsClamped(t *testing.T) {
	l := NewRateLimiter(-1, 0)
	if !l.Allow(netip.MustParseAddr("10.0.0.1")) {
		t.Error("first query should pass with clamped defaults")
	}
}

func TestServerRefusesOverLimit(t *testing.T) {
	cluster, err := core.ScaledCluster(3, 20, 300)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.NewPolicy(core.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.0.3"),
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		RateLimit:   NewRateLimiter(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	ctx := context.Background()
	var refused, answered int
	for i := 0; i < 6; i++ {
		_, err := r.Exchange(ctx, "www.site.example", dnswire.TypeA)
		if err != nil {
			var rc *dnsclient.RCodeError
			if asRCode(err, &rc) && rc.RCode == dnswire.RCodeRefused {
				refused++
				continue
			}
			t.Fatal(err)
		}
		answered++
	}
	if refused == 0 {
		t.Fatal("no queries refused over the limit")
	}
	if answered == 0 {
		t.Fatal("burst should have been served")
	}
	if srv.Stats().RateLimited == 0 {
		t.Error("RateLimited counter not bumped")
	}
}

// TestRateLimiterMaxSourcesUnderChurn floods the limiter with distinct
// sources at a frozen clock, so no bucket ever refills and eviction
// must fall back to clearing full shards: the tracked set stays
// bounded by maxSources either way.
func TestRateLimiterMaxSourcesUnderChurn(t *testing.T) {
	l := NewRateLimiter(10, 1)
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })
	for i := 0; i < 100_000; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		l.Allow(addr)
	}
	if got := l.Sources(); got > l.maxSources {
		t.Errorf("tracked sources = %d, want <= %d", got, l.maxSources)
	}
	if got := l.Sources(); got == 0 {
		t.Error("limiter forgot every source")
	}
}

// TestRateLimiterHotSourceSurvivesEviction: eviction prefers sources
// whose buckets have refilled (idle), so a source that keeps spending
// tokens must survive a churn of one-shot sources through its shard.
func TestRateLimiterHotSourceSurvivesEviction(t *testing.T) {
	l := NewRateLimiter(1, 2)
	now := time.Unix(0, 0)
	l.SetClock(func() time.Time { return now })
	hot := netip.MustParseAddr("192.0.2.99")
	hotShard := l.shardFor(hot)
	l.maxSources = rateShards // shard cap 1: every insert evicts

	if !l.Allow(hot) {
		t.Fatal("hot source's first query refused")
	}
	for i := 0; i < 200; i++ {
		// The hot source spends roughly as fast as it refills, so its
		// bucket is never full; the churn sources go idle immediately
		// after their single query and refill to burst.
		now = now.Add(time.Second)
		if !l.Allow(hot) {
			t.Fatalf("hot source refused at step %d", i)
		}
		churn := netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)})
		if l.shardFor(churn) != hotShard {
			continue // only same-shard churn exercises this shard's eviction
		}
		now = now.Add(10 * time.Second) // churn source goes fully idle
		l.Allow(churn)
	}
	hotShard.mu.Lock()
	_, tracked := hotShard.buckets[hot]
	hotShard.mu.Unlock()
	if !tracked {
		t.Error("hot source evicted while actively spending")
	}
}

// TestRateLimiterClockBackward: a clock that jumps backward must not
// bank free tokens, mint refills, or panic — the bucket simply sees
// zero elapsed time until the clock catches back up.
func TestRateLimiterClockBackward(t *testing.T) {
	l := NewRateLimiter(1, 1)
	now := time.Unix(10_000, 0)
	l.SetClock(func() time.Time { return now })
	src := netip.MustParseAddr("198.51.100.7")

	if !l.Allow(src) {
		t.Fatal("first query refused")
	}
	if l.Allow(src) {
		t.Fatal("burst exceeded but allowed")
	}
	// Jump an hour into the past: no refill may occur.
	now = now.Add(-time.Hour)
	for i := 0; i < 3; i++ {
		if l.Allow(src) {
			t.Fatal("backward clock minted tokens")
		}
	}
	// Eviction under a backward clock must also behave: idle time is
	// negative, nothing looks refilled, the shard falls back to a clear
	// rather than corrupting state.
	l.maxSources = rateShards
	for i := 0; i < 5*rateShards; i++ {
		l.Allow(netip.AddrFrom4([4]byte{203, 0, byte(i >> 8), byte(i)}))
	}
	if got := l.Sources(); got > l.maxSources {
		t.Errorf("tracked sources = %d under backward clock, want <= %d", got, l.maxSources)
	}
	// Once the clock moves forward past the original timestamp the
	// bucket refills normally.
	now = now.Add(time.Hour + 2*time.Second)
	if !l.Allow(src) {
		t.Fatal("recovered clock did not refill")
	}
}
