package dnsserver

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

func TestOverloadConfigValidation(t *testing.T) {
	for _, cfg := range []OverloadConfig{
		{QPSCeiling: -1},
		{StaleRolls: -1},
		{QPSCeiling: 100, DegradedTTL: -1},
	} {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if (OverloadConfig{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if !(OverloadConfig{QPSCeiling: 10}).Enabled() || !(OverloadConfig{StaleRolls: 3}).Enabled() {
		t.Error("configured triggers must report enabled")
	}
}

// TestOverloadRateHysteresis drives the controller's sample() directly
// by crediting the query counter between samples. Tick is an hour so
// the background loop never interferes: each manual sample sees
// rate = delta/3600.
func TestOverloadRateHysteresis(t *testing.T) {
	srv, _ := testServerNoStart(t, "RR")
	c := newOverloadController(srv, OverloadConfig{
		QPSCeiling: 1,
		ExitRatio:  0.5,
		EnterTicks: 2,
		ExitTicks:  2,
		Tick:       time.Hour,
	})
	t.Cleanup(c.close)

	tick := func(qps float64) {
		srv.stats[0].queries.Add(uint64(qps * time.Hour.Seconds()))
		c.sample()
	}

	// One over-ceiling sample is not enough (EnterTicks = 2)...
	tick(2)
	if c.active() {
		t.Fatal("degraded after a single over-ceiling sample")
	}
	// ...and a calm sample resets the streak.
	tick(0)
	tick(2)
	if c.active() {
		t.Fatal("degraded after a broken streak")
	}
	// Two consecutive over-ceiling samples enter degraded mode.
	tick(2)
	if !c.active() {
		t.Fatal("not degraded after EnterTicks over-ceiling samples")
	}
	if got := c.transitions.Load(); got != 1 {
		t.Fatalf("transitions = %d, want 1", got)
	}
	if got := c.rate(); got != 2 {
		t.Fatalf("sampled rate = %v, want 2", got)
	}

	// Below ceiling but above ExitRatio*ceiling: still pinned degraded.
	tick(0.7)
	tick(0.7)
	tick(0.7)
	if !c.active() {
		t.Fatal("left degraded mode in the hysteresis band")
	}
	// A single calm sample does not exit (ExitTicks = 2)...
	tick(0.2)
	if !c.active() {
		t.Fatal("left degraded mode after one calm sample")
	}
	// ...and an intervening hot sample resets the exit streak.
	tick(0.7)
	tick(0.2)
	if !c.active() {
		t.Fatal("exit streak survived a hot sample")
	}
	tick(0.2)
	if c.active() {
		t.Fatal("still degraded after ExitTicks calm samples")
	}
	if got := c.transitions.Load(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
}

// TestOverloadStaleTrigger: replication degraded (no reachable peers)
// plus an estimator roll older than StaleRolls intervals enters
// degraded mode immediately; a fresh roll plus ExitTicks calm samples
// leaves it.
func TestOverloadStaleTrigger(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	if err := srv.StartReplication(ReplicationConfig{
		ReplicaID: "stale-test",
		Peers:     []string{"127.0.0.1:1"}, // unreachable: Degraded() holds
		Interval:  20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	c := newOverloadController(srv, OverloadConfig{
		StaleRolls: 2,
		ExitTicks:  2,
		Tick:       time.Hour,
	})
	t.Cleanup(c.close)

	// Never rolled: cold, not stale.
	c.sample()
	if c.active() {
		t.Fatal("cold server treated as stale")
	}

	// Last roll 1s ago with a 100ms interval: 10 intervals > StaleRolls.
	srv.lastRoll.Store(time.Now().Add(-time.Second).UnixNano())
	srv.lastRollInterval.Store(floatBits(0.1))
	c.sample()
	if !c.active() {
		t.Fatal("stale soft state did not enter degraded mode")
	}

	// A fresh roll clears staleness; ExitTicks calm samples leave.
	srv.lastRoll.Store(time.Now().UnixNano())
	c.sample()
	c.sample()
	if c.active() {
		t.Fatal("still degraded after the estimator recovered")
	}
	if got := c.transitions.Load(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
}

// testServerOverload builds and starts a server with the overload
// controller configured (huge ceiling, long tick: mode only changes
// when the test forces it).
func testServerOverload(t *testing.T, degradedTTL float64) *Server {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "RR",
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		AnswerCache: true,
		Overload: OverloadConfig{
			QPSCeiling:  1e12,
			Tick:        time.Hour,
			DegradedTTL: degradedTTL,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// TestDegradedQueryPath forces degraded mode and checks the paper's
// "dumber but always on" contract: NOERROR answers from the static
// capacity-weighted ladder with the short degraded TTL, zero SERVFAIL,
// answer cache bypassed, and normal service restored on exit.
func TestDegradedQueryPath(t *testing.T) {
	srv := testServerOverload(t, 7)
	res := resolverFor(t, srv)
	ctx := context.Background()

	// Warm the answer cache while healthy.
	if _, err := res.LookupA(ctx, "www.site.example"); err != nil {
		t.Fatal(err)
	}
	healthyTTL := time.Duration(0)
	if ans, err := res.LookupA(ctx, "www.site.example"); err != nil {
		t.Fatal(err)
	} else {
		healthyTTL = ans[0].TTL
	}

	if err := srv.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	srv.over.degraded.Store(true)
	cacheBefore := srv.AnswerCache()

	counts := make(map[netip.Addr]int)
	const lookups = 300
	for i := 0; i < lookups; i++ {
		ans, err := res.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatalf("lookup %d in degraded mode: %v", i, err)
		}
		if got := ans[0].TTL; got != 7*time.Second {
			t.Fatalf("degraded TTL = %v, want 7s", got)
		}
		counts[ans[0].Addr]++
	}

	if got := srv.Stats().ServFail; got != 0 {
		t.Fatalf("SERVFAIL count = %d in degraded mode, want 0", got)
	}
	if got := srv.Degraded().Answers; got != lookups {
		t.Fatalf("degraded answers = %d, want %d", got, lookups)
	}
	cacheAfter := srv.AnswerCache()
	if cacheAfter.Hits != cacheBefore.Hits || cacheAfter.Misses != cacheBefore.Misses {
		t.Fatal("degraded answers touched the answer cache")
	}

	// The static ladder is capacity-weighted: the largest member gets
	// more handouts than the smallest, the down server gets none.
	// ScaledCluster(7, 50, ...) capacities are {1, 1, .8, .8, .5, .5, .5}.
	if counts[netip.AddrFrom4([4]byte{10, 0, 0, 4})] != 0 {
		t.Fatal("down server handed out in degraded mode")
	}
	small := counts[netip.AddrFrom4([4]byte{10, 0, 0, 7})]
	large := counts[netip.AddrFrom4([4]byte{10, 0, 0, 1})]
	if small == 0 || large <= small {
		t.Fatalf("weighted ladder shares: smallest=%d largest=%d", small, large)
	}

	// Leaving degraded mode restores the adaptive path (policy TTL).
	srv.over.degraded.Store(false)
	ans, err := res.LookupA(ctx, "www.site.example")
	if err != nil {
		t.Fatal(err)
	}
	if ans[0].TTL != healthyTTL {
		t.Logf("note: healthy TTL changed %v -> %v (policy-dependent, not fatal)", healthyTTL, ans[0].TTL)
	}
	if srv.DegradedMode() {
		t.Fatal("DegradedMode still true")
	}
}
