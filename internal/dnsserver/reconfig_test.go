package dnsserver

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/simcore"
)

// smallServer starts a server over a 3-node homogeneous cluster with a
// TTL policy whose drain windows are short enough for lifecycle tests.
func smallServer(t *testing.T, policyName string) (*Server, *core.State) {
	t.Helper()
	return smallServerKind(t, policyName, "", true)
}

// smallServerKind builds a server with the given estimator kind.
// started=false skips binding the DNS sockets — checkpoint/restore
// tests exercise no network path, and every extra UDP+TCP same-port
// bind raises the suite-wide chance of an ephemeral-port collision.
func smallServerKind(t *testing.T, policyName, estKind string, started bool) (*Server, *core.State) {
	t.Helper()
	cluster, err := core.ScaledCluster(3, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "reconfig"),
		Now:   func() float64 { return time.Since(start).Seconds() },
		// One-second TTLs keep the drain windows short enough to wait
		// out in the lifecycle tests.
		ConstantTTL: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 3)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		Estimator:   estKind,
	})
	if err != nil {
		t.Fatal(err)
	}
	if started {
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	return srv, state
}

func TestJoinAddsSchedulableServer(t *testing.T) {
	srv, state := smallServer(t, "RR")

	newAddr := netip.AddrFrom4([4]byte{10, 1, 0, 99})
	idx, err := srv.Join(newAddr, 500)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("join index = %d, want 3", idx)
	}
	if srv.Servers() != 4 {
		t.Fatalf("Servers() = %d, want 4", srv.Servers())
	}
	if !state.Member(3) {
		t.Error("joined server not a member")
	}

	// The joined server must actually receive queries.
	r := resolverFor(t, srv)
	ctx := context.Background()
	sawNew := false
	for i := 0; i < 40 && !sawNew; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 1 && answers[0].Addr == newAddr {
			sawNew = true
		}
	}
	if !sawNew {
		t.Error("joined server never scheduled over 40 RR queries")
	}
}

func TestJoinValidation(t *testing.T) {
	srv, _ := smallServer(t, "RR")

	if _, err := srv.Join(netip.MustParseAddr("2001:db8::1"), 500); err == nil {
		t.Error("IPv6 join should be rejected")
	}
	if _, err := srv.Join(netip.AddrFrom4([4]byte{10, 1, 0, 50}), -1); err == nil {
		t.Error("negative capacity should be rejected")
	}
	if srv.Servers() != 3 {
		t.Fatalf("failed joins must not grow the address table, Servers() = %d", srv.Servers())
	}
}

func TestDuplicateJoinUpdatesCapacity(t *testing.T) {
	srv, state := smallServer(t, "RR")

	idx, err := srv.Join(netip.AddrFrom4([4]byte{10, 1, 0, 2}), 750)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("duplicate join index = %d, want existing slot 1", idx)
	}
	if srv.Servers() != 3 {
		t.Fatalf("duplicate join grew the table to %d slots", srv.Servers())
	}
	if got := state.Cluster().Capacity(1); got != 750 {
		t.Fatalf("capacity after duplicate join = %v, want 750", got)
	}
}

func TestDrainValidation(t *testing.T) {
	srv, state := smallServer(t, "RR")

	if _, err := srv.Drain(-1); err == nil {
		t.Error("negative index should be rejected")
	}
	if _, err := srv.Drain(3); err == nil {
		t.Error("out-of-range index should be rejected")
	}

	// Draining a down server is allowed (it holds no hidden load), but
	// the last schedulable server is protected.
	if err := state.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := state.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Drain(2); err == nil {
		t.Error("last schedulable server must not drain")
	}
	if _, err := srv.Drain(0); err != nil {
		t.Errorf("draining a down server should work: %v", err)
	}
}

func TestDrainStopsNewMappingsAndRemoves(t *testing.T) {
	srv, state := smallServer(t, "RR")
	r := resolverFor(t, srv)
	ctx := context.Background()

	// Hand out at least one mapping to every server so server 1 has an
	// open hidden-load window.
	for i := 0; i < 9; i++ {
		if _, err := r.LookupA(ctx, "www.site.example"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.MappingExpiry(1).IsZero() {
		t.Fatal("server 1 never received a mapping")
	}

	deadline, err := srv.Drain(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := srv.MappingExpiry(1); !deadline.Equal(want) {
		t.Errorf("drain deadline = %v, want mapping expiry %v", deadline, want)
	}
	if !state.Draining(1) {
		t.Error("server 1 not draining")
	}

	// Idempotent: a second drain returns the same pending deadline.
	again, err := srv.Drain(1)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(deadline) {
		t.Errorf("repeat drain deadline = %v, want %v", again, deadline)
	}

	// No new mappings reach the draining server, but it stays a member
	// (resolvable, still serving its cached clients) until the deadline.
	drained := netip.AddrFrom4([4]byte{10, 1, 0, 2})
	for i := 0; i < 20; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 1 && answers[0].Addr == drained {
			t.Fatal("draining server received a new mapping")
		}
	}
	if !state.Member(1) {
		t.Error("draining server removed before its hidden-load window closed")
	}

	// After the window closes the drain timer retires the slot.
	wait := time.Until(deadline) + 2*time.Second
	deadlineCh := time.After(wait)
	for state.Member(1) {
		select {
		case <-deadlineCh:
			t.Fatalf("server 1 still a member %v after its drain window", wait)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if state.Draining(1) {
		t.Error("removed server still flagged draining")
	}
}

func TestRejoinCancelsDrain(t *testing.T) {
	srv, state := smallServer(t, "RR")

	// Open a wide hidden-load window so the drain cannot complete
	// mid-test, then cancel it by re-joining the same address.
	srv.noteMapping(1, 3600)
	if _, err := srv.Drain(1); err != nil {
		t.Fatal(err)
	}
	if !state.Draining(1) {
		t.Fatal("server 1 not draining")
	}
	idx, err := srv.Join(netip.AddrFrom4([4]byte{10, 1, 0, 2}), 500)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("re-join index = %d, want 1", idx)
	}
	if state.Draining(1) || !state.Member(1) {
		t.Error("re-join did not cancel the drain")
	}
	srv.reconfigMu.Lock()
	_, pending := srv.drainTimers[1]
	srv.reconfigMu.Unlock()
	if pending {
		t.Error("drain timer still armed after re-join")
	}
}

func TestReconfigureSwapsServerSet(t *testing.T) {
	srv, state := smallServer(t, "RR")

	// Desired set: keep 10.1.0.1 and 10.1.0.3, drop 10.1.0.2, add
	// 10.1.0.77.
	desired := []netip.Addr{
		netip.AddrFrom4([4]byte{10, 1, 0, 1}),
		netip.AddrFrom4([4]byte{10, 1, 0, 3}),
		netip.AddrFrom4([4]byte{10, 1, 0, 77}),
	}
	if err := srv.Reconfigure(desired, []float64{500, 500, 250}); err != nil {
		t.Fatal(err)
	}
	if srv.Reloads() != 1 {
		t.Errorf("Reloads() = %d, want 1", srv.Reloads())
	}
	if !state.Draining(1) && state.Member(1) {
		t.Error("dropped server neither draining nor removed")
	}
	if srv.Servers() != 4 || !state.Member(3) {
		t.Error("added server not admitted")
	}
	if got := state.Cluster().Capacity(3); got != 250 {
		t.Errorf("added server capacity = %v, want 250", got)
	}

	// Validation failures leave membership untouched.
	for _, tc := range []struct {
		name  string
		addrs []netip.Addr
		caps  []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", desired, []float64{500}},
		{"ipv6", []netip.Addr{netip.MustParseAddr("2001:db8::1")}, []float64{500}},
		{"duplicate", []netip.Addr{desired[0], desired[0]}, []float64{500, 500}},
	} {
		if err := srv.Reconfigure(tc.addrs, tc.caps); err == nil {
			t.Errorf("%s: Reconfigure accepted invalid input", tc.name)
		}
	}
}

// TestReloadUnderLoad is the zero-downtime acceptance test at package
// level: queries hammer the server from several goroutines while the
// server set is reconfigured (one server replaced by another); no query
// may fail, and no answer may point at a server that was never in
// either configuration. Run with -race this also exercises the
// lock-free address/snapshot publication.
func TestReloadUnderLoad(t *testing.T) {
	srv, _ := smallServer(t, "RR")

	oldAddr := netip.AddrFrom4([4]byte{10, 1, 0, 2})
	newAddr := netip.AddrFrom4([4]byte{10, 1, 0, 42})
	valid := map[netip.Addr]bool{
		netip.AddrFrom4([4]byte{10, 1, 0, 1}): true,
		oldAddr:                               true,
		netip.AddrFrom4([4]byte{10, 1, 0, 3}): true,
		newAddr:                               true,
	}

	const workers = 4
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var drainStarted sync.WaitGroup
	drainStarted.Add(1)
	var afterMu sync.Mutex
	mappedOldAfterDrain := 0

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := resolverFor(t, srv)
			ctx := context.Background()
			drained := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				answers, err := r.LookupA(ctx, "www.site.example")
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if len(answers) != 1 {
					errCh <- fmt.Errorf("worker %d: %d answers", w, len(answers))
					return
				}
				if !valid[answers[0].Addr] {
					errCh <- fmt.Errorf("worker %d: answer %v not in any config", w, answers[0].Addr)
					return
				}
				if !drained {
					select {
					case <-waitDone(&drainStarted):
						drained = true
					default:
					}
				} else if answers[0].Addr == oldAddr {
					afterMu.Lock()
					mappedOldAfterDrain++
					afterMu.Unlock()
				}
			}
		}(w)
	}

	// Let the load build, then swap 10.1.0.2 for 10.1.0.42 mid-flight.
	time.Sleep(50 * time.Millisecond)
	desired := []netip.Addr{
		netip.AddrFrom4([4]byte{10, 1, 0, 1}),
		netip.AddrFrom4([4]byte{10, 1, 0, 3}),
		newAddr,
	}
	if err := srv.Reconfigure(desired, []float64{500, 500, 500}); err != nil {
		t.Fatal(err)
	}
	drainStarted.Done()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	afterMu.Lock()
	defer afterMu.Unlock()
	if mappedOldAfterDrain > 0 {
		t.Errorf("%d mappings handed to the drained server after Reconfigure returned", mappedOldAfterDrain)
	}
}

// waitDone adapts a WaitGroup to a selectable channel.
func waitDone(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

func TestReportJoinDrainVerbs(t *testing.T) {
	srv, state := smallServer(t, "RR")
	rl := startReportListener(t, srv)
	addr := rl.Addr().String()

	resp := sendReports(t, addr, "JOIN 10.1.0.200 500")
	if resp[0] != "OK 3\n" {
		t.Fatalf("JOIN response = %q, want \"OK 3\\n\"", resp[0])
	}
	if !state.Member(3) {
		t.Error("JOIN did not admit the server")
	}

	// Open a window, then DRAIN over the wire.
	srv.noteMapping(3, 3600)
	resp = sendReports(t, addr, "DRAIN 3")
	if resp[0] != "OK\n" {
		t.Fatalf("DRAIN response = %q", resp[0])
	}
	if !state.Draining(3) {
		t.Error("DRAIN did not start draining")
	}

	// Error paths answer ERR and change nothing.
	for _, tc := range []struct{ line, why string }{
		{"JOIN 10.1.0.201", "missing capacity"},
		{"JOIN not-an-ip 500", "bad address"},
		{"JOIN 2001:db8::1 500", "IPv6 address"},
		{"JOIN 10.1.0.202 0", "zero capacity"},
		{"DRAIN", "missing index"},
		{"DRAIN x", "bad index"},
		{"DRAIN 17", "out of range"},
	} {
		resp := sendReports(t, addr, tc.line)
		if !strings.HasPrefix(resp[0], "ERR ") {
			t.Errorf("%s (%s): response = %q, want ERR", tc.line, tc.why, resp[0])
		}
	}
	if srv.Servers() != 4 {
		t.Errorf("failed verbs changed the server table to %d slots", srv.Servers())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	srv, state := smallServer(t, "PRR-TTL/1")
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	// Build up non-trivial soft state: weights, an alarm, a drain with
	// an open window.
	srv.RecordHits(2, 900)
	srv.RecordHits(0, 100)
	if err := srv.RollEstimates(8); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	srv.noteMapping(1, 3600)
	if _, err := srv.Drain(1); err != nil {
		t.Fatal(err)
	}
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if srv.CheckpointSaves() != 1 {
		t.Errorf("CheckpointSaves() = %d, want 1", srv.CheckpointSaves())
	}
	wantWeights := state.Weights()
	wantExpiry := srv.MappingExpiry(1)

	// A fresh server with the same shape restores everything.
	srv2, state2 := smallServer(t, "PRR-TTL/1")
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreCheckpoint(cp, time.Hour); err != nil {
		t.Fatal(err)
	}
	for j, w := range state2.Weights() {
		if diff := w - wantWeights[j]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("restored weight[%d] = %v, want %v", j, w, wantWeights[j])
		}
	}
	if !state2.Alarmed(0) {
		t.Error("alarm not restored")
	}
	if !state2.Draining(1) {
		t.Error("drain not resumed")
	}
	if got := srv2.MappingExpiry(1); !got.Equal(wantExpiry) {
		t.Errorf("restored hidden-load window = %v, want %v", got, wantExpiry)
	}
}

func TestCheckpointRejection(t *testing.T) {
	srv, _ := smallServer(t, "RR")
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// Corrupt file.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint loaded without error")
	}

	fresh := func() *Checkpoint { return srv.Checkpoint() }

	// Wrong version.
	cp := fresh()
	cp.Version = 99
	if err := srv.RestoreCheckpoint(cp, 0); err == nil {
		t.Error("wrong-version checkpoint accepted")
	}
	// Wrong zone.
	cp = fresh()
	cp.Zone = "other.example."
	if err := srv.RestoreCheckpoint(cp, 0); err == nil {
		t.Error("wrong-zone checkpoint accepted")
	}
	// Wrong policy.
	cp = fresh()
	cp.Policy = "TTL/2"
	if err := srv.RestoreCheckpoint(cp, 0); err == nil {
		t.Error("wrong-policy checkpoint accepted")
	}
	// Stale.
	cp = fresh()
	cp.SavedAt = time.Now().Add(-2 * time.Hour)
	if err := srv.RestoreCheckpoint(cp, time.Hour); err == nil {
		t.Error("stale checkpoint accepted")
	}
	// Estimator shape mismatch.
	cp = fresh()
	cp.Estimator.Rates = cp.Estimator.Rates[:1]
	if err := srv.RestoreCheckpoint(cp, 0); err == nil {
		t.Error("malformed estimator state accepted")
	}
}

func TestCheckpointRoundTripPredictive(t *testing.T) {
	srv, state := smallServerKind(t, "PRR-TTL/1", core.EstimatorPredictive, false)
	path := filepath.Join(t.TempDir(), "state.json")

	srv.RecordHits(2, 900)
	srv.RecordHits(0, 100)
	if err := srv.RollEstimates(8); err != nil {
		t.Fatal(err)
	}
	if err := srv.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	wantWeights := state.Weights()

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Estimator.Kind != core.EstimatorPredictive {
		t.Fatalf("checkpoint estimator kind = %q, want predictive", cp.Estimator.Kind)
	}

	srv2, state2 := smallServerKind(t, "PRR-TTL/1", core.EstimatorPredictive, false)
	if err := srv2.RestoreCheckpoint(cp, time.Hour); err != nil {
		t.Fatal(err)
	}
	for j, w := range state2.Weights() {
		if diff := w - wantWeights[j]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("restored weight[%d] = %v, want %v", j, w, wantWeights[j])
		}
	}
}

// TestCheckpointCrossKindRefused pins the kind fence: a checkpoint
// written under one estimator kind must be refused — with an error
// naming the offending kind — by a server running the other, and the
// refusal must leave the cold-start state untouched.
func TestCheckpointCrossKindRefused(t *testing.T) {
	reactive, _ := smallServer(t, "RR")
	predictive, _ := smallServerKind(t, "RR", core.EstimatorPredictive, false)
	dir := t.TempDir()

	rPath := filepath.Join(dir, "reactive.json")
	reactive.RecordHits(1, 500)
	if err := reactive.RollEstimates(8); err != nil {
		t.Fatal(err)
	}
	if err := reactive.WriteCheckpoint(rPath); err != nil {
		t.Fatal(err)
	}
	pPath := filepath.Join(dir, "predictive.json")
	predictive.RecordHits(1, 500)
	if err := predictive.RollEstimates(8); err != nil {
		t.Fatal(err)
	}
	if err := predictive.WriteCheckpoint(pPath); err != nil {
		t.Fatal(err)
	}

	rCp, err := LoadCheckpoint(rPath)
	if err != nil {
		t.Fatal(err)
	}
	pCp, err := LoadCheckpoint(pPath)
	if err != nil {
		t.Fatal(err)
	}

	victim, victimState := smallServerKind(t, "RR", core.EstimatorPredictive, false)
	if err := victim.RestoreCheckpoint(rCp, time.Hour); err == nil {
		t.Fatal("predictive server accepted a reactive checkpoint")
	} else if !strings.Contains(err.Error(), "reactive") {
		t.Errorf("refusal should name the checkpoint's kind: %v", err)
	}
	for j, w := range victimState.Weights() {
		if w != 1.0/4 {
			t.Errorf("refused restore moved weight[%d] to %v; state must stay cold", j, w)
		}
	}

	victim2, victim2State := smallServer(t, "RR")
	if err := victim2.RestoreCheckpoint(pCp, time.Hour); err == nil {
		t.Fatal("reactive server accepted a predictive checkpoint")
	} else if !strings.Contains(err.Error(), "predictive") {
		t.Errorf("refusal should name the checkpoint's kind: %v", err)
	}
	for j, w := range victim2State.Weights() {
		if w != 1.0/4 {
			t.Errorf("refused restore moved weight[%d] to %v; state must stay cold", j, w)
		}
	}

	// Same-kind restore of the predictive checkpoint still works.
	fresh, _ := smallServerKind(t, "RR", core.EstimatorPredictive, false)
	if err := fresh.RestoreCheckpoint(pCp, time.Hour); err != nil {
		t.Errorf("same-kind predictive restore failed: %v", err)
	}
}

func TestCheckpointerPeriodicAndFinal(t *testing.T) {
	srv, _ := smallServer(t, "RR")
	path := filepath.Join(t.TempDir(), "state.json")

	c, err := NewCheckpointer(srv, path, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for srv.CheckpointSaves() == 0 {
		select {
		case <-deadline:
			t.Fatal("no periodic checkpoint within 2s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	saves := srv.CheckpointSaves()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.CheckpointSaves() <= saves {
		t.Error("Close did not flush a final checkpoint")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPanicRecoveryInHandler(t *testing.T) {
	cluster, err := core.ScaledCluster(3, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.NewPolicy(core.PolicyConfig{Name: "RR", State: state})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []netip.Addr{
		netip.AddrFrom4([4]byte{10, 1, 0, 1}),
		netip.AddrFrom4([4]byte{10, 1, 0, 2}),
		netip.AddrFrom4([4]byte{10, 1, 0, 3}),
	}
	boom := 2 // panic on the first two queries, then behave
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		Mapper: func(addr netip.Addr) int {
			if boom > 0 {
				boom--
				panic("mapper exploded")
			}
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	r := resolverFor(t, srv)
	r.Timeout = 200 * time.Millisecond
	ctx := context.Background()
	// The panicking queries are dropped (timeout), but the workers
	// survive and the next query is answered.
	var answered bool
	for i := 0; i < 10 && !answered; i++ {
		if answers, err := r.LookupA(ctx, "www.site.example"); err == nil && len(answers) == 1 {
			answered = true
		}
	}
	if !answered {
		t.Fatal("server never recovered after handler panics")
	}
	if srv.Panics() == 0 {
		t.Error("Panics() = 0, want > 0")
	}
}

func TestShutdownGraceful(t *testing.T) {
	srv, _ := smallServer(t, "RR")
	r := resolverFor(t, srv)
	if _, err := r.LookupA(context.Background(), "www.site.example"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Idempotent with Close (Cleanup runs it again).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRevivedSlotStartsClean(t *testing.T) {
	// A checkpointed slot that was retired at save time but re-joined
	// before restore — possibly with a different capacity — must not
	// inherit the retired incarnation's standing: the restore skips it
	// entirely and the new incarnation stays clean.
	srv, _ := smallServer(t, "RR")
	cp := srv.Checkpoint()
	// Simulate the retired incarnation: at save time, 10.1.0.3 was out
	// of membership with stale flags and an open hidden-load window.
	cp.Servers[2].Member = false
	cp.Servers[2].Capacity = 250
	cp.Servers[2].Alarmed = true
	cp.Servers[2].Down = true
	cp.Servers[2].Draining = true
	cp.Servers[2].ExpiresAt = time.Now().Add(time.Hour)

	// On the restoring server, retire the address and re-join it with a
	// different capacity before applying the checkpoint.
	srv2, state2 := smallServer(t, "RR")
	if _, err := srv2.Drain(2); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for state2.Member(2) {
		select {
		case <-deadline:
			t.Fatal("drained slot 2 was not removed within 5s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	idx, err := srv2.Join(netip.AddrFrom4([4]byte{10, 1, 0, 3}), 999)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("re-join reclaimed slot %d, want 2", idx)
	}

	if err := srv2.RestoreCheckpoint(cp, time.Hour); err != nil {
		t.Fatal(err)
	}
	sn := state2.Snapshot()
	if !sn.Member(2) {
		t.Error("revived slot lost membership on restore")
	}
	if got := sn.Cluster().Capacity(2); got != 999 {
		t.Errorf("revived slot capacity = %v, want the re-joined 999 (not the checkpointed 250)", got)
	}
	if sn.Alarmed(2) || sn.Down(2) || sn.Draining(2) {
		t.Errorf("revived slot inherited retired standing: alarmed=%v down=%v draining=%v",
			sn.Alarmed(2), sn.Down(2), sn.Draining(2))
	}
	if !srv2.MappingExpiry(2).IsZero() {
		t.Error("revived slot inherited the retired incarnation's hidden-load window")
	}
}
