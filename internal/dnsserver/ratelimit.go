package dnsserver

import (
	"net/netip"
	"sync"
	"time"
)

// RateLimiter bounds queries per second per source address with a
// token bucket per source — protection against floods and reflection
// abuse for the public-facing DNS server. The zero value is unusable;
// create one with NewRateLimiter.
type RateLimiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity

	mu         sync.Mutex
	buckets    map[netip.Addr]*tokenBucket
	maxSources int
	now        func() time.Time
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter creates a limiter allowing `rate` queries/second with
// bursts up to `burst` per source address. Non-positive values are
// raised to minimal sane defaults (1 qps, burst 1).
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:       rate,
		burst:      burst,
		buckets:    make(map[netip.Addr]*tokenBucket),
		maxSources: 4096,
		now:        time.Now,
	}
}

// SetClock overrides the limiter's time source, for tests.
func (l *RateLimiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Allow reports whether a query from addr may be served now, consuming
// one token if so. Invalid addresses are always allowed (they cannot
// be attributed to a source anyway).
func (l *RateLimiter) Allow(addr netip.Addr) bool {
	if !addr.IsValid() {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[addr]
	if !ok {
		if len(l.buckets) >= l.maxSources {
			l.evictLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[addr] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops sources whose buckets have refilled (idle long
// enough to be indistinguishable from new sources); if none qualify it
// clears everything, which only momentarily forgives active abusers.
func (l *RateLimiter) evictLocked(now time.Time) {
	for addr, b := range l.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*l.rate >= l.burst {
			delete(l.buckets, addr)
		}
	}
	if len(l.buckets) >= l.maxSources {
		l.buckets = make(map[netip.Addr]*tokenBucket)
	}
}

// Sources returns the number of tracked source addresses.
func (l *RateLimiter) Sources() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
