package dnsserver

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// rateShards is the number of independently locked bucket maps. Source
// addresses are spread across shards by hash, so a flood from many
// sources contends on many locks instead of one. A power of two keeps
// the index a mask.
const rateShards = 16

// RateLimiter bounds queries per second per source address with a
// token bucket per source — protection against floods and reflection
// abuse for the public-facing DNS server. The bucket map is sharded
// 16-way by address hash; each shard has its own lock and eviction, so
// concurrent serve loops rarely contend. The zero value is unusable;
// create one with NewRateLimiter.
type RateLimiter struct {
	rate  float64 // tokens added per second
	burst float64 // bucket capacity

	// maxSources bounds tracked addresses across all shards; each
	// shard evicts at its share (maxSources/rateShards, at least 1).
	maxSources int
	now        atomic.Pointer[clockFunc]
	shards     [rateShards]rateShard
}

type clockFunc func() time.Time

type rateShard struct {
	mu      sync.Mutex
	buckets map[netip.Addr]*tokenBucket
	_       [24]byte // keep neighbouring shard locks off one cache line
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter creates a limiter allowing `rate` queries/second with
// bursts up to `burst` per source address. Non-positive values are
// raised to minimal sane defaults (1 qps, burst 1).
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	l := &RateLimiter{
		rate:       rate,
		burst:      burst,
		maxSources: 4096,
	}
	clock := clockFunc(time.Now)
	l.now.Store(&clock)
	for i := range l.shards {
		l.shards[i].buckets = make(map[netip.Addr]*tokenBucket)
	}
	return l
}

// SetClock overrides the limiter's time source, for tests.
func (l *RateLimiter) SetClock(now func() time.Time) {
	clock := clockFunc(now)
	l.now.Store(&clock)
}

// shardFor hashes the address (FNV-1a over the 16-byte form) to a
// shard. IPv4 addresses map to their 4-in-6 form, so the low bytes
// still vary and spread adjacent sources across shards.
func (l *RateLimiter) shardFor(addr netip.Addr) *rateShard {
	b := addr.As16()
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return &l.shards[h&(rateShards-1)]
}

// shardCap is each shard's share of the source budget.
func (l *RateLimiter) shardCap() int {
	c := l.maxSources / rateShards
	if c < 1 {
		c = 1
	}
	return c
}

// Allow reports whether a query from addr may be served now, consuming
// one token if so. Invalid addresses are always allowed (they cannot
// be attributed to a source anyway).
func (l *RateLimiter) Allow(addr netip.Addr) bool {
	if !addr.IsValid() {
		return true
	}
	now := (*l.now.Load())()
	s := l.shardFor(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[addr]
	if !ok {
		if len(s.buckets) >= l.shardCap() {
			l.evictLocked(s, now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		s.buckets[addr] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops sources in one shard whose buckets have refilled
// (idle long enough to be indistinguishable from new sources); if none
// qualify it clears the shard, which only momentarily forgives the
// active abusers hashed there. Caller holds the shard's lock.
func (l *RateLimiter) evictLocked(s *rateShard, now time.Time) {
	for addr, b := range s.buckets {
		idle := now.Sub(b.last).Seconds()
		if b.tokens+idle*l.rate >= l.burst {
			delete(s.buckets, addr)
		}
	}
	if len(s.buckets) >= l.shardCap() {
		s.buckets = make(map[netip.Addr]*tokenBucket)
	}
}

// Sources returns the number of tracked source addresses across all
// shards.
func (l *RateLimiter) Sources() int {
	var n int
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.buckets)
		s.mu.Unlock()
	}
	return n
}
