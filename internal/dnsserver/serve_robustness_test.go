package dnsserver

import (
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/simcore"
)

// testServerMaxTCP builds and starts a server with a tiny TCP
// connection cap.
func testServerMaxTCP(t *testing.T, maxConns int) *Server {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "RR",
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		MaxTCPConns: maxConns,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func testQueryWire(t *testing.T) []byte {
	t.Helper()
	wire, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 7, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// frameTCP prefixes wire with the 2-byte big-endian length.
func frameTCP(wire []byte) []byte {
	return append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
}

// readTCPResponse reads one length-prefixed response.
func readTCPResponse(conn net.Conn) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(lenBuf[0])<<8 | int(lenBuf[1])
	resp := make([]byte, n)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// TestTCPRejectsBadLengthPrefix: zero-length and oversized length
// prefixes cut the connection before any payload is read.
func TestTCPRejectsBadLengthPrefix(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	for _, tc := range []struct {
		name   string
		prefix [2]byte
	}{
		{"zero", [2]byte{0, 0}},
		{"oversized", [2]byte{0xff, 0xff}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(tc.prefix[:]); err != nil {
				t.Fatal(err)
			}
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			var one [1]byte
			if _, err := conn.Read(one[:]); err != io.EOF {
				t.Fatalf("read after bad prefix = %v, want EOF (connection cut)", err)
			}
		})
	}

	// A well-formed query on a fresh connection still works.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(frameTCP(testQueryWire(t))); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readTCPResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dnswire.RCodeNoError || len(msg.Answers) == 0 {
		t.Fatalf("rcode=%v answers=%d, want NOERROR with answers", msg.Header.RCode, len(msg.Answers))
	}
}

// TestTCPConnCap: with the cap filled by idle connections the accept
// loop pauses — a third client's query sits unanswered until a slot
// frees, then is served (never refused).
func TestTCPConnCap(t *testing.T) {
	srv := testServerMaxTCP(t, 2)
	addr := srv.Addr().String()

	// Two idle connections occupy both slots.
	var held [2]net.Conn
	for i := range held {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		held[i] = conn
	}
	waitCond(t, 2*time.Second, func() bool { return srv.TCPConns() == 2 }, "cap never filled")

	// The third connection completes its handshake in the kernel's
	// backlog but is not accepted; its query goes unanswered.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	if _, err := conn3.Write(frameTCP(testQueryWire(t))); err != nil {
		t.Fatal(err)
	}
	_ = conn3.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := readTCPResponse(conn3); err == nil {
		t.Fatal("query served while the connection cap was full")
	}
	if got := srv.TCPConns(); got != 2 {
		t.Fatalf("TCPConns = %d over the cap of 2", got)
	}

	// Freeing one slot lets the queued connection through.
	held[0].Close()
	_ = conn3.SetReadDeadline(time.Now().Add(3 * time.Second))
	resp, err := readTCPResponse(conn3)
	if err != nil {
		t.Fatalf("queued connection never served after a slot freed: %v", err)
	}
	msg, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v, want NOERROR", msg.Header.RCode)
	}
}
