package dnsserver

import (
	"context"
	"sync"
	"testing"
	"time"

	"dnslb/internal/dnsclient"
)

// TestConcurrentQueries hammers the server from many goroutines over
// UDP while alarms and load reports mutate scheduler state — run with
// -race to verify the locking discipline.
func TestConcurrentQueries(t *testing.T) {
	srv, _ := testServer(t, "PRR2-TTL/K", nil)
	rl := startReportListener(t, srv)

	const (
		workers = 8
		queries = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
			ctx := context.Background()
			for i := 0; i < queries; i++ {
				if _, err := r.LookupA(ctx, "www.site.example"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Concurrent alarm flapping through the API...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			srv.SetAlarm(i%7, i%2 == 0)
			srv.RecordHits(i%20, 10)
		}
		if err := srv.RollEstimates(8); err != nil {
			errs <- err
		}
	}()
	// ...and through the report socket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendReports(t, rl.Addr().String(), "ALARM 3 1", "HITS 5 100", "ROLL 8", "ALARM 3 0")
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Answered < workers*queries {
		t.Errorf("answered %d, want at least %d", st.Answered, workers*queries)
	}
}
