package dnsserver

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
	"dnslb/internal/simcore"
)

// TestConcurrentQueries hammers the server from many goroutines over
// UDP while alarms and load reports mutate scheduler state — run with
// -race to verify the locking discipline.
func TestConcurrentQueries(t *testing.T) {
	srv, _ := testServer(t, "PRR2-TTL/K", nil)
	rl := startReportListener(t, srv)

	const (
		workers = 8
		queries = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
			ctx := context.Background()
			for i := 0; i < queries; i++ {
				if _, err := r.LookupA(ctx, "www.site.example"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Concurrent alarm flapping through the API...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			srv.SetAlarm(i%7, i%2 == 0)
			srv.RecordHits(i%20, 10)
		}
		if err := srv.RollEstimates(8); err != nil {
			errs <- err
		}
	}()
	// ...and through the report socket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendReports(t, rl.Addr().String(), "ALARM 3 1", "HITS 5 100", "ROLL 8", "ALARM 3 0")
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Answered < workers*queries {
		t.Errorf("answered %d, want at least %d", st.Answered, workers*queries)
	}
}

// TestConcurrentClientsCountersExact fires many clients at a server
// running several parallel UDP workers and checks the books balance:
// every query is answered, the sharded serve counters sum to the
// number of queries sent, the policy's per-server decision counts sum
// to its decision total, and the A records the clients actually
// received match the policy's per-server ledger exactly.
func TestConcurrentClientsCountersExact(t *testing.T) {
	cluster, err := core.ScaledCluster(5, 35, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 8)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "PRR2-TTL/K",
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, cluster.N())
	addrByServer := make(map[netip.Addr]int, cluster.N())
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		addrByServer[addrs[i]] = i
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		UDPWorkers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	const (
		clients   = 8
		perClient = 50
		totalSent = clients * perClient
	)
	got := make([]map[int]uint64, clients) // per-client server counts
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			counts := make(map[int]uint64)
			r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 5 * time.Second}
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				msg, err := r.Exchange(ctx, "www.site.example", dnswire.TypeA)
				if err != nil {
					errs[c] = err
					return
				}
				a, ok := msg.Answers[0].Data.(dnswire.A)
				if !ok {
					t.Errorf("client %d: answer is %T, not A", c, msg.Answers[0].Data)
					return
				}
				counts[addrByServer[a.Addr]]++
			}
			got[c] = counts
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	perServer := make([]uint64, cluster.N())
	for _, counts := range got {
		for srvIdx, n := range counts {
			perServer[srvIdx] += n
		}
	}

	pstats := policy.Stats()
	if pstats.Decisions != totalSent {
		t.Errorf("policy decisions = %d, want %d", pstats.Decisions, totalSent)
	}
	var sum uint64
	for i, n := range pstats.PerServer {
		sum += n
		if n != perServer[i] {
			t.Errorf("server %d: policy counted %d decisions, clients received %d", i, n, perServer[i])
		}
	}
	if sum != pstats.Decisions {
		t.Errorf("sum(PerServer) = %d, want Decisions %d", sum, pstats.Decisions)
	}

	sstats := srv.Stats()
	if sstats.Queries != totalSent {
		t.Errorf("server queries = %d, want %d", sstats.Queries, totalSent)
	}
	if sstats.Answered != totalSent {
		t.Errorf("server answered = %d, want %d", sstats.Answered, totalSent)
	}
}
