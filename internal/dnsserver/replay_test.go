package dnsserver

import (
	"context"
	"math"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
	"dnslb/internal/sim"
	"dnslb/internal/simcore"
	"dnslb/internal/trace"
)

// TestTraceReplayMatchesSim is the end-to-end half of the unified
// engine's conformance story: the same recorded request stream is
// replayed through the full simulator (virtual time, NS cache tier,
// trace playback) and through a real dnsserver over the wire (UDP,
// ECS-steered domain classification), and both must make the
// identical (server, TTL) decision sequence.
//
// The trace carries exactly one new-session record per domain, so
// every record misses the per-domain NS cache exactly once and the
// sim's decision order equals the record order — which the live side
// reproduces by issuing one ECS-steered query per record, serially.
func TestTraceReplayMatchesSim(t *testing.T) {
	const (
		seed       = 5
		policyName = "DRR2-TTL/S_K"
	)

	cfg := sim.DefaultConfig(policyName)
	cfg.Seed = seed
	cfg.AlarmThreshold = 0 // no sampler alarms: the live side has no backends reporting
	cfg.MinNSTTL = 0       // cooperative caches: the ledger sees raw TTLs on both sides
	cfg.Duration = 60
	cfg.Warmup = 0
	domains := cfg.Workload.Domains

	records := make([]trace.Record, domains)
	for j := range records {
		records[j] = trace.Record{
			Time:       float64(j + 1),
			Domain:     j,
			Client:     j,
			Hits:       3,
			NewSession: true,
		}
	}
	cfg.Trace = records

	type decision struct {
		domain int
		server int
		ttl    uint32 // as encoded on the wire
	}
	wireTTL := func(ttl float64) uint32 {
		w := uint32(math.Round(ttl))
		if w == 0 {
			w = 1
		}
		return w
	}
	var fromSim []decision
	cfg.DecisionTap = func(domain int, d core.Decision) {
		fromSim = append(fromSim, decision{domain: domain, server: d.Server, ttl: wireTTL(d.TTL)})
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(fromSim) != len(records) {
		t.Fatalf("sim made %d decisions for %d trace sessions", len(fromSim), len(records))
	}

	// Live server built over the identical scheduling inputs: same
	// cluster, same oracle weights, same policy with the same named
	// RNG stream the simulator draws ("policy", from cfg.Seed).
	cluster, err := core.ScaledCluster(cfg.Servers, cfg.HeterogeneityPct, cfg.TotalCapacity)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, domains)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(cfg.Workload.OracleWeights()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:        policyName,
		State:       state,
		Rand:        simcore.NewStream(seed, "policy"),
		Now:         func() float64 { return time.Since(start).Seconds() },
		ConstantTTL: cfg.ConstantTTL,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One client network per domain; ECS steers each query to its
	// record's domain through a StaticMapper on the network address.
	table := make(map[netip.Addr]int, domains)
	clientNet := func(j int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(j + 1), 0, 0})
	}
	for j := 0; j < domains; j++ {
		table[clientNet(j)] = j
	}
	addrs := make([]netip.Addr, cfg.Servers)
	serverOf := make(map[netip.Addr]int, cfg.Servers)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})
		serverOf[addrs[i]] = i
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      StaticMapper(table, 0),
		Addr:        "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	fromLive := make([]decision, 0, len(records))
	for _, rec := range records {
		r := &dnsclient.Resolver{
			Server:       srv.Addr().String(),
			Timeout:      2 * time.Second,
			ClientSubnet: netip.PrefixFrom(clientNet(rec.Domain), 24),
		}
		resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeA)
		if err != nil {
			t.Fatalf("record %d (domain %d): %v", len(fromLive), rec.Domain, err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("record %d: %d answers", len(fromLive), len(resp.Answers))
		}
		a, ok := resp.Answers[0].Data.(dnswire.A)
		if !ok {
			t.Fatalf("record %d: answer is %T, want A", len(fromLive), resp.Answers[0].Data)
		}
		server, ok := serverOf[a.Addr]
		if !ok {
			t.Fatalf("record %d: answered address %v not in the server table", len(fromLive), a.Addr)
		}
		fromLive = append(fromLive, decision{
			domain: rec.Domain,
			server: server,
			ttl:    resp.Answers[0].TTL,
		})
	}

	for i := range fromSim {
		if fromSim[i] != fromLive[i] {
			t.Errorf("decision %d diverges: sim (domain %d → server %d, ttl %d), live (domain %d → server %d, ttl %d)",
				i,
				fromSim[i].domain, fromSim[i].server, fromSim[i].ttl,
				fromLive[i].domain, fromLive[i].server, fromLive[i].ttl)
		}
	}
}
