package dnsserver

import (
	"net"
	"net/netip"
	"runtime"
	"sync/atomic"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
	"dnslb/internal/metrics"
	"dnslb/internal/simcore"
)

// benchServer starts a server for throughput benchmarks: 7 servers,
// 20 domains, parallel UDP workers. Metrics are enabled — the numbers
// this benchmark records are for the instrumented hot path, which is
// what production runs. mod, when non-nil, adjusts the Config before
// construction (cache and batch variants).
func benchServer(b *testing.B, policyName string, mod func(*Config)) *Server {
	b.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		b.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		b.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		b.Fatal(err)
	}
	var tick atomic.Int64
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "bench"),
		Now:   func() float64 { return float64(tick.Add(1)) / 1e4 },
	})
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	cfg := Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		UDPWorkers:  runtime.GOMAXPROCS(0),
		Metrics:     metrics.NewRegistry(),
		AnswerCache: true,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

// BenchmarkServerUDPThroughput measures full query round-trips over
// loopback UDP — decode, schedule, encode and both socket hops — with
// one concurrent client per benchmark goroutine against the parallel
// serve loops. Allocations reported include the server side, which is
// the component this benchmark tracks (the client sends a pre-packed
// query into a reused buffer).
func BenchmarkServerUDPThroughput(b *testing.B) {
	benchUDPRoundTrips(b, benchServer(b, "DRR2-TTL/S_K", nil))
}

// BenchmarkServerUDPThroughputNoCache is the same round trip with the
// hot-answer cache disabled — the pre-cache serve path, kept as the
// comparison point for the cache's effect.
func BenchmarkServerUDPThroughputNoCache(b *testing.B) {
	benchUDPRoundTrips(b, benchServer(b, "DRR2-TTL/S_K",
		func(c *Config) { c.AnswerCache = false }))
}

// BenchmarkServerUDPThroughputBatch runs the round trip against the
// batched SO_REUSEPORT serve loops (a no-op fallback to the default
// loop on platforms without recvmmsg).
func BenchmarkServerUDPThroughputBatch(b *testing.B) {
	benchUDPRoundTrips(b, benchServer(b, "DRR2-TTL/S_K",
		func(c *Config) { c.UDPBatch = 32 }))
}

func benchUDPRoundTrips(b *testing.B, srv *Server) {
	query, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 7, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("udp", srv.Addr().String())
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		resp := make([]byte, dnswire.MaxUDPPayload)
		for pb.Next() {
			if _, err := conn.Write(query); err != nil {
				b.Error(err)
				return
			}
			n, err := conn.Read(resp)
			if err != nil {
				b.Error(err)
				return
			}
			if n < 12 || resp[0] != query[0] || resp[1] != query[1] {
				b.Error("malformed response")
				return
			}
		}
	})
}

// BenchmarkHandleHotPath measures the server-side handler alone —
// decode, schedule, cache lookup, response bytes — without sockets.
// With the cache warm this is the zero-allocation path; the companion
// TestHandleHotPathZeroAlloc pins the allocation count.
func BenchmarkHandleHotPath(b *testing.B) {
	srv := benchServer(b, "DRR2-TTL/S_K", func(c *Config) { c.Addr = "" })
	query, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 7, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		b.Fatal(err)
	}
	from := netip.MustParseAddr("127.0.0.1")
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := srv.handle(query, from, engine.TransportUDP, dnswire.MaxUDPPayload, buf[:0])
		if out == nil {
			b.Fatal("query dropped")
		}
	}
}

// TestHandleHotPathZeroAlloc pins the acceptance target: once the
// cache is warm for every (domain, server) pair the scheduler rotates
// through, the handler allocates nothing per query.
func TestHandleHotPathZeroAlloc(t *testing.T) {
	srv, _ := cacheServer(t, "DRR2-TTL/S_K")
	query, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 7, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	from := netip.MustParseAddr("127.0.0.1")
	buf := make([]byte, 0, 2048)
	for i := 0; i < 64; i++ { // warm every rotation slot
		srv.handle(query, from, engine.TransportUDP, dnswire.MaxUDPPayload, buf[:0])
	}
	allocs := testing.AllocsPerRun(500, func() {
		if out := srv.handle(query, from, engine.TransportUDP, dnswire.MaxUDPPayload, buf[:0]); out == nil {
			t.Fatal("query dropped")
		}
	})
	if allocs != 0 {
		t.Errorf("warm hot path allocates %.1f times per query, want 0", allocs)
	}
}
