package dnsserver

import (
	"net"
	"net/netip"
	"runtime"
	"sync/atomic"
	"testing"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/metrics"
	"dnslb/internal/simcore"
)

// benchServer starts a server for throughput benchmarks: 7 servers,
// 20 domains, parallel UDP workers. Metrics are enabled — the numbers
// this benchmark records are for the instrumented hot path, which is
// what production runs.
func benchServer(b *testing.B, policyName string) *Server {
	b.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		b.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		b.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		b.Fatal(err)
	}
	var tick atomic.Int64
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "bench"),
		Now:   func() float64 { return float64(tick.Add(1)) / 1e4 },
	})
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		UDPWorkers:  runtime.GOMAXPROCS(0),
		Metrics:     metrics.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv
}

// BenchmarkServerUDPThroughput measures full query round-trips over
// loopback UDP — decode, schedule, encode and both socket hops — with
// one concurrent client per benchmark goroutine against the parallel
// serve loops. Allocations reported include the server side, which is
// the component this benchmark tracks (the client sends a pre-packed
// query into a reused buffer).
func BenchmarkServerUDPThroughput(b *testing.B) {
	srv := benchServer(b, "DRR2-TTL/S_K")

	query, err := (&dnswire.Message{
		Header: dnswire.Header{ID: 7, RecursionDesired: true},
		Questions: []dnswire.Question{
			{Name: "www.site.example", Type: dnswire.TypeA, Class: dnswire.ClassIN},
		},
	}).Pack()
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("udp", srv.Addr().String())
		if err != nil {
			b.Error(err)
			return
		}
		defer conn.Close()
		resp := make([]byte, dnswire.MaxUDPPayload)
		for pb.Next() {
			if _, err := conn.Write(query); err != nil {
				b.Error(err)
				return
			}
			n, err := conn.Read(resp)
			if err != nil {
				b.Error(err)
				return
			}
			if n < 12 || resp[0] != query[0] || resp[1] != query[1] {
				b.Error("malformed response")
				return
			}
		}
	})
}
