package dnsserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dnslb/internal/core"
)

// Checkpoint/restore: the DNS's soft state — the hidden-load weight
// estimates it learned from server reports, the alarm/down/draining
// standing of every slot, and the selectors' rotation cursors — is
// periodically serialized to a JSON file and restored on startup, so a
// restart does not reset the domain weights to uniform (which would
// hand hot domains long TTLs until the estimator relearns).
//
// A checkpoint is advisory, never authoritative: restore validates it
// against the running configuration (format version, zone, policy,
// domain count, staleness) and falls back to a clean cold start on any
// mismatch. Server state is matched by address, not index, so a config
// change between save and restore degrades gracefully — unmatched
// servers just start cold.

// checkpointVersion is the on-disk format version; bump on any
// incompatible change to the Checkpoint schema.
const checkpointVersion = 1

// Checkpoint is the serialized soft state of a Server.
type Checkpoint struct {
	Version   int       `json:"version"`
	SavedAt   time.Time `json:"saved_at"`
	Zone      string    `json:"zone"`
	Policy    string    `json:"policy"`
	Domains   int       `json:"domains"`
	Weights   []float64 `json:"weights"`
	Estimator core.EstimatorState
	Cursors   []int64            `json:"cursors,omitempty"`
	Servers   []ServerCheckpoint `json:"servers"`
}

// ServerCheckpoint is one slot's membership and feedback standing.
// Retired slots are serialized too (Member=false) so a re-JOIN after
// restart can reclaim the same index.
type ServerCheckpoint struct {
	Addr      string    `json:"addr"`
	Capacity  float64   `json:"capacity"`
	Member    bool      `json:"member"`
	Draining  bool      `json:"draining"`
	Alarmed   bool      `json:"alarmed"`
	Down      bool      `json:"down"`
	ExpiresAt time.Time `json:"expires_at,omitempty"` // hidden-load window end
}

// Checkpoint captures the server's current soft state.
func (s *Server) Checkpoint() *Checkpoint {
	st := s.policy.State()
	sn := st.Snapshot()
	addrs := s.serverAddrs()
	cp := &Checkpoint{
		Version: checkpointVersion,
		SavedAt: time.Now(),
		Zone:    s.zone,
		Policy:  s.policy.Name(),
		Domains: sn.Domains(),
		Weights: sn.Weights(),
		Cursors: s.policy.Cursors(),
		Servers: make([]ServerCheckpoint, len(addrs)),
	}
	if est, ok := s.eng.EstimatorState(); ok {
		cp.Estimator = est
	}
	for i, a := range addrs {
		cp.Servers[i] = ServerCheckpoint{
			Addr:      a.String(),
			Capacity:  sn.Cluster().Capacity(i),
			Member:    sn.Member(i),
			Draining:  sn.Draining(i),
			Alarmed:   sn.Alarmed(i),
			Down:      sn.Down(i),
			ExpiresAt: s.MappingExpiry(i),
		}
	}
	return cp
}

// WriteCheckpoint atomically serializes the current soft state to
// path (write to a temp file in the same directory, then rename).
func (s *Server) WriteCheckpoint(path string) error {
	cp := s.Checkpoint()
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		s.ckptErrs.Add(1)
		return fmt.Errorf("dnsserver: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		s.ckptErrs.Add(1)
		return fmt.Errorf("dnsserver: checkpoint temp file: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		s.ckptErrs.Add(1)
		return fmt.Errorf("dnsserver: write checkpoint: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		s.ckptErrs.Add(1)
		return fmt.Errorf("dnsserver: install checkpoint: %w", err)
	}
	s.ckptSaves.Add(1)
	return nil
}

// LoadCheckpoint reads and decodes a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("dnsserver: corrupt checkpoint %s: %w", path, err)
	}
	return &cp, nil
}

// RestoreCheckpoint applies a checkpoint's soft state to the server.
// It validates everything before mutating anything, so a rejected
// checkpoint leaves the server in its cold-start state:
//
//   - the format version must match;
//   - zone, policy name, and domain count must match the running
//     configuration;
//   - the checkpoint must be younger than maxAge (0 disables the check).
//
// Server standing is matched by address: slots whose address appears
// in the current table get their alarm/down flags and (for a slot that
// was draining) a resumed drain with the persisted hidden-load window;
// checkpointed servers unknown to the current config are skipped with
// a log line (the config is authoritative for membership).
//
// Call before Start, after the liveness monitor (if any) is attached.
func (s *Server) RestoreCheckpoint(cp *Checkpoint, maxAge time.Duration) error {
	if cp == nil {
		return errors.New("dnsserver: nil checkpoint")
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("dnsserver: checkpoint format v%d, want v%d", cp.Version, checkpointVersion)
	}
	if cp.Zone != s.zone {
		return fmt.Errorf("dnsserver: checkpoint for zone %q, serving %q", cp.Zone, s.zone)
	}
	if cp.Policy != s.policy.Name() {
		return fmt.Errorf("dnsserver: checkpoint for policy %q, running %q", cp.Policy, s.policy.Name())
	}
	st := s.policy.State()
	if cp.Domains != st.Domains() {
		return fmt.Errorf("dnsserver: checkpoint has %d domains, state has %d", cp.Domains, st.Domains())
	}
	if maxAge > 0 {
		age := time.Since(cp.SavedAt)
		if age > maxAge {
			return fmt.Errorf("dnsserver: checkpoint is %v old, max %v", age.Round(time.Second), maxAge)
		}
		if age < -maxAge {
			return fmt.Errorf("dnsserver: checkpoint from the future (%v)", cp.SavedAt)
		}
	}
	if len(cp.Weights) != cp.Domains {
		return fmt.Errorf("dnsserver: checkpoint has %d weights for %d domains", len(cp.Weights), cp.Domains)
	}

	// Validation done — apply. Estimator first (it re-derives weights on
	// the next roll); a shape mismatch here still leaves weights cold.
	if err := s.eng.RestoreEstimator(cp.Estimator); err != nil {
		return fmt.Errorf("dnsserver: checkpoint estimator: %w", err)
	}
	if err := st.SetWeights(cp.Weights); err != nil {
		return fmt.Errorf("dnsserver: checkpoint weights: %w", err)
	}
	if cp.Cursors != nil && !s.policy.RestoreCursors(cp.Cursors) {
		s.logger.Warn("checkpoint cursors not restorable; selector starts fresh",
			"cursors", len(cp.Cursors))
	}

	byAddr := make(map[netip.Addr]int, s.Servers())
	for i, a := range s.serverAddrs() {
		byAddr[a] = i
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	for _, scp := range cp.Servers {
		addr, err := netip.ParseAddr(scp.Addr)
		if err != nil {
			s.logger.Warn("checkpoint server has bad address; skipped", "addr", scp.Addr)
			continue
		}
		i, ok := byAddr[addr]
		if !ok || !st.Member(i) {
			if scp.Member {
				s.logger.Info("checkpoint server not in current config; starting cold", "addr", scp.Addr)
			}
			continue
		}
		if !scp.Member {
			continue // was retired at save time; current config revived it
		}
		if scp.Alarmed {
			_ = st.SetAlarm(i, true)
		}
		if scp.Down {
			// Restore the exclusion as a passive detector vote (not a raw
			// state flag): the combiner then owns the flag's lifecycle, so
			// the backend's next report withdraws the vote and re-admits it
			// only if the active prober (when running) also agrees.
			_ = s.voteDown(detectorPassive, i, true)
			// Mirror the flag into the liveness monitor so the backend's
			// next report clears it (Touch only re-admits backends the
			// monitor itself marked down).
			s.livenessMu.Lock()
			m := s.liveness
			s.livenessMu.Unlock()
			if m != nil {
				m.noteRestoredDown(i)
			}
		}
		if scp.Draining {
			// Resume the drain with the persisted hidden-load window:
			// mappings handed out before the restart are still cached
			// downstream until ExpiresAt (NoteMapping is a CAS-max, so a
			// shorter persisted window never shrinks a live one).
			if exp := scp.ExpiresAt; exp.After(time.Now()) {
				s.eng.NoteMapping(i, s.clock.Seconds(exp))
			}
			if _, err := s.drainLocked(i); err != nil {
				s.logger.Warn("checkpoint drain not resumable", "server", i, "err", err)
			}
		}
	}
	return nil
}

// Checkpointer periodically writes a server's checkpoint to a file and
// flushes one final checkpoint on Close — the shutdown path's state
// save.
type Checkpointer struct {
	srv  *Server
	path string

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// NewCheckpointer starts periodic checkpointing of srv to path every
// interval.
func NewCheckpointer(srv *Server, path string, interval time.Duration) (*Checkpointer, error) {
	if srv == nil {
		return nil, errors.New("dnsserver: checkpointer needs a server")
	}
	if path == "" {
		return nil, errors.New("dnsserver: checkpointer needs a path")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dnsserver: checkpoint interval %v must be positive", interval)
	}
	c := &Checkpointer{
		srv:  srv,
		path: path,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.loop(interval)
	return c, nil
}

func (c *Checkpointer) loop(interval time.Duration) {
	defer close(c.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if err := c.srv.WriteCheckpoint(c.path); err != nil {
				c.srv.logger.Warn("periodic checkpoint failed", "path", c.path, "err", err)
			}
		}
	}
}

// Close stops the periodic saver and writes one final checkpoint.
func (c *Checkpointer) Close() error {
	var err error
	c.once.Do(func() {
		close(c.stop)
		<-c.done
		err = c.srv.WriteCheckpoint(c.path)
	})
	return err
}

// CheckpointSaves returns how many checkpoints were written
// successfully; CheckpointErrors how many writes failed.
func (s *Server) CheckpointSaves() uint64  { return s.ckptSaves.Load() }
func (s *Server) CheckpointErrors() uint64 { return s.ckptErrs.Load() }
