package dnsserver

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"dnslb/internal/metrics"
)

// LivenessMonitor implements failure detection for the live feedback
// path: every report line that names a backend (ALIVE, ALARM) counts
// as proof of life, and a backend that stays silent for k consecutive
// report intervals is marked down in the scheduler — it receives no
// new mappings until it reports again. Recovery is immediate: the
// next line from a down backend re-admits it.
//
// The interval should match the backends' utilization/report interval
// (the paper's 8 s); k trades detection latency against tolerance of
// transient report loss.
type LivenessMonitor struct {
	srv      *Server
	interval time.Duration
	k        int

	mu       sync.Mutex
	lastSeen []time.Time
	down     []bool

	// exclusions holds the per-server exclusion counters (nil elements
	// when uninstrumented); read under mu, grown by Grow.
	exclusions []*metrics.Counter

	// growMu serializes Grow calls so metric registration (which must
	// happen outside mu — the gauge read functions take mu under the
	// registry's lock at scrape time) is never attempted twice for the
	// same slot.
	growMu sync.Mutex

	stop chan struct{}
	done chan struct{}
}

// NewLivenessMonitor starts a monitor for srv's backends and attaches
// it to the server's report path. Every backend starts with a full
// grace period of k intervals to deliver its first report.
func NewLivenessMonitor(srv *Server, interval time.Duration, k int) (*LivenessMonitor, error) {
	if srv == nil {
		return nil, errors.New("dnsserver: liveness monitor needs a server")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("dnsserver: liveness interval %v must be positive", interval)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dnsserver: liveness k %d must be positive", k)
	}
	n := srv.Servers()
	m := &LivenessMonitor{
		srv:      srv,
		interval: interval,
		k:        k,
		lastSeen: make([]time.Time, n),
		down:     make([]bool, n),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	now := time.Now()
	for i := range m.lastSeen {
		m.lastSeen[i] = now
	}
	if reg := srv.registry; reg != nil {
		m.exclusions = make([]*metrics.Counter, n)
		for i := 0; i < n; i++ {
			i := i
			lbl := metrics.Labels{"server", strconv.Itoa(i)}
			m.exclusions[i] = reg.NewCounter("dnslb_liveness_exclusions_total",
				"Backends marked down after k missed report intervals.", lbl)
			reg.NewGaugeFunc("dnslb_liveness_report_age_seconds",
				"Seconds since the backend last proved it was alive (heartbeat gap).", lbl,
				func() float64 {
					m.mu.Lock()
					last := m.lastSeen[i]
					m.mu.Unlock()
					return time.Since(last).Seconds()
				})
		}
	}
	srv.SetLiveness(m)
	go m.loop()
	return m, nil
}

// Touch records proof of life for a backend; a down backend recovers
// on the spot. Out-of-range indexes are ignored (the protocol layer
// validates and reports them before they reach the monitor).
func (m *LivenessMonitor) Touch(server int) {
	m.mu.Lock()
	if server < 0 || server >= len(m.lastSeen) {
		m.mu.Unlock()
		return
	}
	m.lastSeen[server] = time.Now()
	wasDown := m.down[server]
	m.down[server] = false
	m.mu.Unlock()
	if wasDown {
		// Withdraw the passive down vote; the scheduler re-admits the
		// backend only when the active prober (if any) agrees it is up.
		_ = m.srv.voteDown(detectorPassive, server, false)
	}
}

// Grow extends the monitor to cover n backends, giving each new slot a
// full grace period of k intervals — a freshly joined server is not
// marked down before it had a chance to report. Shrinking is not
// supported (slot indices are stable); n at or below the current size
// is a no-op.
//
// Metric series for the new slots are registered outside the state
// lock: the registry calls the gauge read functions (which take m.mu)
// under its own lock at scrape time, so registering under m.mu would
// invert that order.
func (m *LivenessMonitor) Grow(n int) {
	m.growMu.Lock()
	defer m.growMu.Unlock()
	m.mu.Lock()
	start := len(m.lastSeen)
	m.mu.Unlock()
	if n <= start {
		return
	}
	var counters []*metrics.Counter
	if reg := m.srv.registry; reg != nil {
		counters = make([]*metrics.Counter, 0, n-start)
		for i := start; i < n; i++ {
			i := i
			lbl := metrics.Labels{"server", strconv.Itoa(i)}
			counters = append(counters, reg.NewCounter("dnslb_liveness_exclusions_total",
				"Backends marked down after k missed report intervals.", lbl))
			reg.NewGaugeFunc("dnslb_liveness_report_age_seconds",
				"Seconds since the backend last proved it was alive (heartbeat gap).", lbl,
				func() float64 {
					m.mu.Lock()
					var last time.Time
					if i < len(m.lastSeen) {
						last = m.lastSeen[i]
					}
					m.mu.Unlock()
					if last.IsZero() {
						return 0
					}
					return time.Since(last).Seconds()
				})
		}
	}
	now := time.Now()
	m.mu.Lock()
	for i := start; i < n; i++ {
		m.lastSeen = append(m.lastSeen, now)
		m.down = append(m.down, false)
	}
	if counters != nil {
		// Instrumented: keep exclusions index-aligned with lastSeen.
		m.exclusions = append(m.exclusions, counters...)
	}
	m.mu.Unlock()
}

// noteRestoredDown marks server i down in the monitor's own view, used
// when a checkpoint restore re-applies a down flag: Touch clears the
// scheduler's down flag only when the monitor itself considers the
// backend down, so without this the restored exclusion would outlive
// the backend's recovery.
func (m *LivenessMonitor) noteRestoredDown(server int) {
	m.mu.Lock()
	if server >= 0 && server < len(m.down) {
		m.down[server] = true
	}
	m.mu.Unlock()
}

// Down reports whether the monitor currently considers the backend
// failed.
func (m *LivenessMonitor) Down(server int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if server < 0 || server >= len(m.down) {
		return false
	}
	return m.down[server]
}

// Close stops the monitor. The scheduler keeps its current liveness
// view; it no longer changes.
func (m *LivenessMonitor) Close() {
	select {
	case <-m.stop:
		return
	default:
	}
	close(m.stop)
	<-m.done
}

func (m *LivenessMonitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			m.check(now)
		}
	}
}

// check marks every backend silent for more than k intervals as down.
func (m *LivenessMonitor) check(now time.Time) {
	deadline := time.Duration(m.k) * m.interval
	var newlyDown []int
	var counters []*metrics.Counter
	m.mu.Lock()
	for i := range m.lastSeen {
		if !m.down[i] && now.Sub(m.lastSeen[i]) > deadline {
			m.down[i] = true
			newlyDown = append(newlyDown, i)
			if i < len(m.exclusions) && m.exclusions[i] != nil {
				counters = append(counters, m.exclusions[i])
			}
		}
	}
	m.mu.Unlock()
	for _, c := range counters {
		c.Inc()
	}
	for _, i := range newlyDown {
		_ = m.srv.voteDown(detectorPassive, i, true)
	}
}
