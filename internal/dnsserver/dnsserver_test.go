package dnsserver

import (
	"context"
	"math"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
	"dnslb/internal/simcore"
)

// testServer starts a server with the given policy name over a 7-node
// 50%-heterogeneity cluster and 20 Zipf domains.
func testServer(t *testing.T, policyName string, mapper DomainMapper) (*Server, *core.State) {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Mapper:      mapper,
		Addr:        "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, state
}

func resolverFor(t *testing.T, srv *Server) *dnsclient.Resolver {
	t.Helper()
	return &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
}

func TestNewValidation(t *testing.T) {
	cluster, _ := core.ScaledCluster(7, 20, 500)
	state, _ := core.NewState(cluster, 20)
	policy, _ := core.NewPolicy(core.PolicyConfig{Name: "RR", State: state})
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	if _, err := New(Config{ServerAddrs: addrs, Policy: policy}); err == nil {
		t.Error("missing zone should error")
	}
	if _, err := New(Config{Zone: "x", ServerAddrs: addrs}); err == nil {
		t.Error("missing policy should error")
	}
	if _, err := New(Config{Zone: "x", ServerAddrs: addrs[:3], Policy: policy}); err == nil {
		t.Error("address count mismatch should error")
	}
	bad := append([]netip.Addr(nil), addrs...)
	bad[0] = netip.MustParseAddr("::1")
	if _, err := New(Config{Zone: "x", ServerAddrs: bad, Policy: policy}); err == nil {
		t.Error("IPv6 server address should error")
	}
}

func TestUDPQueryAnswersWithAdaptiveTTL(t *testing.T) {
	// Fix every query to domain 0 (the hottest) and use TTL/S_K: the
	// TTL must equal the policy's TTL for (domain 0, chosen server).
	srv, state := testServer(t, "DRR2-TTL/S_K", func(netip.Addr) int { return 0 })
	r := resolverFor(t, srv)
	ctx := context.Background()
	ttlPolicy, err := core.NewTTLPolicy(core.TTLVariant{Classes: core.PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 1 {
			t.Fatalf("got %d answers", len(answers))
		}
		a4 := answers[0].Addr.As4()
		server := int(a4[3]) - 1
		if server < 0 || server >= 7 {
			t.Fatalf("answer address %v not a site server", answers[0].Addr)
		}
		want := ttlPolicy.TTL(state.Snapshot(), 0, server)
		got := answers[0].TTL.Seconds()
		if math.Abs(got-math.Round(want)) > 1.0 {
			t.Errorf("TTL for server %d = %vs, want ≈ %vs", server, got, want)
		}
	}
}

func TestRoundRobinSpreadsServers(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := resolverFor(t, srv)
	ctx := context.Background()
	seen := make(map[netip.Addr]int)
	for i := 0; i < 21; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		seen[answers[0].Addr]++
	}
	if len(seen) != 7 {
		t.Errorf("RR used %d distinct servers over 21 queries, want 7", len(seen))
	}
	for addr, n := range seen {
		if n != 3 {
			t.Errorf("server %v answered %d times, want exactly 3 under RR", addr, n)
		}
	}
}

func TestNXDomain(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := resolverFor(t, srv)
	_, err := r.LookupA(context.Background(), "other.example")
	var rc *dnsclient.RCodeError
	if err == nil {
		t.Fatal("foreign name should fail")
	}
	if !asRCode(err, &rc) || rc.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("err = %v, want NXDOMAIN", err)
	}
}

func asRCode(err error, target **dnsclient.RCodeError) bool {
	for err != nil {
		if e, ok := err.(*dnsclient.RCodeError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestTXTDebugQuery(t *testing.T) {
	srv, _ := testServer(t, "PRR2-TTL/K", nil)
	r := resolverFor(t, srv)
	resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("TXT answers = %d", len(resp.Answers))
	}
	txt, ok := resp.Answers[0].Data.(dnswire.TXT)
	if !ok {
		t.Fatalf("TXT data is %T", resp.Answers[0].Data)
	}
	if !strings.Contains(strings.Join(txt.Strings, " "), "policy=PRR2-TTL/K") {
		t.Errorf("TXT = %v, want policy name", txt.Strings)
	}
}

func TestUnsupportedTypeGetsNoErrorWithSOA(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := resolverFor(t, srv)
	resp, err := r.Exchange(context.Background(), "www.site.example", dnswire.TypeMX)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 0 {
		t.Errorf("MX query returned %d answers", len(resp.Answers))
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %+v, want SOA", resp.Authority)
	}
}

func TestTCPTransport(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	// Query directly over TCP (length-prefixed).
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &dnswire.Message{
		Header:    dnswire.Header{ID: 42},
		Questions: []dnswire.Question{{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	lenBuf := make([]byte, 2)
	if _, err := readFull(conn, lenBuf); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
	if _, err := readFull(conn, msg); err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 42 || !resp.Header.Response || len(resp.Answers) != 1 {
		t.Errorf("TCP response = %+v", resp)
	}
}

func TestAlarmExcludesServer(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := resolverFor(t, srv)
	ctx := context.Background()
	excluded := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	srv.SetAlarm(0, true)
	for i := 0; i < 14; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if answers[0].Addr == excluded {
			t.Fatal("alarmed server 0 still selected")
		}
	}
	srv.SetAlarm(0, false)
	seen := false
	for i := 0; i < 14; i++ {
		answers, err := r.LookupA(ctx, "www.site.example")
		if err != nil {
			t.Fatal(err)
		}
		if answers[0].Addr == excluded {
			seen = true
		}
	}
	if !seen {
		t.Error("server 0 never selected after alarm cleared")
	}
}

func TestMalformedQueryIgnoredOrFormErr(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 12-byte header claiming a question that is not there.
	bad := make([]byte, 12)
	bad[0], bad[1] = 0xAB, 0xCD
	bad[5] = 1
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("expected FORMERR response, got read error %v", err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr || resp.Header.ID != 0xABCD {
		t.Errorf("response = %+v, want FORMERR echoing ID", resp.Header)
	}
	stats := srv.Stats()
	if stats.FormErr == 0 {
		t.Error("FormErr counter not bumped")
	}
}

func TestStatsCounting(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	r := resolverFor(t, srv)
	ctx := context.Background()
	if _, err := r.LookupA(ctx, "www.site.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LookupA(ctx, "nope.example"); err == nil {
		t.Fatal("want NXDOMAIN")
	}
	st := srv.Stats()
	if st.Queries < 2 || st.Answered < 1 || st.NXDomain < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrefixHashMapper(t *testing.T) {
	m := PrefixHashMapper(20)
	a := m(netip.MustParseAddr("192.0.2.7"))
	b := m(netip.MustParseAddr("192.0.2.200")) // same /24
	if a != b {
		t.Errorf("same /24 mapped to different domains: %d vs %d", a, b)
	}
	if a < 0 || a >= 20 {
		t.Errorf("domain %d out of range", a)
	}
	// Different prefixes should spread (not all equal).
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		seen[m(netip.AddrFrom4([4]byte{10, byte(i), 0, 1}))] = true
	}
	if len(seen) < 5 {
		t.Errorf("prefix hash used only %d domains over 50 prefixes", len(seen))
	}
	v6 := m(netip.MustParseAddr("2001:db8::1"))
	if v6 < 0 || v6 >= 20 {
		t.Errorf("IPv6 domain %d out of range", v6)
	}
	if got := m(netip.Addr{}); got != 0 {
		t.Errorf("invalid addr mapped to %d, want 0", got)
	}
	if got := PrefixHashMapper(0)(netip.MustParseAddr("10.0.0.1")); got != 0 {
		t.Errorf("zero domains mapped to %d, want 0", got)
	}
}

func TestStaticMapper(t *testing.T) {
	a := netip.MustParseAddr("127.0.0.1")
	m := StaticMapper(map[netip.Addr]int{a: 7}, 3)
	if got := m(a); got != 7 {
		t.Errorf("mapped = %d, want 7", got)
	}
	if got := m(netip.MustParseAddr("10.0.0.1")); got != 3 {
		t.Errorf("fallback = %d, want 3", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNotImplementedOpcode(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &dnswire.Message{
		Header:    dnswire.Header{ID: 77, OpCode: dnswire.OpStatus},
		Questions: []dnswire.Question{{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("RCode = %v, want NOTIMP", resp.Header.RCode)
	}
	if srv.Stats().NotImp == 0 {
		t.Error("NotImp counter not bumped")
	}
}

func TestResponsesAreDropped(t *testing.T) {
	// A message with the QR bit set must be ignored (reflection guard).
	srv, _ := testServer(t, "RR", nil)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	m := &dnswire.Message{
		Header:    dnswire.Header{ID: 5, Response: true},
		Questions: []dnswire.Question{{Name: "www.site.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("got %d-byte reply to a response-bit message, want silence", n)
	}
}
