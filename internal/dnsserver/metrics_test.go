package dnsserver

import (
	"bytes"
	"context"
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/metrics"
	"dnslb/internal/simcore"
)

// metricsServer is testServer with a registry attached.
func metricsServer(t *testing.T, policyName string) (*Server, *metrics.Registry) {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  policyName,
		State: state,
		Rand:  simcore.NewStream(1, "server"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	reg := metrics.NewRegistry()
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, reg
}

// TestServedQueriesMoveMetrics is the package-level end-to-end check:
// real UDP queries must advance the query counter, the answered
// outcome, the per-server decision counters, and both histograms.
func TestServedQueriesMoveMetrics(t *testing.T) {
	srv, reg := metricsServer(t, "DRR2-TTL/S_K")
	r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
	const queries = 12
	for i := 0; i < queries; i++ {
		if _, err := r.LookupA(context.Background(), "www.site.example"); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if n, err := metrics.CheckText(strings.NewReader(text)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	} else if n == 0 {
		t.Fatal("no samples")
	}

	if got := seriesValue(t, text, "dnslb_dns_queries_total"); got != queries {
		t.Errorf("queries_total = %v, want %d", got, queries)
	}
	if got := seriesValue(t, text, `dnslb_dns_responses_total{outcome="answered"}`); got != queries {
		t.Errorf("answered = %v, want %d", got, queries)
	}
	if got := seriesValue(t, text, "dnslb_dns_query_duration_seconds_count"); got != queries {
		t.Errorf("latency observations = %v, want %d", got, queries)
	}
	if got := seriesValue(t, text, "dnslb_dns_ttl_seconds_count"); got != queries {
		t.Errorf("ttl observations = %v, want %d", got, queries)
	}
	var decisions float64
	for i := 0; i < 7; i++ {
		decisions += seriesValue(t, text,
			`dnslb_policy_decisions_total{policy="DRR2-TTL/S_K",server="`+string(rune('0'+i))+`"}`)
	}
	if decisions != queries {
		t.Errorf("summed per-server decisions = %v, want %d", decisions, queries)
	}
	// Histogram sums must be positive and the TTL sum plausible (the
	// adaptive TTL family never hands out sub-second leases here).
	if got := seriesValue(t, text, "dnslb_dns_ttl_seconds_sum"); got < queries {
		t.Errorf("ttl sum = %v, want >= %d", got, queries)
	}
	// +Inf bucket must equal the count for both histograms.
	if got := seriesValue(t, text, `dnslb_dns_query_duration_seconds_bucket{le="+Inf"}`); got != queries {
		t.Errorf("+Inf latency bucket = %v, want %d", got, queries)
	}
}

// TestUninstrumentedServerServes pins the nil-registry path: a server
// without metrics must serve identically.
func TestUninstrumentedServerServes(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	if srv.metrics != nil {
		t.Fatal("testServer should be uninstrumented")
	}
	r := resolverFor(t, srv)
	if _, err := r.LookupA(context.Background(), "www.site.example"); err != nil {
		t.Fatal(err)
	}
}

// seriesValue extracts one sample value from exposition text.
func seriesValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s has bad value %q: %v", series, rest, err)
		}
		return v
	}
	t.Fatalf("series %s not found in:\n%s", series, text)
	return 0
}
