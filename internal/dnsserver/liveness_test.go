package dnsserver

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestLivenessMonitorValidation(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	if _, err := NewLivenessMonitor(nil, time.Second, 3); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := NewLivenessMonitor(srv, 0, 3); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewLivenessMonitor(srv, time.Second, 0); err == nil {
		t.Error("zero k accepted")
	}
}

func TestLivenessDetectsSilentBackend(t *testing.T) {
	// Backends 0..6 exist; only backend 0 keeps reporting. After the
	// grace period the silent ones are marked down, the reporter stays.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	m, err := NewLivenessMonitor(srv, 20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
				// Best effort: the listener may already be shut down
				// when the test body is done.
				if conn, err := net.Dial("tcp", rl.Addr().String()); err == nil {
					fmt.Fprintln(conn, "ALIVE 0")
					_ = conn.SetReadDeadline(time.Now().Add(time.Second))
					_, _ = bufio.NewReader(conn).ReadString('\n')
					_ = conn.Close()
				}
			}
		}
	}()

	if !waitFor(t, 2*time.Second, func() bool { return srv.Down(3) }) {
		t.Fatal("silent backend 3 never marked down")
	}
	if srv.Down(0) {
		t.Error("reporting backend 0 marked down")
	}
	if !m.Down(3) || m.Down(0) {
		t.Error("monitor view disagrees with scheduler")
	}
}

func TestLivenessRecoveryOnReport(t *testing.T) {
	// A down backend is re-admitted the moment it reports again —
	// ALIVE and ALARM both count as proof of life.
	srv, _ := testServer(t, "RR", nil)
	rl := startReportListener(t, srv)
	m, err := NewLivenessMonitor(srv, 15*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if !waitFor(t, 2*time.Second, func() bool { return srv.Down(2) && srv.Down(5) }) {
		t.Fatal("backends never marked down")
	}
	sendReports(t, rl.Addr().String(), "ALIVE 2", "ALARM 5 0")
	if srv.Down(2) || srv.Down(5) {
		t.Error("reporting backends not re-admitted immediately")
	}
}

func TestLivenessMonitorCloseIdempotent(t *testing.T) {
	srv, _ := testServer(t, "RR", nil)
	m, err := NewLivenessMonitor(srv, time.Hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close()
}
