package dnsserver

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"dnslb/internal/metrics"
	"dnslb/internal/probe"
)

// Failure-detector combination. The server can run two independent
// detectors per backend:
//
//   - the passive k-missed-reports LivenessMonitor (liveness.go), which
//     infers death from silence on the report path, and
//   - the active Prober (internal/probe), which dials the backend's
//     service port on a jittered interval.
//
// Each detector casts a per-backend down vote. The combination rule is
// deliberately asymmetric:
//
//	down  = any detector votes down   (fail fast: either signal alone
//	        is enough to stop handing out new mappings)
//	up    = no detector votes down    (fail safe: a backend whose
//	        service port answers but whose report path is dead — or
//	        vice versa — stays excluded until both detectors agree)
//
// With a single detector attached this degenerates to exactly that
// detector's standing, so servers without probes behave as before.
// The public SetDown remains a direct administrative override outside
// the vote ledger.
const (
	detectorPassive uint8 = 1 << iota // LivenessMonitor (k missed reports)
	detectorActive                    // active Prober
)

// downVotes is the per-slot vote bitmask ledger. The engine's down
// flag transitions only when the mask moves between zero and non-zero.
type downVotes struct {
	mu   sync.Mutex
	bits []uint8
}

// vote records one detector's standing for a server and reports
// whether the combined standing flipped, plus the new standing. The
// slice grows on demand so joined slots need no explicit registration.
func (v *downVotes) vote(src uint8, server int, down bool) (flipped, isDown bool) {
	if server < 0 {
		return false, false
	}
	v.mu.Lock()
	for server >= len(v.bits) {
		v.bits = append(v.bits, 0)
	}
	old := v.bits[server]
	if down {
		v.bits[server] = old | src
	} else {
		v.bits[server] = old &^ src
	}
	now := v.bits[server]
	v.mu.Unlock()
	return (old != 0) != (now != 0), now != 0
}

// holds reports whether the given detector currently votes down for
// the server.
func (v *downVotes) holds(src uint8, server int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return server >= 0 && server < len(v.bits) && v.bits[server]&src != 0
}

// voteDown casts a detector vote and applies the combined standing to
// the scheduler when it flips. This is the only path by which the
// detectors may change the engine's down flags.
func (s *Server) voteDown(src uint8, server int, down bool) error {
	flipped, isDown := s.votes.vote(src, server, down)
	if !flipped {
		return nil
	}
	return s.eng.SetDown(server, isDown)
}

// StartProbing wires an active prober into the server's failure
// detection: target i's probe standing becomes the active detector's
// vote for server slot i. The target list must be index-aligned with
// the server slots (empty Addr skips a slot); slots joined after Start
// are simply unprobed. Returns the running prober; the server owns it
// and closes it on Close/Shutdown.
func (s *Server) StartProbing(cfg probe.Config) (*probe.Prober, error) {
	if len(cfg.Targets) != s.Servers() {
		return nil, fmt.Errorf("dnsserver: %d probe targets for %d server slots", len(cfg.Targets), s.Servers())
	}
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	if s.prober != nil {
		return nil, errors.New("dnsserver: probing already started")
	}
	if cfg.Logger == nil {
		cfg.Logger = s.logger
	}
	inner := cfg.OnTransition
	cfg.OnTransition = func(target int, down bool) {
		if err := s.voteDown(detectorActive, target, down); err != nil {
			s.logger.Warn("probe vote rejected", "target", target, "down", down, "err", err)
		}
		if inner != nil {
			inner(target, down)
		}
	}
	p, err := probe.New(cfg)
	if err != nil {
		return nil, err
	}
	s.prober = p
	if s.registry != nil {
		registerProbeMetrics(s.registry, p)
	}
	p.Start()
	s.logger.Info("active probing started",
		"targets", len(cfg.Targets), "interval", cfg.Interval, "fail_n", cfg.FailN, "rise_m", cfg.RiseM)
	return p, nil
}

// stopProbing closes the prober if one was started. Probe votes are
// left in place: a stopping server has no reason to re-admit backends.
func (s *Server) stopProbing() {
	s.probeMu.Lock()
	p := s.prober
	s.prober = nil
	s.probeMu.Unlock()
	if p != nil {
		_ = p.Close()
	}
}

// ProbeDown reports the active prober's standing for a server slot
// (false when probing is not running or the slot is unprobed).
func (s *Server) ProbeDown(server int) bool {
	s.probeMu.Lock()
	p := s.prober
	s.probeMu.Unlock()
	return p != nil && p.Down(server)
}

// registerProbeMetrics exposes the prober's counters. Totals are
// summed at scrape time from the per-target atomics; per-target
// standing is a 0/1 gauge labeled like the other per-server series.
func registerProbeMetrics(reg *metrics.Registry, p *probe.Prober) {
	sum := func(pick func(probe.TargetStats) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, ts := range p.Stats() {
				t += pick(ts)
			}
			return t
		}
	}
	reg.NewCounterFunc("dnslb_probe_probes_total",
		"Active health probes attempted across all targets.",
		nil, sum(func(ts probe.TargetStats) uint64 { return ts.Probes }))
	reg.NewCounterFunc("dnslb_probe_failures_total",
		"Active health probes that failed (dial, timeout, or bad HTTP status).",
		nil, sum(func(ts probe.TargetStats) uint64 { return ts.Failures }))
	reg.NewCounterFunc("dnslb_probe_transitions_total",
		"Probe standing flips across all targets (down and up each count once).",
		nil, sum(func(ts probe.TargetStats) uint64 { return ts.Transitions }))
	reg.NewGaugeFunc("dnslb_probe_targets",
		"Configured probe targets (including skipped empty slots).",
		nil, func() float64 { return float64(p.NumTargets()) })
	for i := 0; i < p.NumTargets(); i++ {
		i := i
		reg.NewGaugeFunc("dnslb_probe_down",
			"1 while the active prober considers the target failed.",
			metrics.Labels{"server", strconv.Itoa(i)},
			func() float64 { return boolGauge(p.Down(i)) })
	}
}
