//go:build linux && (amd64 || arm64)

package dnsserver

// Batched UDP I/O for Linux: each serve worker owns its own
// SO_REUSEPORT socket (the kernel hash-distributes flows across the
// sockets, so workers never contend on one receive queue) and moves up
// to Config.UDPBatch datagrams per recvmmsg/sendmmsg syscall instead
// of one per ReadFromUDPAddrPort/WriteToUDPAddrPort. At saturation
// this amortizes the syscall and socket-lock cost across the batch —
// the dominant per-query cost once the handler itself is
// allocation-free.
//
// The syscalls run with MSG_DONTWAIT inside RawConn.Read/Write
// callbacks, so blocking, read deadlines (Shutdown's unblock trick)
// and socket closure all remain under the Go netpoller exactly as on
// the portable path. The mmsghdr layout below matches the 64-bit
// kernel ABI, hence the amd64/arm64 build gate; every other platform
// takes batch_other.go's fallback to the portable loop.

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"time"
	"unsafe"

	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
)

const batchSupported = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
const soReusePort = 0xf

// mmsghdr is struct mmsghdr from socket(7): a msghdr plus the
// kernel-filled received-bytes count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// listenUDPReusePort binds one UDP socket with SO_REUSEPORT set.
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

// listenUDPBatchConns binds one SO_REUSEPORT socket per worker on the
// same address. With an ephemeral port the first bind picks it and the
// rest join it. On any failure every socket bound so far is closed.
func listenUDPBatchConns(uaddr *net.UDPAddr, workers int) ([]*net.UDPConn, error) {
	conns := make([]*net.UDPConn, 0, workers)
	first, err := listenUDPReusePort(uaddr.String())
	if err != nil {
		return nil, err
	}
	conns = append(conns, first)
	bound := first.LocalAddr().String()
	for len(conns) < workers {
		c, err := listenUDPReusePort(bound)
		if err != nil {
			for _, cc := range conns {
				_ = cc.Close()
			}
			return nil, fmt.Errorf("reuseport bind %d of %d: %w", len(conns)+1, workers, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// udpBatch is one worker's batch state: receive buffers, response
// buffers, and the mmsghdr/iovec/sockaddr arrays the two syscalls
// share. The sockaddr a datagram arrived from doubles as the
// destination of its response, so addresses are never converted on the
// send side.
type udpBatch struct {
	rc    syscall.RawConn
	recv  []mmsghdr
	send  []mmsghdr
	names []syscall.RawSockaddrInet6
	riov  []syscall.Iovec
	siov  []syscall.Iovec
	rbuf  [][]byte
	sbuf  [][]byte
}

func newUDPBatch(conn *net.UDPConn, size int) (*udpBatch, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &udpBatch{
		rc:    rc,
		recv:  make([]mmsghdr, size),
		send:  make([]mmsghdr, size),
		names: make([]syscall.RawSockaddrInet6, size),
		riov:  make([]syscall.Iovec, size),
		siov:  make([]syscall.Iovec, size),
		rbuf:  make([][]byte, size),
		sbuf:  make([][]byte, size),
	}
	for i := 0; i < size; i++ {
		b.rbuf[i] = make([]byte, 65535)
		b.sbuf[i] = make([]byte, 0, 2048)
		b.riov[i].Base = &b.rbuf[i][0]
		b.recv[i].hdr.Name = (*byte)(unsafe.Pointer(&b.names[i]))
		b.recv[i].hdr.Iov = &b.riov[i]
		b.recv[i].hdr.Iovlen = 1
	}
	return b, nil
}

// recvBatch blocks (via the netpoller) until at least one datagram is
// readable and returns how many were received, up to the batch size.
func (b *udpBatch) recvBatch() (int, error) {
	for i := range b.recv {
		// The kernel overwrites these per message; restore before reuse.
		b.recv[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		b.riov[i].SetLen(len(b.rbuf[i]))
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.recv[0])), uintptr(len(b.recv)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		n, errno = int(r1), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return n, nil
}

// sourceAddr decodes the sockaddr message i arrived from.
func (b *udpBatch) sourceAddr(i int) (netip.Addr, bool) {
	sa := &b.names[i]
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrFrom4(sa4.Addr), true
	case syscall.AF_INET6:
		return netip.AddrFrom16(sa.Addr).Unmap(), true
	}
	return netip.Addr{}, false
}

// stageSend enqueues response resp (for the datagram received in slot
// src) as outgoing message k: the received sockaddr becomes the
// destination verbatim.
func (b *udpBatch) stageSend(k, src int, resp []byte) {
	b.siov[k].Base = &resp[0]
	b.siov[k].SetLen(len(resp))
	b.send[k].hdr.Name = (*byte)(unsafe.Pointer(&b.names[src]))
	b.send[k].hdr.Namelen = b.recv[src].hdr.Namelen
	b.send[k].hdr.Iov = &b.siov[k]
	b.send[k].hdr.Iovlen = 1
}

// sendBatch flushes the first count staged responses, retrying partial
// sends until all are out.
func (b *udpBatch) sendBatch(count int) error {
	off := 0
	for off < count {
		var sent int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.send[off])), uintptr(count-off),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			sent, errno = int(r1), e
			return true
		})
		if err != nil {
			return err
		}
		if errno != 0 {
			return errno
		}
		if sent <= 0 {
			return syscall.EIO
		}
		off += sent
	}
	return nil
}

// serveUDPBatch is one batched reader/responder loop over the worker's
// own SO_REUSEPORT socket — the batch-mode counterpart of serveUDP,
// with identical error backoff and shutdown behavior.
func (s *Server) serveUDPBatch(worker int, conn *net.UDPConn) {
	defer s.wg.Done()
	bio, err := newUDPBatch(conn, s.udpBatch)
	if err != nil {
		s.logger.Error("udp batch setup failed; worker idle", "err", err, "worker", worker)
		return
	}
	m := s.metrics
	hint := uint32(worker)
	var backoff time.Duration
	for {
		n, err := bio.recvBatch()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("udp batch read failed", "err", err, "worker", worker)
				var sleep time.Duration
				sleep, backoff = nextBackoff(backoff)
				if s.sleepOrClosed(sleep) {
					return
				}
				continue
			}
		}
		backoff = 0
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		k := 0
		for i := 0; i < n; i++ {
			from, ok := bio.sourceAddr(i)
			if !ok {
				continue
			}
			resp := s.safeHandle(bio.rbuf[i][:bio.recv[i].len], from, engine.TransportUDP, dnswire.MaxUDPPayload, bio.sbuf[k][:0])
			if resp == nil {
				continue
			}
			bio.sbuf[k] = resp[:0] // keep a grown buffer for reuse
			bio.stageSend(k, i, resp)
			k++
		}
		if k > 0 {
			if err := bio.sendBatch(k); err != nil {
				s.logger.Warn("udp batch write failed", "err", err, "worker", worker)
			}
		}
		if m != nil && n > 0 {
			// Per-query latency approximated by the batch average: the
			// histogram stays comparable with the one-datagram loop.
			each := time.Since(start).Seconds() / float64(n)
			for i := 0; i < n; i++ {
				m.latency.ObserveHint(hint, each)
			}
		}
	}
}
