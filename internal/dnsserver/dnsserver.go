// Package dnsserver runs the adaptive-TTL scheduler as a real
// authoritative DNS server: A queries for the site name are answered
// with the Web server chosen by the configured core policy and the TTL
// the policy computed for the (client domain, server) pair.
//
// The source "domain" of a query is derived from the querying name
// server's address through a pluggable DomainMapper, defaulting to a
// stable hash of the address prefix. Web servers feed the alarm and
// hidden-load machinery through RecordHits/SetAlarm, or remotely over
// the plain-text load-report listener (see report.go).
//
// The query path is lock-free: core.Policy and core.State are safe for
// concurrent use (see core's concurrency contract), so the server runs
// several UDP reader/responder goroutines over one shared socket, each
// scheduling directly against the policy. Serve counters are sharded
// per source-address hash and response buffers are pooled, so the hot
// path takes no server-level lock and makes no per-query allocations
// beyond message decode.
package dnsserver

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/logging"
	"dnslb/internal/metrics"
)

// DomainMapper identifies the connected domain an address request
// originates from, given the querying resolver's address.
type DomainMapper func(addr netip.Addr) int

// Config configures a Server.
type Config struct {
	// Zone is the site name served, e.g. "www.site.example".
	Zone string
	// ServerAddrs are the Web servers' IPv4 addresses, index-aligned
	// with the policy's cluster.
	ServerAddrs []netip.Addr
	// Policy is the DNS scheduling policy. It is called concurrently
	// from every serve goroutine without server-level locking;
	// core.Policy guarantees this is safe.
	Policy *core.Policy
	// Mapper identifies the source domain of each query. Nil installs
	// PrefixHashMapper over the policy's domain count.
	Mapper DomainMapper
	// Addr is the UDP/TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// Logger receives structured serve-loop diagnostics; nil discards
	// them.
	Logger *slog.Logger
	// RateLimit optionally bounds queries per second per source
	// address; excess queries are answered REFUSED.
	RateLimit *RateLimiter
	// UDPWorkers is the number of parallel UDP reader/responder
	// goroutines sharing the socket. Zero or negative defaults to
	// runtime.GOMAXPROCS(0).
	UDPWorkers int
	// Metrics optionally registers the server's observability series
	// (queries by outcome, per-worker latency, returned-TTL histogram,
	// policy decisions, alarm/liveness transitions) on the given
	// registry. Nil disables instrumentation; the hot path then pays
	// only nil checks. See DESIGN.md §10 for the series inventory.
	Metrics *metrics.Registry
}

// Server is the authoritative DNS front end.
type Server struct {
	zone  string
	addrs []netip.Addr

	policy *core.Policy

	estMu sync.Mutex
	est   *core.Estimator

	mapper     DomainMapper
	logger     *slog.Logger
	listenAddr string
	limiter    *RateLimiter
	udpWorkers int

	registry *metrics.Registry // nil when uninstrumented
	metrics  *serverMetrics    // nil when uninstrumented

	udp *net.UDPConn
	tcp net.Listener

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	livenessMu sync.Mutex
	liveness   *LivenessMonitor

	wg     sync.WaitGroup
	closed chan struct{}

	stats [statsShards]statsShard
}

// ServerStats counts served queries by outcome.
type ServerStats struct {
	Queries     uint64
	Answered    uint64
	NXDomain    uint64
	FormErr     uint64
	NotImp      uint64
	ServFail    uint64
	Truncated   uint64
	RateLimited uint64
}

// statsShards spreads the serve counters across independently updated
// cache lines, indexed by source-address hash, so parallel serve
// goroutines don't bounce one counter line between cores.
const statsShards = 16

// statsShard mirrors ServerStats with atomic counters. Eight 8-byte
// atomics fill exactly one 64-byte cache line, so adjacent shards
// never share a line.
type statsShard struct {
	queries     atomic.Uint64
	answered    atomic.Uint64
	nxdomain    atomic.Uint64
	formerr     atomic.Uint64
	notimp      atomic.Uint64
	servfail    atomic.Uint64
	truncated   atomic.Uint64
	ratelimited atomic.Uint64
}

// statsIndex hashes the source address to a counter-shard index, also
// used as the metric shard hint. Invalid addresses (possible on the
// TCP path) land in shard 0.
func (s *Server) statsIndex(addr netip.Addr) uint32 {
	if !addr.IsValid() {
		return 0
	}
	b := addr.As16()
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & (statsShards - 1)
}

// New creates a server; call Start to bind and serve.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == "" {
		return nil, errors.New("dnsserver: Zone is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("dnsserver: Policy is required")
	}
	n := cfg.Policy.State().Cluster().N()
	if len(cfg.ServerAddrs) != n {
		return nil, fmt.Errorf("dnsserver: %d server addresses for %d servers", len(cfg.ServerAddrs), n)
	}
	for i, a := range cfg.ServerAddrs {
		if !a.Is4() {
			return nil, fmt.Errorf("dnsserver: server address %d (%v) must be IPv4", i, a)
		}
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = PrefixHashMapper(cfg.Policy.State().Domains())
	}
	logger := cfg.Logger
	if logger == nil {
		logger = logging.Discard()
	}
	est, err := core.NewEstimator(cfg.Policy.State().Domains(), 0.5)
	if err != nil {
		return nil, err
	}
	workers := cfg.UDPWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		zone:       dnswire.CanonicalName(cfg.Zone),
		addrs:      append([]netip.Addr(nil), cfg.ServerAddrs...),
		policy:     cfg.Policy,
		est:        est,
		mapper:     mapper,
		logger:     logger,
		listenAddr: cfg.Addr,
		limiter:    cfg.RateLimit,
		udpWorkers: workers,
		registry:   cfg.Metrics,
		conns:      make(map[net.Conn]struct{}),
		closed:     make(chan struct{}),
	}
	if cfg.Metrics != nil {
		s.metrics = newServerMetrics(cfg.Metrics, s)
	}
	return s, nil
}

// Start binds the UDP socket and TCP listener and begins serving with
// the configured number of parallel UDP workers.
func (s *Server) Start() error {
	uaddr, err := net.ResolveUDPAddr("udp", s.addrOrDefault())
	if err != nil {
		return fmt.Errorf("dnsserver: resolve: %w", err)
	}
	s.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
	if err != nil {
		_ = s.udp.Close()
		return fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.wg.Add(s.udpWorkers + 1)
	for i := 0; i < s.udpWorkers; i++ {
		go s.serveUDP(i)
	}
	go s.serveTCP()
	return nil
}

// configured listen address; stored via Config at New time.
func (s *Server) addrOrDefault() string {
	if s.listenAddr == "" {
		return "127.0.0.1:0"
	}
	return s.listenAddr
}

// Addr returns the bound UDP address (valid after Start).
func (s *Server) Addr() net.Addr { return s.udp.LocalAddr() }

// Close stops serving and waits for the serve loops to exit.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var first error
	if s.udp != nil {
		first = s.udp.Close()
	}
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Closing the listener does not close accepted connections; do it
	// explicitly so Close never waits out a TCP idle deadline.
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return first
}

// Stats returns a snapshot of the serve counters, summed across the
// shards. Counters may be mid-update while summing; each total is
// individually consistent (monotone), which is all the callers need.
func (s *Server) Stats() ServerStats {
	var out ServerStats
	for i := range s.stats {
		sh := &s.stats[i]
		out.Queries += sh.queries.Load()
		out.Answered += sh.answered.Load()
		out.NXDomain += sh.nxdomain.Load()
		out.FormErr += sh.formerr.Load()
		out.NotImp += sh.notimp.Load()
		out.ServFail += sh.servfail.Load()
		out.Truncated += sh.truncated.Load()
		out.RateLimited += sh.ratelimited.Load()
	}
	return out
}

// Servers returns the cluster size of the scheduling policy.
func (s *Server) Servers() int { return len(s.addrs) }

// SetAlarm relays a Web server's alarm/normal signal to the scheduler.
// An out-of-range index is reported back, so remote reporters learn
// about their misconfiguration instead of being silently ignored.
// core.State synchronizes its own mutations; no server lock is taken.
func (s *Server) SetAlarm(server int, alarmed bool) error {
	return s.policy.State().SetAlarm(server, alarmed)
}

// SetDown marks a Web server failed (down=true) or recovered in the
// scheduler state: down servers receive no new mappings, and queries
// are answered SERVFAIL only when every server is down.
func (s *Server) SetDown(server int, down bool) error {
	return s.policy.State().SetDown(server, down)
}

// Down reports whether the scheduler currently considers server i
// failed.
func (s *Server) Down(server int) bool {
	return s.policy.State().Down(server)
}

// SetLiveness attaches a liveness monitor: report lines that prove a
// backend alive are forwarded to it. NewLivenessMonitor attaches
// itself; direct calls are only needed to detach (nil).
func (s *Server) SetLiveness(m *LivenessMonitor) {
	s.livenessMu.Lock()
	s.liveness = m
	s.livenessMu.Unlock()
}

// touchLiveness records proof of life for a backend, if a liveness
// monitor is attached.
func (s *Server) touchLiveness(server int) {
	s.livenessMu.Lock()
	m := s.liveness
	s.livenessMu.Unlock()
	if m != nil {
		m.Touch(server)
	}
}

// Alarmed reports whether the scheduler currently excludes server i.
func (s *Server) Alarmed(server int) bool {
	return s.policy.State().Alarmed(server)
}

// DomainWeight returns the scheduler's current hidden-load weight
// estimate for a domain.
func (s *Server) DomainWeight(domain int) float64 {
	return s.policy.State().Weight(domain)
}

// RecordHits feeds per-domain hit counts into the hidden-load
// estimator (the server-side accounting the paper's DNS collects).
// The estimator keeps mutable running sums, so it has its own lock —
// off the query path entirely.
func (s *Server) RecordHits(domain int, hits float64) {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	s.est.Record(domain, hits)
}

// RollEstimates closes an estimation interval of the given length and
// installs the resulting hidden-load weights into the scheduler state.
func (s *Server) RollEstimates(intervalSeconds float64) error {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	s.est.Roll(intervalSeconds)
	return s.policy.State().SetWeights(s.est.Weights())
}

// packPool recycles response buffers across queries; serve loops pack
// into a pooled buffer via dnswire.AppendPack and return it after the
// write, so steady-state encoding allocates nothing.
var packPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// serveUDP is one of UDPWorkers identical reader/responder loops over
// the shared socket. The kernel distributes datagrams across blocked
// readers; each worker owns its read buffer, so the loops never touch
// shared mutable server state. When instrumented, each worker times
// its own queries and accumulates the latency histogram sum on its own
// shard (the worker index is the hint), keeping the measurement as
// contention-free as the serving.
func (s *Server) serveUDP(worker int) {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	m := s.metrics
	hint := uint32(worker)
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("udp read failed", "err", err, "worker", worker)
				continue
			}
		}
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		bp := packPool.Get().(*[]byte)
		resp := s.handle(buf[:n], raddr.Addr(), dnswire.MaxUDPPayload, (*bp)[:0])
		if resp != nil {
			if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
				s.logger.Warn("udp write failed", "err", err, "worker", worker, "raddr", raddr)
			}
			if cap(resp) > cap(*bp) {
				*bp = resp[:0] // keep the grown buffer
			}
		}
		packPool.Put(bp)
		if m != nil {
			m.latency.ObserveHint(hint, time.Since(start).Seconds())
		}
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("tcp accept failed", "err", err)
				continue
			}
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
			}()
			s.serveTCPConn(conn)
		}()
	}
}

// tcpIdleTimeout bounds how long a TCP client may sit between
// messages, so idle or slowloris connections cannot pin goroutines.
const tcpIdleTimeout = 30 * time.Second

func (s *Server) serveTCPConn(conn net.Conn) {
	var raddr netip.Addr
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		raddr = ap.Addr()
	}
	lenBuf := make([]byte, 2)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := readFull(conn, lenBuf); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		msg := make([]byte, n)
		if _, err := readFull(conn, msg); err != nil {
			return
		}
		resp := s.handle(msg, raddr, math.MaxUint16, nil)
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// handle processes one wire-format query and returns the wire-format
// response (nil to drop), packed into dst's capacity when possible.
// dst must be a zero-length slice (or nil to allocate). handle touches
// no server-level lock: the policy and state are internally safe, and
// counters go to the caller's stats shard.
func (s *Server) handle(wire []byte, from netip.Addr, maxSize int, dst []byte) []byte {
	idx := s.statsIndex(from)
	st := &s.stats[idx]
	st.queries.Add(1)
	query, err := dnswire.Unpack(wire)
	if err != nil || len(query.Questions) == 0 {
		st.formerr.Add(1)
		if len(wire) < 2 {
			return nil // cannot even echo an ID
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(wire[0])<<8 | uint16(wire[1]),
			Response: true,
			RCode:    dnswire.RCodeFormErr,
		}}
		return mustPack(resp, dst)
	}
	if query.Header.Response {
		return nil // never answer responses
	}
	if s.limiter != nil && !s.limiter.Allow(from) {
		st.ratelimited.Add(1)
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			OpCode:   query.Header.OpCode,
			RCode:    dnswire.RCodeRefused,
		}}
		return mustPack(resp, dst)
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions[:1],
	}
	if query.Header.OpCode != dnswire.OpQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		st.notimp.Add(1)
		return mustPack(resp, dst)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)
	if name != s.zone {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.nxdomain.Add(1)
		return mustPack(resp, dst)
	}
	// RFC 7871 Client Subnet: when the resolver forwarded the client's
	// network prefix, classify the originating domain from it instead
	// of the resolver's own transport address, and echo the option with
	// the scope we used.
	clientAddr := from
	ecs, hasECS := query.ClientSubnet()
	if hasECS && ecs.Prefix.IsValid() {
		clientAddr = ecs.Prefix.Addr()
	}
	switch q.Type {
	case dnswire.TypeA, dnswire.TypeANY:
		domain := s.mapper(clientAddr)
		d, err := s.policy.Schedule(domain)
		if err != nil {
			resp.Header.RCode = dnswire.RCodeServFail
			st.servfail.Add(1)
			return mustPack(resp, dst)
		}
		ttl := uint32(math.Round(d.TTL))
		if ttl == 0 {
			ttl = 1
		}
		if s.metrics != nil {
			s.metrics.ttl.ObserveHint(idx, d.TTL)
		}
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: s.addrs[d.Server]},
		}}
		if hasECS {
			echo := ecs
			echo.ScopePrefixLen = uint8(ecs.Prefix.Bits())
			if err := resp.SetClientSubnet(echo, dnswire.MaxUDPPayload); err != nil {
				s.logger.Debug("ECS echo failed", "err", err, "raddr", from)
			}
		}
		st.answered.Add(1)
	case dnswire.TypeTXT:
		// Debug visibility: the policy name and decision counters.
		stats := s.policy.Stats()
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeTXT,
			Class: dnswire.ClassIN,
			TTL:   0,
			Data: dnswire.TXT{Strings: []string{
				"policy=" + s.policy.Name(),
				fmt.Sprintf("decisions=%d", stats.Decisions),
			}},
		}}
		st.answered.Add(1)
	default:
		// Name exists but no data of this type: NOERROR + SOA.
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.answered.Add(1)
	}
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Authority = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		out = mustPack(resp, out[:0])
	}
	return out
}

// soa returns the zone's SOA record, used in negative responses.
func (s *Server) soa() dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  s.zone,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data: dnswire.SOA{
			MName:   "ns1." + s.zone,
			RName:   "hostmaster." + s.zone,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
	}
}

// mustPack appends the encoded message to dst (a zero-length slice or
// nil), returning nil on encode failure: responses are built from
// validated parts, so a pack failure is a programming error, but in
// production we drop the response instead of crashing.
func mustPack(m *dnswire.Message, dst []byte) []byte {
	out, err := m.AppendPack(dst)
	if err != nil {
		return nil
	}
	return out
}

// PrefixHashMapper maps a querying address to a domain index by
// hashing its /24 (IPv4) or /48 (IPv6) prefix — stable, spreading
// resolvers of distinct networks across the connected domains.
func PrefixHashMapper(domains int) DomainMapper {
	return func(addr netip.Addr) int {
		if domains <= 0 {
			return 0
		}
		if !addr.IsValid() {
			return 0
		}
		var key []byte
		if addr.Is4() {
			b := addr.As4()
			key = b[:3]
		} else {
			b := addr.As16()
			key = b[:6]
		}
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, c := range key {
			h ^= uint64(c)
			h *= prime
		}
		// Finalize with an avalanche step: raw FNV of very short keys
		// distributes poorly under small moduli.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(domains))
	}
}

// StaticMapper returns a DomainMapper that maps exact addresses per
// the table and everything else to fallback — convenient for tests and
// controlled deployments.
func StaticMapper(table map[netip.Addr]int, fallback int) DomainMapper {
	return func(addr netip.Addr) int {
		if d, ok := table[addr]; ok {
			return d
		}
		return fallback
	}
}
