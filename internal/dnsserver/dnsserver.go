// Package dnsserver runs the adaptive-TTL scheduler as a real
// authoritative DNS server: A queries for the site name are answered
// with the Web server chosen by the configured core policy and the TTL
// the policy computed for the (client domain, server) pair.
//
// The source "domain" of a query is derived from the querying name
// server's address through a pluggable DomainMapper, defaulting to a
// stable hash of the address prefix. Web servers feed the alarm and
// hidden-load machinery through RecordHits/SetAlarm, or remotely over
// the plain-text load-report listener (see report.go).
//
// The query path is lock-free: core.Policy and core.State are safe for
// concurrent use (see core's concurrency contract), so the server runs
// several UDP reader/responder goroutines over one shared socket, each
// scheduling directly against the policy. Serve counters are sharded
// per source-address hash and response buffers are pooled, so the hot
// path takes no server-level lock and makes no per-query allocations
// beyond message decode.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/netip"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/logging"
	"dnslb/internal/metrics"
)

// DomainMapper identifies the connected domain an address request
// originates from, given the querying resolver's address.
type DomainMapper func(addr netip.Addr) int

// Config configures a Server.
type Config struct {
	// Zone is the site name served, e.g. "www.site.example".
	Zone string
	// ServerAddrs are the Web servers' IPv4 addresses, index-aligned
	// with the policy's cluster.
	ServerAddrs []netip.Addr
	// Policy is the DNS scheduling policy. It is called concurrently
	// from every serve goroutine without server-level locking;
	// core.Policy guarantees this is safe.
	Policy *core.Policy
	// Mapper identifies the source domain of each query. Nil installs
	// PrefixHashMapper over the policy's domain count.
	Mapper DomainMapper
	// Addr is the UDP/TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// Logger receives structured serve-loop diagnostics; nil discards
	// them.
	Logger *slog.Logger
	// RateLimit optionally bounds queries per second per source
	// address; excess queries are answered REFUSED.
	RateLimit *RateLimiter
	// UDPWorkers is the number of parallel UDP reader/responder
	// goroutines sharing the socket. Zero or negative defaults to
	// runtime.GOMAXPROCS(0).
	UDPWorkers int
	// Metrics optionally registers the server's observability series
	// (queries by outcome, per-worker latency, returned-TTL histogram,
	// policy decisions, alarm/liveness transitions) on the given
	// registry. Nil disables instrumentation; the hot path then pays
	// only nil checks. See DESIGN.md §10 for the series inventory.
	Metrics *metrics.Registry
}

// Server is the authoritative DNS front end.
type Server struct {
	zone string
	// addrs points at the immutable per-slot address table,
	// index-aligned with the policy's cluster; Join replaces it
	// copy-on-write so the query path reads it with one atomic load.
	// Retired slots keep their last address (re-JOIN matching).
	addrs atomic.Pointer[[]netip.Addr]

	policy *core.Policy

	estMu sync.Mutex
	est   *core.Estimator

	mapper     DomainMapper
	logger     *slog.Logger
	listenAddr string
	limiter    *RateLimiter
	udpWorkers int

	registry *metrics.Registry // nil when uninstrumented
	metrics  *serverMetrics    // nil when uninstrumented

	udp *net.UDPConn
	tcp net.Listener

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	livenessMu sync.Mutex
	liveness   *LivenessMonitor

	// expiry tracks, per server slot, the latest instant at which a
	// mapping handed out to that server can still sit in a resolver
	// cache (CAS-max of decision time + TTL, unix nanoseconds). It is
	// the paper's hidden-load window, and the graceful-drain deadline.
	expiry atomic.Pointer[[]*atomic.Int64]

	// reconfigMu serializes membership changes (Join, Drain,
	// Reconfigure, checkpoint restore) against each other; the query
	// path never takes it.
	reconfigMu  sync.Mutex
	drainTimers map[int]*time.Timer

	// Reconfiguration and robustness counters; exported as metric
	// series when instrumented but always maintained, so uninstrumented
	// servers (and tests) can observe them too.
	panics     atomic.Uint64
	joins      atomic.Uint64
	drains     atomic.Uint64
	removals   atomic.Uint64
	reloads    atomic.Uint64
	reloadErrs atomic.Uint64
	ckptSaves  atomic.Uint64
	ckptErrs   atomic.Uint64

	wg     sync.WaitGroup
	closed chan struct{}

	stats [statsShards]statsShard
}

// ServerStats counts served queries by outcome.
type ServerStats struct {
	Queries     uint64
	Answered    uint64
	NXDomain    uint64
	FormErr     uint64
	NotImp      uint64
	ServFail    uint64
	Truncated   uint64
	RateLimited uint64
}

// statsShards spreads the serve counters across independently updated
// cache lines, indexed by source-address hash, so parallel serve
// goroutines don't bounce one counter line between cores.
const statsShards = 16

// statsShard mirrors ServerStats with atomic counters. Eight 8-byte
// atomics fill exactly one 64-byte cache line, so adjacent shards
// never share a line.
type statsShard struct {
	queries     atomic.Uint64
	answered    atomic.Uint64
	nxdomain    atomic.Uint64
	formerr     atomic.Uint64
	notimp      atomic.Uint64
	servfail    atomic.Uint64
	truncated   atomic.Uint64
	ratelimited atomic.Uint64
}

// statsIndex hashes the source address to a counter-shard index, also
// used as the metric shard hint. Invalid addresses (possible on the
// TCP path) land in shard 0.
func (s *Server) statsIndex(addr netip.Addr) uint32 {
	if !addr.IsValid() {
		return 0
	}
	b := addr.As16()
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & (statsShards - 1)
}

// New creates a server; call Start to bind and serve.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == "" {
		return nil, errors.New("dnsserver: Zone is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("dnsserver: Policy is required")
	}
	n := cfg.Policy.State().Cluster().N()
	if len(cfg.ServerAddrs) != n {
		return nil, fmt.Errorf("dnsserver: %d server addresses for %d servers", len(cfg.ServerAddrs), n)
	}
	for i, a := range cfg.ServerAddrs {
		if !a.Is4() {
			return nil, fmt.Errorf("dnsserver: server address %d (%v) must be IPv4", i, a)
		}
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = PrefixHashMapper(cfg.Policy.State().Domains())
	}
	logger := cfg.Logger
	if logger == nil {
		logger = logging.Discard()
	}
	est, err := core.NewEstimator(cfg.Policy.State().Domains(), 0.5)
	if err != nil {
		return nil, err
	}
	workers := cfg.UDPWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		zone:        dnswire.CanonicalName(cfg.Zone),
		policy:      cfg.Policy,
		est:         est,
		mapper:      mapper,
		logger:      logger,
		listenAddr:  cfg.Addr,
		limiter:     cfg.RateLimit,
		udpWorkers:  workers,
		registry:    cfg.Metrics,
		conns:       make(map[net.Conn]struct{}),
		drainTimers: make(map[int]*time.Timer),
		closed:      make(chan struct{}),
	}
	addrs := append([]netip.Addr(nil), cfg.ServerAddrs...)
	s.addrs.Store(&addrs)
	exp := make([]*atomic.Int64, n)
	for i := range exp {
		exp[i] = new(atomic.Int64)
	}
	s.expiry.Store(&exp)
	if cfg.Metrics != nil {
		s.metrics = newServerMetrics(cfg.Metrics, s)
	}
	return s, nil
}

// serverAddrs returns the current immutable address table.
func (s *Server) serverAddrs() []netip.Addr { return *s.addrs.Load() }

// expirySlot returns the outstanding-TTL tracker for server i, growing
// the slot table copy-on-write when a dynamically joined server
// exceeds the allocated slots; the individual atomics are shared
// between old and new tables, so no update is lost to a race.
func (s *Server) expirySlot(i int) *atomic.Int64 {
	for {
		cur := s.expiry.Load()
		if i < len(*cur) {
			return (*cur)[i]
		}
		next := make([]*atomic.Int64, i+1)
		copy(next, *cur)
		for j := len(*cur); j <= i; j++ {
			next[j] = new(atomic.Int64)
		}
		if s.expiry.CompareAndSwap(cur, &next) {
			return next[i]
		}
	}
}

// noteMapping records that a mapping with the given TTL was just
// handed out for server i: the hidden-load window of that server now
// extends to at least now+TTL. Lock-free CAS-max on the slot.
func (s *Server) noteMapping(server int, ttlSeconds float64) {
	exp := time.Now().Add(time.Duration(ttlSeconds * float64(time.Second))).UnixNano()
	slot := s.expirySlot(server)
	for {
		old := slot.Load()
		if exp <= old || slot.CompareAndSwap(old, exp) {
			return
		}
	}
}

// MappingExpiry returns the latest instant at which a mapping handed
// to server i can still be cached downstream (zero time if none was
// ever handed out) — the earliest moment a drain of i may complete.
func (s *Server) MappingExpiry(i int) time.Time {
	cur := *s.expiry.Load()
	if i < 0 || i >= len(cur) {
		return time.Time{}
	}
	ns := cur[i].Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Start binds the UDP socket and TCP listener and begins serving with
// the configured number of parallel UDP workers.
func (s *Server) Start() error {
	uaddr, err := net.ResolveUDPAddr("udp", s.addrOrDefault())
	if err != nil {
		return fmt.Errorf("dnsserver: resolve: %w", err)
	}
	s.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
	if err != nil {
		_ = s.udp.Close()
		return fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.wg.Add(s.udpWorkers + 1)
	for i := 0; i < s.udpWorkers; i++ {
		go s.serveUDP(i)
	}
	go s.serveTCP()
	return nil
}

// configured listen address; stored via Config at New time.
func (s *Server) addrOrDefault() string {
	if s.listenAddr == "" {
		return "127.0.0.1:0"
	}
	return s.listenAddr
}

// Addr returns the bound UDP address (valid after Start).
func (s *Server) Addr() net.Addr { return s.udp.LocalAddr() }

// Close stops serving immediately and waits for the serve loops to
// exit; in-flight exchanges may be cut off. For a drain-then-stop, use
// Shutdown.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.cancelDrainTimers()
	var first error
	if s.udp != nil {
		first = s.udp.Close()
	}
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Closing the listener does not close accepted connections; do it
	// explicitly so Close never waits out a TCP idle deadline.
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return first
}

// Shutdown stops the server gracefully: new work is refused, but
// queries already read from the sockets are answered before the serve
// loops exit. The UDP socket stays open (writable) until every worker
// has finished its in-flight response; TCP stops accepting at once and
// each open connection completes its current exchange. When ctx
// expires first, the remaining work is cut off as in Close and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	s.cancelDrainTimers()
	// Unblock the UDP readers without closing the socket: a worker
	// blocked in read observes the deadline error, sees closed, and
	// exits; a worker mid-response can still write it.
	if s.udp != nil {
		_ = s.udp.SetReadDeadline(time.Now())
	}
	var first error
	if s.tcp != nil {
		first = s.tcp.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if first == nil {
			first = ctx.Err()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.connsMu.Unlock()
	}
	if s.udp != nil {
		_ = s.udp.Close()
	}
	<-done
	return first
}

// cancelDrainTimers stops every pending drain-completion timer; used
// on shutdown so no removal fires into a closing server.
func (s *Server) cancelDrainTimers() {
	s.reconfigMu.Lock()
	for i, t := range s.drainTimers {
		t.Stop()
		delete(s.drainTimers, i)
	}
	s.reconfigMu.Unlock()
}

// Stats returns a snapshot of the serve counters, summed across the
// shards. Counters may be mid-update while summing; each total is
// individually consistent (monotone), which is all the callers need.
func (s *Server) Stats() ServerStats {
	var out ServerStats
	for i := range s.stats {
		sh := &s.stats[i]
		out.Queries += sh.queries.Load()
		out.Answered += sh.answered.Load()
		out.NXDomain += sh.nxdomain.Load()
		out.FormErr += sh.formerr.Load()
		out.NotImp += sh.notimp.Load()
		out.ServFail += sh.servfail.Load()
		out.Truncated += sh.truncated.Load()
		out.RateLimited += sh.ratelimited.Load()
	}
	return out
}

// Servers returns the number of server slots (including retired ones;
// see the policy state's Member for slot standing).
func (s *Server) Servers() int { return len(s.serverAddrs()) }

// Panics returns how many query-handler panics were recovered since
// start; each one is also logged and counted in dnslb_dns_panics_total.
func (s *Server) Panics() uint64 { return s.panics.Load() }

// SetAlarm relays a Web server's alarm/normal signal to the scheduler.
// An out-of-range index is reported back, so remote reporters learn
// about their misconfiguration instead of being silently ignored.
// core.State synchronizes its own mutations; no server lock is taken.
func (s *Server) SetAlarm(server int, alarmed bool) error {
	return s.policy.State().SetAlarm(server, alarmed)
}

// SetDown marks a Web server failed (down=true) or recovered in the
// scheduler state: down servers receive no new mappings, and queries
// are answered SERVFAIL only when every server is down.
func (s *Server) SetDown(server int, down bool) error {
	return s.policy.State().SetDown(server, down)
}

// Down reports whether the scheduler currently considers server i
// failed.
func (s *Server) Down(server int) bool {
	return s.policy.State().Down(server)
}

// SetLiveness attaches a liveness monitor: report lines that prove a
// backend alive are forwarded to it. NewLivenessMonitor attaches
// itself; direct calls are only needed to detach (nil).
func (s *Server) SetLiveness(m *LivenessMonitor) {
	s.livenessMu.Lock()
	s.liveness = m
	s.livenessMu.Unlock()
}

// touchLiveness records proof of life for a backend, if a liveness
// monitor is attached.
func (s *Server) touchLiveness(server int) {
	s.livenessMu.Lock()
	m := s.liveness
	s.livenessMu.Unlock()
	if m != nil {
		m.Touch(server)
	}
}

// Alarmed reports whether the scheduler currently excludes server i.
func (s *Server) Alarmed(server int) bool {
	return s.policy.State().Alarmed(server)
}

// DomainWeight returns the scheduler's current hidden-load weight
// estimate for a domain.
func (s *Server) DomainWeight(domain int) float64 {
	return s.policy.State().Weight(domain)
}

// RecordHits feeds per-domain hit counts into the hidden-load
// estimator (the server-side accounting the paper's DNS collects).
// The estimator keeps mutable running sums, so it has its own lock —
// off the query path entirely.
func (s *Server) RecordHits(domain int, hits float64) {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	s.est.Record(domain, hits)
}

// RollEstimates closes an estimation interval of the given length and
// installs the resulting hidden-load weights into the scheduler state.
func (s *Server) RollEstimates(intervalSeconds float64) error {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	s.est.Roll(intervalSeconds)
	return s.policy.State().SetWeights(s.est.Weights())
}

// packPool recycles response buffers across queries; serve loops pack
// into a pooled buffer via dnswire.AppendPack and return it after the
// write, so steady-state encoding allocates nothing.
var packPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// Read/accept error backoff: persistent socket errors (ENOBUFS, EMFILE)
// would otherwise hot-spin the serve loop and flood the log. The delay
// doubles per consecutive failure up to the cap and resets to zero on
// the first success.
const (
	errBackoffMin = time.Millisecond
	errBackoffMax = time.Second
)

// nextBackoff returns the delay to sleep after a serve-loop error and
// the successor backoff value.
func nextBackoff(cur time.Duration) (sleep, next time.Duration) {
	if cur <= 0 {
		return errBackoffMin, 2 * errBackoffMin
	}
	if cur > errBackoffMax {
		return errBackoffMax, errBackoffMax
	}
	return cur, cur * 2
}

// sleepOrClosed sleeps for d, returning early (true) when the server
// is shutting down.
func (s *Server) sleepOrClosed(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.closed:
		return true
	case <-t.C:
		return false
	}
}

// safeHandle is handle behind a panic recovery: a bug in the query
// path must not kill the serve worker. The panic is logged with its
// stack, counted, and the query dropped (the client retries; losing
// one datagram is the UDP failure model anyway).
func (s *Server) safeHandle(wire []byte, from netip.Addr, maxSize int, dst []byte) (resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.logger.Error("panic in query handler",
				"panic", r, "raddr", from, "stack", string(debug.Stack()))
			resp = nil
		}
	}()
	return s.handle(wire, from, maxSize, dst)
}

// serveUDP is one of UDPWorkers identical reader/responder loops over
// the shared socket. The kernel distributes datagrams across blocked
// readers; each worker owns its read buffer, so the loops never touch
// shared mutable server state. When instrumented, each worker times
// its own queries and accumulates the latency histogram sum on its own
// shard (the worker index is the hint), keeping the measurement as
// contention-free as the serving.
func (s *Server) serveUDP(worker int) {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	m := s.metrics
	hint := uint32(worker)
	var backoff time.Duration
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("udp read failed", "err", err, "worker", worker)
				var sleep time.Duration
				sleep, backoff = nextBackoff(backoff)
				if s.sleepOrClosed(sleep) {
					return
				}
				continue
			}
		}
		backoff = 0
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		bp := packPool.Get().(*[]byte)
		resp := s.safeHandle(buf[:n], raddr.Addr(), dnswire.MaxUDPPayload, (*bp)[:0])
		if resp != nil {
			if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
				s.logger.Warn("udp write failed", "err", err, "worker", worker, "raddr", raddr)
			}
			if cap(resp) > cap(*bp) {
				*bp = resp[:0] // keep the grown buffer
			}
		}
		packPool.Put(bp)
		if m != nil {
			m.latency.ObserveHint(hint, time.Since(start).Seconds())
		}
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Warn("tcp accept failed", "err", err)
				var sleep time.Duration
				sleep, backoff = nextBackoff(backoff)
				if s.sleepOrClosed(sleep) {
					return
				}
				continue
			}
		}
		backoff = 0
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
			}()
			s.serveTCPConn(conn)
		}()
	}
}

// tcpIdleTimeout bounds how long a TCP client may sit between
// messages, so idle or slowloris connections cannot pin goroutines.
const tcpIdleTimeout = 30 * time.Second

func (s *Server) serveTCPConn(conn net.Conn) {
	var raddr netip.Addr
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		raddr = ap.Addr()
	}
	lenBuf := make([]byte, 2)
	for {
		// A graceful shutdown lets the current exchange finish but takes
		// no further messages from the connection.
		select {
		case <-s.closed:
			return
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := readFull(conn, lenBuf); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		msg := make([]byte, n)
		if _, err := readFull(conn, msg); err != nil {
			return
		}
		resp := s.safeHandle(msg, raddr, math.MaxUint16, nil)
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// handle processes one wire-format query and returns the wire-format
// response (nil to drop), packed into dst's capacity when possible.
// dst must be a zero-length slice (or nil to allocate). handle touches
// no server-level lock: the policy and state are internally safe, and
// counters go to the caller's stats shard.
func (s *Server) handle(wire []byte, from netip.Addr, maxSize int, dst []byte) []byte {
	idx := s.statsIndex(from)
	st := &s.stats[idx]
	st.queries.Add(1)
	query, err := dnswire.Unpack(wire)
	if err != nil || len(query.Questions) == 0 {
		st.formerr.Add(1)
		if len(wire) < 2 {
			return nil // cannot even echo an ID
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(wire[0])<<8 | uint16(wire[1]),
			Response: true,
			RCode:    dnswire.RCodeFormErr,
		}}
		return mustPack(resp, dst)
	}
	if query.Header.Response {
		return nil // never answer responses
	}
	if s.limiter != nil && !s.limiter.Allow(from) {
		st.ratelimited.Add(1)
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			OpCode:   query.Header.OpCode,
			RCode:    dnswire.RCodeRefused,
		}}
		return mustPack(resp, dst)
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions[:1],
	}
	if query.Header.OpCode != dnswire.OpQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		st.notimp.Add(1)
		return mustPack(resp, dst)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)
	if name != s.zone {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.nxdomain.Add(1)
		return mustPack(resp, dst)
	}
	// RFC 7871 Client Subnet: when the resolver forwarded the client's
	// network prefix, classify the originating domain from it instead
	// of the resolver's own transport address, and echo the option with
	// the scope we used.
	clientAddr := from
	ecs, hasECS := query.ClientSubnet()
	if hasECS && ecs.Prefix.IsValid() {
		clientAddr = ecs.Prefix.Addr()
	}
	switch q.Type {
	case dnswire.TypeA, dnswire.TypeANY:
		domain := s.mapper(clientAddr)
		d, err := s.policy.Schedule(domain)
		if err != nil {
			resp.Header.RCode = dnswire.RCodeServFail
			st.servfail.Add(1)
			return mustPack(resp, dst)
		}
		ttl := uint32(math.Round(d.TTL))
		if ttl == 0 {
			ttl = 1
		}
		if s.metrics != nil {
			s.metrics.ttl.ObserveHint(idx, d.TTL)
		}
		s.noteMapping(d.Server, d.TTL)
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: s.serverAddrs()[d.Server]},
		}}
		if hasECS {
			echo := ecs
			echo.ScopePrefixLen = uint8(ecs.Prefix.Bits())
			if err := resp.SetClientSubnet(echo, dnswire.MaxUDPPayload); err != nil {
				s.logger.Debug("ECS echo failed", "err", err, "raddr", from)
			}
		}
		st.answered.Add(1)
	case dnswire.TypeTXT:
		// Debug visibility: the policy name and decision counters.
		stats := s.policy.Stats()
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeTXT,
			Class: dnswire.ClassIN,
			TTL:   0,
			Data: dnswire.TXT{Strings: []string{
				"policy=" + s.policy.Name(),
				fmt.Sprintf("decisions=%d", stats.Decisions),
			}},
		}}
		st.answered.Add(1)
	default:
		// Name exists but no data of this type: NOERROR + SOA.
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		st.answered.Add(1)
	}
	out := mustPack(resp, dst)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Authority = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		st.truncated.Add(1)
		out = mustPack(resp, out[:0])
	}
	return out
}

// soa returns the zone's SOA record, used in negative responses.
func (s *Server) soa() dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  s.zone,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data: dnswire.SOA{
			MName:   "ns1." + s.zone,
			RName:   "hostmaster." + s.zone,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
	}
}

// mustPack appends the encoded message to dst (a zero-length slice or
// nil), returning nil on encode failure: responses are built from
// validated parts, so a pack failure is a programming error, but in
// production we drop the response instead of crashing.
func mustPack(m *dnswire.Message, dst []byte) []byte {
	out, err := m.AppendPack(dst)
	if err != nil {
		return nil
	}
	return out
}

// PrefixHashMapper maps a querying address to a domain index by
// hashing its /24 (IPv4) or /48 (IPv6) prefix — stable, spreading
// resolvers of distinct networks across the connected domains.
func PrefixHashMapper(domains int) DomainMapper {
	return func(addr netip.Addr) int {
		if domains <= 0 {
			return 0
		}
		if !addr.IsValid() {
			return 0
		}
		var key []byte
		if addr.Is4() {
			b := addr.As4()
			key = b[:3]
		} else {
			b := addr.As16()
			key = b[:6]
		}
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, c := range key {
			h ^= uint64(c)
			h *= prime
		}
		// Finalize with an avalanche step: raw FNV of very short keys
		// distributes poorly under small moduli.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(domains))
	}
}

// StaticMapper returns a DomainMapper that maps exact addresses per
// the table and everything else to fallback — convenient for tests and
// controlled deployments.
func StaticMapper(table map[netip.Addr]int, fallback int) DomainMapper {
	return func(addr netip.Addr) int {
		if d, ok := table[addr]; ok {
			return d
		}
		return fallback
	}
}
