// Package dnsserver runs the adaptive-TTL scheduler as a real
// authoritative DNS server: A queries for the site name are answered
// with the Web server chosen by the configured core policy and the TTL
// the policy computed for the (client domain, server) pair.
//
// The source "domain" of a query is derived from the querying name
// server's address through a pluggable DomainMapper, defaulting to a
// stable hash of the address prefix. Web servers feed the alarm and
// hidden-load machinery through RecordHits/SetAlarm, or remotely over
// the plain-text load-report listener (see report.go).
package dnsserver

import (
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/netip"
	"sync"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
)

// DomainMapper identifies the connected domain an address request
// originates from, given the querying resolver's address.
type DomainMapper func(addr netip.Addr) int

// Config configures a Server.
type Config struct {
	// Zone is the site name served, e.g. "www.site.example".
	Zone string
	// ServerAddrs are the Web servers' IPv4 addresses, index-aligned
	// with the policy's cluster.
	ServerAddrs []netip.Addr
	// Policy is the DNS scheduling policy; the server serializes
	// access to it.
	Policy *core.Policy
	// Mapper identifies the source domain of each query. Nil installs
	// PrefixHashMapper over the policy's domain count.
	Mapper DomainMapper
	// Addr is the UDP/TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// Logger receives serve-loop errors; nil discards them.
	Logger *log.Logger
	// RateLimit optionally bounds queries per second per source
	// address; excess queries are answered REFUSED.
	RateLimit *RateLimiter
}

// Server is the authoritative DNS front end.
type Server struct {
	zone  string
	addrs []netip.Addr

	mu     sync.Mutex
	policy *core.Policy
	est    *core.Estimator

	mapper     DomainMapper
	logger     *log.Logger
	listenAddr string
	limiter    *RateLimiter

	udp *net.UDPConn
	tcp net.Listener

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	livenessMu sync.Mutex
	liveness   *LivenessMonitor

	wg     sync.WaitGroup
	closed chan struct{}

	statsMu sync.Mutex
	stats   ServerStats
}

// ServerStats counts served queries by outcome.
type ServerStats struct {
	Queries     uint64
	Answered    uint64
	NXDomain    uint64
	FormErr     uint64
	NotImp      uint64
	ServFail    uint64
	Truncated   uint64
	RateLimited uint64
}

// New creates a server; call Start to bind and serve.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == "" {
		return nil, errors.New("dnsserver: Zone is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("dnsserver: Policy is required")
	}
	n := cfg.Policy.State().Cluster().N()
	if len(cfg.ServerAddrs) != n {
		return nil, fmt.Errorf("dnsserver: %d server addresses for %d servers", len(cfg.ServerAddrs), n)
	}
	for i, a := range cfg.ServerAddrs {
		if !a.Is4() {
			return nil, fmt.Errorf("dnsserver: server address %d (%v) must be IPv4", i, a)
		}
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = PrefixHashMapper(cfg.Policy.State().Domains())
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	est, err := core.NewEstimator(cfg.Policy.State().Domains(), 0.5)
	if err != nil {
		return nil, err
	}
	return &Server{
		zone:       dnswire.CanonicalName(cfg.Zone),
		addrs:      append([]netip.Addr(nil), cfg.ServerAddrs...),
		policy:     cfg.Policy,
		est:        est,
		mapper:     mapper,
		logger:     logger,
		listenAddr: cfg.Addr,
		limiter:    cfg.RateLimit,
		conns:      make(map[net.Conn]struct{}),
		closed:     make(chan struct{}),
	}, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Start binds the UDP socket and TCP listener and begins serving.
func (s *Server) Start() error {
	uaddr, err := net.ResolveUDPAddr("udp", s.addrOrDefault())
	if err != nil {
		return fmt.Errorf("dnsserver: resolve: %w", err)
	}
	s.udp, err = net.ListenUDP("udp", uaddr)
	if err != nil {
		return fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	s.tcp, err = net.Listen("tcp", s.udp.LocalAddr().String())
	if err != nil {
		_ = s.udp.Close()
		return fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return nil
}

// configured listen address; stored via Config at New time.
func (s *Server) addrOrDefault() string {
	if s.listenAddr == "" {
		return "127.0.0.1:0"
	}
	return s.listenAddr
}

// Addr returns the bound UDP address (valid after Start).
func (s *Server) Addr() net.Addr { return s.udp.LocalAddr() }

// Close stops serving and waits for the serve loops to exit.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var first error
	if s.udp != nil {
		first = s.udp.Close()
	}
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Closing the listener does not close accepted connections; do it
	// explicitly so Close never waits out a TCP idle deadline.
	s.connsMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
	return first
}

// Stats returns a snapshot of the serve counters.
func (s *Server) Stats() ServerStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Servers returns the cluster size of the scheduling policy.
func (s *Server) Servers() int { return len(s.addrs) }

// SetAlarm relays a Web server's alarm/normal signal to the scheduler.
// An out-of-range index is reported back, so remote reporters learn
// about their misconfiguration instead of being silently ignored.
func (s *Server) SetAlarm(server int, alarmed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.State().SetAlarm(server, alarmed)
}

// SetDown marks a Web server failed (down=true) or recovered in the
// scheduler state: down servers receive no new mappings, and queries
// are answered SERVFAIL only when every server is down.
func (s *Server) SetDown(server int, down bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.State().SetDown(server, down)
}

// Down reports whether the scheduler currently considers server i
// failed, synchronized like Alarmed.
func (s *Server) Down(server int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.State().Down(server)
}

// SetLiveness attaches a liveness monitor: report lines that prove a
// backend alive are forwarded to it. NewLivenessMonitor attaches
// itself; direct calls are only needed to detach (nil).
func (s *Server) SetLiveness(m *LivenessMonitor) {
	s.livenessMu.Lock()
	s.liveness = m
	s.livenessMu.Unlock()
}

// touchLiveness records proof of life for a backend, if a liveness
// monitor is attached.
func (s *Server) touchLiveness(server int) {
	s.livenessMu.Lock()
	m := s.liveness
	s.livenessMu.Unlock()
	if m != nil {
		m.Touch(server)
	}
}

// Alarmed reports whether the scheduler currently excludes server i.
// It is the synchronized read-side of SetAlarm: the underlying
// core.State is not safe for unlocked concurrent access.
func (s *Server) Alarmed(server int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.State().Alarmed(server)
}

// DomainWeight returns the scheduler's current hidden-load weight
// estimate for a domain, synchronized like Alarmed.
func (s *Server) DomainWeight(domain int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy.State().Weight(domain)
}

// RecordHits feeds per-domain hit counts into the hidden-load
// estimator (the server-side accounting the paper's DNS collects).
func (s *Server) RecordHits(domain int, hits float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.est.Record(domain, hits)
}

// RollEstimates closes an estimation interval of the given length and
// installs the resulting hidden-load weights into the scheduler state.
func (s *Server) RollEstimates(intervalSeconds float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.est.Roll(intervalSeconds)
	return s.policy.State().SetWeights(s.est.Weights())
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Printf("dnsserver: udp read: %v", err)
				continue
			}
		}
		resp := s.handle(buf[:n], raddr.Addr(), dnswire.MaxUDPPayload)
		if resp == nil {
			continue
		}
		if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
			s.logger.Printf("dnsserver: udp write: %v", err)
		}
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logger.Printf("dnsserver: tcp accept: %v", err)
				continue
			}
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
			}()
			s.serveTCPConn(conn)
		}()
	}
}

// tcpIdleTimeout bounds how long a TCP client may sit between
// messages, so idle or slowloris connections cannot pin goroutines.
const tcpIdleTimeout = 30 * time.Second

func (s *Server) serveTCPConn(conn net.Conn) {
	var raddr netip.Addr
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		raddr = ap.Addr()
	}
	lenBuf := make([]byte, 2)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout)); err != nil {
			return
		}
		if _, err := readFull(conn, lenBuf); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		msg := make([]byte, n)
		if _, err := readFull(conn, msg); err != nil {
			return
		}
		resp := s.handle(msg, raddr, math.MaxUint16)
		if resp == nil {
			return
		}
		out := make([]byte, 2+len(resp))
		out[0], out[1] = byte(len(resp)>>8), byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

func (s *Server) count(f func(*ServerStats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

// handle processes one wire-format query and returns the wire-format
// response (nil to drop).
func (s *Server) handle(wire []byte, from netip.Addr, maxSize int) []byte {
	s.count(func(st *ServerStats) { st.Queries++ })
	query, err := dnswire.Unpack(wire)
	if err != nil || len(query.Questions) == 0 {
		s.count(func(st *ServerStats) { st.FormErr++ })
		if len(wire) < 2 {
			return nil // cannot even echo an ID
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(wire[0])<<8 | uint16(wire[1]),
			Response: true,
			RCode:    dnswire.RCodeFormErr,
		}}
		return mustPack(resp)
	}
	if query.Header.Response {
		return nil // never answer responses
	}
	if s.limiter != nil && !s.limiter.Allow(from) {
		s.count(func(st *ServerStats) { st.RateLimited++ })
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			OpCode:   query.Header.OpCode,
			RCode:    dnswire.RCodeRefused,
		}}
		return mustPack(resp)
	}
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:               query.Header.ID,
			Response:         true,
			OpCode:           query.Header.OpCode,
			Authoritative:    true,
			RecursionDesired: query.Header.RecursionDesired,
		},
		Questions: query.Questions[:1],
	}
	if query.Header.OpCode != dnswire.OpQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		s.count(func(st *ServerStats) { st.NotImp++ })
		return mustPack(resp)
	}
	q := query.Questions[0]
	name := dnswire.CanonicalName(q.Name)
	if name != s.zone {
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		s.count(func(st *ServerStats) { st.NXDomain++ })
		return mustPack(resp)
	}
	// RFC 7871 Client Subnet: when the resolver forwarded the client's
	// network prefix, classify the originating domain from it instead
	// of the resolver's own transport address, and echo the option with
	// the scope we used.
	clientAddr := from
	ecs, hasECS := query.ClientSubnet()
	if hasECS && ecs.Prefix.IsValid() {
		clientAddr = ecs.Prefix.Addr()
	}
	switch q.Type {
	case dnswire.TypeA, dnswire.TypeANY:
		domain := s.mapper(clientAddr)
		s.mu.Lock()
		d, err := s.policy.Schedule(domain)
		s.mu.Unlock()
		if err != nil {
			resp.Header.RCode = dnswire.RCodeServFail
			s.count(func(st *ServerStats) { st.ServFail++ })
			return mustPack(resp)
		}
		ttl := uint32(math.Round(d.TTL))
		if ttl == 0 {
			ttl = 1
		}
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeA,
			Class: dnswire.ClassIN,
			TTL:   ttl,
			Data:  dnswire.A{Addr: s.addrs[d.Server]},
		}}
		if hasECS {
			echo := ecs
			echo.ScopePrefixLen = uint8(ecs.Prefix.Bits())
			if err := resp.SetClientSubnet(echo, dnswire.MaxUDPPayload); err != nil {
				s.logger.Printf("dnsserver: echo ECS: %v", err)
			}
		}
		s.count(func(st *ServerStats) { st.Answered++ })
	case dnswire.TypeTXT:
		// Debug visibility: the policy name and decision counters.
		s.mu.Lock()
		stats := s.policy.Stats()
		polName := s.policy.Name()
		s.mu.Unlock()
		resp.Answers = []dnswire.ResourceRecord{{
			Name:  s.zone,
			Type:  dnswire.TypeTXT,
			Class: dnswire.ClassIN,
			TTL:   0,
			Data: dnswire.TXT{Strings: []string{
				"policy=" + polName,
				fmt.Sprintf("decisions=%d", stats.Decisions),
			}},
		}}
		s.count(func(st *ServerStats) { st.Answered++ })
	default:
		// Name exists but no data of this type: NOERROR + SOA.
		resp.Authority = []dnswire.ResourceRecord{s.soa()}
		s.count(func(st *ServerStats) { st.Answered++ })
	}
	out := mustPack(resp)
	if len(out) > maxSize {
		resp.Answers = nil
		resp.Authority = nil
		resp.Additional = nil
		resp.Header.Truncated = true
		s.count(func(st *ServerStats) { st.Truncated++ })
		out = mustPack(resp)
	}
	return out
}

// soa returns the zone's SOA record, used in negative responses.
func (s *Server) soa() dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  s.zone,
		Type:  dnswire.TypeSOA,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data: dnswire.SOA{
			MName:   "ns1." + s.zone,
			RName:   "hostmaster." + s.zone,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
	}
}

func mustPack(m *dnswire.Message) []byte {
	out, err := m.Pack()
	if err != nil {
		// Responses are built from validated parts; a pack failure is a
		// programming error worth surfacing loudly in development, but
		// in production we drop the response instead of crashing.
		return nil
	}
	return out
}

// PrefixHashMapper maps a querying address to a domain index by
// hashing its /24 (IPv4) or /48 (IPv6) prefix — stable, spreading
// resolvers of distinct networks across the connected domains.
func PrefixHashMapper(domains int) DomainMapper {
	return func(addr netip.Addr) int {
		if domains <= 0 {
			return 0
		}
		if !addr.IsValid() {
			return 0
		}
		var key []byte
		if addr.Is4() {
			b := addr.As4()
			key = b[:3]
		} else {
			b := addr.As16()
			key = b[:6]
		}
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, c := range key {
			h ^= uint64(c)
			h *= prime
		}
		// Finalize with an avalanche step: raw FNV of very short keys
		// distributes poorly under small moduli.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(domains))
	}
}

// StaticMapper returns a DomainMapper that maps exact addresses per
// the table and everything else to fallback — convenient for tests and
// controlled deployments.
func StaticMapper(table map[netip.Addr]int, fallback int) DomainMapper {
	return func(addr netip.Addr) int {
		if d, ok := table[addr]; ok {
			return d
		}
		return fallback
	}
}
