// Package dnsserver runs the adaptive-TTL scheduler as a real
// authoritative DNS server: A queries for the site name are answered
// with the Web server chosen by the configured core policy and the TTL
// the policy computed for the (client domain, server) pair.
//
// The server is a thin transport over the shared scheduling engine
// (internal/engine): the engine owns the decision lifecycle —
// membership/liveness/drain filtering, policy selection, TTL
// assignment, the outstanding-mapping ledger, and the hidden-load
// estimator feedback — under a wall clock, exactly as the simulator
// runs it under virtual time. This package adds the wire: sockets,
// parsing, packing, rate limiting and counters.
//
// The source "domain" of a query is derived from the querying name
// server's address through a pluggable DomainMapper, defaulting to a
// stable hash of the address prefix. Web servers feed the alarm and
// hidden-load machinery through RecordHits/SetAlarm, or remotely over
// the plain-text load-report listener (see report.go).
//
// The query path is lock-free: core.Policy and core.State are safe for
// concurrent use (see core's concurrency contract), so the server runs
// several UDP reader/responder goroutines over one shared socket, each
// scheduling directly against the engine. Serve counters are sharded
// per source-address hash and response buffers are pooled, so the hot
// path takes no server-level lock and makes no per-query allocations
// beyond message decode.
package dnsserver

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnswire"
	"dnslb/internal/engine"
	"dnslb/internal/logging"
	"dnslb/internal/metrics"
	"dnslb/internal/probe"
	"dnslb/internal/replication"
)

// DomainMapper identifies the connected domain an address request
// originates from, given the querying resolver's address.
type DomainMapper func(addr netip.Addr) int

// Config configures a Server.
type Config struct {
	// Zone is the site name served, e.g. "www.site.example".
	Zone string
	// ServerAddrs are the Web servers' IPv4 addresses, index-aligned
	// with the policy's cluster.
	ServerAddrs []netip.Addr
	// Policy is the DNS scheduling policy. It is called concurrently
	// from every serve goroutine without server-level locking;
	// core.Policy guarantees this is safe.
	Policy *core.Policy
	// Mapper identifies the source domain of each query. Nil installs
	// PrefixHashMapper over the policy's domain count.
	Mapper DomainMapper
	// Addr is the UDP/TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// HTTPAddr, when non-empty, additionally serves queries over HTTP
	// (DoH): RFC 8484 wire format on /dns-query and a JSON API on
	// /resolve (see doh.go). The HTTP front end shares the engine, the
	// rate limiter, the overload-degradation ladder and the metrics
	// with the UDP/TCP listeners.
	HTTPAddr string
	// ECS selects the engine's RFC 7871 client-subnet handling
	// (passthrough/add/override plus source-prefix clamps); the zero
	// value is passthrough with the RFC-recommended granularity.
	ECS engine.ECSConfig
	// Logger receives structured serve-loop diagnostics; nil discards
	// them.
	Logger *slog.Logger
	// RateLimit optionally bounds queries per second per source
	// address; excess queries are answered REFUSED.
	RateLimit *RateLimiter
	// UDPWorkers is the number of parallel UDP reader/responder
	// goroutines. Zero or negative defaults to runtime.GOMAXPROCS(0).
	// In the default mode the workers share one socket; with UDPBatch
	// enabled each worker owns its own SO_REUSEPORT socket.
	UDPWorkers int
	// UDPBatch enables batched UDP I/O: each worker binds its own
	// SO_REUSEPORT socket and moves up to UDPBatch datagrams per
	// recvmmsg/sendmmsg syscall. Zero or negative disables batching
	// (the portable one-datagram-per-syscall loop). On platforms
	// without recvmmsg support the setting is ignored.
	UDPBatch int
	// AnswerCache enables the versioned hot-answer cache: responses to
	// the dominant query shape (IN A for the zone, no ECS) are packed
	// once per (domain, server, state version) and served as byte
	// copies until the next reconfiguration. See answercache.go for the
	// correctness argument.
	AnswerCache bool
	// EstimatorAlpha is the EWMA weight the hidden-load estimator
	// gives the newest collection interval, in (0,1]. Zero defaults to
	// core.DefaultEstimatorAlpha — the same default the simulator's
	// configuration uses, so both paths smooth identically unless
	// explicitly tuned.
	EstimatorAlpha float64
	// Estimator selects the hidden-load estimator kind:
	// core.EstimatorReactive (the paper's EWMA over reports, default
	// when empty) or core.EstimatorPredictive (the NS-cache
	// forecasting model fed by every TTL the server hands out). A
	// checkpoint written under one kind refuses to restore into the
	// other.
	Estimator string
	// Overload configures graceful degradation under aggregate overload
	// or stale soft state (see overload.go). The zero value disables
	// the admission layer.
	Overload OverloadConfig
	// MaxTCPConns bounds the number of concurrently served TCP
	// connections; when the cap is reached the accept loop pauses until
	// a connection finishes (SYN backlog absorbs the burst) instead of
	// pinning a goroutine per flooding connection. Zero defaults to
	// DefaultMaxTCPConns; negative means unlimited.
	MaxTCPConns int
	// Metrics optionally registers the server's observability series
	// (queries by outcome, per-worker latency, returned-TTL histogram,
	// policy decisions, alarm/liveness transitions) on the given
	// registry. Nil disables instrumentation; the hot path then pays
	// only nil checks. See DESIGN.md §10 for the series inventory.
	Metrics *metrics.Registry
}

// Server is the authoritative DNS front end.
type Server struct {
	zone string
	// addrs points at the immutable per-slot address table,
	// index-aligned with the policy's cluster; Join replaces it
	// copy-on-write so the query path reads it with one atomic load.
	// Retired slots keep their last address (re-JOIN matching).
	addrs atomic.Pointer[[]netip.Addr]

	// eng is the shared scheduling engine: policy selection, TTL
	// assignment, the outstanding-mapping ledger and the estimator
	// feedback loop all live there; clock translates between the
	// engine's seconds and wall time.
	eng    *engine.Engine
	clock  *engine.WallClock
	policy *core.Policy

	mapper     DomainMapper
	logger     *slog.Logger
	listenAddr string
	limiter    *RateLimiter
	udpWorkers int
	udpBatch   int

	// answers is the versioned hot-answer cache; nil when disabled
	// (Config.AnswerCache), in which case every query takes the
	// Message-building path.
	answers *answerCache

	// batchMode records whether the batched SO_REUSEPORT serve loops
	// are actually running (platform support + Config.UDPBatch),
	// surfaced in /metrics next to the worker count.
	batchMode atomic.Bool

	registry *metrics.Registry // nil when uninstrumented
	metrics  *serverMetrics    // nil when uninstrumented

	udp *net.UDPConn
	// udpConns is every bound UDP socket: [udp] in the default mode,
	// one SO_REUSEPORT socket per worker in batch mode (udp aliases the
	// first for Addr()).
	udpConns []*net.UDPConn
	tcp      net.Listener

	// DoH front end (doh.go): nil when Config.HTTPAddr is empty.
	httpAddr string
	httpLn   net.Listener
	httpSrv  *http.Server

	// DoH request outcomes, kept as plain atomics (always maintained,
	// exported as dnslb_doh_requests_total{outcome=...} when
	// instrumented).
	dohOK         atomic.Uint64
	dohBadRequest atomic.Uint64
	dohDropped    atomic.Uint64

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	livenessMu sync.Mutex
	liveness   *LivenessMonitor

	// votes combines the passive and active failure detectors (see
	// detect.go); prober is the active detector when StartProbing ran.
	votes   downVotes
	probeMu sync.Mutex
	prober  *probe.Prober

	// over is the overload/staleness admission controller (overload.go);
	// nil when graceful degradation is not configured. The query path
	// pays one nil check plus one atomic load while disabled.
	over *overloadController

	// replNode, when replication is enabled, is the replica's protocol
	// endpoint. The pointer is allocated in New (the engine's decision
	// tap closes over it) and populated by StartReplication, so the
	// query path pays one atomic load + nil check while replication is
	// off. replicator is guarded by replMu.
	replNode   *atomic.Pointer[replication.Node]
	replMu     sync.Mutex
	replicator *replication.Replicator

	// reconfigMu serializes membership changes (Join, Drain,
	// Reconfigure, checkpoint restore) against each other; the query
	// path never takes it.
	reconfigMu  sync.Mutex
	drainTimers map[int]*time.Timer

	// Reconfiguration and robustness counters; exported as metric
	// series when instrumented but always maintained, so uninstrumented
	// servers (and tests) can observe them too.
	// lastRoll (unix nanos) and lastRollInterval (float64 bits, seconds)
	// record the most recent estimator roll — the overload controller's
	// staleness signal.
	lastRoll         atomic.Int64
	lastRollInterval atomic.Uint64

	// maxTCPConns caps concurrent TCP connections (0 = unlimited after
	// New applied the default); tcpConns is the live count, tcpSem the
	// accept-side semaphore.
	maxTCPConns int
	tcpConns    atomic.Int64
	tcpSem      chan struct{}

	overCfg OverloadConfig

	panics     atomic.Uint64
	joins      atomic.Uint64
	drains     atomic.Uint64
	removals   atomic.Uint64
	reloads    atomic.Uint64
	reloadErrs atomic.Uint64
	ckptSaves  atomic.Uint64
	ckptErrs   atomic.Uint64

	wg     sync.WaitGroup
	closed chan struct{}

	stats [statsShards]statsShard
	// tquery counts received queries per transport, sharded like stats
	// so the per-transport label costs the hot path one more sharded
	// increment and no new contention.
	tquery [statsShards]transportShard
}

// ServerStats counts served queries by outcome.
type ServerStats struct {
	Queries     uint64
	Answered    uint64
	NXDomain    uint64
	FormErr     uint64
	NotImp      uint64
	ServFail    uint64
	Truncated   uint64
	RateLimited uint64
}

// statsShards spreads the serve counters across independently updated
// cache lines, indexed by source-address hash, so parallel serve
// goroutines don't bounce one counter line between cores.
const statsShards = 16

// statsShard mirrors ServerStats with atomic counters. Eight 8-byte
// atomics fill exactly one 64-byte cache line, so adjacent shards
// never share a line.
type statsShard struct {
	queries     atomic.Uint64
	answered    atomic.Uint64
	nxdomain    atomic.Uint64
	formerr     atomic.Uint64
	notimp      atomic.Uint64
	servfail    atomic.Uint64
	truncated   atomic.Uint64
	ratelimited atomic.Uint64
}

// transportShard counts queries per transport on one stats shard.
// Four 8-byte atomics plus padding fill one 64-byte cache line, so
// adjacent shards never share a line (mirroring statsShard).
type transportShard struct {
	counts [numTransports]atomic.Uint64
	_      [64 - 8*numTransports]byte
}

// numTransports mirrors the engine's Transport value range
// (none/udp/tcp/doh).
const numTransports = 4

// TransportQueries returns how many queries arrived through the given
// transport, summed across the shards.
func (s *Server) TransportQueries(tr engine.Transport) uint64 {
	if int(tr) >= numTransports {
		return 0
	}
	var t uint64
	for i := range s.tquery {
		t += s.tquery[i].counts[tr].Load()
	}
	return t
}

// statsIndex hashes the source address to a counter-shard index, also
// used as the metric shard hint. Invalid addresses (possible on the
// TCP path) land in shard 0.
func (s *Server) statsIndex(addr netip.Addr) uint32 {
	if !addr.IsValid() {
		return 0
	}
	b := addr.As16()
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h & (statsShards - 1)
}

// New creates a server; call Start to bind and serve.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == "" {
		return nil, errors.New("dnsserver: Zone is required")
	}
	if cfg.Policy == nil {
		return nil, errors.New("dnsserver: Policy is required")
	}
	n := cfg.Policy.State().Cluster().N()
	if len(cfg.ServerAddrs) != n {
		return nil, fmt.Errorf("dnsserver: %d server addresses for %d servers", len(cfg.ServerAddrs), n)
	}
	for i, a := range cfg.ServerAddrs {
		if !a.Is4() {
			return nil, fmt.Errorf("dnsserver: server address %d (%v) must be IPv4", i, a)
		}
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = PrefixHashMapper(cfg.Policy.State().Domains())
	}
	logger := cfg.Logger
	if logger == nil {
		logger = logging.Discard()
	}
	alpha := cfg.EstimatorAlpha
	if alpha == 0 {
		alpha = core.DefaultEstimatorAlpha
	}
	est, err := core.NewLoadEstimator(cfg.Estimator, cfg.Policy.State().Domains(), alpha)
	if err != nil {
		return nil, err
	}
	clock := engine.NewWallClock()
	replNode := &atomic.Pointer[replication.Node]{}
	eng, err := engine.New(engine.Config{
		Policy:    cfg.Policy,
		Clock:     clock,
		Estimator: est,
		OnDecision: func(domain int, d core.Decision) {
			if n := replNode.Load(); n != nil {
				n.Observe(domain, d)
			}
		},
		// The server's DomainMapper is the engine's classification seam:
		// DecideQuery applies the configured ECS mode and maps either
		// the client-subnet address or the resolver address through it.
		Mapper: mapper,
		ECS:    cfg.ECS,
	})
	if err != nil {
		return nil, err
	}
	workers := cfg.UDPWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := cfg.Overload.validate(); err != nil {
		return nil, err
	}
	maxTCP := cfg.MaxTCPConns
	switch {
	case maxTCP == 0:
		maxTCP = DefaultMaxTCPConns
	case maxTCP < 0:
		maxTCP = 0 // explicit "unlimited"
	}
	s := &Server{
		zone:        dnswire.CanonicalName(cfg.Zone),
		eng:         eng,
		clock:       clock,
		policy:      cfg.Policy,
		mapper:      mapper,
		logger:      logger,
		listenAddr:  cfg.Addr,
		httpAddr:    cfg.HTTPAddr,
		limiter:     cfg.RateLimit,
		udpWorkers:  workers,
		udpBatch:    cfg.UDPBatch,
		overCfg:     cfg.Overload,
		maxTCPConns: maxTCP,
		registry:    cfg.Metrics,
		replNode:    replNode,
		conns:       make(map[net.Conn]struct{}),
		drainTimers: make(map[int]*time.Timer),
		closed:      make(chan struct{}),
	}
	if cfg.AnswerCache {
		s.answers = newAnswerCache()
	}
	if maxTCP > 0 {
		s.tcpSem = make(chan struct{}, maxTCP)
	}
	addrs := append([]netip.Addr(nil), cfg.ServerAddrs...)
	s.addrs.Store(&addrs)
	if cfg.Metrics != nil {
		s.metrics = newServerMetrics(cfg.Metrics, s)
	}
	return s, nil
}

// Engine returns the server's scheduling engine — the same decision
// lifecycle the simulator drives under virtual time.
func (s *Server) Engine() *engine.Engine { return s.eng }

// serverAddrs returns the current immutable address table.
func (s *Server) serverAddrs() []netip.Addr { return *s.addrs.Load() }

// noteMapping records that a mapping with the given TTL was just
// handed out for server i: the hidden-load window of that server now
// extends to at least now+TTL (lock-free CAS-max in the engine's
// ledger). The query path notes its own mappings inside Decide; this
// is for externally handed-out mappings (tests, restores).
func (s *Server) noteMapping(server int, ttlSeconds float64) {
	s.eng.NoteMapping(server, s.clock.Now()+ttlSeconds)
	if n := s.replNode.Load(); n != nil {
		n.NoteLedger()
	}
}

// MappingExpiry returns the latest instant at which a mapping handed
// to server i can still be cached downstream (zero time if none was
// ever handed out) — the earliest moment a drain of i may complete.
func (s *Server) MappingExpiry(i int) time.Time {
	sec := s.eng.MappingExpiry(i)
	if sec == 0 {
		return time.Time{}
	}
	return s.clock.Time(sec)
}

// Stats returns a snapshot of the serve counters, summed across the
// shards. Counters may be mid-update while summing; each total is
// individually consistent (monotone), which is all the callers need.
func (s *Server) Stats() ServerStats {
	var out ServerStats
	for i := range s.stats {
		sh := &s.stats[i]
		out.Queries += sh.queries.Load()
		out.Answered += sh.answered.Load()
		out.NXDomain += sh.nxdomain.Load()
		out.FormErr += sh.formerr.Load()
		out.NotImp += sh.notimp.Load()
		out.ServFail += sh.servfail.Load()
		out.Truncated += sh.truncated.Load()
		out.RateLimited += sh.ratelimited.Load()
	}
	return out
}

// AnswerCacheStats reports the hot-answer cache's counters; all zero
// when the cache is disabled. Invalidations count lookups that found a
// key-matching entry staled by a snapshot-version, TTL-calibration, or
// address change (each is also a miss).
type AnswerCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// AnswerCache returns a snapshot of the hot-answer cache counters.
func (s *Server) AnswerCache() AnswerCacheStats {
	if s.answers == nil {
		return AnswerCacheStats{}
	}
	return AnswerCacheStats{
		Hits:          s.answers.Hits(),
		Misses:        s.answers.Misses(),
		Invalidations: s.answers.Invalidations(),
	}
}

// UDPBatchActive reports whether the batched SO_REUSEPORT serve loops
// are running (requires Config.UDPBatch > 0 and platform support;
// valid after Start).
func (s *Server) UDPBatchActive() bool { return s.batchMode.Load() }

// UDPWorkers returns the number of UDP serve workers the server runs.
func (s *Server) UDPWorkers() int { return s.udpWorkers }

// Servers returns the number of server slots (including retired ones;
// see the policy state's Member for slot standing).
func (s *Server) Servers() int { return len(s.serverAddrs()) }

// Panics returns how many query-handler panics were recovered since
// start; each one is also logged and counted in dnslb_dns_panics_total.
func (s *Server) Panics() uint64 { return s.panics.Load() }

// SetAlarm relays a Web server's alarm/normal signal to the scheduler.
// An out-of-range index is reported back, so remote reporters learn
// about their misconfiguration instead of being silently ignored.
// core.State synchronizes its own mutations; no server lock is taken.
func (s *Server) SetAlarm(server int, alarmed bool) error {
	return s.eng.SetAlarm(server, alarmed)
}

// SetDown marks a Web server failed (down=true) or recovered in the
// scheduler state: down servers receive no new mappings, and queries
// are answered SERVFAIL only when every server is down.
func (s *Server) SetDown(server int, down bool) error {
	return s.eng.SetDown(server, down)
}

// Down reports whether the scheduler currently considers server i
// failed.
func (s *Server) Down(server int) bool {
	return s.policy.State().Down(server)
}

// SetLiveness attaches a liveness monitor: report lines that prove a
// backend alive are forwarded to it. NewLivenessMonitor attaches
// itself; direct calls are only needed to detach (nil).
func (s *Server) SetLiveness(m *LivenessMonitor) {
	s.livenessMu.Lock()
	s.liveness = m
	s.livenessMu.Unlock()
}

// touchLiveness records proof of life for a backend, if a liveness
// monitor is attached.
func (s *Server) touchLiveness(server int) {
	s.livenessMu.Lock()
	m := s.liveness
	s.livenessMu.Unlock()
	if m != nil {
		m.Touch(server)
	}
}

// Alarmed reports whether the scheduler currently excludes server i.
func (s *Server) Alarmed(server int) bool {
	return s.policy.State().Alarmed(server)
}

// DomainWeight returns the scheduler's current hidden-load weight
// estimate for a domain.
func (s *Server) DomainWeight(domain int) float64 {
	return s.policy.State().Weight(domain)
}

// RecordHits feeds per-domain hit counts into the hidden-load
// estimator (the server-side accounting the paper's DNS collects).
// The estimator keeps mutable running sums, so the engine serializes
// it behind its own lock — off the query path entirely.
// Hit reports received here are locally observed, so they are also
// queued for replication when a peer set is configured; hits merged
// FROM peers go straight into the engine and are never re-queued (no
// gossip echo).
func (s *Server) RecordHits(domain int, hits float64) {
	s.eng.RecordHits(domain, hits)
	if n := s.replNode.Load(); n != nil {
		n.AddHits(domain, hits)
	}
}

// RollEstimates closes an estimation interval of the given length and
// installs the resulting hidden-load weights into the scheduler state.
// The roll instant and interval are recorded for the overload
// controller's soft-state staleness trigger.
func (s *Server) RollEstimates(intervalSeconds float64) error {
	if err := s.eng.RollEstimates(intervalSeconds); err != nil {
		return err
	}
	s.lastRoll.Store(time.Now().UnixNano())
	s.lastRollInterval.Store(floatBits(intervalSeconds))
	return nil
}

// PrefixHashMapper maps a querying address to a domain index by
// hashing its /24 (IPv4) or /48 (IPv6) prefix — stable, spreading
// resolvers of distinct networks across the connected domains.
func PrefixHashMapper(domains int) DomainMapper {
	return func(addr netip.Addr) int {
		if domains <= 0 {
			return 0
		}
		if !addr.IsValid() {
			return 0
		}
		var key []byte
		if addr.Is4() {
			b := addr.As4()
			key = b[:3]
		} else {
			b := addr.As16()
			key = b[:6]
		}
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, c := range key {
			h ^= uint64(c)
			h *= prime
		}
		// Finalize with an avalanche step: raw FNV of very short keys
		// distributes poorly under small moduli.
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return int(h % uint64(domains))
	}
}

// StaticMapper returns a DomainMapper that maps exact addresses per
// the table and everything else to fallback — convenient for tests and
// controlled deployments.
func StaticMapper(table map[netip.Addr]int, fallback int) DomainMapper {
	return func(addr netip.Addr) int {
		if d, ok := table[addr]; ok {
			return d
		}
		return fallback
	}
}
