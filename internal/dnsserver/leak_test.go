package dnsserver

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"dnslb/internal/dnsclient"
)

// checkGoroutines runs f and asserts the goroutine count returns to
// (near) its baseline afterwards — a dependency-free stand-in for
// goleak, catching serve loops that outlive Close.
func checkGoroutines(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	before := runtime.NumGoroutine()
	f(t)
	deadline := time.Now().Add(3 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+1 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, after)
}

func TestServerCloseStopsGoroutines(t *testing.T) {
	checkGoroutines(t, func(t *testing.T) {
		srv, _ := testServer(t, "RR", nil)
		r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 2 * time.Second}
		if _, err := r.LookupA(context.Background(), "www.site.example"); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReportListenerCloseStopsGoroutines(t *testing.T) {
	checkGoroutines(t, func(t *testing.T) {
		srv, _ := testServer(t, "RR", nil)
		rl := startReportListener(t, srv)
		sendReports(t, rl.Addr().String(), "ALARM 1 1")
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServerCloseWithOpenTCPConn(t *testing.T) {
	// A TCP client that connected but never sent anything must not
	// block Close (the idle deadline and listener close cover it).
	checkGoroutines(t, func(t *testing.T) {
		srv, _ := testServer(t, "RR", nil)
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("Close blocked for %v on an idle TCP conn", elapsed)
		}
	})
}
