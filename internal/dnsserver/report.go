package dnsserver

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"strings"
	"sync"
)

// ReportListener accepts plain-text load reports from Web servers and
// feeds them into a Server's alarm, liveness, and estimation
// machinery — the asynchronous feedback channel of the paper, realized
// as a trivial line protocol:
//
//	ALIVE <serverIndex>\n              heartbeat (proof of life)
//	ALARM <serverIndex> <0|1>\n        alarm / normal signal
//	HITS <domainIndex> <count>\n       per-domain hits since last report
//	ROLL <intervalSeconds>\n           close an estimation interval
//	JOIN <ipv4> <capacity>\n           self-register (answered "OK <index>")
//	DRAIN <serverIndex>\n              gracefully retire a server
//	REPL <delta-json>\n                merge a peer replica's soft-state delta
//
// Each accepted line is answered with "OK\n" ("OK <index>\n" for JOIN),
// errors with "ERR <msg>\n". ALIVE and ALARM also feed the server's
// liveness monitor when one is attached (see LivenessMonitor). JOIN and
// DRAIN are the dynamic-membership verbs: a backend can admit itself on
// startup and retire itself on shutdown without an operator config
// reload. REPL is the replication transport (internal/replication):
// peer replicas reuse this socket so link health, metrics, and
// hardening are shared with the backend report path.
type ReportListener struct {
	srv *Server
	ln  net.Listener

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewReportListener starts a report listener for srv on addr
// (e.g. "127.0.0.1:0").
func NewReportListener(srv *Server, addr string) (*ReportListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: report listen: %w", err)
	}
	rl := &ReportListener{
		srv:    srv,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	rl.wg.Add(1)
	go rl.acceptLoop()
	return rl, nil
}

// Addr returns the bound address.
func (rl *ReportListener) Addr() net.Addr { return rl.ln.Addr() }

// Close stops accepting, closes every live connection, and waits for
// the handlers to exit. A client holding its socket open cannot block
// shutdown: closing the connection unblocks its handler's read.
func (rl *ReportListener) Close() error {
	select {
	case <-rl.closed:
		return nil
	default:
	}
	close(rl.closed)
	err := rl.ln.Close()
	rl.connsMu.Lock()
	for c := range rl.conns {
		_ = c.Close()
	}
	rl.connsMu.Unlock()
	rl.wg.Wait()
	return err
}

func (rl *ReportListener) acceptLoop() {
	defer rl.wg.Done()
	for {
		conn, err := rl.ln.Accept()
		if err != nil {
			select {
			case <-rl.closed:
				return
			default:
				continue
			}
		}
		rl.connsMu.Lock()
		rl.conns[conn] = struct{}{}
		rl.connsMu.Unlock()
		if m := rl.srv.metrics; m != nil {
			m.reportConnOpened.Inc()
		}
		rl.wg.Add(1)
		go func() {
			defer rl.wg.Done()
			defer func() {
				_ = conn.Close()
				rl.connsMu.Lock()
				delete(rl.conns, conn)
				rl.connsMu.Unlock()
				if m := rl.srv.metrics; m != nil {
					m.reportConnClosed.Inc()
				}
			}()
			rl.serve(conn)
		}()
	}
}

func (rl *ReportListener) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if reply, err := rl.apply(line); err != nil {
			if m := rl.srv.metrics; m != nil {
				m.reportErr.Inc()
			}
			fmt.Fprintf(w, "ERR %v\n", err)
		} else {
			if m := rl.srv.metrics; m != nil {
				m.reportOK.Inc()
			}
			if reply == "" {
				fmt.Fprintln(w, "OK")
			} else {
				fmt.Fprintln(w, "OK "+reply)
			}
		}
		if err := w.Flush(); err != nil {
			if m := rl.srv.metrics; m != nil {
				m.reportConnErrors.Inc()
			}
			return
		}
	}
	if err := sc.Err(); err != nil {
		if m := rl.srv.metrics; m != nil {
			m.reportConnErrors.Inc()
		}
		// An oversized line exceeds the scanner's token limit; tell the
		// client why it is being disconnected (best effort).
		if err == bufio.ErrTooLong {
			fmt.Fprintln(w, "ERR line too long")
			_ = w.Flush()
		}
	}
}

// apply parses and executes one report line, returning the reply
// payload to append after "OK" (usually empty).
func (rl *ReportListener) apply(line string) (string, error) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "ALIVE":
		if len(fields) != 2 {
			return "", fmt.Errorf("ALIVE wants 1 arg, got %d", len(fields)-1)
		}
		server, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("bad server index %q", fields[1])
		}
		if server < 0 || server >= rl.srv.Servers() {
			return "", fmt.Errorf("server index %d out of range [0,%d)", server, rl.srv.Servers())
		}
		rl.srv.touchLiveness(server)
		return "", nil
	case "ALARM":
		if len(fields) != 3 {
			return "", fmt.Errorf("ALARM wants 2 args, got %d", len(fields)-1)
		}
		server, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("bad server index %q", fields[1])
		}
		on, err := strconv.Atoi(fields[2])
		if err != nil || (on != 0 && on != 1) {
			return "", fmt.Errorf("bad alarm flag %q", fields[2])
		}
		if err := rl.srv.SetAlarm(server, on == 1); err != nil {
			return "", err
		}
		rl.srv.touchLiveness(server)
		return "", nil
	case "HITS":
		if len(fields) != 3 {
			return "", fmt.Errorf("HITS wants 2 args, got %d", len(fields)-1)
		}
		domain, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("bad domain index %q", fields[1])
		}
		count, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || count < 0 {
			return "", fmt.Errorf("bad hit count %q", fields[2])
		}
		rl.srv.RecordHits(domain, count)
		return "", nil
	case "ROLL":
		if len(fields) != 2 {
			return "", fmt.Errorf("ROLL wants 1 arg, got %d", len(fields)-1)
		}
		interval, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || interval <= 0 {
			return "", fmt.Errorf("bad interval %q", fields[1])
		}
		return "", rl.srv.RollEstimates(interval)
	case "JOIN":
		if len(fields) != 3 {
			return "", fmt.Errorf("JOIN wants 2 args, got %d", len(fields)-1)
		}
		addr, err := netip.ParseAddr(fields[1])
		if err != nil {
			return "", fmt.Errorf("bad server address %q", fields[1])
		}
		capacity, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return "", fmt.Errorf("bad capacity %q", fields[2])
		}
		idx, err := rl.srv.Join(addr, capacity)
		if err != nil {
			return "", err
		}
		rl.srv.touchLiveness(idx)
		return strconv.Itoa(idx), nil
	case "DRAIN":
		if len(fields) != 2 {
			return "", fmt.Errorf("DRAIN wants 1 arg, got %d", len(fields)-1)
		}
		server, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("bad server index %q", fields[1])
		}
		if _, err := rl.srv.Drain(server); err != nil {
			return "", err
		}
		return "", nil
	case "REPL":
		// The payload is JSON, not fields: split once on the raw line.
		_, payload, ok := strings.Cut(line, " ")
		if !ok || strings.TrimSpace(payload) == "" {
			return "", errors.New("REPL wants a delta payload")
		}
		return "", rl.srv.mergeReplLine(strings.TrimSpace(payload))
	default:
		return "", fmt.Errorf("unknown command %q", cmd)
	}
}
