package dnsserver

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// ReportListener accepts plain-text load reports from Web servers and
// feeds them into a Server's alarm and estimation machinery — the
// asynchronous feedback channel of the paper, realized as a trivial
// line protocol:
//
//	ALARM <serverIndex> <0|1>\n        alarm / normal signal
//	HITS <domainIndex> <count>\n       per-domain hits since last report
//	ROLL <intervalSeconds>\n           close an estimation interval
//
// Each accepted line is answered with "OK\n", errors with "ERR <msg>\n".
type ReportListener struct {
	srv *Server
	ln  net.Listener

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewReportListener starts a report listener for srv on addr
// (e.g. "127.0.0.1:0").
func NewReportListener(srv *Server, addr string) (*ReportListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: report listen: %w", err)
	}
	rl := &ReportListener{srv: srv, ln: ln, closed: make(chan struct{})}
	rl.wg.Add(1)
	go rl.acceptLoop()
	return rl, nil
}

// Addr returns the bound address.
func (rl *ReportListener) Addr() net.Addr { return rl.ln.Addr() }

// Close stops accepting and waits for in-flight connections.
func (rl *ReportListener) Close() error {
	select {
	case <-rl.closed:
		return nil
	default:
	}
	close(rl.closed)
	err := rl.ln.Close()
	rl.wg.Wait()
	return err
}

func (rl *ReportListener) acceptLoop() {
	defer rl.wg.Done()
	for {
		conn, err := rl.ln.Accept()
		if err != nil {
			select {
			case <-rl.closed:
				return
			default:
				continue
			}
		}
		rl.wg.Add(1)
		go func() {
			defer rl.wg.Done()
			defer conn.Close()
			rl.serve(conn)
		}()
	}
}

func (rl *ReportListener) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := rl.apply(line); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
		} else {
			fmt.Fprintln(w, "OK")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// apply parses and executes one report line.
func (rl *ReportListener) apply(line string) error {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "ALARM":
		if len(fields) != 3 {
			return fmt.Errorf("ALARM wants 2 args, got %d", len(fields)-1)
		}
		server, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad server index %q", fields[1])
		}
		on, err := strconv.Atoi(fields[2])
		if err != nil || (on != 0 && on != 1) {
			return fmt.Errorf("bad alarm flag %q", fields[2])
		}
		rl.srv.SetAlarm(server, on == 1)
		return nil
	case "HITS":
		if len(fields) != 3 {
			return fmt.Errorf("HITS wants 2 args, got %d", len(fields)-1)
		}
		domain, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad domain index %q", fields[1])
		}
		count, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || count < 0 {
			return fmt.Errorf("bad hit count %q", fields[2])
		}
		rl.srv.RecordHits(domain, count)
		return nil
	case "ROLL":
		if len(fields) != 2 {
			return fmt.Errorf("ROLL wants 1 arg, got %d", len(fields)-1)
		}
		interval, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || interval <= 0 {
			return fmt.Errorf("bad interval %q", fields[1])
		}
		return rl.srv.RollEstimates(interval)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
