package dnsserver

import (
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Zero-downtime reconfiguration: the server set can change while the
// DNS keeps answering. Join adds (or revives) a server slot, Drain
// retires one gracefully, and Reconfigure diffs a whole desired server
// set against the current membership. All three serialize on
// reconfigMu; the query path never blocks on any of them — it reads
// the atomically published address table and state snapshot.
//
// Graceful drain follows the paper's hidden-load model: every mapping
// the DNS hands out pins load to its server for the TTL, so a server
// cannot simply vanish — the policy stops scheduling it immediately
// (core.State.DrainServer), but the slot stays resolvable and serving
// until the largest outstanding TTL it was handed has expired
// (MappingExpiry), and only then is it removed from membership.

// Join adds a Web server with the given IPv4 address and capacity to
// the cluster, returning its slot index. Join is idempotent and
// address-keyed:
//
//   - an active member with the same address has its capacity updated
//     and keeps its index (duplicate JOIN);
//   - a draining or retired slot with the same address is reinstated
//     at that index with cleared alarm/down flags (a re-JOIN cancels
//     the drain: outstanding mappings to it are valid again);
//   - an unknown address gets a fresh slot, schedulable immediately.
func (s *Server) Join(addr netip.Addr, capacity float64) (int, error) {
	if !addr.Is4() {
		return 0, fmt.Errorf("dnsserver: join address %v must be IPv4", addr)
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	return s.joinLocked(addr, capacity)
}

func (s *Server) joinLocked(addr netip.Addr, capacity float64) (int, error) {
	st := s.policy.State()
	cur := s.serverAddrs()
	for i, a := range cur {
		if a != addr {
			continue
		}
		if st.Member(i) && !st.Draining(i) {
			if err := st.SetCapacity(i, capacity); err != nil {
				return 0, err
			}
			return i, nil
		}
		if t, ok := s.drainTimers[i]; ok {
			t.Stop()
			delete(s.drainTimers, i)
		}
		if err := st.ReinstateServer(i, capacity); err != nil {
			return 0, err
		}
		s.joins.Add(1)
		s.noteJoin(i)
		s.logger.Info("server rejoined", "server", i, "addr", addr, "capacity", capacity)
		return i, nil
	}
	// Fresh slot. Publish the address table and the ledger slot first:
	// the instant AddServer publishes membership, a concurrent Decide
	// may pick the new index, and the query path must find its address.
	idx := len(cur)
	next := make([]netip.Addr, idx+1)
	copy(next, cur)
	next[idx] = addr
	s.addrs.Store(&next)
	s.eng.Ledger().Grow(idx + 1)
	got, err := st.AddServer(capacity)
	if err != nil {
		s.addrs.Store(&cur)
		return 0, err
	}
	if got != idx {
		// Slots and addresses are maintained in lockstep under
		// reconfigMu; a mismatch means that invariant broke.
		s.addrs.Store(&cur)
		return 0, fmt.Errorf("dnsserver: slot %d for address table of %d entries", got, idx)
	}
	s.joins.Add(1)
	s.noteJoin(idx)
	if s.metrics != nil {
		s.metrics.ensureServerSeries(idx + 1)
	}
	s.logger.Info("server joined", "server", idx, "addr", addr, "capacity", capacity)
	return idx, nil
}

// noteJoin grows and touches the liveness monitor for a joined slot so
// the fresh server starts with a full reporting grace period.
func (s *Server) noteJoin(i int) {
	s.livenessMu.Lock()
	m := s.liveness
	s.livenessMu.Unlock()
	if m != nil {
		m.Grow(i + 1)
		m.Touch(i)
	}
}

// Drain gracefully retires server i: the scheduler stops handing out
// new mappings to it at once, and the slot is removed from membership
// when the hidden-load window of its outstanding TTLs has run out. The
// returned time is the earliest instant the removal can happen.
// Draining a server that is already draining just returns the pending
// deadline. The last remaining active server cannot be drained.
func (s *Server) Drain(i int) (time.Time, error) {
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	return s.drainLocked(i)
}

func (s *Server) drainLocked(i int) (time.Time, error) {
	st := s.policy.State()
	if i < 0 || i >= s.Servers() || !st.Member(i) {
		return time.Time{}, fmt.Errorf("dnsserver: drain of non-member server %d", i)
	}
	if st.Draining(i) {
		return s.drainDeadline(i), nil
	}
	if !st.Down(i) && st.Snapshot().EligibleServers() <= 1 {
		return time.Time{}, fmt.Errorf("dnsserver: refusing to drain server %d: it is the last schedulable server", i)
	}
	if err := st.DrainServer(i); err != nil {
		return time.Time{}, err
	}
	s.drains.Add(1)
	deadline := s.drainDeadline(i)
	s.armDrainTimer(i, deadline)
	s.logger.Info("server draining", "server", i, "until", deadline)
	return deadline, nil
}

// drainDeadline computes when server i's hidden-load window closes:
// the largest outstanding mapping expiry, but never before now.
func (s *Server) drainDeadline(i int) time.Time {
	now := time.Now()
	if exp := s.MappingExpiry(i); exp.After(now) {
		return exp
	}
	return now
}

// armDrainTimer (re)schedules the drain-completion check for server i.
// Caller holds reconfigMu.
func (s *Server) armDrainTimer(i int, deadline time.Time) {
	if t, ok := s.drainTimers[i]; ok {
		t.Stop()
	}
	s.drainTimers[i] = time.AfterFunc(time.Until(deadline), func() { s.completeDrain(i) })
}

// completeDrain retires server i once its drain window has closed. A
// decision in flight when the drain started may have extended the
// window after the deadline was computed; in that case the timer is
// re-armed instead of removing a still-referenced server.
func (s *Server) completeDrain(i int) {
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	select {
	case <-s.closed:
		return
	default:
	}
	st := s.policy.State()
	if !st.Member(i) || !st.Draining(i) {
		delete(s.drainTimers, i) // reinstated or already gone
		return
	}
	if exp := s.MappingExpiry(i); exp.After(time.Now()) {
		s.armDrainTimer(i, exp)
		return
	}
	delete(s.drainTimers, i)
	if err := st.RemoveServer(i); err != nil {
		s.logger.Warn("drain completion could not remove server", "server", i, "err", err)
		return
	}
	s.removals.Add(1)
	s.logger.Info("server removed after drain", "server", i)
}

// Reconfigure diffs the desired server set against the current
// membership and applies it: unknown addresses join, known addresses
// have their capacity updated, and active members absent from the
// desired set are drained. It is the SIGHUP reload entry point. The
// first error aborts the remaining changes and is returned; changes
// already applied stay applied (the next reload converges).
func (s *Server) Reconfigure(addrs []netip.Addr, capacities []float64) error {
	if len(addrs) == 0 {
		return errors.New("dnsserver: reconfigure needs at least one server")
	}
	if len(addrs) != len(capacities) {
		return fmt.Errorf("dnsserver: %d addresses for %d capacities", len(addrs), len(capacities))
	}
	desired := make(map[netip.Addr]bool, len(addrs))
	for _, a := range addrs {
		if !a.Is4() {
			return fmt.Errorf("dnsserver: server address %v must be IPv4", a)
		}
		if desired[a] {
			return fmt.Errorf("dnsserver: duplicate server address %v", a)
		}
		desired[a] = true
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	// Joins before drains: the incoming capacity must be schedulable
	// before the outgoing servers stop taking mappings, or a reload
	// that replaces the whole set could hit the last-server guard.
	for k, a := range addrs {
		if _, err := s.joinLocked(a, capacities[k]); err != nil {
			s.reloadErrs.Add(1)
			return fmt.Errorf("dnsserver: reconfigure join %v: %w", a, err)
		}
	}
	st := s.policy.State()
	for i, a := range s.serverAddrs() {
		if desired[a] || !st.Member(i) || st.Draining(i) {
			continue
		}
		if _, err := s.drainLocked(i); err != nil {
			s.reloadErrs.Add(1)
			return fmt.Errorf("dnsserver: reconfigure drain %d (%v): %w", i, a, err)
		}
	}
	s.reloads.Add(1)
	return nil
}

// Reloads returns how many Reconfigure calls completed successfully.
func (s *Server) Reloads() uint64 { return s.reloads.Load() }
