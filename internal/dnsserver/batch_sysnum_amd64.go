//go:build linux

package dnsserver

// Syscall numbers for the batch path. The frozen syscall package
// predates sendmmsg on amd64, so both are spelled out here per arch.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
