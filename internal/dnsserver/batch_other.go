//go:build !linux || (!amd64 && !arm64)

package dnsserver

// Fallback for platforms without the recvmmsg/sendmmsg batch path (or
// whose mmsghdr layout the Linux file's 64-bit structs don't match):
// Config.UDPBatch is ignored and the server runs the portable
// one-datagram-per-syscall workers over a single shared socket.

import (
	"errors"
	"net"
)

const batchSupported = false

func listenUDPBatchConns(uaddr *net.UDPAddr, workers int) ([]*net.UDPConn, error) {
	return nil, errors.New("dnsserver: batched UDP I/O not supported on this platform")
}

func (s *Server) serveUDPBatch(worker int, conn *net.UDPConn) {
	// Unreachable: Start never selects batch mode when !batchSupported.
	s.wg.Done()
}
