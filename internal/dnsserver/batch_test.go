package dnsserver

import (
	"context"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"dnslb/internal/core"
	"dnslb/internal/dnsclient"
	"dnslb/internal/dnswire"
	"dnslb/internal/simcore"
)

// batchServer starts a server with batched UDP I/O requested; on
// platforms without recvmmsg the server transparently falls back, and
// the test still exercises the shared Start/Close plumbing.
func batchServer(t *testing.T, batch int) *Server {
	t.Helper()
	cluster, err := core.ScaledCluster(7, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	state, err := core.NewState(cluster, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := state.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	policy, err := core.NewPolicy(core.PolicyConfig{
		Name:  "RR",
		State: state,
		Rand:  simcore.NewStream(1, "batch"),
		Now:   func() float64 { return time.Since(start).Seconds() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]netip.Addr, 7)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
	}
	srv, err := New(Config{
		Zone:        "www.site.example",
		ServerAddrs: addrs,
		Policy:      policy,
		Addr:        "127.0.0.1:0",
		UDPWorkers:  4,
		UDPBatch:    batch,
		AnswerCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// TestBatchUDPServes proves the batched serve loops answer correctly
// under concurrent clients: every query gets a well-formed A answer
// for a site server, and the counters account for every query.
func TestBatchUDPServes(t *testing.T) {
	srv := batchServer(t, 8)
	if runtime.GOOS == "linux" && !srv.UDPBatchActive() {
		t.Fatal("batch mode requested but not active on linux")
	}
	if srv.UDPWorkers() != 4 {
		t.Fatalf("UDPWorkers() = %d, want 4", srv.UDPWorkers())
	}

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &dnsclient.Resolver{Server: srv.Addr().String(), Timeout: 5 * time.Second}
			for i := 0; i < perClient; i++ {
				answers, err := r.LookupA(context.Background(), "www.site.example")
				if err != nil {
					errs <- err
					return
				}
				if len(answers) != 1 {
					errs <- errAnswerCount(len(answers))
					return
				}
				b := answers[0].Addr.As4()
				if b[0] != 10 || b[3] < 1 || b[3] > 7 {
					errs <- errBadAnswer(answers[0].Addr)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := srv.Stats().Answered; got != clients*perClient {
		t.Errorf("answered %d queries, want %d", got, clients*perClient)
	}
}

type errAnswerCount int

func (e errAnswerCount) Error() string { return "unexpected answer count" }

type errBadAnswer netip.Addr

func (e errBadAnswer) Error() string { return "answer outside the site's server set" }

// TestBatchUDPMixedTraffic sends malformed and non-A traffic through
// the batch loop: the per-datagram outcomes (FORMERR, NXDOMAIN) must
// match the portable loop's, including dropped (nil-response) slots in
// the middle of a batch.
func TestBatchUDPMixedTraffic(t *testing.T) {
	srv := batchServer(t, 4)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A garbage datagram (FORMERR), then a query for a foreign name
	// (NXDOMAIN): both must come back despite interleaving.
	if _, err := conn.Write([]byte{0xAB, 0xCD, 0xFF}); err != nil {
		t.Fatal(err)
	}
	foreign, err := (&dnswire.Message{
		Header:    dnswire.Header{ID: 42},
		Questions: []dnswire.Question{{Name: "other.example.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(foreign); err != nil {
		t.Fatal(err)
	}
	sawFormErr, sawNXDomain := false, false
	buf := make([]byte, dnswire.MaxUDPPayload)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for !(sawFormErr && sawNXDomain) {
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("missing responses (formerr=%v nxdomain=%v): %v", sawFormErr, sawNXDomain, err)
		}
		m, err := dnswire.Unpack(buf[:n])
		if err != nil {
			t.Fatalf("bad response: %v", err)
		}
		switch m.Header.RCode {
		case dnswire.RCodeFormErr:
			if m.Header.ID != 0xABCD {
				t.Errorf("FORMERR echoes ID %#x, want 0xabcd", m.Header.ID)
			}
			sawFormErr = true
		case dnswire.RCodeNXDomain:
			if m.Header.ID != 42 {
				t.Errorf("NXDOMAIN echoes ID %d, want 42", m.Header.ID)
			}
			sawNXDomain = true
		default:
			t.Fatalf("unexpected rcode %v", m.Header.RCode)
		}
	}
}

// TestBatchUDPShutdown proves graceful shutdown unblocks workers
// parked in recvmmsg.
func TestBatchUDPShutdown(t *testing.T) {
	srv := batchServer(t, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("shutdown took %v; workers likely stuck in recvmmsg", elapsed)
	}
}
