// Package dnsclient implements a stub resolver and a caching name
// server over the dnswire protocol. The caching name server is the
// real-network counterpart of the simulation's NS model: it honours
// the TTL decided by the site's DNS, or raises it to its own minimum
// when configured non-cooperatively.
package dnsclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnslb/internal/dnswire"
)

// Resolver is a stub resolver bound to a single upstream DNS server.
// By default it queries over UDP and falls back to TCP on truncation;
// Transport selects TCP-only or DNS-over-HTTPS wire exchanges instead.
type Resolver struct {
	// Server is the upstream address, e.g. "127.0.0.1:53". For the
	// "doh" transport it may instead be a full URL (anything containing
	// "://"); a bare host:port becomes http://host:port/dns-query.
	Server string
	// Transport selects the exchange path: "" or "udp" is UDP with TCP
	// fallback on truncation, "tcp" is TCP only, "doh" is RFC 8484
	// HTTP POST of the wire query.
	Transport string
	// Timeout bounds each network exchange (default 3 s).
	Timeout time.Duration
	// Dialer optionally overrides dialing (tests).
	Dialer net.Dialer
	// HTTPClient optionally overrides the "doh" transport's client
	// (nil uses a default with the resolver's timeout).
	HTTPClient *http.Client
	// ClientSubnet, when valid, is attached to every query as an
	// RFC 7871 EDNS Client Subnet option so the authority can classify
	// the originating network even behind a shared resolver.
	ClientSubnet netip.Prefix

	mu  sync.Mutex
	rng *rand.Rand
}

// ErrNoAnswer reports a NOERROR response without usable records.
var ErrNoAnswer = errors.New("dnsclient: no answer records")

// RCodeError is returned when the upstream answers with a non-zero
// response code.
type RCodeError struct {
	RCode dnswire.RCode
}

// Error implements error.
func (e *RCodeError) Error() string {
	return fmt.Sprintf("dnsclient: upstream answered %v", e.RCode)
}

func (r *Resolver) timeout() time.Duration {
	if r.Timeout <= 0 {
		return 3 * time.Second
	}
	return r.Timeout
}

func (r *Resolver) nextID() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rng == nil {
		r.rng = rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
	}
	return uint16(r.rng.UintN(1 << 16))
}

// Exchange sends one query and returns the validated response message.
func (r *Resolver) Exchange(ctx context.Context, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	query := &dnswire.Message{
		Header: dnswire.Header{ID: r.nextID(), RecursionDesired: true},
		Questions: []dnswire.Question{{
			Name:  dnswire.CanonicalName(name),
			Type:  qtype,
			Class: dnswire.ClassIN,
		}},
	}
	if r.ClientSubnet.IsValid() {
		cs := dnswire.ClientSubnet{Prefix: r.ClientSubnet.Masked()}
		if err := query.SetClientSubnet(cs, dnswire.MaxUDPPayload); err != nil {
			return nil, err
		}
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}
	var resp *dnswire.Message
	switch r.Transport {
	case "", "udp":
		resp, err = r.exchangeUDP(ctx, wire, query.Header.ID)
		if err == nil && resp.Header.Truncated {
			resp, err = r.exchangeTCP(ctx, wire, query.Header.ID)
		}
	case "tcp":
		resp, err = r.exchangeTCP(ctx, wire, query.Header.ID)
	case "doh":
		resp, err = r.exchangeDoH(ctx, wire, query.Header.ID)
	default:
		return nil, fmt.Errorf("dnsclient: unknown transport %q (want udp, tcp or doh)", r.Transport)
	}
	if err != nil {
		return nil, err
	}
	if resp.Header.RCode != dnswire.RCodeNoError {
		return resp, &RCodeError{RCode: resp.Header.RCode}
	}
	return resp, nil
}

func (r *Resolver) exchangeUDP(ctx context.Context, wire []byte, id uint16) (*dnswire.Message, error) {
	conn, err := r.Dialer.DialContext(ctx, "udp", r.Server)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: dial udp: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(r.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, fmt.Errorf("dnsclient: udp write: %w", err)
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("dnsclient: udp read: %w", err)
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // hostile or corrupt datagram: keep waiting
		}
		if resp.Header.ID != id || !resp.Header.Response {
			continue // not ours
		}
		return resp, nil
	}
}

func (r *Resolver) exchangeTCP(ctx context.Context, wire []byte, id uint16) (*dnswire.Message, error) {
	conn, err := r.Dialer.DialContext(ctx, "tcp", r.Server)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: dial tcp: %w", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(r.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	out := make([]byte, 2+len(wire))
	out[0], out[1] = byte(len(wire)>>8), byte(len(wire))
	copy(out[2:], wire)
	if _, err := conn.Write(out); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp write: %w", err)
	}
	lenBuf := make([]byte, 2)
	if err := readFull(conn, lenBuf); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp read: %w", err)
	}
	msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
	if err := readFull(conn, msg); err != nil {
		return nil, fmt.Errorf("dnsclient: tcp read: %w", err)
	}
	resp, err := dnswire.Unpack(msg)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, errors.New("dnsclient: tcp response ID mismatch")
	}
	return resp, nil
}

// dohURL resolves the Server field for the DoH transport: a value with
// a scheme is used verbatim; a bare host:port gets the RFC 8484
// well-known path on plain HTTP (the in-cluster deployment mode, TLS
// termination being the fronting proxy's job).
func (r *Resolver) dohURL() string {
	if strings.Contains(r.Server, "://") {
		return r.Server
	}
	return "http://" + r.Server + "/dns-query"
}

func (r *Resolver) exchangeDoH(ctx context.Context, wire []byte, id uint16) (*dnswire.Message, error) {
	client := r.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: r.timeout()}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.dohURL(), bytes.NewReader(wire))
	if err != nil {
		return nil, fmt.Errorf("dnsclient: doh request: %w", err)
	}
	req.Header.Set("Content-Type", "application/dns-message")
	req.Header.Set("Accept", "application/dns-message")
	hr, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: doh exchange: %w", err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dnsclient: doh upstream returned %s", hr.Status)
	}
	body, err := io.ReadAll(io.LimitReader(hr.Body, 65536))
	if err != nil {
		return nil, fmt.Errorf("dnsclient: doh read: %w", err)
	}
	resp, err := dnswire.Unpack(body)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, errors.New("dnsclient: doh response ID mismatch")
	}
	return resp, nil
}

func readFull(conn net.Conn, buf []byte) error {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return err
		}
	}
	return nil
}

// AnswerA is one A record from a response: the address and the TTL the
// authority attached to it.
type AnswerA struct {
	Addr netip.Addr
	TTL  time.Duration
}

// LookupA resolves the name to its A records.
func (r *Resolver) LookupA(ctx context.Context, name string) ([]AnswerA, error) {
	resp, err := r.Exchange(ctx, name, dnswire.TypeA)
	if err != nil {
		return nil, err
	}
	var out []AnswerA
	want := dnswire.CanonicalName(name)
	for _, rr := range resp.Answers {
		if rr.Type != dnswire.TypeA || dnswire.CanonicalName(rr.Name) != want {
			continue
		}
		a, ok := rr.Data.(dnswire.A)
		if !ok {
			continue
		}
		out = append(out, AnswerA{Addr: a.Addr, TTL: time.Duration(rr.TTL) * time.Second})
	}
	if len(out) == 0 {
		return nil, ErrNoAnswer
	}
	return out, nil
}
