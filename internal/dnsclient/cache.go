package dnsclient

import (
	"context"
	"errors"
	"sync"
	"time"

	"dnslb/internal/dnswire"
)

// CachingNS is a caching name server in front of a Resolver: the
// real-network counterpart of one connected domain's local NS in the
// paper. It caches each name's A answer for the TTL the authority
// chose — raised to MinTTL when configured non-cooperatively.
type CachingNS struct {
	resolver *Resolver
	// minTTL is the lowest TTL this NS accepts (0 = cooperative).
	minTTL time.Duration
	// now is the clock, overridable in tests.
	now func() time.Time

	mu      sync.Mutex
	entries map[string]cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	answers []AnswerA
	expire  time.Time
	// negative marks a cached NXDOMAIN/no-data result (RFC 2308): the
	// cache answers with the original error until expire.
	negative bool
	rcode    dnswire.RCode
}

// CacheStats counts cache effectiveness.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Clamped uint64
	// NegativeHits counts lookups answered from a cached NXDOMAIN or
	// no-data result (RFC 2308 negative caching).
	NegativeHits uint64
}

// negativeTTL bounds how long a negative result is cached; real
// resolvers use the zone SOA minimum, which this reproduction's
// authoritative server sets to 60 s.
const negativeTTL = 60 * time.Second

// NewCachingNS creates a caching NS over the given resolver. minTTL
// models the non-cooperative behaviour studied by the paper's Figures
// 4 and 5; pass 0 for a fully cooperative NS.
func NewCachingNS(resolver *Resolver, minTTL time.Duration) *CachingNS {
	return &CachingNS{
		resolver: resolver,
		minTTL:   minTTL,
		now:      time.Now,
		entries:  make(map[string]cacheEntry),
	}
}

// SetClock overrides the cache's time source, for tests.
func (c *CachingNS) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Stats returns a snapshot of the counters.
func (c *CachingNS) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Flush drops every cached entry.
func (c *CachingNS) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]cacheEntry)
}

// LookupA resolves the name, answering from cache while the stored
// mapping's effective TTL has not lapsed. fromCache reports whether
// the answer was served locally.
func (c *CachingNS) LookupA(ctx context.Context, name string) (answers []AnswerA, fromCache bool, err error) {
	key := cacheKey(name)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && c.now().Before(e.expire) {
		if e.negative {
			c.stats.NegativeHits++
			rcode := e.rcode
			c.mu.Unlock()
			if rcode == dnswire.RCodeNoError {
				return nil, true, ErrNoAnswer
			}
			return nil, true, &RCodeError{RCode: rcode}
		}
		c.stats.Hits++
		out := make([]AnswerA, len(e.answers))
		copy(out, e.answers)
		c.mu.Unlock()
		return out, true, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	answers, err = c.resolver.LookupA(ctx, name)
	if err != nil {
		// RFC 2308: authoritative negative answers (NXDOMAIN, or
		// NOERROR with no data) are cached so repeated misses do not
		// hammer the upstream. Transport errors are never cached.
		var rcErr *RCodeError
		if errors.As(err, &rcErr) && rcErr.RCode == dnswire.RCodeNXDomain {
			c.storeNegative(key, rcErr.RCode)
		} else if errors.Is(err, ErrNoAnswer) {
			c.storeNegative(key, dnswire.RCodeNoError)
		}
		return nil, false, err
	}
	ttl := answers[0].TTL
	for _, a := range answers[1:] {
		if a.TTL < ttl {
			ttl = a.TTL
		}
	}
	c.mu.Lock()
	if ttl < c.minTTL {
		ttl = c.minTTL
		c.stats.Clamped++
	}
	if ttl > 0 {
		stored := make([]AnswerA, len(answers))
		copy(stored, answers)
		c.entries[key] = cacheEntry{answers: stored, expire: c.now().Add(ttl)}
	}
	c.mu.Unlock()
	return answers, false, nil
}

// cacheKey normalizes names the same way the resolver does on the
// wire, so "WWW.Site.Example" and "www.site.example." share an entry.
func cacheKey(name string) string {
	return dnswire.CanonicalName(name)
}

// storeNegative caches a negative result for the RFC 2308 window.
func (c *CachingNS) storeNegative(key string, rcode dnswire.RCode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cacheEntry{
		negative: true,
		rcode:    rcode,
		expire:   c.now().Add(negativeTTL),
	}
}
