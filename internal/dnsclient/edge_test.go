package dnsclient

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnslb/internal/dnswire"
)

func TestDefaultTimeoutApplied(t *testing.T) {
	r := &Resolver{}
	if got := r.timeout(); got != 3*time.Second {
		t.Errorf("default timeout = %v, want 3s", got)
	}
	r.Timeout = time.Second
	if got := r.timeout(); got != time.Second {
		t.Errorf("timeout = %v", got)
	}
}

func TestExchangeInvalidName(t *testing.T) {
	r := &Resolver{Server: "127.0.0.1:1", Timeout: 100 * time.Millisecond}
	// A label over 63 bytes fails at pack time, before any network IO.
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := r.Exchange(context.Background(), string(long)+".example", dnswire.TypeA); err == nil {
		t.Error("oversized label should fail to encode")
	}
}

func TestExchangeContextDeadline(t *testing.T) {
	// No server listening; a short context deadline must bound the
	// exchange even with a long resolver timeout.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := &Resolver{Server: conn.LocalAddr().String(), Timeout: 30 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = r.Exchange(ctx, "x.example", dnswire.TypeA)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("context deadline not honoured: %v", elapsed)
	}
}

func TestExchangeIgnoresForeignAndCorruptDatagrams(t *testing.T) {
	// A hostile "server" first sends garbage and a mismatched ID, then
	// the real answer; the resolver must skip the noise.
	uaddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 65535)
		n, raddr, err := srv.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		// 1: garbage bytes.
		_, _ = srv.WriteToUDPAddrPort([]byte{1, 2, 3}, raddr)
		// 2: valid message, wrong ID.
		wrong := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID + 1, Response: true}}
		wb, _ := wrong.Pack()
		_, _ = srv.WriteToUDPAddrPort(wb, raddr)
		// 3: a query echo (not a response) with the right ID.
		notResp := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID}}
		nb, _ := notResp.Pack()
		_, _ = srv.WriteToUDPAddrPort(nb, raddr)
		// 4: the real answer.
		resp := &dnswire.Message{
			Header:    dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions,
			Answers: []dnswire.ResourceRecord{{
				Name: q.Questions[0].Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 60, Data: dnswire.A{Addr: netip.MustParseAddr("10.8.8.8")},
			}},
		}
		rb, _ := resp.Pack()
		_, _ = srv.WriteToUDPAddrPort(rb, raddr)
	}()

	r := &Resolver{Server: srv.LocalAddr().String(), Timeout: 2 * time.Second}
	answers, err := r.LookupA(context.Background(), "victim.example")
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Addr != netip.MustParseAddr("10.8.8.8") {
		t.Errorf("answer = %+v, want the genuine response", answers[0])
	}
}

func TestTCPFallbackAgainstDeadTCP(t *testing.T) {
	// UDP answers with TC set but nothing listens on TCP: the resolver
	// must surface an error rather than hang.
	uaddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 65535)
		n, raddr, err := srv.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		resp := &dnswire.Message{
			Header:    dnswire.Header{ID: q.Header.ID, Response: true, Truncated: true},
			Questions: q.Questions,
		}
		rb, _ := resp.Pack()
		_, _ = srv.WriteToUDPAddrPort(rb, raddr)
	}()
	r := &Resolver{Server: srv.LocalAddr().String(), Timeout: 500 * time.Millisecond}
	if _, err := r.LookupA(context.Background(), "x.example"); err == nil {
		t.Error("dead TCP fallback should error")
	}
}

func TestResolverDialFailure(t *testing.T) {
	r := &Resolver{Server: "256.256.256.256:53", Timeout: 100 * time.Millisecond}
	if _, err := r.LookupA(context.Background(), "x.example"); err == nil {
		t.Error("bad server address should error")
	}
}

func TestResolverECSPackFailureSurfaces(t *testing.T) {
	r := &Resolver{
		Server:       "127.0.0.1:1",
		Timeout:      100 * time.Millisecond,
		ClientSubnet: netip.Prefix{}, // invalid: ignored, not an error
	}
	// Invalid prefix means "no ECS", so the failure is the dial/read.
	_, err := r.LookupA(context.Background(), "x.example")
	if err == nil {
		t.Error("expected network error")
	}
}
