package dnsclient

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnslb/internal/dnswire"
)

// fakeDNS is a minimal scripted DNS server over UDP and TCP for
// resolver tests, answering every A query with the configured records.
type fakeDNS struct {
	t   *testing.T
	udp *net.UDPConn
	tcp net.Listener

	mu       sync.Mutex
	answers  []dnswire.ResourceRecord
	rcode    dnswire.RCode
	truncate bool // answer UDP with TC bit set

	queries atomic.Int64
}

func (f *fakeDNS) set(answers []dnswire.ResourceRecord, rcode dnswire.RCode, truncate bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.answers, f.rcode, f.truncate = answers, rcode, truncate
}

func newFakeDNS(t *testing.T) *fakeDNS {
	t.Helper()
	uaddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := net.Listen("tcp", udp.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeDNS{t: t, udp: udp, tcp: tcp}
	go f.serveUDP()
	go f.serveTCP()
	t.Cleanup(func() {
		_ = udp.Close()
		_ = tcp.Close()
	})
	return f
}

func (f *fakeDNS) addr() string { return f.udp.LocalAddr().String() }

func (f *fakeDNS) respond(q *dnswire.Message, overUDP bool) []byte {
	f.queries.Add(1)
	f.mu.Lock()
	answers, rcode, truncate := f.answers, f.rcode, f.truncate
	f.mu.Unlock()
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:       q.Header.ID,
			Response: true,
			RCode:    rcode,
		},
		Questions: q.Questions,
	}
	if overUDP && truncate {
		resp.Header.Truncated = true
	} else if rcode == dnswire.RCodeNoError {
		resp.Answers = answers
	}
	wire, err := resp.Pack()
	if err != nil {
		f.t.Errorf("fake pack: %v", err)
		return nil
	}
	return wire
}

func (f *fakeDNS) serveUDP() {
	buf := make([]byte, 65535)
	for {
		n, raddr, err := f.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		if wire := f.respond(q, true); wire != nil {
			_, _ = f.udp.WriteToUDPAddrPort(wire, raddr)
		}
	}
}

func (f *fakeDNS) serveTCP() {
	for {
		conn, err := f.tcp.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			lenBuf := make([]byte, 2)
			if err := readFull(conn, lenBuf); err != nil {
				return
			}
			msg := make([]byte, int(lenBuf[0])<<8|int(lenBuf[1]))
			if err := readFull(conn, msg); err != nil {
				return
			}
			q, err := dnswire.Unpack(msg)
			if err != nil {
				return
			}
			wire := f.respond(q, false)
			out := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
			_, _ = conn.Write(out)
		}()
	}
}

func aRecord(name string, ttl uint32, ip string) dnswire.ResourceRecord {
	return dnswire.ResourceRecord{
		Name:  dnswire.CanonicalName(name),
		Type:  dnswire.TypeA,
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func TestLookupA(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{
		aRecord("web.example", 120, "10.9.9.1"),
		aRecord("web.example", 90, "10.9.9.2"),
	}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	answers, err := r.LookupA(context.Background(), "web.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d", len(answers))
	}
	if answers[0].Addr != netip.MustParseAddr("10.9.9.1") || answers[0].TTL != 120*time.Second {
		t.Errorf("answer 0 = %+v", answers[0])
	}
}

func TestLookupAFiltersForeignRecords(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{
		aRecord("other.example", 60, "10.0.0.9"),
		{
			Name: "web.example.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.TXT{Strings: []string{"x"}},
		},
	}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	_, err := r.LookupA(context.Background(), "web.example")
	if !errors.Is(err, ErrNoAnswer) {
		t.Errorf("err = %v, want ErrNoAnswer", err)
	}
}

func TestRCodeErrorSurface(t *testing.T) {
	f := newFakeDNS(t)
	f.set(nil, dnswire.RCodeNXDomain, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	_, err := r.LookupA(context.Background(), "web.example")
	var rcErr *RCodeError
	if !errors.As(err, &rcErr) || rcErr.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("err = %v, want RCodeError(NXDOMAIN)", err)
	}
	if rcErr.Error() == "" {
		t.Error("empty error message")
	}
}

func TestTruncationFallsBackToTCP(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{aRecord("web.example", 60, "10.1.1.1")}, dnswire.RCodeNoError, true)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	answers, err := r.LookupA(context.Background(), "web.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Addr != netip.MustParseAddr("10.1.1.1") {
		t.Errorf("answers = %+v", answers)
	}
	// UDP query + TCP retry = 2 upstream queries.
	if got := f.queries.Load(); got != 2 {
		t.Errorf("upstream queries = %d, want 2 (UDP then TCP)", got)
	}
}

func TestResolverTimeout(t *testing.T) {
	// A UDP socket nobody answers on.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := &Resolver{Server: conn.LocalAddr().String(), Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err = r.LookupA(context.Background(), "web.example")
	if err == nil {
		t.Fatal("expected timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestCachingNSHitsWithinTTL(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{aRecord("web.example", 300, "10.2.2.2")}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)

	now := time.Unix(1000, 0)
	ns.SetClock(func() time.Time { return now })

	ctx := context.Background()
	_, fromCache, err := ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("first lookup: cache=%v err=%v", fromCache, err)
	}
	// Within TTL: served locally, including case variants.
	now = now.Add(299 * time.Second)
	answers, fromCache, err := ns.LookupA(ctx, "WEB.Example.")
	if err != nil || !fromCache {
		t.Fatalf("second lookup: cache=%v err=%v", fromCache, err)
	}
	if answers[0].Addr != netip.MustParseAddr("10.2.2.2") {
		t.Errorf("cached answer = %+v", answers[0])
	}
	// Past TTL: refetch.
	now = now.Add(2 * time.Second)
	_, fromCache, err = ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("expired lookup: cache=%v err=%v", fromCache, err)
	}
	st := ns.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if got := f.queries.Load(); got != 2 {
		t.Errorf("upstream queries = %d, want 2", got)
	}
}

func TestCachingNSMinTTLClamp(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{aRecord("web.example", 10, "10.3.3.3")}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 120*time.Second) // non-cooperative
	now := time.Unix(5000, 0)
	ns.SetClock(func() time.Time { return now })
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "web.example"); err != nil {
		t.Fatal(err)
	}
	// 60 s later the 10 s TTL has lapsed, but the clamped 120 s has not.
	now = now.Add(60 * time.Second)
	_, fromCache, err := ns.LookupA(ctx, "web.example")
	if err != nil || !fromCache {
		t.Fatalf("clamped lookup: cache=%v err=%v", fromCache, err)
	}
	if ns.Stats().Clamped != 1 {
		t.Errorf("Clamped = %d, want 1", ns.Stats().Clamped)
	}
	now = now.Add(61 * time.Second)
	_, fromCache, err = ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("post-clamp lookup: cache=%v err=%v", fromCache, err)
	}
}

func TestCachingNSUsesMinimumAnswerTTL(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{
		aRecord("web.example", 300, "10.4.4.1"),
		aRecord("web.example", 30, "10.4.4.2"),
	}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)
	now := time.Unix(9000, 0)
	ns.SetClock(func() time.Time { return now })
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "web.example"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(31 * time.Second)
	_, fromCache, err := ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("expected refetch after the smallest TTL, cache=%v err=%v", fromCache, err)
	}
}

func TestCachingNSFlush(t *testing.T) {
	f := newFakeDNS(t)
	f.set([]dnswire.ResourceRecord{aRecord("web.example", 600, "10.5.5.5")}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "web.example"); err != nil {
		t.Fatal(err)
	}
	ns.Flush()
	_, fromCache, err := ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("post-flush lookup: cache=%v err=%v", fromCache, err)
	}
}

func TestCachingNSDoesNotCacheErrors(t *testing.T) {
	f := newFakeDNS(t)
	f.set(nil, dnswire.RCodeServFail, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "web.example"); err == nil {
		t.Fatal("expected SERVFAIL")
	}
	f.set([]dnswire.ResourceRecord{aRecord("web.example", 60, "10.6.6.6")}, dnswire.RCodeNoError, false)
	answers, fromCache, err := ns.LookupA(ctx, "web.example")
	if err != nil || fromCache {
		t.Fatalf("recovery lookup: cache=%v err=%v", fromCache, err)
	}
	if answers[0].Addr != netip.MustParseAddr("10.6.6.6") {
		t.Errorf("answer = %+v", answers[0])
	}
}

func TestNegativeCachingNXDomain(t *testing.T) {
	f := newFakeDNS(t)
	f.set(nil, dnswire.RCodeNXDomain, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)
	now := time.Unix(100, 0)
	ns.SetClock(func() time.Time { return now })
	ctx := context.Background()

	_, fromCache, err := ns.LookupA(ctx, "ghost.example")
	var rcErr *RCodeError
	if !errors.As(err, &rcErr) || fromCache {
		t.Fatalf("first lookup: err=%v cache=%v", err, fromCache)
	}
	// Within the negative TTL the error is served locally.
	now = now.Add(30 * time.Second)
	_, fromCache, err = ns.LookupA(ctx, "ghost.example")
	if !errors.As(err, &rcErr) || rcErr.RCode != dnswire.RCodeNXDomain || !fromCache {
		t.Fatalf("cached negative lookup: err=%v cache=%v", err, fromCache)
	}
	if got := f.queries.Load(); got != 1 {
		t.Errorf("upstream queries = %d, want 1 (negative answer cached)", got)
	}
	if ns.Stats().NegativeHits != 1 {
		t.Errorf("NegativeHits = %d, want 1", ns.Stats().NegativeHits)
	}
	// After the window lapses, the upstream is asked again — and a
	// now-existing name resolves.
	now = now.Add(negativeTTL)
	f.set([]dnswire.ResourceRecord{aRecord("ghost.example", 60, "10.10.10.10")}, dnswire.RCodeNoError, false)
	answers, fromCache, err := ns.LookupA(ctx, "ghost.example")
	if err != nil || fromCache {
		t.Fatalf("post-expiry lookup: err=%v cache=%v", err, fromCache)
	}
	if answers[0].Addr != netip.MustParseAddr("10.10.10.10") {
		t.Errorf("answer = %+v", answers[0])
	}
}

func TestNegativeCachingNoData(t *testing.T) {
	f := newFakeDNS(t)
	// NOERROR with no A records (e.g. the name only has TXT data).
	f.set([]dnswire.ResourceRecord{{
		Name: "data.example.", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.TXT{Strings: []string{"x"}},
	}}, dnswire.RCodeNoError, false)
	r := &Resolver{Server: f.addr(), Timeout: time.Second}
	ns := NewCachingNS(r, 0)
	now := time.Unix(100, 0)
	ns.SetClock(func() time.Time { return now })
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "data.example"); !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("err = %v", err)
	}
	now = now.Add(10 * time.Second)
	_, fromCache, err := ns.LookupA(ctx, "data.example")
	if !errors.Is(err, ErrNoAnswer) || !fromCache {
		t.Fatalf("cached no-data lookup: err=%v cache=%v", err, fromCache)
	}
	if got := f.queries.Load(); got != 1 {
		t.Errorf("upstream queries = %d, want 1", got)
	}
}

func TestTransportErrorsNotCached(t *testing.T) {
	// Nothing listens: the failure must not be negatively cached, so a
	// later working server is retried.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.LocalAddr().String()
	_ = dead.Close()
	r := &Resolver{Server: addr, Timeout: 100 * time.Millisecond}
	ns := NewCachingNS(r, 0)
	ctx := context.Background()
	if _, _, err := ns.LookupA(ctx, "x.example"); err == nil {
		t.Fatal("expected transport error")
	}
	// Second attempt must also hit the (dead) upstream, proving the
	// transport error was not cached: still a cache miss.
	if _, fromCache, err := ns.LookupA(ctx, "x.example"); err == nil || fromCache {
		t.Fatalf("transport error wrongly cached: err=%v cache=%v", err, fromCache)
	}
	if ns.Stats().Misses != 2 {
		t.Errorf("Misses = %d, want 2", ns.Stats().Misses)
	}
}
