package core

import (
	"math"
	"testing"

	"dnslb/internal/simcore"
)

func TestNewLatencyMatrixValidation(t *testing.T) {
	if _, err := NewLatencyMatrix(0, 3, nil); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := NewLatencyMatrix(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("wrong value count should error")
	}
	if _, err := NewLatencyMatrix(1, 2, []float64{1, -1}); err == nil {
		t.Error("negative latency should error")
	}
	m, err := NewLatencyMatrix(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency(1, 0) != 3 {
		t.Errorf("Latency(1,0) = %v, want 3", m.Latency(1, 0))
	}
}

func TestRingLatencies(t *testing.T) {
	m, err := RingLatencies(8, 4, 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	// Domain 0 sits on server 0: latency = base.
	if got := m.Latency(0, 0); math.Abs(got-20) > 1e-9 {
		t.Errorf("Latency(0,0) = %v, want base 20", got)
	}
	// The farthest server is half a ring away: base + span.
	if got := m.Latency(0, 2); math.Abs(got-180) > 1e-9 {
		t.Errorf("Latency(0,2) = %v, want 180", got)
	}
	// Symmetric wrap-around: server 3 and server 1 are equidistant
	// from domain 0.
	if math.Abs(m.Latency(0, 1)-m.Latency(0, 3)) > 1e-9 {
		t.Error("ring should be symmetric")
	}
	if _, err := RingLatencies(0, 4, 1, 1); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := RingLatencies(4, 4, -1, 1); err == nil {
		t.Error("negative base should error")
	}
}

func TestProximitySelectorPureGeo(t *testing.T) {
	st := zipfState(t, 35, 8)
	m, err := RingLatencies(8, st.Cluster().N(), 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewProximitySelector(NewRR(), m, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pure geo always picks the nearest available server.
	for domain := 0; domain < 8; domain++ {
		got := sel.Select(st.Snapshot(), domain)
		best := 0
		for i := 1; i < st.Cluster().N(); i++ {
			if m.Latency(domain, i) < m.Latency(domain, best) {
				best = i
			}
		}
		if got != best {
			t.Errorf("domain %d routed to %d, nearest is %d", domain, got, best)
		}
	}
	if sel.Name() != "Geo(RR,1.00)" {
		t.Errorf("Name = %q", sel.Name())
	}
}

func TestProximitySelectorZeroPrefIsInner(t *testing.T) {
	st := zipfState(t, 35, 8)
	m, err := RingLatencies(8, st.Cluster().N(), 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewRR()
	sel, err := NewProximitySelector(inner, m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewRR()
	for i := 0; i < 30; i++ {
		if got, want := sel.Select(st.Snapshot(), i%8), ref.Select(st.Snapshot(), i%8); got != want {
			t.Fatalf("p=0 selector diverged from inner at %d: %d vs %d", i, got, want)
		}
	}
}

func TestProximitySelectorRespectsAlarms(t *testing.T) {
	st := zipfState(t, 35, 8)
	m, err := RingLatencies(8, st.Cluster().N(), 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := NewProximitySelector(NewRR(), m, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	nearest := sel.Select(st.Snapshot(), 0)
	st.SetAlarm(nearest, true)
	for i := 0; i < 20; i++ {
		if got := sel.Select(st.Snapshot(), 0); got == nearest {
			t.Fatal("alarmed nearest server still selected")
		}
	}
}

func TestProximitySelectorMixedPreference(t *testing.T) {
	st := zipfState(t, 35, 8)
	m, err := RingLatencies(8, st.Cluster().N(), 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	rng := simcore.NewStream(11, "geo")
	sel, err := NewProximitySelector(NewRR(), m, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	nearest := 0
	for i := 1; i < st.Cluster().N(); i++ {
		if m.Latency(0, i) < m.Latency(0, nearest) {
			nearest = i
		}
	}
	hits := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if sel.Select(st.Snapshot(), 0) == nearest {
			hits++
		}
	}
	frac := float64(hits) / trials
	// p=0.5 geo picks plus the occasional RR landing there: between
	// 0.5 and 0.5 + 1/N + noise.
	if frac < 0.45 || frac > 0.75 {
		t.Errorf("nearest-server fraction = %v, want ≈ 0.5–0.65", frac)
	}
}

func TestNewProximitySelectorValidation(t *testing.T) {
	m, err := RingLatencies(4, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProximitySelector(nil, m, 0.5, nil); err == nil {
		t.Error("nil inner should error")
	}
	if _, err := NewProximitySelector(NewRR(), nil, 0.5, nil); err == nil {
		t.Error("nil matrix should error")
	}
	if _, err := NewProximitySelector(NewRR(), m, 1.5, nil); err == nil {
		t.Error("preference > 1 should error")
	}
	if _, err := NewProximitySelector(NewRR(), m, 0.5, nil); err == nil {
		t.Error("fractional preference without Rand should error")
	}
}

func TestMeanLatency(t *testing.T) {
	m, err := NewLatencyMatrix(2, 2, []float64{10, 50, 50, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Both domains assigned to their near server: mean = 10.
	got := m.MeanLatency([]float64{0.5, 0.5}, func(d int) int { return d })
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("MeanLatency = %v, want 10", got)
	}
	// Crossed assignment: mean = 50.
	got = m.MeanLatency([]float64{0.5, 0.5}, func(d int) int { return 1 - d })
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("MeanLatency = %v, want 50", got)
	}
}

func TestProximityPolicyEndToEnd(t *testing.T) {
	st := zipfState(t, 35, 8)
	m, err := RingLatencies(8, st.Cluster().N(), 20, 160)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPolicy(PolicyConfig{
		Name:      "DRR2-TTL/S_K",
		State:     st,
		Rand:      simcore.NewStream(1, "geo-policy"),
		Proximity: &ProximityConfig{Matrix: m, Preference: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := p.Schedule(i % 8); err != nil {
			t.Fatal(err)
		}
	}
	bad := &ProximityConfig{Matrix: m, Preference: 2}
	if _, err := NewPolicy(PolicyConfig{Name: "RR", State: st, Proximity: bad}); err == nil {
		t.Error("invalid proximity config should propagate")
	}
}

// TestRingProximityConfig covers the shared geo setup helper: the sim
// and the live server must build identical ProximityConfigs from the
// same knobs.
func TestRingProximityConfig(t *testing.T) {
	if pc, err := RingProximityConfig(8, 4, 0, 0, 0); pc != nil || err != nil {
		t.Errorf("zero preference: got (%v, %v), want (nil, nil)", pc, err)
	}
	if _, err := RingProximityConfig(8, 4, 1.5, 0, 0); err == nil {
		t.Error("preference > 1 must be rejected")
	}
	if _, err := RingProximityConfig(8, 4, 0.5, -1, 0); err == nil {
		t.Error("negative base latency must be rejected")
	}
	if _, err := RingProximityConfig(0, 4, 0.5, 0, 0); err == nil {
		t.Error("zero domains must be rejected")
	}
	pc, err := RingProximityConfig(8, 4, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Preference != 0.5 {
		t.Errorf("preference = %v", pc.Preference)
	}
	// Both-zero latencies take the documented default shape.
	want, err := RingLatencies(8, 4, DefaultGeoBaseMS, DefaultGeoSpanMS)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < 4; i++ {
			if pc.Matrix.Latency(j, i) != want.Latency(j, i) {
				t.Fatalf("default matrix differs at (%d,%d)", j, i)
			}
		}
	}
	// Explicit latencies are passed through.
	pc2, err := RingProximityConfig(8, 4, 1, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc2.Matrix.Latency(0, 0); got != 5 {
		t.Errorf("explicit base latency = %v, want 5", got)
	}
}
