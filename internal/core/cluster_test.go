package core

import (
	"math"
	"testing"
)

func TestNewClusterValidation(t *testing.T) {
	tests := []struct {
		name    string
		caps    []float64
		wantErr bool
	}{
		{"valid homogeneous", []float64{10, 10, 10}, false},
		{"valid decreasing", []float64{10, 8, 5}, false},
		{"empty", nil, true},
		{"zero capacity", []float64{10, 0}, true},
		{"negative capacity", []float64{10, -1}, true},
		{"NaN", []float64{math.NaN()}, true},
		{"Inf", []float64{math.Inf(1)}, true},
		{"not sorted", []float64{5, 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCluster(tt.caps)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewCluster(%v) error = %v, wantErr %v", tt.caps, err, tt.wantErr)
			}
		})
	}
}

func TestClusterDerivedQuantities(t *testing.T) {
	c := MustCluster([]float64{100, 80, 50})
	if c.N() != 3 {
		t.Errorf("N = %d", c.N())
	}
	if c.Capacity(1) != 80 {
		t.Errorf("Capacity(1) = %v", c.Capacity(1))
	}
	if got := c.Alpha(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Alpha(2) = %v, want 0.5", got)
	}
	if got := c.Rho(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Rho = %v, want 2", got)
	}
	if got := c.Total(); math.Abs(got-230) > 1e-12 {
		t.Errorf("Total = %v, want 230", got)
	}
	if got := c.Heterogeneity(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Heterogeneity = %v, want 0.5", got)
	}
	alphas := c.Alphas()
	if len(alphas) != 3 || alphas[0] != 1 {
		t.Errorf("Alphas = %v", alphas)
	}
	caps := c.Capacities()
	caps[0] = -1
	if c.Capacity(0) != 100 {
		t.Error("Capacities() must return a copy")
	}
}

func TestMustClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCluster on invalid input should panic")
		}
	}()
	MustCluster(nil)
}

func TestHeterogeneityVectorTable2(t *testing.T) {
	tests := []struct {
		level int
		want  []float64
	}{
		{20, []float64{1, 1, 1, 0.8, 0.8, 0.8, 0.8}},
		{35, []float64{1, 1, 0.8, 0.8, 0.65, 0.65, 0.65}},
		{50, []float64{1, 1, 0.8, 0.8, 0.5, 0.5, 0.5}},
		{65, []float64{1, 1, 0.8, 0.8, 0.35, 0.35, 0.35}},
	}
	for _, tt := range tests {
		got, err := HeterogeneityVector(7, tt.level)
		if err != nil {
			t.Fatalf("level %d: %v", tt.level, err)
		}
		for i := range tt.want {
			if math.Abs(got[i]-tt.want[i]) > 1e-12 {
				t.Errorf("level %d server %d: got %v, want %v (paper Table 2)", tt.level, i, got[i], tt.want[i])
			}
		}
	}
}

func TestHeterogeneityVectorGeneralized(t *testing.T) {
	for _, n := range []int{5, 9, 17} {
		for _, level := range []int{20, 35, 50, 65} {
			v, err := HeterogeneityVector(n, level)
			if err != nil {
				t.Fatalf("n=%d level=%d: %v", n, level, err)
			}
			if len(v) != n {
				t.Fatalf("n=%d: got %d servers", n, len(v))
			}
			if v[0] != 1 {
				t.Errorf("n=%d level=%d: fastest relative capacity %v, want 1", n, level, v[0])
			}
			want := 1 - float64(level)/100
			if math.Abs(v[n-1]-want) > 1e-12 {
				t.Errorf("n=%d level=%d: slowest %v, want %v", n, level, v[n-1], want)
			}
			for i := 1; i < n; i++ {
				if v[i] > v[i-1] {
					t.Errorf("n=%d level=%d: not sorted at %d", n, level, i)
				}
			}
		}
	}
}

func TestHeterogeneityVectorZeroLevel(t *testing.T) {
	v, err := HeterogeneityVector(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x != 1 {
			t.Errorf("server %d relative capacity %v, want 1 for homogeneous", i, x)
		}
	}
}

func TestHeterogeneityVectorErrors(t *testing.T) {
	if _, err := HeterogeneityVector(0, 20); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := HeterogeneityVector(7, -1); err == nil {
		t.Error("negative level should error")
	}
	if _, err := HeterogeneityVector(7, 100); err == nil {
		t.Error("level 100 should error")
	}
}

func TestScaledCluster(t *testing.T) {
	c, err := ScaledCluster(7, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Total()-500) > 1e-9 {
		t.Errorf("Total = %v, want the paper's constant 500 hits/s", c.Total())
	}
	if math.Abs(c.Heterogeneity()-0.2) > 1e-12 {
		t.Errorf("Heterogeneity = %v, want 0.2", c.Heterogeneity())
	}
	// All four paper levels keep total capacity constant.
	for _, level := range []int{20, 35, 50, 65} {
		c, err := ScaledCluster(7, level, 500)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.Total()-500) > 1e-9 {
			t.Errorf("level %d: Total = %v, want 500", level, c.Total())
		}
	}
	if _, err := ScaledCluster(7, 20, 0); err == nil {
		t.Error("zero total capacity should error")
	}
	if _, err := ScaledCluster(0, 20, 500); err == nil {
		t.Error("zero servers should error")
	}
}
