package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

func newMembershipState(t *testing.T, caps []float64, domains int) *State {
	t.Helper()
	cl, err := NewCluster(caps)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(cl, domains)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSnapshotAlphaRhoMatchStaticCluster(t *testing.T) {
	st := newMembershipState(t, []float64{100, 80, 50}, 4)
	sn := st.Snapshot()
	cl := sn.Cluster()
	for i := 0; i < cl.N(); i++ {
		if sn.Alpha(i) != cl.Alpha(i) {
			t.Errorf("Alpha(%d): snapshot %v != cluster %v", i, sn.Alpha(i), cl.Alpha(i))
		}
	}
	if sn.Rho() != cl.Rho() {
		t.Errorf("Rho: snapshot %v != cluster %v", sn.Rho(), cl.Rho())
	}
}

func TestAddServer(t *testing.T) {
	st := newMembershipState(t, []float64{100, 50}, 4)
	v0 := st.Version()
	i, err := st.AddServer(200)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Fatalf("AddServer index = %d, want 2", i)
	}
	sn := st.Snapshot()
	if !sn.Member(2) || sn.Draining(2) || sn.Down(2) || sn.Alarmed(2) {
		t.Error("new server should be a clean active member")
	}
	if sn.MemberServers() != 3 || sn.Cluster().N() != 3 {
		t.Errorf("members = %d, slots = %d, want 3, 3", sn.MemberServers(), sn.Cluster().N())
	}
	// The capacity vector is now unsorted (100, 50, 200); Alpha and Rho
	// renormalize against the member extremes, not positionally.
	if got := sn.Alpha(2); got != 1 {
		t.Errorf("Alpha(new max) = %v, want 1", got)
	}
	if got := sn.Alpha(1); got != 0.25 {
		t.Errorf("Alpha(1) = %v, want 0.25", got)
	}
	if got := sn.Rho(); got != 4 {
		t.Errorf("Rho = %v, want 4", got)
	}
	if st.Version() == v0 {
		t.Error("AddServer should bump the version for TTL recalibration")
	}
	// The new server is immediately schedulable.
	if !sn.available(2) {
		t.Error("new server should be available")
	}

	if _, err := st.AddServer(0); err == nil {
		t.Error("non-positive capacity should error")
	}
	if _, err := st.AddServer(math.NaN()); err == nil {
		t.Error("NaN capacity should error")
	}
}

func TestSetCapacity(t *testing.T) {
	st := newMembershipState(t, []float64{100, 50}, 4)
	v0 := st.Version()
	if err := st.SetCapacity(1, 100); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	if got := sn.Rho(); got != 1 {
		t.Errorf("Rho after equalizing = %v, want 1", got)
	}
	if got := sn.Alpha(1); got != 1 {
		t.Errorf("Alpha(1) = %v, want 1", got)
	}
	if st.Version() == v0 {
		t.Error("capacity change should bump version")
	}
	v1 := st.Version()
	if err := st.SetCapacity(1, 100); err != nil {
		t.Fatal(err)
	}
	if st.Version() != v1 {
		t.Error("no-op capacity change should not bump version")
	}
	if err := st.SetCapacity(5, 100); err == nil {
		t.Error("out-of-range index should error")
	}
	if err := st.SetCapacity(1, -1); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestDrainRemoveReinstateLifecycle(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100, 100}, 4)
	if err := st.DrainServer(1); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	if !sn.Member(1) || !sn.Draining(1) {
		t.Error("draining server should stay a member")
	}
	if sn.available(1) {
		t.Error("draining server must not be schedulable")
	}
	if sn.EligibleServers() != 2 {
		t.Errorf("eligible = %d, want 2", sn.EligibleServers())
	}
	// Idempotent drain.
	if err := st.DrainServer(1); err != nil {
		t.Fatal(err)
	}

	if err := st.RemoveServer(1); err != nil {
		t.Fatal(err)
	}
	sn = st.Snapshot()
	if sn.Member(1) || sn.Draining(1) {
		t.Error("removed server should be retired with flags cleared")
	}
	if sn.MemberServers() != 2 {
		t.Errorf("members = %d, want 2", sn.MemberServers())
	}
	// Slot indices are stable: server 2 is still server 2.
	if !sn.Member(2) || !sn.available(2) {
		t.Error("surviving server index shifted")
	}
	// Retired slots reject drain/remove and ignore alarm/liveness.
	if err := st.DrainServer(1); err == nil {
		t.Error("draining a retired slot should error")
	}
	if err := st.RemoveServer(1); err == nil {
		t.Error("removing a retired slot should error")
	}
	if err := st.SetAlarm(1, true); err != nil || st.Alarmed(1) {
		t.Error("alarm for retired slot should be silently ignored")
	}
	if err := st.SetDown(1, true); err != nil || st.Down(1) {
		t.Error("liveness for retired slot should be silently ignored")
	}

	// Reinstate revives the slot at a new capacity.
	if err := st.ReinstateServer(1, 50); err != nil {
		t.Fatal(err)
	}
	sn = st.Snapshot()
	if !sn.Member(1) || sn.Draining(1) || sn.Down(1) || sn.Alarmed(1) {
		t.Error("reinstated server should be a clean member")
	}
	if got := sn.Cluster().Capacity(1); got != 50 {
		t.Errorf("reinstated capacity = %v, want 50", got)
	}
	if got := sn.Rho(); got != 2 {
		t.Errorf("Rho = %v, want 2", got)
	}
}

func TestReinstateCancelsDrain(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100}, 4)
	if err := st.DrainServer(0); err != nil {
		t.Fatal(err)
	}
	if err := st.ReinstateServer(0, 100); err != nil {
		t.Fatal(err)
	}
	if sn := st.Snapshot(); sn.Draining(0) || !sn.available(0) {
		t.Error("reinstate should cancel the drain")
	}
}

func TestRemoveLastMemberRefused(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100}, 4)
	if err := st.RemoveServer(0); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveServer(1); err == nil {
		t.Error("removing the last member should error")
	}
}

func TestAlarmsOverEligibleServers(t *testing.T) {
	// With one server draining, "all alarmed" must be judged over the
	// eligible servers: if both remaining eligible servers are alarmed,
	// alarms are ignored and they stay schedulable.
	st := newMembershipState(t, []float64{100, 100, 100}, 4)
	if err := st.DrainServer(2); err != nil {
		t.Fatal(err)
	}
	if err := st.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	if sn.available(0) {
		t.Error("alarmed server should be skipped while another eligible server is calm")
	}
	if err := st.SetAlarm(1, true); err != nil {
		t.Fatal(err)
	}
	sn = st.Snapshot()
	if !sn.available(0) || !sn.available(1) {
		t.Error("with every eligible server alarmed, alarms must be ignored")
	}
	if sn.available(2) {
		t.Error("draining server stays unavailable regardless of alarms")
	}
}

func TestScheduleSkipsDrainingAndRetired(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100, 100}, 4)
	pol, err := NewPolicy(PolicyConfig{Name: "DRR-TTL/S_K", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DrainServer(1); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		d, err := pol.Schedule(k % 4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Server == 1 {
			t.Fatal("scheduled the draining server")
		}
	}
	if err := st.RemoveServer(1); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 30; k++ {
		d, err := pol.Schedule(k % 4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Server == 1 {
			t.Fatal("scheduled a retired server")
		}
	}
}

func TestScheduleUsesAddedServer(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100}, 4)
	pol, err := NewPolicy(PolicyConfig{Name: "DRR-TTL/S_K", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.Schedule(0); err != nil {
		t.Fatal(err)
	}
	i, err := st.AddServer(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for k := 0; k < 30; k++ {
		d, err := pol.Schedule(k % 4)
		if err != nil {
			t.Fatal(err)
		}
		if d.Server == i {
			seen = true
		}
	}
	if !seen {
		t.Error("added server never scheduled")
	}
	if pol.ServerDecisions(i) == 0 {
		t.Error("per-server counter for added server not grown")
	}
	stats := pol.Stats()
	if len(stats.PerServer) != 3 {
		t.Errorf("Stats.PerServer length = %d, want 3", len(stats.PerServer))
	}
}

func TestAllDownOverMembers(t *testing.T) {
	st := newMembershipState(t, []float64{100, 100, 100}, 4)
	if err := st.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	if err := st.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := st.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if !st.AllDown() {
		t.Error("every member down: AllDown should hold even with a retired slot")
	}
	pol, err := NewPolicy(PolicyConfig{Name: "DRR-TTL/S_1", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.Schedule(0); err != ErrNoServers {
		t.Errorf("Schedule = %v, want ErrNoServers", err)
	}
}

func TestCursorsRoundTrip(t *testing.T) {
	for _, name := range []string{"RR", "RR2", "PRR-TTL/1", "PRR2-TTL/2"} {
		st := newMembershipState(t, []float64{100, 80, 50}, 4)
		pol, err := NewPolicy(PolicyConfig{Name: name, State: st, Rand: rand.New(rand.NewPCG(1, 2))})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 7; k++ {
			if _, err := pol.Schedule(k % 4); err != nil {
				t.Fatal(err)
			}
		}
		cur := pol.Cursors()
		if cur == nil {
			t.Fatalf("%s: no cursors", name)
		}
		st2 := newMembershipState(t, []float64{100, 80, 50}, 4)
		pol2, err := NewPolicy(PolicyConfig{Name: name, State: st2, Rand: rand.New(rand.NewPCG(1, 2))})
		if err != nil {
			t.Fatal(err)
		}
		if !pol2.RestoreCursors(cur) {
			t.Fatalf("%s: restore refused", name)
		}
		got := pol2.Cursors()
		for i := range cur {
			if got[i] != cur[i] {
				t.Errorf("%s: cursor %d = %d, want %d", name, i, got[i], cur[i])
			}
		}
		if pol2.RestoreCursors(append(cur, 99)) {
			t.Errorf("%s: wrong-shape cursor vector accepted", name)
		}
	}
	// Ledger selectors carry no cursors.
	st := newMembershipState(t, []float64{100, 80}, 4)
	pol, err := NewPolicy(PolicyConfig{Name: "WRR", State: st})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Cursors() != nil {
		t.Error("WRR should not expose cursors")
	}
	if pol.RestoreCursors([]int64{1}) {
		t.Error("WRR should refuse cursor restore")
	}
}

func TestEstimatorStateRoundTrip(t *testing.T) {
	e, err := NewEstimator(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Record(0, 90)
	e.Record(1, 10)
	e.Roll(10)
	e.Record(2, 40)
	st := e.State()

	e2, err := NewEstimator(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(st); err != nil {
		t.Fatal(err)
	}
	if e2.Rolls() != e.Rolls() {
		t.Errorf("rolls = %d, want %d", e2.Rolls(), e.Rolls())
	}
	w1, w2 := e.Weights(), e2.Weights()
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Errorf("weight %d = %v, want %v", j, w2[j], w1[j])
		}
	}
	// Un-rolled counts survive too.
	e.Roll(10)
	e2.Roll(10)
	w1, w2 = e.Weights(), e2.Weights()
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Errorf("post-roll weight %d = %v, want %v", j, w2[j], w1[j])
		}
	}

	// Invalid states are refused and leave the estimator unchanged.
	bad, _ := NewEstimator(3, 0.5)
	for _, s := range []EstimatorState{
		{Counts: []float64{1}, Rates: []float64{1, 1, 1}},
		{Counts: []float64{1, 1, 1}, Rates: []float64{1, 1, -1}},
		{Counts: []float64{1, 1, math.NaN()}, Rates: []float64{1, 1, 1}},
		{Counts: []float64{1, 1, 1}, Rates: []float64{1, 1, 1}, Rolls: -1},
	} {
		if err := bad.Restore(s); err == nil {
			t.Errorf("state %+v should be refused", s)
		}
	}
	if bad.Rolls() != 0 {
		t.Error("failed restore mutated the estimator")
	}
}

func TestDrainVersionBumpRecalibratesTTL(t *testing.T) {
	st := newMembershipState(t, []float64{100, 25}, 4)
	ttl, err := NewTTLPolicy(TTLVariant{Classes: OneClass, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	base0 := ttl.Base(st.Snapshot())
	// Draining the slow server leaves only α=1 servers; the calibrated
	// base must change to keep the mean request rate constant.
	if err := st.DrainServer(1); err != nil {
		t.Fatal(err)
	}
	base1 := ttl.Base(st.Snapshot())
	if base0 == base1 {
		t.Errorf("TTL base did not recalibrate across drain: %v", base0)
	}
}
