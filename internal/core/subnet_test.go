package core

import (
	"net/netip"
	"testing"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSubnetMapperLongestPrefix(t *testing.T) {
	m, err := NewSubnetMapper([]SubnetRule{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Domain: 1},
		{Prefix: mustPrefix(t, "10.1.0.0/16"), Domain: 2},
		{Prefix: mustPrefix(t, "10.1.2.0/24"), Domain: 3},
		{Prefix: mustPrefix(t, "2001:db8::/32"), Domain: 4},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		want int
	}{
		{"10.9.9.9", 1},        // /8 only
		{"10.1.9.9", 2},        // /16 beats /8
		{"10.1.2.3", 3},        // /24 beats /16 and /8
		{"192.168.1.1", 0},     // no rule → fallback
		{"2001:db8::1", 4},     // v6 rule
		{"2001:db9::1", 0},     // v6 miss → fallback
		{"::ffff:10.1.2.3", 3}, // 4-mapped-6 matches as IPv4
	}
	for _, c := range cases {
		if got := m.Domain(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Domain(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
	if got := m.Domain(netip.Addr{}); got != 0 {
		t.Errorf("Domain(invalid) = %d, want fallback", got)
	}
}

func TestSubnetMapperNormalizesPrefixes(t *testing.T) {
	// An unmasked rule (host bits set) must still match its whole network.
	m, err := NewSubnetMapper([]SubnetRule{
		{Prefix: mustPrefix(t, "10.1.2.77/24"), Domain: 5},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Domain(netip.MustParseAddr("10.1.2.3")); got != 5 {
		t.Errorf("Domain(10.1.2.3) = %d, want 5 via masked rule", got)
	}
	rules := m.Rules()
	if len(rules) != 1 || rules[0].Prefix != mustPrefix(t, "10.1.2.0/24") {
		t.Errorf("Rules() = %v, want the masked /24", rules)
	}
}

func TestSubnetMapperDomainAllocsFree(t *testing.T) {
	m, err := NewSubnetMapper([]SubnetRule{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Domain: 1},
		{Prefix: mustPrefix(t, "10.1.0.0/16"), Domain: 2},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := netip.MustParseAddr("10.1.2.3")
	if n := testing.AllocsPerRun(100, func() { _ = m.Domain(addr) }); n != 0 {
		t.Errorf("Domain allocates %v times per call, want 0", n)
	}
}

func TestSubnetMapperRejectsBadRules(t *testing.T) {
	if _, err := NewSubnetMapper(nil, -1); err == nil {
		t.Error("negative fallback should error")
	}
	if _, err := NewSubnetMapper([]SubnetRule{{Domain: 1}}, 0); err == nil {
		t.Error("invalid prefix should error")
	}
	if _, err := NewSubnetMapper([]SubnetRule{
		{Prefix: mustPrefix(t, "10.0.0.0/8"), Domain: -3},
	}, 0); err == nil {
		t.Error("negative rule domain should error")
	}
}
