package core

// Snapshot is an immutable, internally consistent view of the
// scheduler state: the cluster, the hidden-load weight estimates, the
// derived two-tier class partition, and the per-server alarm,
// liveness, and membership flags, all frozen at one instant.
//
// Snapshots are built copy-on-write by State's mutators and published
// atomically; once obtained from State.Snapshot they are safe for
// unsynchronized concurrent reads and never change. The query hot path
// (Policy.Schedule) loads one snapshot per decision so that the
// selector and the TTL policy agree on what the cluster looked like,
// with no lock on the read side.
//
// Server lifecycle: a slot is a *member* from AddServer (or initial
// construction) until RemoveServer retires it. Slot indices are
// stable for the life of a State — removal never renumbers the
// surviving servers, so externally held indices (load reports, DNS
// address tables) stay valid across membership churn. A member can be
// *draining* (no new mappings, but still resolvable while cached
// mappings point at it — the paper's hidden-load window), *down*
// (failed), or *alarmed* (overloaded); a retired slot is none of
// these and is never scheduled again unless reinstated.
type Snapshot struct {
	cluster *Cluster
	beta    float64 // class threshold; hot iff weight > beta

	weights []float64     // relative hidden load weights, sum 1
	classes []DomainClass // derived from weights and beta
	wMax    float64       // weight of the most popular domain
	wHot    float64       // mean weight of the hot class
	wNormal float64       // mean weight of the normal class
	hotN    int           // cached hot-class size (avoids O(K) scans)

	alarmed  []bool
	down     []bool
	member   []bool // false = retired slot (removed from the cluster)
	draining []bool // member, no new mappings, TTL window running

	// Derived membership counts, recomputed by recount() on every
	// flag mutation (control-plane rate, never on the query path).
	nAlarmed  int // alarmed members
	nDown     int // down members
	nMember   int
	nEligible int // member && !down && !draining
	nAlarmedE int // eligible && alarmed

	// cMax/cMin are the extreme member capacities, the normalization
	// for the relative capacities α_i and the power ratio ρ. For a
	// statically built (sorted) cluster they equal C_1 and C_N, so
	// Snapshot.Alpha/Rho match Cluster.Alpha/Rho exactly.
	cMax, cMin float64

	// version increments whenever weights, β, or cluster membership
	// change, letting TTL policies cache their calibration until the
	// state moves.
	version uint64
}

// clone returns a deep copy of the snapshot for copy-on-write
// mutation. The cluster is shared: it is immutable after construction
// (membership mutators that change capacities install a new one).
func (sn *Snapshot) clone() *Snapshot {
	next := *sn
	next.weights = append([]float64(nil), sn.weights...)
	next.classes = append([]DomainClass(nil), sn.classes...)
	next.alarmed = append([]bool(nil), sn.alarmed...)
	next.down = append([]bool(nil), sn.down...)
	next.member = append([]bool(nil), sn.member...)
	next.draining = append([]bool(nil), sn.draining...)
	return &next
}

// reclassify recomputes the derived partition data of a snapshot under
// construction. It must only be called before the snapshot is
// published.
func (sn *Snapshot) reclassify() {
	sn.version++
	if len(sn.classes) != len(sn.weights) {
		sn.classes = make([]DomainClass, len(sn.weights))
	}
	sn.wMax = 0
	var hotSum, normSum float64
	var hotN, normN int
	for _, v := range sn.weights {
		if v > sn.wMax {
			sn.wMax = v
		}
	}
	for j, v := range sn.weights {
		if v > sn.beta {
			sn.classes[j] = ClassHot
			hotSum += v
			hotN++
		} else {
			sn.classes[j] = ClassNormal
			normSum += v
			normN++
		}
	}
	sn.hotN = hotN
	// Degenerate partitions (all domains in one class) fall back to the
	// overall mean so that TTL/2 stays well defined.
	mean := 1 / float64(len(sn.weights))
	sn.wHot, sn.wNormal = mean, mean
	if hotN > 0 {
		sn.wHot = hotSum / float64(hotN)
	}
	if normN > 0 {
		sn.wNormal = normSum / float64(normN)
	}
}

// recount recomputes the membership-derived counts and the capacity
// extremes of a snapshot under construction. Mutators call it after
// changing any alarm/down/member/draining flag or the cluster; it is
// O(N) but runs only at control-plane rate.
func (sn *Snapshot) recount() {
	sn.nAlarmed, sn.nDown, sn.nMember, sn.nEligible, sn.nAlarmedE = 0, 0, 0, 0, 0
	sn.cMax, sn.cMin = 0, 0
	for i := range sn.member {
		if !sn.member[i] {
			continue
		}
		sn.nMember++
		c := sn.cluster.Capacity(i)
		if sn.cMax == 0 || c > sn.cMax {
			sn.cMax = c
		}
		if sn.cMin == 0 || c < sn.cMin {
			sn.cMin = c
		}
		if sn.alarmed[i] {
			sn.nAlarmed++
		}
		if sn.down[i] {
			sn.nDown++
		}
		if !sn.down[i] && !sn.draining[i] {
			sn.nEligible++
			if sn.alarmed[i] {
				sn.nAlarmedE++
			}
		}
	}
}

// Cluster returns the server cluster. N() counts slots, including
// retired ones; see Member for slot standing.
func (sn *Snapshot) Cluster() *Cluster { return sn.cluster }

// Domains returns the number of connected domains.
func (sn *Snapshot) Domains() int { return len(sn.weights) }

// Beta returns the class threshold β.
func (sn *Snapshot) Beta() float64 { return sn.beta }

// Version returns the state version this snapshot was built at; it
// increments whenever the weights, the class threshold, or cluster
// membership change.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Weight returns the relative hidden load weight of domain j.
func (sn *Snapshot) Weight(j int) float64 { return sn.weights[j] }

// Weights returns a copy of the relative hidden load weight vector.
func (sn *Snapshot) Weights() []float64 {
	return append([]float64(nil), sn.weights...)
}

// MaxWeight returns γ_max, the weight of the most popular domain.
func (sn *Snapshot) MaxWeight() float64 { return sn.wMax }

// Class returns the two-tier class of domain j.
func (sn *Snapshot) Class(j int) DomainClass { return sn.classes[j] }

// ClassMeanWeight returns the mean hidden load weight of a class,
// used by the two-class TTL policies.
func (sn *Snapshot) ClassMeanWeight(c DomainClass) float64 {
	if c == ClassHot {
		return sn.wHot
	}
	return sn.wNormal
}

// HotDomains returns how many domains are currently in the hot class.
// The count is computed once per reclassification, not per call.
func (sn *Snapshot) HotDomains() int { return sn.hotN }

// Alpha returns the relative capacity α_i = C_i / C_max of server i,
// normalized over the member servers so that dynamically added
// capacity re-scales the whole vector. For a statically built cluster
// it equals Cluster.Alpha.
func (sn *Snapshot) Alpha(i int) float64 {
	if sn.cMax <= 0 {
		return 1
	}
	return sn.cluster.Capacity(i) / sn.cMax
}

// Rho returns the processor power ratio ρ = C_max / C_min over the
// member servers.
func (sn *Snapshot) Rho() float64 {
	if sn.cMin <= 0 {
		return 1
	}
	return sn.cMax / sn.cMin
}

// Alarmed reports whether server i has declared itself critically
// loaded.
func (sn *Snapshot) Alarmed(i int) bool { return sn.alarmed[i] }

// AllAlarmed reports whether every member server is currently alarmed,
// in which case selectors ignore alarms (there is no better
// candidate).
func (sn *Snapshot) AllAlarmed() bool { return sn.nAlarmed == sn.nMember }

// Down reports whether server i is currently marked failed.
func (sn *Snapshot) Down(i int) bool { return sn.down[i] }

// AllDown reports whether no member server is live; Schedule then
// returns ErrNoServers.
func (sn *Snapshot) AllDown() bool { return sn.nDown == sn.nMember }

// LiveServers returns the number of member servers not marked down.
func (sn *Snapshot) LiveServers() int { return sn.nMember - sn.nDown }

// Member reports whether slot i currently belongs to the cluster.
// Retired slots keep their index (indices are stable across
// membership churn) but are never scheduled.
func (sn *Snapshot) Member(i int) bool {
	return i >= 0 && i < len(sn.member) && sn.member[i]
}

// Draining reports whether server i is draining: a member that
// receives no new mappings while the hidden-load window of its
// outstanding TTLs runs out.
func (sn *Snapshot) Draining(i int) bool {
	return i >= 0 && i < len(sn.draining) && sn.draining[i]
}

// MemberServers returns the number of non-retired slots.
func (sn *Snapshot) MemberServers() int { return sn.nMember }

// EligibleServers returns the number of servers a selector may pick
// from before alarms are considered: member, not down, not draining.
func (sn *Snapshot) EligibleServers() int { return sn.nEligible }

// available reports whether server i should be considered by a
// selector: a member, live, not draining, and not alarmed — unless
// every eligible server is alarmed, in which case alarms are ignored
// (there is no better candidate). Retired, down, and draining servers
// are never available.
func (sn *Snapshot) available(i int) bool {
	if !sn.member[i] || sn.down[i] || sn.draining[i] {
		return false
	}
	return !sn.alarmed[i] || sn.nAlarmedE == sn.nEligible
}
