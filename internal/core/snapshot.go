package core

// Snapshot is an immutable, internally consistent view of the
// scheduler state: the cluster, the hidden-load weight estimates, the
// derived two-tier class partition, and the per-server alarm and
// liveness flags, all frozen at one instant.
//
// Snapshots are built copy-on-write by State's mutators and published
// atomically; once obtained from State.Snapshot they are safe for
// unsynchronized concurrent reads and never change. The query hot path
// (Policy.Schedule) loads one snapshot per decision so that the
// selector and the TTL policy agree on what the cluster looked like,
// with no lock on the read side.
type Snapshot struct {
	cluster *Cluster
	beta    float64 // class threshold; hot iff weight > beta

	weights []float64     // relative hidden load weights, sum 1
	classes []DomainClass // derived from weights and beta
	wMax    float64       // weight of the most popular domain
	wHot    float64       // mean weight of the hot class
	wNormal float64       // mean weight of the normal class
	hotN    int           // cached hot-class size (avoids O(K) scans)

	alarmed  []bool
	nAlarmed int

	down         []bool
	nDown        int
	nAlarmedLive int // servers both alarmed and not down

	// version increments whenever weights, β, or cluster membership
	// change, letting TTL policies cache their calibration until the
	// state moves.
	version uint64
}

// clone returns a deep copy of the snapshot for copy-on-write
// mutation. The cluster is shared: it is immutable after construction.
func (sn *Snapshot) clone() *Snapshot {
	next := *sn
	next.weights = append([]float64(nil), sn.weights...)
	next.classes = append([]DomainClass(nil), sn.classes...)
	next.alarmed = append([]bool(nil), sn.alarmed...)
	next.down = append([]bool(nil), sn.down...)
	return &next
}

// reclassify recomputes the derived partition data of a snapshot under
// construction. It must only be called before the snapshot is
// published.
func (sn *Snapshot) reclassify() {
	sn.version++
	if len(sn.classes) != len(sn.weights) {
		sn.classes = make([]DomainClass, len(sn.weights))
	}
	sn.wMax = 0
	var hotSum, normSum float64
	var hotN, normN int
	for _, v := range sn.weights {
		if v > sn.wMax {
			sn.wMax = v
		}
	}
	for j, v := range sn.weights {
		if v > sn.beta {
			sn.classes[j] = ClassHot
			hotSum += v
			hotN++
		} else {
			sn.classes[j] = ClassNormal
			normSum += v
			normN++
		}
	}
	sn.hotN = hotN
	// Degenerate partitions (all domains in one class) fall back to the
	// overall mean so that TTL/2 stays well defined.
	mean := 1 / float64(len(sn.weights))
	sn.wHot, sn.wNormal = mean, mean
	if hotN > 0 {
		sn.wHot = hotSum / float64(hotN)
	}
	if normN > 0 {
		sn.wNormal = normSum / float64(normN)
	}
}

// Cluster returns the server cluster.
func (sn *Snapshot) Cluster() *Cluster { return sn.cluster }

// Domains returns the number of connected domains.
func (sn *Snapshot) Domains() int { return len(sn.weights) }

// Beta returns the class threshold β.
func (sn *Snapshot) Beta() float64 { return sn.beta }

// Version returns the state version this snapshot was built at; it
// increments whenever the weights, the class threshold, or cluster
// membership change.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Weight returns the relative hidden load weight of domain j.
func (sn *Snapshot) Weight(j int) float64 { return sn.weights[j] }

// Weights returns a copy of the relative hidden load weight vector.
func (sn *Snapshot) Weights() []float64 {
	return append([]float64(nil), sn.weights...)
}

// MaxWeight returns γ_max, the weight of the most popular domain.
func (sn *Snapshot) MaxWeight() float64 { return sn.wMax }

// Class returns the two-tier class of domain j.
func (sn *Snapshot) Class(j int) DomainClass { return sn.classes[j] }

// ClassMeanWeight returns the mean hidden load weight of a class,
// used by the two-class TTL policies.
func (sn *Snapshot) ClassMeanWeight(c DomainClass) float64 {
	if c == ClassHot {
		return sn.wHot
	}
	return sn.wNormal
}

// HotDomains returns how many domains are currently in the hot class.
// The count is computed once per reclassification, not per call.
func (sn *Snapshot) HotDomains() int { return sn.hotN }

// Alarmed reports whether server i has declared itself critically
// loaded.
func (sn *Snapshot) Alarmed(i int) bool { return sn.alarmed[i] }

// AllAlarmed reports whether every server is currently alarmed, in
// which case selectors ignore alarms (there is no better candidate).
func (sn *Snapshot) AllAlarmed() bool { return sn.nAlarmed == len(sn.alarmed) }

// Down reports whether server i is currently marked failed.
func (sn *Snapshot) Down(i int) bool { return sn.down[i] }

// AllDown reports whether no server is live; Schedule then returns
// ErrNoServers.
func (sn *Snapshot) AllDown() bool { return sn.nDown == len(sn.down) }

// LiveServers returns the number of servers not marked down.
func (sn *Snapshot) LiveServers() int { return len(sn.down) - sn.nDown }

// available reports whether server i should be considered by a
// selector: live and not alarmed — unless every live server is
// alarmed, in which case alarms are ignored (there is no better
// candidate). A down server is never available.
func (sn *Snapshot) available(i int) bool {
	if sn.down[i] {
		return false
	}
	return !sn.alarmed[i] || sn.nAlarmedLive == len(sn.down)-sn.nDown
}
