package core

import (
	"fmt"
	"net/netip"
	"sort"
)

// Subnet-to-domain classification. The paper identifies a "connected
// domain" by the querying name server; with EDNS-Client-Subnet the
// identity shifts to the client's network prefix. SubnetMapper is the
// shared classifier both paths use for explicit network→domain
// topologies: longest-prefix match over a rule table, with a fallback
// domain for addresses no rule covers.

// SubnetRule maps one network prefix to a connected-domain index.
type SubnetRule struct {
	Prefix netip.Prefix
	Domain int
}

// SubnetMapper classifies addresses into connected domains by
// longest-prefix match. Immutable after construction and safe for
// concurrent use; Domain allocates nothing, so it can sit on the DNS
// server's zero-alloc hot path.
type SubnetMapper struct {
	rules    []SubnetRule // sorted by descending prefix length
	fallback int
}

// NewSubnetMapper builds a mapper from the rule table. Rules are
// matched most-specific first; addresses outside every rule map to
// fallback. Prefixes are normalized (masked); IPv4-mapped IPv6
// addresses are matched as IPv4.
func NewSubnetMapper(rules []SubnetRule, fallback int) (*SubnetMapper, error) {
	if fallback < 0 {
		return nil, fmt.Errorf("core: subnet mapper fallback domain %d is negative", fallback)
	}
	out := make([]SubnetRule, len(rules))
	for i, r := range rules {
		if !r.Prefix.IsValid() {
			return nil, fmt.Errorf("core: subnet rule %d has an invalid prefix", i)
		}
		if r.Domain < 0 {
			return nil, fmt.Errorf("core: subnet rule %d maps to negative domain %d", i, r.Domain)
		}
		out[i] = SubnetRule{Prefix: r.Prefix.Masked(), Domain: r.Domain}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].Prefix.Bits() > out[b].Prefix.Bits()
	})
	return &SubnetMapper{rules: out, fallback: fallback}, nil
}

// Domain returns the connected-domain index for an address: the
// most-specific matching rule's domain, or the fallback when no rule
// contains the address (including the invalid address).
func (m *SubnetMapper) Domain(addr netip.Addr) int {
	if !addr.IsValid() {
		return m.fallback
	}
	addr = addr.Unmap()
	for _, r := range m.rules {
		if r.Prefix.Contains(addr) {
			return r.Domain
		}
	}
	return m.fallback
}

// Rules returns a copy of the normalized rule table in match order
// (most-specific first).
func (m *SubnetMapper) Rules() []SubnetRule {
	return append([]SubnetRule(nil), m.rules...)
}
