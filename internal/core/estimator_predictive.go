package core

import (
	"fmt"
	"math"
)

// predictiveClasses is the number of resolver classes the predictive
// estimator distinguishes. Resolvers are classified by the TTL band of
// the mapping they received (below/above the running mean handed-out
// TTL): under adaptive-TTL policies the TTL encodes the scheduler's
// belief about the requesting domain's hidden load, so the two bands
// separate the heavy-domain resolvers (short TTLs, frequent renewals)
// from the light ones.
const predictiveClasses = 2

// maxTrackedWindows bounds the active-mapping windows tracked per
// (domain, class). When full, a new window replaces the
// soonest-expiring one — the bound trades a little forecast mass at
// extreme decision rates for a hard memory cap.
const maxTrackedWindows = 512

// meanTTLAlpha smooths the running mean handed-out TTL that splits the
// resolver classes.
const meanTTLAlpha = 0.2

// mappingWindow is one outstanding resolver-cache entry created by a
// scheduling decision: the mapping was handed out at start and can
// drive traffic until expiry (both in engine seconds).
type mappingWindow struct {
	start, expiry float64
}

// ewmaRate is one exponentially smoothed rate estimate with its sample
// count (the first sample initializes instead of averaging).
type ewmaRate struct {
	rate  float64
	rolls int
}

func (r *ewmaRate) fold(sample, alpha float64) {
	if r.rolls == 0 {
		r.rate = sample
	} else {
		r.rate = alpha*sample + (1-alpha)*r.rate
	}
	r.rolls++
}

// PredictiveEstimator is the NS-cache forecasting estimator (ROADMAP
// item 1, inverting Wang's Modeling and Predicting DNS Server Load):
// the DNS knows every TTL it handed out, so it maintains the set of
// resolver-cache entries still alive per (domain, resolver-class) and
// learns, at each collection roll, how many hits one active mapping
// generates per second. Between rolls the forecast
//
//	demand_j(now) = Σ_c  active_jc(now) × perMappingRate_jc
//
// reacts to a decision burst (a flash crowd arriving through fresh
// resolvers) immediately, one to two collection intervals before the
// reactive EWMA sees the hits in a report.
//
// The reactive EWMA is retained as the floor: Rates returns
// max(reactive, forecast) per domain, so the predictive estimator can
// only raise the alarm earlier, never lose the reports' ground truth.
type PredictiveEstimator struct {
	domains int
	alpha   float64

	// Reactive base: identical EWMA over reported hit rates.
	counts []float64
	rates  []float64
	rolls  int

	// NS-cache model.
	meanTTL  float64 // running mean handed-out TTL (class split point)
	ttlObs   int
	windows  [][]mappingWindow // per domain*predictiveClasses+class
	lastNow  float64           // latest engine time observed
	lastRoll float64           // engine time of the last Roll (attribution fence)

	mapRate []ewmaRate // learned hits/s per active mapping, per (domain, class)
	domRate []ewmaRate // per-domain fallback
	globals ewmaRate   // global fallback

	prevForecast []float64 // forecast made at the previous roll, for error tracking
	haveForecast bool
	forecastErr  ewmaRate // smoothed mean absolute forecast error, hits/s
}

// NewPredictiveEstimator creates a predictive estimator for the given
// number of domains. alpha is the EWMA weight of the newest interval,
// shared by the reactive base and the learned per-mapping rates.
func NewPredictiveEstimator(domains int, alpha float64) (*PredictiveEstimator, error) {
	if domains <= 0 {
		return nil, fmt.Errorf("core: estimator needs at least one domain")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: EWMA alpha %v out of (0,1]", alpha)
	}
	return &PredictiveEstimator{
		domains: domains,
		alpha:   alpha,
		counts:  make([]float64, domains),
		rates:   make([]float64, domains),
		windows: make([][]mappingWindow, domains*predictiveClasses),
		mapRate: make([]ewmaRate, domains*predictiveClasses),
		domRate: make([]ewmaRate, domains),
	}, nil
}

// Kind identifies the estimator implementation (EstimatorPredictive).
func (e *PredictiveEstimator) Kind() string { return EstimatorPredictive }

// Record accumulates hits observed from a domain since the last Roll,
// reporting whether the observation was accepted.
func (e *PredictiveEstimator) Record(domain int, hits float64) bool {
	if domain < 0 || domain >= e.domains || hits < 0 {
		return false
	}
	e.counts[domain] += hits
	return true
}

// classOf buckets a handed-out TTL into its resolver class using the
// running mean TTL as the split point.
func (e *PredictiveEstimator) classOf(ttl float64) int {
	if e.ttlObs > 0 && ttl > e.meanTTL {
		return 1
	}
	return 0
}

// ObserveDecision feeds one scheduling decision: a resolver received a
// mapping for domain at engine time now with the given TTL. Implements
// Forecaster.
func (e *PredictiveEstimator) ObserveDecision(domain int, now, ttl float64) {
	if domain < 0 || domain >= e.domains || ttl <= 0 || math.IsNaN(now) || math.IsInf(now, 0) {
		return
	}
	if now > e.lastNow {
		e.lastNow = now
	}
	c := e.classOf(ttl)
	if e.ttlObs == 0 {
		e.meanTTL = ttl
	} else {
		e.meanTTL = meanTTLAlpha*ttl + (1-meanTTLAlpha)*e.meanTTL
	}
	e.ttlObs++

	dc := domain*predictiveClasses + c
	w := e.prune(dc)
	win := mappingWindow{start: now, expiry: now + ttl}
	if len(w) < maxTrackedWindows {
		e.windows[dc] = append(w, win)
		return
	}
	// Full: replace the soonest-expiring window if the new one lasts
	// longer, keeping the forecast horizon as long as possible.
	minAt, minExp := -1, win.expiry
	for i := range w {
		if w[i].expiry < minExp {
			minAt, minExp = i, w[i].expiry
		}
	}
	if minAt >= 0 {
		w[minAt] = win
	}
}

// prune drops windows of (domain, class) slot dc whose mapping-seconds
// the last Roll has already attributed, and returns the compacted
// slice. The fence is the last roll time, NOT the current time: a
// short-TTL window that expires mid-interval still owes its active
// seconds to the next Roll's attribution — dropping it early would
// shrink the denominator and inflate the learned per-mapping rate for
// exactly the hot, short-TTL domains the forecast matters most for.
func (e *PredictiveEstimator) prune(dc int) []mappingWindow {
	w := e.windows[dc]
	keep := w[:0]
	for _, win := range w {
		if win.expiry > e.lastRoll {
			keep = append(keep, win)
		}
	}
	e.windows[dc] = keep
	return keep
}

// Roll closes a collection interval: it folds the reported hits into
// the reactive EWMA exactly like the reactive estimator, then
// attributes the interval's hits to the mappings that were active
// during it to learn the per-mapping rates, and scores the forecast it
// made at the previous roll against what the reports said.
func (e *PredictiveEstimator) Roll(intervalSeconds float64) {
	if intervalSeconds <= 0 {
		return
	}
	rollNow := e.lastNow
	intervalStart := rollNow - intervalSeconds

	// Score the previous roll's forecast against this interval's truth.
	if e.haveForecast {
		var absErr float64
		for j := 0; j < e.domains; j++ {
			absErr += math.Abs(e.prevForecast[j] - e.counts[j]/intervalSeconds)
		}
		e.forecastErr.fold(absErr/float64(e.domains), e.alpha)
	}

	for j := 0; j < e.domains; j++ {
		rate := e.counts[j] / intervalSeconds

		// Active-mapping seconds per class within the closed interval:
		// each tracked window contributes its overlap with
		// [intervalStart, rollNow].
		var classSeconds [predictiveClasses]float64
		var total float64
		for c := 0; c < predictiveClasses; c++ {
			for _, win := range e.windows[j*predictiveClasses+c] {
				lo := math.Max(win.start, intervalStart)
				hi := math.Min(win.expiry, rollNow)
				if hi > lo {
					classSeconds[c] += hi - lo
				}
			}
			total += classSeconds[c]
		}
		if total > 0 {
			hits := e.counts[j]
			// Attribute the domain's hits across classes in proportion
			// to their active-mapping seconds, then learn hits per
			// mapping-second (= hits/s per active mapping).
			perMapSample := hits / total
			for c := 0; c < predictiveClasses; c++ {
				if classSeconds[c] > 0 {
					e.mapRate[j*predictiveClasses+c].fold(perMapSample, e.alpha)
				}
			}
			e.domRate[j].fold(perMapSample, e.alpha)
			e.globals.fold(perMapSample, e.alpha)
		}

		if e.rolls == 0 {
			e.rates[j] = rate
		} else {
			e.rates[j] = e.alpha*rate + (1-e.alpha)*e.rates[j]
		}
		e.counts[j] = 0
	}
	e.rolls++

	// Advance the attribution fence: windows that expired within the
	// closed interval have now contributed their seconds and can go.
	e.lastRoll = rollNow
	for dc := range e.windows {
		e.prune(dc)
	}

	// Record the forecast for the interval that starts now, to score at
	// the next roll.
	e.prevForecast = e.ForecastRates(rollNow)
	e.haveForecast = true
}

// Rolls returns how many collection intervals have completed.
func (e *PredictiveEstimator) Rolls() int { return e.rolls }

// perMappingRate returns the learned hits/s per active mapping for
// (domain, class), falling back from the class estimate to the domain
// estimate to the global one when a level has no data yet.
func (e *PredictiveEstimator) perMappingRate(domain, class int) float64 {
	if r := e.mapRate[domain*predictiveClasses+class]; r.rolls > 0 {
		return r.rate
	}
	if r := e.domRate[domain]; r.rolls > 0 {
		return r.rate
	}
	if e.globals.rolls > 0 {
		return e.globals.rate
	}
	return 0
}

// ForecastRates returns the predicted per-domain demand in hits per
// second at engine time now: active mappings times learned per-mapping
// rate, floored by the reactive EWMA. Implements Forecaster.
func (e *PredictiveEstimator) ForecastRates(now float64) []float64 {
	if now > e.lastNow {
		e.lastNow = now
	}
	out := make([]float64, e.domains)
	for j := 0; j < e.domains; j++ {
		var f float64
		for c := 0; c < predictiveClasses; c++ {
			// Count windows covering now; expired-but-unattributed ones
			// stay stored for the next Roll but carry no current demand.
			var active int
			for _, win := range e.prune(j*predictiveClasses + c) {
				if win.start <= now && now < win.expiry {
					active++
				}
			}
			if active > 0 {
				f += float64(active) * e.perMappingRate(j, c)
			}
		}
		out[j] = math.Max(e.rates[j], f)
	}
	return out
}

// ForecastError returns the smoothed mean absolute error of past
// forecasts in hits/s. Implements Forecaster.
func (e *PredictiveEstimator) ForecastError() float64 { return e.forecastErr.rate }

// Rates returns the current per-domain demand view: the forecast at
// the latest observed engine time (which the reactive EWMA floors).
func (e *PredictiveEstimator) Rates() []float64 { return e.ForecastRates(e.lastNow) }

// Weights returns the forecast demand normalized to sum to one, or a
// uniform vector before the first Roll (matching the reactive
// estimator's cold behavior, so both kinds start identically).
func (e *PredictiveEstimator) Weights() []float64 {
	out := e.Rates()
	var sum float64
	for _, r := range out {
		sum += r
	}
	if e.rolls == 0 || sum <= 0 {
		for j := range out {
			out[j] = 1 / float64(e.domains)
		}
		return out
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// State captures the serializable soft state: the reactive base and
// the learned per-mapping rates. The active mapping windows are
// excluded — their expiries are engine seconds, which do not survive a
// restart; they repopulate from live decisions within one TTL.
func (e *PredictiveEstimator) State() EstimatorState {
	st := EstimatorState{
		Kind:        EstimatorPredictive,
		Alpha:       e.alpha,
		Counts:      append([]float64(nil), e.counts...),
		Rates:       append([]float64(nil), e.rates...),
		Rolls:       e.rolls,
		MapRates:    make([]float64, len(e.mapRate)),
		MapRolls:    make([]int, len(e.mapRate)),
		DomRates:    make([]float64, len(e.domRate)),
		DomRolls:    make([]int, len(e.domRate)),
		GlobalRate:  e.globals.rate,
		GlobalRolls: e.globals.rolls,
		MeanTTL:     e.meanTTL,
		ForecastErr: e.forecastErr.rate,
	}
	for i, r := range e.mapRate {
		st.MapRates[i], st.MapRolls[i] = r.rate, r.rolls
	}
	for i, r := range e.domRate {
		st.DomRates[i], st.DomRolls[i] = r.rate, r.rolls
	}
	return st
}

// Restore replaces the soft state with a checkpointed one. A state of
// a different kind is refused with a descriptive error; on any error
// the estimator is left unchanged (cold-start behavior).
func (e *PredictiveEstimator) Restore(st EstimatorState) error {
	if st.Kind != EstimatorPredictive {
		kind := st.Kind
		if kind == "" {
			kind = EstimatorReactive
		}
		return fmt.Errorf("core: cannot restore %q estimator state into the predictive estimator; rerun with -estimator=%s or discard the checkpoint",
			kind, kind)
	}
	if err := ValidateEstimatorState(st); err != nil {
		return err
	}
	if len(st.Counts) != e.domains {
		return fmt.Errorf("core: estimator state has %d domains, want %d", len(st.Counts), e.domains)
	}
	copy(e.counts, st.Counts)
	copy(e.rates, st.Rates)
	e.rolls = st.Rolls
	for i := range e.mapRate {
		e.mapRate[i] = ewmaRate{rate: st.MapRates[i], rolls: st.MapRolls[i]}
	}
	for i := range e.domRate {
		e.domRate[i] = ewmaRate{rate: st.DomRates[i], rolls: st.DomRolls[i]}
	}
	e.globals = ewmaRate{rate: st.GlobalRate, rolls: st.GlobalRolls}
	e.meanTTL = st.MeanTTL
	if e.meanTTL > 0 {
		e.ttlObs = 1
	}
	e.forecastErr = ewmaRate{rate: st.ForecastErr}
	if st.ForecastErr > 0 {
		e.forecastErr.rolls = 1
	}
	// Windows are engine-time soft state and never serialized; start
	// empty and repopulate from live decisions.
	for i := range e.windows {
		e.windows[i] = nil
	}
	e.lastNow = 0
	e.lastRoll = 0
	e.prevForecast = nil
	e.haveForecast = false
	return nil
}

// Compile-time interface checks: both kinds satisfy the seam, and only
// the predictive kind is a Forecaster.
var (
	_ LoadEstimator = (*Estimator)(nil)
	_ LoadEstimator = (*PredictiveEstimator)(nil)
	_ Forecaster    = (*PredictiveEstimator)(nil)
)
