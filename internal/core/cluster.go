// Package core implements the paper's primary contribution: the DNS
// scheduling algorithms for geographically distributed heterogeneous
// Web servers, including the class of adaptive TTL policies.
//
// The package is pure algorithm code: it has no dependency on the
// simulation engine or on the wire-level DNS server, both of which
// drive it through the Policy type.
//
// Naming follows the paper:
//
//	RR, RR2        deterministic (two-tier) round-robin server selection
//	PRR, PRR2      probabilistic, capacity-aware variants
//	TTL/1,2,K      TTL chosen from the source domain (1, 2 or K classes)
//	TTL/S_1,S_2,S_K  TTL chosen from domain class and server capacity
//	DAL            minimum dynamically accumulated load baseline
package core

import (
	"errors"
	"fmt"
	"math"
)

// Cluster describes the heterogeneous Web server set. Servers are
// numbered in decreasing processing capacity, as in the paper
// (S_1 is the most powerful server).
type Cluster struct {
	capacities []float64 // absolute capacities, hits per second
}

// NewCluster builds a cluster from absolute server capacities in hits
// per second. Capacities must be positive and sorted in non-increasing
// order (S_1 first).
func NewCluster(capacities []float64) (*Cluster, error) {
	if len(capacities) == 0 {
		return nil, errors.New("core: cluster needs at least one server")
	}
	cs := make([]float64, len(capacities))
	copy(cs, capacities)
	for i, c := range cs {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("core: capacity %d is %v, want positive finite", i, c)
		}
		if i > 0 && c > cs[i-1] {
			return nil, fmt.Errorf("core: capacities not sorted decreasing at %d (%v > %v)", i, c, cs[i-1])
		}
	}
	return &Cluster{capacities: cs}, nil
}

// MustCluster is NewCluster for statically known capacity vectors;
// it panics on invalid input.
func MustCluster(capacities []float64) *Cluster {
	c, err := NewCluster(capacities)
	if err != nil {
		panic(err)
	}
	return c
}

// withCapacity returns a new cluster with the capacity of slot i
// changed, or with a new slot appended when i is -1. It bypasses the
// sorted-order validation of NewCluster: dynamic membership changes
// legitimately produce unsorted capacity vectors, and the scheduler
// normalizes relative capacities through Snapshot.Alpha/Rho rather
// than positionally (C_1/C_N). Only State's membership mutators call
// it, with capacity already validated positive finite.
func (c *Cluster) withCapacity(i int, capacity float64) *Cluster {
	cs := make([]float64, len(c.capacities), len(c.capacities)+1)
	copy(cs, c.capacities)
	if i < 0 {
		cs = append(cs, capacity)
	} else {
		cs[i] = capacity
	}
	return &Cluster{capacities: cs}
}

// N returns the number of servers.
func (c *Cluster) N() int { return len(c.capacities) }

// Capacity returns the absolute capacity of server i in hits/second.
func (c *Cluster) Capacity(i int) float64 { return c.capacities[i] }

// Capacities returns a copy of the absolute capacity vector.
func (c *Cluster) Capacities() []float64 {
	out := make([]float64, len(c.capacities))
	copy(out, c.capacities)
	return out
}

// Alpha returns the relative capacity α_i = C_i / C_1 of server i.
func (c *Cluster) Alpha(i int) float64 { return c.capacities[i] / c.capacities[0] }

// Alphas returns the vector of relative capacities.
func (c *Cluster) Alphas() []float64 {
	out := make([]float64, len(c.capacities))
	for i := range out {
		out[i] = c.Alpha(i)
	}
	return out
}

// Rho returns the processor power ratio ρ = C_1 / C_N, the paper's
// measure of the degree of heterogeneity.
func (c *Cluster) Rho() float64 {
	return c.capacities[0] / c.capacities[len(c.capacities)-1]
}

// Total returns the aggregate capacity ΣC_i in hits/second.
func (c *Cluster) Total() float64 {
	var sum float64
	for _, v := range c.capacities {
		sum += v
	}
	return sum
}

// Heterogeneity returns the maximum difference among relative server
// capacities, the paper's heterogeneity level (e.g. 0.35 for 35%).
func (c *Cluster) Heterogeneity() float64 {
	return 1 - c.Alpha(len(c.capacities)-1)
}

// table2 holds the paper's Table 2: relative server capacities for the
// four heterogeneity levels with N = 7.
var table2 = map[int][]float64{
	20: {1, 1, 1, 0.8, 0.8, 0.8, 0.8},
	35: {1, 1, 0.8, 0.8, 0.65, 0.65, 0.65},
	50: {1, 1, 0.8, 0.8, 0.5, 0.5, 0.5},
	65: {1, 1, 0.8, 0.8, 0.35, 0.35, 0.35},
}

// HeterogeneityVector returns relative server capacities for n servers
// at the given heterogeneity level in percent. For n = 7 and the four
// levels studied in the paper it returns Table 2 exactly; other shapes
// follow the same three-tier pattern (≈2/7 of servers at 1.0, ≈2/7 at
// 0.8, the rest at 1-level), with tiers merged when they coincide.
func HeterogeneityVector(n int, levelPct int) ([]float64, error) {
	if n <= 0 {
		return nil, errors.New("core: need at least one server")
	}
	if levelPct < 0 || levelPct >= 100 {
		return nil, fmt.Errorf("core: heterogeneity %d%% out of range [0,100)", levelPct)
	}
	if n == 7 {
		if v, ok := table2[levelPct]; ok {
			out := make([]float64, len(v))
			copy(out, v)
			return out, nil
		}
	}
	low := 1 - float64(levelPct)/100
	out := make([]float64, n)
	if levelPct == 0 {
		for i := range out {
			out[i] = 1
		}
		return out, nil
	}
	nTop := int(math.Round(float64(n) * 2.0 / 7.0))
	if nTop < 1 {
		nTop = 1
	}
	nMid := int(math.Round(float64(n) * 2.0 / 7.0))
	if nTop+nMid >= n {
		nMid = n - nTop - 1
		if nMid < 0 {
			nMid = 0
		}
	}
	mid := 0.8
	if mid < low {
		mid = low
	}
	for i := range out {
		switch {
		case i < nTop:
			out[i] = 1
		case i < nTop+nMid:
			out[i] = mid
		default:
			out[i] = low
		}
	}
	return out, nil
}

// ScaledCluster builds a cluster of n servers at the given
// heterogeneity level whose total absolute capacity is totalHitsPerSec,
// the paper's constant-total-capacity construction.
func ScaledCluster(n, levelPct int, totalHitsPerSec float64) (*Cluster, error) {
	if totalHitsPerSec <= 0 {
		return nil, fmt.Errorf("core: total capacity %v must be positive", totalHitsPerSec)
	}
	rel, err := HeterogeneityVector(n, levelPct)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, r := range rel {
		sum += r
	}
	abs := make([]float64, n)
	for i, r := range rel {
		abs[i] = r / sum * totalHitsPerSec
	}
	return NewCluster(abs)
}
