package core

import (
	"errors"
	"fmt"
	"math"
)

// Estimator computes the hidden load weight of each connected domain
// from the per-domain request counts that the Web servers report. The
// paper's DNS "periodically collects the information and calculates
// the client request rate from each domain"; Roll models one such
// collection.
//
// Counts are smoothed with an exponentially weighted moving average so
// that a briefly quiet domain does not lose its weight estimate (which
// would hand it an unbounded TTL on its next request).
type Estimator struct {
	domains int
	alpha   float64 // EWMA smoothing factor in (0,1]
	counts  []float64
	rates   []float64
	rolls   int
}

// DefaultEstimatorAlpha is the default EWMA weight of the newest
// estimation interval, shared by the simulator's configuration
// defaults and the live DNS server so both paths smooth hidden-load
// reports identically unless explicitly tuned.
const DefaultEstimatorAlpha = 0.5

// NewEstimator creates an estimator for the given number of domains.
// alpha is the EWMA weight given to the newest interval (1 = no
// smoothing).
func NewEstimator(domains int, alpha float64) (*Estimator, error) {
	if domains <= 0 {
		return nil, errors.New("core: estimator needs at least one domain")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: EWMA alpha %v out of (0,1]", alpha)
	}
	return &Estimator{
		domains: domains,
		alpha:   alpha,
		counts:  make([]float64, domains),
		rates:   make([]float64, domains),
	}, nil
}

// Kind identifies the estimator implementation (EstimatorReactive).
func (e *Estimator) Kind() string { return EstimatorReactive }

// Record accumulates hits observed from a domain since the last Roll.
// Servers call this (directly in the simulator, via load reports in
// the real DNS server). It reports whether the observation was
// accepted: out-of-range domains and negative hit counts are rejected
// so callers can count malformed reports instead of losing them
// silently.
func (e *Estimator) Record(domain int, hits float64) bool {
	if domain < 0 || domain >= e.domains || hits < 0 {
		return false
	}
	e.counts[domain] += hits
	return true
}

// Roll closes the current collection interval of the given length in
// seconds and folds its per-domain rates into the EWMA estimates.
func (e *Estimator) Roll(intervalSeconds float64) {
	if intervalSeconds <= 0 {
		return
	}
	for j := range e.counts {
		rate := e.counts[j] / intervalSeconds
		if e.rolls == 0 {
			e.rates[j] = rate
		} else {
			e.rates[j] = e.alpha*rate + (1-e.alpha)*e.rates[j]
		}
		e.counts[j] = 0
	}
	e.rolls++
}

// Rolls returns how many collection intervals have completed.
func (e *Estimator) Rolls() int { return e.rolls }

// Weights returns the current relative hidden load weight estimates
// (normalized to sum to one). Before the first Roll, or if no traffic
// was ever observed, it returns a uniform vector.
func (e *Estimator) Weights() []float64 {
	out := make([]float64, e.domains)
	var sum float64
	for _, r := range e.rates {
		sum += r
	}
	if e.rolls == 0 || sum <= 0 {
		for j := range out {
			out[j] = 1 / float64(e.domains)
		}
		return out
	}
	for j, r := range e.rates {
		out[j] = r / sum
	}
	return out
}

// Rates returns a copy of the absolute per-domain rate estimates in
// hits per second.
func (e *Estimator) Rates() []float64 {
	out := make([]float64, e.domains)
	copy(out, e.rates)
	return out
}

// State captures the estimator's current internal state for a
// checkpoint.
func (e *Estimator) State() EstimatorState {
	return EstimatorState{
		Kind:   EstimatorReactive,
		Alpha:  e.alpha,
		Counts: append([]float64(nil), e.counts...),
		Rates:  append([]float64(nil), e.rates...),
		Rolls:  e.rolls,
	}
}

// Restore replaces the estimator's internal state with a checkpointed
// one. The checkpoint must carry a matching kind tag (empty means
// reactive, for checkpoints written before kinds existed), match the
// estimator's domain count, and contain only finite non-negative
// values; on error the estimator is left unchanged (cold-start
// behavior).
func (e *Estimator) Restore(st EstimatorState) error {
	if st.Kind != "" && st.Kind != EstimatorReactive {
		return fmt.Errorf("core: cannot restore %q estimator state into the reactive estimator; rerun with -estimator=%s or discard the checkpoint",
			st.Kind, st.Kind)
	}
	if len(st.Counts) != e.domains || len(st.Rates) != e.domains {
		return fmt.Errorf("core: estimator state has %d/%d domains, want %d",
			len(st.Counts), len(st.Rates), e.domains)
	}
	if st.Rolls < 0 {
		return fmt.Errorf("core: estimator state has negative roll count %d", st.Rolls)
	}
	for j := 0; j < e.domains; j++ {
		for _, v := range [2]float64{st.Counts[j], st.Rates[j]} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: estimator state domain %d is %v, want non-negative finite", j, v)
			}
		}
	}
	copy(e.counts, st.Counts)
	copy(e.rates, st.Rates)
	e.rolls = st.Rolls
	return nil
}
