package core

import (
	"math"
	"testing"

	"dnslb/internal/simcore"
)

func testState(t *testing.T, k int) *State {
	t.Helper()
	c, err := ScaledCluster(7, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(c, k)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStateValidation(t *testing.T) {
	c := MustCluster([]float64{10})
	if _, err := NewState(nil, 5); err == nil {
		t.Error("nil cluster should error")
	}
	if _, err := NewState(c, 0); err == nil {
		t.Error("zero domains should error")
	}
}

func TestStateDefaults(t *testing.T) {
	st := testState(t, 20)
	if st.Domains() != 20 {
		t.Errorf("Domains = %d", st.Domains())
	}
	if math.Abs(st.Beta()-0.05) > 1e-12 {
		t.Errorf("Beta = %v, want 1/K = 0.05", st.Beta())
	}
	// Uniform initial weights: no domain exceeds β, so all normal.
	if st.HotDomains() != 0 {
		t.Errorf("HotDomains = %d with uniform weights, want 0", st.HotDomains())
	}
	for j := 0; j < 20; j++ {
		if math.Abs(st.Weight(j)-0.05) > 1e-12 {
			t.Errorf("Weight(%d) = %v, want 0.05", j, st.Weight(j))
		}
	}
}

func TestZipfClassPartition(t *testing.T) {
	// Pure Zipf over K=20 domains: H_20 ≈ 3.5977, so domains 1..5 have
	// weight (1/j)/H_20 > 1/20 and are hot; the rest are normal.
	st := testState(t, 20)
	if err := st.SetWeights(simcore.ZipfWeights(20, 1)); err != nil {
		t.Fatal(err)
	}
	if got := st.HotDomains(); got != 5 {
		t.Errorf("HotDomains = %d, want 5 for pure Zipf with K=20", got)
	}
	for j := 0; j < 5; j++ {
		if st.Class(j) != ClassHot {
			t.Errorf("domain %d should be hot", j)
		}
	}
	for j := 5; j < 20; j++ {
		if st.Class(j) != ClassNormal {
			t.Errorf("domain %d should be normal", j)
		}
	}
	if math.Abs(st.MaxWeight()-st.Weight(0)) > 1e-15 {
		t.Errorf("MaxWeight = %v, want weight of domain 0 = %v", st.MaxWeight(), st.Weight(0))
	}
	if st.ClassMeanWeight(ClassHot) <= st.ClassMeanWeight(ClassNormal) {
		t.Error("hot class mean weight should exceed normal class mean weight")
	}
}

func TestSetWeightsNormalizes(t *testing.T) {
	st := testState(t, 4)
	if err := st.SetWeights([]float64{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if math.Abs(st.Weight(j)-0.25) > 1e-12 {
			t.Errorf("Weight(%d) = %v, want normalized 0.25", j, st.Weight(j))
		}
	}
}

func TestSetWeightsValidation(t *testing.T) {
	st := testState(t, 4)
	if err := st.SetWeights([]float64{1, 2, 3}); err == nil {
		t.Error("length change should error")
	}
	if err := st.SetWeights([]float64{1, -1, 1, 1}); err == nil {
		t.Error("negative weight should error")
	}
	if err := st.SetWeights([]float64{0, 0, 0, 0}); err == nil {
		t.Error("zero-sum weights should error")
	}
	if err := st.SetWeights([]float64{math.NaN(), 1, 1, 1}); err == nil {
		t.Error("NaN weight should error")
	}
}

func TestVersionBumpsOnChange(t *testing.T) {
	st := testState(t, 4)
	v0 := st.Version()
	if err := st.SetWeights([]float64{4, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if st.Version() == v0 {
		t.Error("SetWeights should bump version")
	}
	v1 := st.Version()
	st.SetBeta(0.3)
	if st.Version() == v1 {
		t.Error("SetBeta should bump version")
	}
}

func TestDegenerateClassPartitions(t *testing.T) {
	st := testState(t, 4)
	// All domains equal: nothing above β=0.25, so all normal; class
	// means fall back so TTL/2 stays defined.
	if err := st.SetWeights([]float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if st.HotDomains() != 0 {
		t.Errorf("HotDomains = %d, want 0", st.HotDomains())
	}
	if got := st.ClassMeanWeight(ClassHot); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("hot class mean fallback = %v, want overall mean 0.25", got)
	}
	// One dominant domain: hot class of size 1.
	if err := st.SetWeights([]float64{97, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if st.HotDomains() != 1 {
		t.Errorf("HotDomains = %d, want 1", st.HotDomains())
	}
}

func TestAlarms(t *testing.T) {
	st := testState(t, 5)
	n := st.Cluster().N()
	if st.AllAlarmed() {
		t.Error("no alarms initially")
	}
	st.SetAlarm(2, true)
	if !st.Alarmed(2) {
		t.Error("alarm not recorded")
	}
	if st.available(2) {
		t.Error("alarmed server should be unavailable while others are fine")
	}
	// Idempotent set.
	st.SetAlarm(2, true)
	st.SetAlarm(2, false)
	if st.Alarmed(2) {
		t.Error("alarm not cleared")
	}
	// All alarmed: availability is restored (no better candidate).
	for i := 0; i < n; i++ {
		st.SetAlarm(i, true)
	}
	if !st.AllAlarmed() {
		t.Error("AllAlarmed should be true")
	}
	for i := 0; i < n; i++ {
		if !st.available(i) {
			t.Errorf("server %d should be available when all are alarmed", i)
		}
	}
	// Out-of-range alarms are reported.
	if err := st.SetAlarm(-1, true); err == nil {
		t.Error("SetAlarm(-1) should error")
	}
	if err := st.SetAlarm(n, true); err == nil {
		t.Errorf("SetAlarm(%d) should error", n)
	}
}

func TestLiveness(t *testing.T) {
	st := testState(t, 5)
	n := st.Cluster().N()
	if st.LiveServers() != n {
		t.Errorf("LiveServers = %d, want %d", st.LiveServers(), n)
	}
	if err := st.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	if !st.Down(3) || st.available(3) {
		t.Error("down server must be recorded and unavailable")
	}
	if st.LiveServers() != n-1 {
		t.Errorf("LiveServers = %d, want %d", st.LiveServers(), n-1)
	}
	// Idempotent: repeating the same transition changes nothing.
	v := st.Version()
	if err := st.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	if st.Version() != v {
		t.Error("repeated SetDown must not bump version")
	}
	if err := st.SetDown(3, false); err != nil {
		t.Fatal(err)
	}
	if st.Down(3) || st.Version() == v {
		t.Error("recovery must clear the flag and bump version")
	}
	// Out-of-range liveness is reported.
	if err := st.SetDown(-1, true); err == nil {
		t.Error("SetDown(-1) should error")
	}
	if err := st.SetDown(n, true); err == nil {
		t.Errorf("SetDown(%d) should error", n)
	}
}

func TestLivenessVersionBump(t *testing.T) {
	st := testState(t, 4)
	v0 := st.Version()
	if err := st.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if st.Version() == v0 {
		t.Error("membership change should bump version for TTL recalibration")
	}
}

func TestAlarmsAmongLiveServersOnly(t *testing.T) {
	// With server 0 down, alarming all *live* servers must re-admit the
	// live ones (no better candidate) while 0 stays excluded.
	st := testState(t, 5)
	n := st.Cluster().N()
	if err := st.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := st.SetAlarm(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if st.available(0) {
		t.Error("down server must stay excluded even when all live servers are alarmed")
	}
	for i := 1; i < n; i++ {
		if !st.available(i) {
			t.Errorf("server %d should be available when every live server is alarmed", i)
		}
	}
	// Recovery of a non-alarmed server breaks the all-alarmed tie.
	if err := st.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if st.available(i) {
			t.Errorf("server %d should be excluded again once a non-alarmed server is live", i)
		}
	}
	if !st.available(0) {
		t.Error("recovered server should be available")
	}
}

func TestAllDown(t *testing.T) {
	st := testState(t, 5)
	n := st.Cluster().N()
	for i := 0; i < n; i++ {
		if err := st.SetDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if !st.AllDown() || st.LiveServers() != 0 {
		t.Error("AllDown should hold with every server down")
	}
	for i := 0; i < n; i++ {
		if st.available(i) {
			t.Errorf("server %d available with the whole cluster down", i)
		}
	}
}

func TestDomainClassString(t *testing.T) {
	if ClassNormal.String() != "normal" || ClassHot.String() != "hot" {
		t.Error("class string names wrong")
	}
	if DomainClass(99).String() == "" {
		t.Error("unknown class should still stringify")
	}
}
