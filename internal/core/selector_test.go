package core

import (
	"math"
	"testing"

	"dnslb/internal/simcore"
)

func zipfState(t *testing.T, level int, k int) *State {
	t.Helper()
	c, err := ScaledCluster(7, level, 500)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(c, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetWeights(simcore.ZipfWeights(k, 1)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRRCycles(t *testing.T) {
	st := zipfState(t, 20, 20)
	sel := NewRR()
	if sel.Name() != "RR" {
		t.Errorf("Name = %q", sel.Name())
	}
	n := st.Cluster().N()
	for round := 0; round < 3; round++ {
		for want := 0; want < n; want++ {
			if got := sel.Select(st.Snapshot(), round%20); got != want {
				t.Fatalf("round %d: Select = %d, want %d", round, got, want)
			}
		}
	}
}

func TestRRSkipsAlarmed(t *testing.T) {
	st := zipfState(t, 20, 20)
	sel := NewRR()
	st.SetAlarm(1, true)
	st.SetAlarm(2, true)
	var got []int
	for i := 0; i < 5; i++ {
		got = append(got, sel.Select(st.Snapshot(), 0))
	}
	want := []int{0, 3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alarmed skip order = %v, want %v", got, want)
		}
	}
	// All alarmed: falls back to plain cycling.
	for i := 0; i < st.Cluster().N(); i++ {
		st.SetAlarm(i, true)
	}
	seen := make(map[int]bool)
	for i := 0; i < st.Cluster().N(); i++ {
		seen[sel.Select(st.Snapshot(), 0)] = true
	}
	if len(seen) != st.Cluster().N() {
		t.Errorf("all-alarmed fallback cycled over %d servers, want %d", len(seen), st.Cluster().N())
	}
}

func TestRR2IndependentPointersPerClass(t *testing.T) {
	st := zipfState(t, 20, 20)
	sel := NewRR2()
	if sel.Name() != "RR2" {
		t.Errorf("Name = %q", sel.Name())
	}
	// Domain 0 is hot, domain 19 is normal: each class starts its own
	// cycle at server 0.
	if got := sel.Select(st.Snapshot(), 0); got != 0 {
		t.Errorf("first hot selection = %d, want 0", got)
	}
	if got := sel.Select(st.Snapshot(), 19); got != 0 {
		t.Errorf("first normal selection = %d, want 0 (independent pointer)", got)
	}
	if got := sel.Select(st.Snapshot(), 1); got != 1 { // second hot request
		t.Errorf("second hot selection = %d, want 1", got)
	}
	if got := sel.Select(st.Snapshot(), 18); got != 1 { // second normal request
		t.Errorf("second normal selection = %d, want 1", got)
	}
}

func TestPRRCapacityProportionalAssignment(t *testing.T) {
	// Heterogeneity 50%: α = {1,1,.8,.8,.5,.5,.5}. PRR should assign
	// address requests roughly proportionally to α.
	st := zipfState(t, 50, 20)
	rng := simcore.NewStream(42, "prr")
	sel := NewPRR(rng)
	if sel.Name() != "PRR" {
		t.Errorf("Name = %q", sel.Name())
	}
	n := st.Cluster().N()
	counts := make([]float64, n)
	const trials = 140000
	for i := 0; i < trials; i++ {
		counts[sel.Select(st.Snapshot(), i%20)]++
	}
	var alphaSum float64
	for i := 0; i < n; i++ {
		alphaSum += st.Cluster().Alpha(i)
	}
	for i := 0; i < n; i++ {
		got := counts[i] / trials
		want := st.Cluster().Alpha(i) / alphaSum
		if math.Abs(got-want) > 0.01 {
			t.Errorf("server %d assignment share = %.4f, want ≈ %.4f (∝ capacity)", i, got, want)
		}
	}
}

func TestPRR2ClassSeparation(t *testing.T) {
	st := zipfState(t, 35, 20)
	rng := simcore.NewStream(7, "prr2")
	sel := NewPRR2(rng)
	if sel.Name() != "PRR2" {
		t.Errorf("Name = %q", sel.Name())
	}
	// Both classes should produce capacity-proportional assignment.
	n := st.Cluster().N()
	hot := make([]float64, n)
	norm := make([]float64, n)
	const trials = 70000
	for i := 0; i < trials; i++ {
		hot[sel.Select(st.Snapshot(), i%5)]++       // domains 0..4 are hot
		norm[sel.Select(st.Snapshot(), 5+(i%15))]++ // domains 5..19 are normal
	}
	var alphaSum float64
	for i := 0; i < n; i++ {
		alphaSum += st.Cluster().Alpha(i)
	}
	for i := 0; i < n; i++ {
		want := st.Cluster().Alpha(i) / alphaSum
		if math.Abs(hot[i]/trials-want) > 0.012 {
			t.Errorf("hot class share server %d = %.4f, want ≈ %.4f", i, hot[i]/trials, want)
		}
		if math.Abs(norm[i]/trials-want) > 0.012 {
			t.Errorf("normal class share server %d = %.4f, want ≈ %.4f", i, norm[i]/trials, want)
		}
	}
}

func TestPRRSkipsAlarmed(t *testing.T) {
	st := zipfState(t, 50, 20)
	rng := simcore.NewStream(3, "prr-alarm")
	sel := NewPRR(rng)
	st.SetAlarm(0, true)
	st.SetAlarm(1, true)
	for i := 0; i < 1000; i++ {
		got := sel.Select(st.Snapshot(), i%20)
		if got == 0 || got == 1 {
			t.Fatalf("PRR selected alarmed server %d", got)
		}
	}
}

func TestDALPrefersLeastLoadedPerCapacity(t *testing.T) {
	st := zipfState(t, 50, 20)
	now := 0.0
	sel := NewDAL(func() float64 { return now }, 240)
	if sel.Name() != "DAL" {
		t.Errorf("Name = %q", sel.Name())
	}
	// First request (hot domain 0) goes to some empty server; repeat
	// requests from the hottest domain must spread because accumulated
	// load penalizes the previous choice.
	first := sel.Select(st.Snapshot(), 0)
	second := sel.Select(st.Snapshot(), 0)
	if first == second {
		t.Errorf("DAL sent consecutive hot-domain requests to the same server %d", first)
	}
	// Load expires after the TTL: after time passes, the accumulated
	// entries vanish and the first server becomes attractive again.
	now = 1000
	counts := make(map[int]int)
	for i := 0; i < 7; i++ {
		counts[sel.Select(st.Snapshot(), 0)]++
	}
	if len(counts) < 4 {
		t.Errorf("DAL used only %d distinct servers for 7 hot requests", len(counts))
	}
}

func TestDALCapacityAware(t *testing.T) {
	// Two servers, capacities 100 and 50. Equal accumulated load should
	// route to the faster server (smaller load/α).
	c := MustCluster([]float64{100, 50})
	st, err := NewState(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetWeights([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	sel := NewDAL(func() float64 { return 0 }, 240)
	counts := make([]int, 2)
	for i := 0; i < 30; i++ {
		counts[sel.Select(st.Snapshot(), i%2)]++
	}
	if counts[0] <= counts[1] {
		t.Errorf("capacity-aware DAL assigned %v, want majority on the faster server", counts)
	}
	// Ratio should approximate the capacity ratio 2:1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("assignment ratio = %v, want ≈ 2", ratio)
	}
}

func TestDALRespectsAlarms(t *testing.T) {
	st := zipfState(t, 50, 20)
	sel := NewDAL(func() float64 { return 0 }, 240)
	st.SetAlarm(0, true)
	for i := 0; i < 100; i++ {
		if got := sel.Select(st.Snapshot(), i%20); got == 0 {
			t.Fatal("DAL selected alarmed server 0")
		}
	}
}

func TestSelectorsAlwaysInRange(t *testing.T) {
	st := zipfState(t, 65, 20)
	rng := simcore.NewStream(9, "range")
	now := 0.0
	selectors := []Selector{
		NewRR(), NewRR2(), NewPRR(rng), NewPRR2(rng),
		NewDAL(func() float64 { now += 1; return now }, 240),
	}
	n := st.Cluster().N()
	for _, sel := range selectors {
		for i := 0; i < 2000; i++ {
			if i == 500 {
				st.SetAlarm(i%n, true)
			}
			if i == 1500 {
				st.SetAlarm(i%n, false)
			}
			got := sel.Select(st.Snapshot(), i%20)
			if got < 0 || got >= n {
				t.Fatalf("%s returned out-of-range server %d", sel.Name(), got)
			}
		}
	}
}

func TestSelectorsSkipDownServers(t *testing.T) {
	rng := simcore.NewStream(7, "down")
	now := func() float64 { return 0 }
	selectors := []Selector{
		NewRR(), NewRR2(), NewPRR(rng), NewPRR2(rng), NewWRR(),
		NewDAL(now, 240), NewMRL(now, 240),
	}
	for _, sel := range selectors {
		st := zipfState(t, 20, 20)
		if err := st.SetDown(0, true); err != nil {
			t.Fatal(err)
		}
		if err := st.SetDown(4, true); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			got := sel.Select(st.Snapshot(), i%20)
			if got == 0 || got == 4 {
				t.Errorf("%s: selected down server %d", sel.Name(), got)
			}
			if got < 0 {
				t.Errorf("%s: no-server answer with live servers remaining", sel.Name())
			}
		}
	}
}

func TestSelectorsReturnNoServerWhenAllDown(t *testing.T) {
	rng := simcore.NewStream(7, "alldown")
	now := func() float64 { return 0 }
	selectors := []Selector{
		NewRR(), NewRR2(), NewPRR(rng), NewPRR2(rng), NewWRR(),
		NewDAL(now, 240), NewMRL(now, 240),
	}
	for _, sel := range selectors {
		st := zipfState(t, 20, 20)
		n := st.Cluster().N()
		for i := 0; i < n; i++ {
			if err := st.SetDown(i, true); err != nil {
				t.Fatal(err)
			}
		}
		if got := sel.Select(st.Snapshot(), 0); got != -1 {
			t.Errorf("%s: Select = %d with all servers down, want -1", sel.Name(), got)
		}
		// Recovery restores selection.
		if err := st.SetDown(2, false); err != nil {
			t.Fatal(err)
		}
		if got := sel.Select(st.Snapshot(), 0); got != 2 {
			t.Errorf("%s: Select = %d after recovery of server 2", sel.Name(), got)
		}
	}
}

func TestScheduleErrNoServers(t *testing.T) {
	st := zipfState(t, 20, 20)
	pol, err := NewPolicy(PolicyConfig{Name: "DRR2-TTL/S_K", State: st})
	if err != nil {
		t.Fatal(err)
	}
	n := st.Cluster().N()
	for i := 0; i < n; i++ {
		if err := st.SetDown(i, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pol.Schedule(3); err != ErrNoServers {
		t.Fatalf("Schedule error = %v, want ErrNoServers", err)
	}
	if pol.Stats().Decisions != 0 {
		t.Error("failed schedule must not count as a decision")
	}
	if err := st.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	d, err := pol.Schedule(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Server != 1 {
		t.Errorf("Schedule after recovery chose %d, want the only live server 1", d.Server)
	}
}

func TestTTLRecalibratesOnMembershipChange(t *testing.T) {
	// TTL/S_i calibrates E[1/s_i] over live servers: removing the most
	// capable server must change the calibrated base.
	st := zipfState(t, 65, 20)
	ttl, err := NewTTLPolicy(TTLVariant{Classes: PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	before := ttl.Base(st.Snapshot())
	if err := st.SetDown(0, true); err != nil { // server 0 is the most capable
		t.Fatal(err)
	}
	after := ttl.Base(st.Snapshot())
	if before == after {
		t.Errorf("base unchanged (%v) after losing the most capable server", before)
	}
	if err := st.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if got := ttl.Base(st.Snapshot()); math.Abs(got-before) > 1e-12 {
		t.Errorf("base = %v after recovery, want %v restored", got, before)
	}
}
