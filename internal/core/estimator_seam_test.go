package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNewLoadEstimatorKinds(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want string
	}{
		{"", EstimatorReactive},
		{EstimatorReactive, EstimatorReactive},
		{EstimatorPredictive, EstimatorPredictive},
	} {
		e, err := NewLoadEstimator(tc.kind, 4, 0.5)
		if err != nil {
			t.Fatalf("NewLoadEstimator(%q): %v", tc.kind, err)
		}
		if e.Kind() != tc.want {
			t.Errorf("NewLoadEstimator(%q).Kind() = %q, want %q", tc.kind, e.Kind(), tc.want)
		}
		if e.State().Kind != tc.want {
			t.Errorf("State().Kind = %q, want %q", e.State().Kind, tc.want)
		}
	}
	if _, err := NewLoadEstimator("bogus", 4, 0.5); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := NewLoadEstimator(EstimatorPredictive, 0, 0.5); err == nil {
		t.Error("zero domains should error")
	}
	if _, err := NewLoadEstimator(EstimatorPredictive, 4, 1.5); err == nil {
		t.Error("alpha > 1 should error")
	}
}

// Without any observed decisions the predictive estimator must behave
// exactly like the reactive one: the forecast has no mapping evidence,
// so Rates falls back to the reactive EWMA floor.
func TestPredictiveMatchesReactiveWithoutDecisions(t *testing.T) {
	re, _ := NewEstimator(3, 0.5)
	pe, _ := NewPredictiveEstimator(3, 0.5)
	for _, e := range []LoadEstimator{re, pe} {
		e.Record(0, 300)
		e.Record(1, 100)
		e.Roll(10)
		e.Record(1, 50)
		e.Roll(10)
	}
	rr, pr := re.Rates(), pe.Rates()
	for j := range rr {
		if math.Abs(rr[j]-pr[j]) > 1e-12 {
			t.Errorf("rate[%d]: predictive %v, reactive %v", j, pr[j], rr[j])
		}
	}
	rw, pw := re.Weights(), pe.Weights()
	for j := range rw {
		if math.Abs(rw[j]-pw[j]) > 1e-12 {
			t.Errorf("weight[%d]: predictive %v, reactive %v", j, pw[j], rw[j])
		}
	}
}

func TestPredictiveRecordRejections(t *testing.T) {
	e, _ := NewPredictiveEstimator(2, 0.5)
	if e.Record(-1, 1) || e.Record(2, 1) || e.Record(0, -1) {
		t.Error("invalid observations must be rejected")
	}
	if !e.Record(1, 5) {
		t.Error("valid observation must be accepted")
	}
}

// The predictive core loop: learn hits-per-mapping from one steady
// interval, then a decision burst through fresh resolvers must raise
// the forecast immediately — before any report of the new hits.
func TestPredictiveForecastReactsToDecisionBurst(t *testing.T) {
	e, _ := NewPredictiveEstimator(2, 0.5)

	// Steady interval: 2 active mappings on domain 0, 100 hits over
	// 10 s → 5 hits/s per mapping.
	e.ObserveDecision(0, 0, 60)
	e.ObserveDecision(0, 1, 60)
	e.Record(0, 100)
	e.Roll(10)

	base := e.ForecastRates(10)[0]
	if base <= 0 {
		t.Fatalf("forecast after learning = %v, want positive", base)
	}

	// Flash: 20 fresh resolvers request domain 0 at t=12. No report
	// has arrived yet — the reactive EWMA still says 10 hits/s — but
	// the forecast must jump with the active-mapping count.
	for i := 0; i < 20; i++ {
		e.ObserveDecision(0, 12, 60)
	}
	burst := e.ForecastRates(12)[0]
	if burst < 4*base {
		t.Errorf("forecast after 20-mapping burst = %v, want well above base %v", burst, base)
	}
	// The reactive floor is unchanged until the next roll.
	re, _ := NewEstimator(2, 0.5)
	re.Record(0, 100)
	re.Roll(10)
	if got := re.Rates()[0]; burst <= got {
		t.Errorf("predictive burst view %v should exceed reactive view %v", burst, got)
	}
	// Expired mappings stop contributing.
	late := e.ForecastRates(12 + 61)[0]
	if late >= burst {
		t.Errorf("forecast after expiry = %v, want below burst %v", late, burst)
	}
}

func TestPredictiveForecastErrorTracksMisses(t *testing.T) {
	e, _ := NewPredictiveEstimator(1, 0.5)
	e.ObserveDecision(0, 0, 30)
	e.Record(0, 100)
	e.Roll(10)
	if e.ForecastError() != 0 {
		t.Errorf("forecast error before a scored interval = %v, want 0", e.ForecastError())
	}
	// Next interval: forecast said ~10 hits/s, reality is 0.
	e.Roll(10)
	if e.ForecastError() <= 0 {
		t.Errorf("forecast error after a miss = %v, want positive", e.ForecastError())
	}
}

func TestEstimatorKindMismatchRefused(t *testing.T) {
	re, _ := NewEstimator(3, 0.5)
	pe, _ := NewPredictiveEstimator(3, 0.5)
	re.Record(0, 10)
	re.Roll(5)
	pe.Record(1, 20)
	pe.Roll(5)

	if err := pe.Restore(re.State()); err == nil {
		t.Fatal("predictive must refuse a reactive state")
	} else if !strings.Contains(err.Error(), "reactive") {
		t.Errorf("refusal should name the offending kind: %v", err)
	}
	if err := re.Restore(pe.State()); err == nil {
		t.Fatal("reactive must refuse a predictive state")
	} else if !strings.Contains(err.Error(), "predictive") {
		t.Errorf("refusal should name the offending kind: %v", err)
	}
	// Neither refusal corrupted the estimators.
	if got := re.Rates()[0]; got != 2 {
		t.Errorf("reactive rate after refused restore = %v, want 2", got)
	}
	if got := pe.Rates()[1]; got != 4 {
		t.Errorf("predictive rate after refused restore = %v, want 4", got)
	}
	// Legacy untagged states (pre-kind checkpoints) restore into the
	// reactive estimator only.
	legacy := re.State()
	legacy.Kind = ""
	if err := re.Restore(legacy); err != nil {
		t.Errorf("untagged state must restore into reactive: %v", err)
	}
	if err := pe.Restore(legacy); err == nil {
		t.Error("untagged state must not restore into predictive")
	}
}

func TestPredictiveStateRoundTrip(t *testing.T) {
	e, _ := NewPredictiveEstimator(2, 0.5)
	e.ObserveDecision(0, 0, 60)
	e.ObserveDecision(1, 1, 240)
	e.Record(0, 100)
	e.Record(1, 30)
	e.Roll(10)
	e.Record(0, 80)
	st := e.State()

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEstimatorState(data)
	if err != nil {
		t.Fatal(err)
	}

	e2, _ := NewPredictiveEstimator(2, 0.5)
	if err := e2.Restore(parsed); err != nil {
		t.Fatal(err)
	}
	if e2.Rolls() != e.Rolls() {
		t.Errorf("rolls = %d, want %d", e2.Rolls(), e.Rolls())
	}
	// The reactive base and learned rates survive; the windows do not
	// (engine seconds do not survive a restart), so the restored view
	// equals the EWMA floor.
	r1, r2 := e.rates, e2.rates
	for j := range r1 {
		if r1[j] != r2[j] {
			t.Errorf("base rate %d = %v, want %v", j, r2[j], r1[j])
		}
	}
	if e2.globals != e.globals {
		t.Errorf("global per-mapping rate = %+v, want %+v", e2.globals, e.globals)
	}
	for i := range e.mapRate {
		if e2.mapRate[i] != e.mapRate[i] {
			t.Errorf("map rate %d = %+v, want %+v", i, e2.mapRate[i], e.mapRate[i])
		}
	}
	for _, w := range e2.windows {
		if len(w) != 0 {
			t.Error("restored estimator must start with empty mapping windows")
		}
	}
	// And a fresh decision repopulates forecasting after restore.
	e2.ObserveDecision(0, 5, 60)
	if f := e2.ForecastRates(5)[0]; f <= 0 {
		t.Errorf("forecast after restore + decision = %v, want positive", f)
	}
	// Domain-count mismatch is still refused.
	e3, _ := NewPredictiveEstimator(3, 0.5)
	if err := e3.Restore(parsed); err == nil {
		t.Error("restoring a 2-domain state into a 3-domain estimator should fail")
	}
}

func TestParseEstimatorState(t *testing.T) {
	re, _ := NewEstimator(2, 0.5)
	re.Record(0, 10)
	re.Roll(5)
	data, _ := json.Marshal(re.State())
	st, err := ParseEstimatorState(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != EstimatorReactive || st.Rolls != 1 {
		t.Errorf("parsed state = %+v", st)
	}

	for name, bad := range map[string]string{
		"not json":          `{`,
		"unknown kind":      `{"kind":"quantum","alpha":0.5,"counts":[0],"rates":[0],"rolls":0}`,
		"alpha zero":        `{"alpha":0,"counts":[0],"rates":[0],"rolls":0}`,
		"alpha above one":   `{"alpha":2,"counts":[0],"rates":[0],"rolls":0}`,
		"negative rolls":    `{"alpha":0.5,"counts":[0],"rates":[0],"rolls":-1}`,
		"length mismatch":   `{"alpha":0.5,"counts":[0,0],"rates":[0],"rolls":0}`,
		"negative rate":     `{"alpha":0.5,"counts":[0],"rates":[-1],"rolls":0}`,
		"reactive with map": `{"kind":"reactive","alpha":0.5,"counts":[0],"rates":[0],"rolls":0,"map_rates":[1,1]}`,
		"predictive short":  `{"kind":"predictive","alpha":0.5,"counts":[0],"rates":[0],"rolls":0,"map_rates":[1]}`,
	} {
		if _, err := ParseEstimatorState([]byte(bad)); err == nil {
			t.Errorf("%s: ParseEstimatorState should fail", name)
		}
	}
}

// FuzzParseEstimatorState asserts the checkpoint-restore entry point
// never panics and that every state it accepts is restorable-or-
// refusable without corrupting an estimator.
func FuzzParseEstimatorState(f *testing.F) {
	re, _ := NewEstimator(2, 0.5)
	re.Record(0, 42)
	re.Roll(8)
	seed1, _ := json.Marshal(re.State())
	pe, _ := NewPredictiveEstimator(2, 0.5)
	pe.ObserveDecision(0, 1, 60)
	pe.Record(0, 10)
	pe.Roll(8)
	seed2, _ := json.Marshal(pe.State())
	f.Add(seed1)
	f.Add(seed2)
	f.Add([]byte(`{"kind":"predictive","alpha":1,"counts":[],"rates":[],"rolls":0}`))
	f.Add([]byte(`{"alpha":0.5,"counts":[1e308,1e308],"rates":[0,0],"rolls":3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ParseEstimatorState(data)
		if err != nil {
			return
		}
		// An accepted state must re-validate after a marshal round trip…
		again, err := json.Marshal(st)
		if err != nil {
			t.Fatalf("accepted state does not re-marshal: %v", err)
		}
		if _, err := ParseEstimatorState(again); err != nil {
			t.Fatalf("accepted state does not re-parse: %v", err)
		}
		// …and restoring it (into either kind) must either succeed or
		// refuse cleanly; never panic.
		r, _ := NewEstimator(2, 0.5)
		_ = r.Restore(st)
		p, _ := NewPredictiveEstimator(2, 0.5)
		_ = p.Restore(st)
	})
}
