package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"dnslb/internal/simcore"
)

func TestClassCountValid(t *testing.T) {
	tests := []struct {
		c    ClassCount
		want bool
	}{
		{PerDomain, true}, {OneClass, true}, {TwoClasses, true},
		{NClasses(3), true}, {NClasses(100), true},
		{ClassCount(0), false}, {ClassCount(-2), false},
	}
	for _, tt := range tests {
		if got := tt.c.Valid(); got != tt.want {
			t.Errorf("Valid(%d) = %v, want %v", int(tt.c), got, tt.want)
		}
	}
}

func TestClassCountStringGeneral(t *testing.T) {
	if got := NClasses(3).String(); got != "TTL/3" {
		t.Errorf("String = %q, want TTL/3", got)
	}
	if got := (TTLVariant{Classes: NClasses(5), ServerAware: true}).String(); got != "TTL/S_5" {
		t.Errorf("String = %q, want TTL/S_5", got)
	}
	if got := ClassCount(-3).String(); got != "ClassCount(-3)" {
		t.Errorf("String = %q", got)
	}
}

func TestDomainFactorsOneTwoK(t *testing.T) {
	st := zipfState(t, 20, 20)
	one := DomainFactors(st.Snapshot(), OneClass)
	for j, f := range one {
		if f != 1 {
			t.Errorf("TTL/1 factor[%d] = %v, want 1", j, f)
		}
	}
	two := DomainFactors(st.Snapshot(), TwoClasses)
	// Hot domains (0..4) share one factor 1; normal domains share a
	// smaller factor.
	for j := 0; j < 5; j++ {
		if math.Abs(two[j]-1) > 1e-12 {
			t.Errorf("TTL/2 hot factor[%d] = %v, want 1", j, two[j])
		}
	}
	for j := 6; j < 20; j++ {
		if two[j] != two[5] {
			t.Errorf("TTL/2 normal factors differ: %v vs %v", two[j], two[5])
		}
	}
	if two[5] >= 1 {
		t.Errorf("normal factor = %v, want < 1", two[5])
	}
	k := DomainFactors(st.Snapshot(), PerDomain)
	for j := range k {
		want := 1 / float64(j+1)
		if math.Abs(k[j]-want) > 1e-9 {
			t.Errorf("TTL/K factor[%d] = %v, want %v", j, k[j], want)
		}
	}
}

func TestDomainFactorsIntermediate(t *testing.T) {
	st := zipfState(t, 20, 20)
	for _, i := range []int{3, 4, 5, 7, 10} {
		f := DomainFactors(st.Snapshot(), NClasses(i))
		// Factors are grouped: at most i distinct values, and the top
		// group has factor 1.
		distinct := make(map[float64]bool)
		for _, v := range f {
			if v <= 0 || v > 1+1e-12 {
				t.Fatalf("i=%d: factor %v out of (0,1]", i, v)
			}
			distinct[v] = true
		}
		if len(distinct) > i {
			t.Errorf("i=%d: %d distinct factors, want at most %d", i, len(distinct), i)
		}
		if len(distinct) < 2 {
			t.Errorf("i=%d: factors are degenerate (%d distinct)", i, len(distinct))
		}
		if math.Abs(f[0]-1) > 1e-12 {
			t.Errorf("i=%d: hottest factor = %v, want 1", i, f[0])
		}
		// Monotone: a hotter domain never has a smaller factor.
		for j := 1; j < len(f); j++ {
			if f[j] > f[j-1]+1e-12 {
				t.Errorf("i=%d: factor increased from domain %d to %d", i, j-1, j)
			}
		}
	}
}

func TestDomainFactorsIAtLeastKIsPerDomain(t *testing.T) {
	st := zipfState(t, 20, 20)
	perDomain := DomainFactors(st.Snapshot(), PerDomain)
	for _, i := range []int{20, 25, 1000} {
		got := DomainFactors(st.Snapshot(), NClasses(i))
		for j := range got {
			if math.Abs(got[j]-perDomain[j]) > 1e-12 {
				t.Errorf("i=%d: factor[%d] = %v, want per-domain %v", i, j, got[j], perDomain[j])
			}
		}
	}
}

func TestEqualLoadPartitionBalance(t *testing.T) {
	st := zipfState(t, 20, 20)
	means := equalLoadPartition(st.Snapshot(), 4)
	// Sum of class totals = 1; reconstruct class totals from means.
	classTotal := make(map[float64]float64)
	classSize := make(map[float64]int)
	for j, m := range means {
		classTotal[m] += st.Weight(j)
		classSize[m]++
	}
	var sum float64
	for _, v := range classTotal {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("class totals sum to %v", sum)
	}
	if len(classTotal) != 4 {
		t.Fatalf("partition produced %d classes, want 4", len(classTotal))
	}
	// Equal-load goal: every class carries a comparable share (within
	// a factor bounded by the largest single weight, 0.278).
	for m, v := range classTotal {
		if v < 0.10 || v > 0.45 {
			t.Errorf("class with mean %v carries %v of load, want near 0.25", m, v)
		}
	}
}

func TestEqualLoadPartitionProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8, seed uint16) bool {
		k := int(kRaw%40) + 2
		n := int(nRaw%uint8(k)) + 1
		c := MustCluster([]float64{100, 80})
		st, err := NewState(c, k)
		if err != nil {
			return false
		}
		// Random positive weights.
		stream := simcore.NewStream(uint64(seed), "partition")
		w := make([]float64, k)
		for j := range w {
			w[j] = stream.Float64() + 0.01
		}
		if err := st.SetWeights(w); err != nil {
			return false
		}
		means := equalLoadPartition(st.Snapshot(), n)
		// Every domain belongs to a class; class count <= n; means positive.
		distinct := make(map[float64]bool)
		for _, m := range means {
			if m <= 0 {
				return false
			}
			distinct[m] = true
		}
		return len(distinct) <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTTLiCalibrationHolds(t *testing.T) {
	// The fairness condition must hold for intermediate class counts
	// too, including server-aware ones.
	st := zipfState(t, 35, 20)
	want := 20.0 / 240.0
	for _, i := range []int{3, 4, 5, 10} {
		for _, server := range []bool{false, true} {
			v := TTLVariant{Classes: NClasses(i), ServerAware: server}
			p, err := NewTTLPolicy(v, 240)
			if err != nil {
				t.Fatal(err)
			}
			var rate float64
			n := st.Cluster().N()
			for j := 0; j < 20; j++ {
				for s := 0; s < n; s++ {
					rate += 1 / p.TTL(st.Snapshot(), j, s) / float64(n)
				}
			}
			if math.Abs(rate-want)/want > 0.01 {
				t.Errorf("%s: address rate %v, want %v", v, rate, want)
			}
		}
	}
}

func TestTTLiMonotoneInformationGain(t *testing.T) {
	// More classes = finer discrimination: the spread of TTLs must be
	// non-decreasing in i (TTL/1 has zero spread, TTL/K the most).
	st := zipfState(t, 20, 20)
	prevSpread := -1.0
	for _, c := range []ClassCount{OneClass, TwoClasses, NClasses(4), NClasses(8), PerDomain} {
		p, err := NewTTLPolicy(TTLVariant{Classes: c}, 240)
		if err != nil {
			t.Fatal(err)
		}
		min, max := math.Inf(1), math.Inf(-1)
		for j := 0; j < 20; j++ {
			ttl := p.TTL(st.Snapshot(), j, 0)
			if ttl < min {
				min = ttl
			}
			if ttl > max {
				max = ttl
			}
		}
		spread := max / min
		if spread < prevSpread-1e-9 {
			t.Errorf("%v: TTL spread %v decreased from %v", c, spread, prevSpread)
		}
		prevSpread = spread
	}
}

func TestParsePolicyNames(t *testing.T) {
	st := zipfState(t, 20, 20)
	rng := simcore.NewStream(2, "parse")
	valid := []string{
		"PRR-TTL/3", "PRR2-TTL/4", "PRR2-TTL/10",
		"DRR-TTL/S_3", "DRR2-TTL/S_5",
		"PRR2-TTL/S_K", // extension combination
		"DRR2-TTL/3",   // deterministic with domain-only TTL
	}
	for _, name := range valid {
		p, err := NewPolicy(PolicyConfig{Name: name, State: st, Rand: rng})
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if _, err := p.Schedule(0); err != nil {
			t.Errorf("%s: schedule: %v", name, err)
		}
	}
	invalid := []string{
		"XRR-TTL/3", "PRR-TTL/", "PRR-TTL/0", "PRR-TTL/-2",
		"PRR-TTL/x", "TTL/3", "PRR2-", "PRR2-TTL/S_",
	}
	for _, name := range invalid {
		if _, err := NewPolicy(PolicyConfig{Name: name, State: st, Rand: rng}); err == nil {
			t.Errorf("NewPolicy(%q) should fail", name)
		}
	}
}

func TestParsedNamesMatchCatalogSpecs(t *testing.T) {
	// "DRR2-TTL/S_2" exists in the catalog and must parse identically.
	cat := policyCatalog["DRR2-TTL/S_2"]
	parsed, ok := parsePolicyName("DRR2-TTL/S_2")
	if !ok || parsed != cat {
		t.Errorf("parsed %+v, catalog %+v", parsed, cat)
	}
	cat = policyCatalog["PRR-TTL/K"]
	parsed, ok = parsePolicyName("PRR-TTL/K")
	if !ok || parsed != cat {
		t.Errorf("parsed %+v, catalog %+v", parsed, cat)
	}
}

func TestMRLSelector(t *testing.T) {
	st := zipfState(t, 50, 20)
	now := 0.0
	sel := NewMRL(func() float64 { return now }, 240)
	if sel.Name() != "MRL" {
		t.Errorf("Name = %q", sel.Name())
	}
	// Consecutive hot-domain requests spread like DAL.
	a := sel.Select(st.Snapshot(), 0)
	b := sel.Select(st.Snapshot(), 0)
	if a == b {
		t.Error("MRL funnelled consecutive hot requests to one server")
	}
	// Residual load decays: after half the TTL, the remaining charge is
	// half, so a lightly loaded server becomes attractive again sooner
	// than under DAL.
	now = 120
	counts := make(map[int]bool)
	for i := 0; i < 7; i++ {
		counts[sel.Select(st.Snapshot(), 0)] = true
	}
	if len(counts) < 4 {
		t.Errorf("MRL used only %d distinct servers", len(counts))
	}
	// Alarmed servers are skipped.
	st.SetAlarm(3, true)
	for i := 0; i < 50; i++ {
		if got := sel.Select(st.Snapshot(), i%20); got == 3 {
			t.Fatal("MRL selected alarmed server")
		}
	}
	st.SetAlarm(3, false)
}

func TestMRLPolicyRuns(t *testing.T) {
	st := zipfState(t, 35, 20)
	now := 0.0
	p, err := NewPolicy(PolicyConfig{
		Name:  "MRL",
		State: st,
		Now:   func() float64 { now += 1; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d, err := p.Schedule(i % 20)
		if err != nil {
			t.Fatal(err)
		}
		if d.TTL != DefaultConstantTTL {
			t.Fatalf("MRL TTL = %v, want constant", d.TTL)
		}
	}
	if _, err := NewPolicy(PolicyConfig{Name: "MRL", State: st}); err == nil {
		t.Error("MRL without Now should error")
	}
}

func TestTTLiEndToEndNames(t *testing.T) {
	// The full name grid compiles into runnable policies.
	st := zipfState(t, 20, 20)
	rng := simcore.NewStream(5, "grid")
	for _, sel := range []string{"PRR", "PRR2", "DRR", "DRR2"} {
		for _, suffix := range []string{"1", "2", "3", "5", "K", "S_1", "S_2", "S_3", "S_K"} {
			name := fmt.Sprintf("%s-TTL/%s", sel, suffix)
			p, err := NewPolicy(PolicyConfig{Name: name, State: st, Rand: rng})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				continue
			}
			if _, err := p.Schedule(3); err != nil {
				t.Errorf("%s schedule: %v", name, err)
			}
		}
	}
}

func TestWRRSmoothProportionalRotation(t *testing.T) {
	// Two servers at weights 1 and 0.5: over any 3 picks WRR selects
	// the heavy server twice, and never three times in a row.
	c := MustCluster([]float64{100, 50})
	st, err := NewState(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewWRR()
	if sel.Name() != "WRR" {
		t.Errorf("Name = %q", sel.Name())
	}
	counts := make([]int, 2)
	streak := 0
	for i := 0; i < 300; i++ {
		got := sel.Select(st.Snapshot(), 0)
		counts[got]++
		if got == 0 {
			streak++
			if streak > 2 {
				t.Fatal("smooth WRR burst: server 0 picked 3 times in a row")
			}
		} else {
			streak = 0
		}
	}
	if counts[0] != 200 || counts[1] != 100 {
		t.Errorf("counts = %v, want exact 2:1 proportion", counts)
	}
}

func TestWRRCapacityShares(t *testing.T) {
	st := zipfState(t, 50, 20)
	sel := NewWRR()
	n := st.Cluster().N()
	counts := make([]float64, n)
	const picks = 62000
	for i := 0; i < picks; i++ {
		counts[sel.Select(st.Snapshot(), i%20)]++
	}
	var alphaSum float64
	for i := 0; i < n; i++ {
		alphaSum += st.Cluster().Alpha(i)
	}
	for i := 0; i < n; i++ {
		got := counts[i] / picks
		want := st.Cluster().Alpha(i) / alphaSum
		if math.Abs(got-want) > 0.005 {
			t.Errorf("server %d share = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestWRRRespectsAlarms(t *testing.T) {
	st := zipfState(t, 50, 20)
	sel := NewWRR()
	st.SetAlarm(0, true)
	for i := 0; i < 100; i++ {
		if got := sel.Select(st.Snapshot(), i%20); got == 0 {
			t.Fatal("WRR selected alarmed server")
		}
	}
	st.SetAlarm(0, false)
	seen := false
	for i := 0; i < 20; i++ {
		if sel.Select(st.Snapshot(), 0) == 0 {
			seen = true
		}
	}
	if !seen {
		t.Error("server 0 never selected after alarm cleared")
	}
}

func TestWRRPolicyInCatalog(t *testing.T) {
	st := zipfState(t, 35, 20)
	p, err := NewPolicy(PolicyConfig{Name: "WRR", State: st})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.TTL != DefaultConstantTTL {
		t.Errorf("WRR TTL = %v, want constant", d.TTL)
	}
}
