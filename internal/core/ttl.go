package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// ClassCount says how many domain classes a TTL policy distinguishes.
// The paper's TTL/i meta-algorithm admits any i from 1 (one TTL for
// all, not adaptive) up to K (one TTL per domain); this package
// supports the full range.
type ClassCount int

const (
	// PerDomain uses a different TTL for every connected domain
	// (TTL/K), the i = K limit of the meta-algorithm.
	PerDomain ClassCount = -1
	// OneClass uses a single TTL for every domain (the degenerate
	// TTL/1 policy — not adaptive).
	OneClass ClassCount = 1
	// TwoClasses uses a high TTL for normal domains and a low TTL for
	// hot domains (TTL/2), partitioned by the class threshold β.
	TwoClasses ClassCount = 2
)

// NClasses returns the ClassCount for an i-class TTL policy. i must
// be at least 1; NewTTLPolicy validates.
func NClasses(i int) ClassCount { return ClassCount(i) }

// Valid reports whether the class count is meaningful.
func (c ClassCount) Valid() bool { return c == PerDomain || c >= 1 }

// String implements fmt.Stringer.
func (c ClassCount) String() string {
	switch {
	case c == PerDomain:
		return "TTL/K"
	case c >= 1:
		return fmt.Sprintf("TTL/%d", int(c))
	default:
		return fmt.Sprintf("ClassCount(%d)", int(c))
	}
}

// TTLVariant identifies one member of the adaptive TTL family.
type TTLVariant struct {
	// Classes is the number of domain classes the TTL discriminates.
	Classes ClassCount
	// ServerAware marks the deterministic TTL/S_i family, whose TTL is
	// additionally proportional to the chosen server's capacity.
	ServerAware bool
}

// String returns the paper's name for the variant (TTL/1, TTL/S_K, …).
func (v TTLVariant) String() string {
	if !v.ServerAware {
		return v.Classes.String()
	}
	if v.Classes == PerDomain {
		return "TTL/S_K"
	}
	return fmt.Sprintf("TTL/S_%d", int(v.Classes))
}

// Adaptive reports whether the variant adapts the TTL at all: TTL/1 is
// the constant-TTL degenerate case.
func (v TTLVariant) Adaptive() bool {
	return v.Classes != OneClass || v.ServerAware
}

const (
	// maxTTL caps any adaptive TTL at one day; it only binds for
	// degenerate weight estimates (a domain that was never observed).
	maxTTL = 86400.0
	// minAdaptiveTTL is a floor guarding against pathological
	// calibrations; real NS minimums are modelled separately by the
	// name server layer.
	minAdaptiveTTL = 1.0
)

// TTLPolicy computes the TTL returned with each address mapping.
// The base value TTL_min is recalibrated whenever the state's hidden
// load weights change, so that the policy's mean address-request rate
// matches that of the constant-TTL baseline (the paper's fairness
// condition for comparing policies).
//
// TTLPolicy is safe for concurrent use: the calibration for a state
// version is an immutable value published through an atomic pointer.
// Concurrent callers that race on a version change recompute the same
// pure function of the snapshot, so whichever publication wins is
// correct.
type TTLPolicy struct {
	variant  TTLVariant
	constTTL float64
	calib    atomic.Pointer[ttlCalib]
}

// ttlCalib is one immutable calibration: the base TTL_min and the
// per-domain factors d_j computed for a specific state version.
type ttlCalib struct {
	version uint64
	base    float64
	factors []float64
}

// NewTTLPolicy builds a TTL policy of the given variant whose address
// request rate is calibrated against a constant-TTL baseline of
// constTTL seconds (240 s in the paper).
func NewTTLPolicy(variant TTLVariant, constTTL float64) (*TTLPolicy, error) {
	if constTTL <= 0 || math.IsNaN(constTTL) {
		return nil, fmt.Errorf("core: constant TTL %v must be positive", constTTL)
	}
	if !variant.Classes.Valid() {
		return nil, fmt.Errorf("core: invalid class count %d", variant.Classes)
	}
	return &TTLPolicy{variant: variant, constTTL: constTTL}, nil
}

// Variant returns the policy's variant.
func (p *TTLPolicy) Variant() TTLVariant { return p.variant }

// DomainFactors returns d_j for every domain j: the domain component
// of the TTL is base / d_j, so the hottest domain (or class) with
// d = 1 receives the minimum TTL.
//
// TTL/1 gives every domain factor 1. TTL/2 uses the paper's class
// threshold β partition with class-mean weights. TTL/K uses each
// domain's own relative weight γ_j/γ_max. Intermediate i (the paper's
// TTL/i meta-algorithm, "for i = 3 … and so on") partitions the
// domains, sorted by weight, into i groups of approximately equal
// aggregate hidden load, then uses class-mean weights like TTL/2.
func DomainFactors(sn *Snapshot, classes ClassCount) []float64 {
	k := sn.Domains()
	out := make([]float64, k)
	switch {
	case classes == PerDomain || int(classes) >= k:
		for j := 0; j < k; j++ {
			out[j] = sn.Weight(j) / sn.MaxWeight()
		}
	case classes == OneClass:
		for j := range out {
			out[j] = 1
		}
	case classes == TwoClasses:
		hot := sn.ClassMeanWeight(ClassHot)
		for j := 0; j < k; j++ {
			out[j] = sn.ClassMeanWeight(sn.Class(j)) / hot
		}
	default:
		means := equalLoadPartition(sn, int(classes))
		top := 0.0
		for j := 0; j < k; j++ {
			if means[j] > top {
				top = means[j]
			}
		}
		for j := 0; j < k; j++ {
			out[j] = means[j] / top
		}
	}
	return out
}

// equalLoadPartition splits the domains (sorted by decreasing weight)
// into n contiguous groups of approximately equal aggregate weight and
// returns each domain's class-mean weight.
func equalLoadPartition(sn *Snapshot, n int) []float64 {
	k := sn.Domains()
	order := make([]int, k)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sn.Weight(order[a]) > sn.Weight(order[b])
	})
	means := make([]float64, k)
	pos := 0
	var cum float64
	for class := 0; class < n && pos < k; class++ {
		// Each class targets the remaining weight split evenly over the
		// remaining classes, always taking at least one domain and
		// leaving at least one domain per remaining class.
		remainingClasses := n - class
		target := (1 - cum) / float64(remainingClasses)
		start := pos
		var classSum float64
		for pos < k {
			left := k - pos - 1
			if pos > start && left < remainingClasses-1 {
				break
			}
			w := sn.Weight(order[pos])
			// The final class absorbs every remaining domain; earlier
			// classes stop once they reach their load target.
			if pos > start && remainingClasses > 1 && classSum+w > target {
				break
			}
			classSum += w
			pos++
		}
		mean := classSum / float64(pos-start)
		for q := start; q < pos; q++ {
			means[order[q]] = mean
		}
		cum += classSum
	}
	return means
}

// serverFactor returns the capacity term α_i·ρ of the TTL/S_i family:
// 1 for the least capable server, ρ for the most capable.
func (p *TTLPolicy) serverFactor(sn *Snapshot, server int) float64 {
	if !p.variant.ServerAware {
		return 1
	}
	return sn.Alpha(server) * sn.Rho()
}

// TTL returns the time-to-live in seconds for an address mapping of
// the given domain to the given server, as seen by the given snapshot.
func (p *TTLPolicy) TTL(sn *Snapshot, domain, server int) float64 {
	c := p.recalibrate(sn)
	d := c.factors[domain]
	ttl := c.base * p.serverFactor(sn, server)
	if d > 0 {
		ttl /= d
	} else {
		ttl = maxTTL
	}
	if ttl > maxTTL {
		ttl = maxTTL
	}
	if ttl < minAdaptiveTTL {
		ttl = minAdaptiveTTL
	}
	return ttl
}

// Base returns the calibrated TTL_min for the given snapshot.
func (p *TTLPolicy) Base(sn *Snapshot) float64 {
	return p.recalibrate(sn).base
}

// recalibrate returns the calibration for the snapshot's version,
// computing and publishing it when the cached one is stale.
func (p *TTLPolicy) recalibrate(sn *Snapshot) *ttlCalib {
	if c := p.calib.Load(); c != nil && c.version == sn.Version() {
		return c
	}
	factors := DomainFactors(sn, p.variant.Classes)
	c := &ttlCalib{
		version: sn.Version(),
		base:    calibrateBase(sn, p.variant, factors, p.constTTL),
		factors: factors,
	}
	p.calib.Store(c)
	return c
}

// CalibrateBase computes the TTL_min that makes the variant's mean
// address-request rate equal to the constant-TTL baseline's.
//
// A domain cached for TTL_j issues NS cache misses at rate ≈ 1/TTL_j
// while it stays active, so the baseline rate is K/constTTL. With
// TTL_ij = base·s_i/d_j and round-robin server assignment (uniform
// over servers), the policy's rate is (Σ_j d_j)·E_i[1/s_i]/base;
// setting the two equal gives
//
//	base = constTTL · (Σ_j d_j) · E_i[1/s_i] / K.
func CalibrateBase(sn *Snapshot, variant TTLVariant, constTTL float64) float64 {
	return calibrateBase(sn, variant, DomainFactors(sn, variant.Classes), constTTL)
}

func calibrateBase(sn *Snapshot, variant TTLVariant, factors []float64, constTTL float64) float64 {
	k := float64(sn.Domains())
	var sumD float64
	for _, d := range factors {
		sumD += d
	}
	meanInvS := 1.0
	if variant.ServerAware {
		// Average over servers that can actually receive mappings: a
		// crashed, draining, or retired server gets none, so counting it
		// would miscalibrate the request rate of the surviving cluster.
		var sum float64
		live := 0
		n := sn.Cluster().N()
		for i := 0; i < n; i++ {
			if !sn.Member(i) || sn.Down(i) || sn.Draining(i) {
				continue
			}
			sum += 1 / (sn.Alpha(i) * sn.Rho())
			live++
		}
		if live > 0 {
			meanInvS = sum / float64(live)
		}
	}
	base := constTTL * sumD * meanInvS / k
	if base < minAdaptiveTTL {
		base = minAdaptiveTTL
	}
	return base
}
