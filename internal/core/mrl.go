package core

import (
	"container/heap"
	"sync"
)

// mrlSelector implements the Minimum Residual Load baseline from the
// companion homogeneous-server study (Colajanni, Yu, Dias, ICDCS'97),
// in a capacity-scaled form matching this paper's DAL treatment.
//
// Where DAL charges the full hidden load of a mapping until its TTL
// expires, MRL charges only the load *still to come*: a mapping's
// contribution decays linearly from the domain's hidden load weight to
// zero across the TTL interval, modelling that the burst of cached
// requests spreads over the TTL. Each address request goes to the
// server minimizing residual load per unit of relative capacity. Like
// DAL, the mapping ledger needs a consistent read-modify-write, so it
// is guarded by a selector-local mutex.
type mrlSelector struct {
	now func() float64
	ttl float64

	mu      sync.Mutex
	pending dalHeap // reuses the (expire, server, load) entry heap
}

// NewMRL returns the minimum residual load selector. now supplies the
// current time; ttl is the constant TTL the policy hands out.
func NewMRL(now func() float64, ttl float64) Selector {
	return &mrlSelector{now: now, ttl: ttl}
}

func (m *mrlSelector) Name() string { return "MRL" }

func (m *mrlSelector) Select(sn *Snapshot, domain int) int {
	n := sn.Cluster().N()
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) > 0 && m.pending[0].expire <= t {
		heap.Pop(&m.pending)
	}
	residual := make([]float64, n)
	for _, e := range m.pending {
		// Linear decay: full weight at assignment, zero at expiry.
		residual[e.server] += e.load * (e.expire - t) / m.ttl
	}
	best := -1
	bestScore := 0.0
	for i := 0; i < n; i++ {
		if !sn.available(i) {
			continue
		}
		score := residual[i] / sn.Alpha(i)
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return -1
	}
	heap.Push(&m.pending, dalEntry{expire: t + m.ttl, server: best, load: sn.Weight(domain)})
	return best
}
