package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Decision is the DNS scheduler's answer to one address request: the
// chosen Web server and the time-to-live of the mapping.
type Decision struct {
	Server int
	TTL    float64 // seconds
}

// Policy is a complete DNS scheduling policy: a server selector plus a
// TTL policy, evaluated against shared scheduler state. Policies are
// not safe for concurrent use; callers (the simulator or the real DNS
// server) serialize Schedule calls.
type Policy struct {
	name     string
	selector Selector
	ttl      *TTLPolicy
	state    *State

	decisions    uint64
	perServer    []uint64
	perClass     map[DomainClass]uint64
	sumTTL       float64
	minTTLSeen   float64
	maxTTLSeen   float64
	firstCounted bool
}

// NewPolicyFromParts assembles a policy from an explicit selector and
// TTL policy. Most callers use NewPolicy with a catalog name instead.
func NewPolicyFromParts(name string, sel Selector, ttl *TTLPolicy, st *State) (*Policy, error) {
	if sel == nil || ttl == nil || st == nil {
		return nil, errors.New("core: selector, ttl policy and state are all required")
	}
	return &Policy{
		name:      name,
		selector:  sel,
		ttl:       ttl,
		state:     st,
		perServer: make([]uint64, st.Cluster().N()),
		perClass:  make(map[DomainClass]uint64, 2),
	}, nil
}

// Name returns the policy's catalog name.
func (p *Policy) Name() string { return p.name }

// State returns the scheduler state the policy reads.
func (p *Policy) State() *State { return p.state }

// TTLVariant returns the policy's TTL variant.
func (p *Policy) TTLVariant() TTLVariant { return p.ttl.Variant() }

// Schedule answers one address request from the given domain. When
// every server is down it returns ErrNoServers; the decision counters
// are untouched in that case.
func (p *Policy) Schedule(domain int) (Decision, error) {
	if domain < 0 || domain >= p.state.Domains() {
		return Decision{}, fmt.Errorf("core: domain %d out of range [0,%d)", domain, p.state.Domains())
	}
	server := p.selector.Select(p.state, domain)
	if server < 0 {
		return Decision{}, ErrNoServers
	}
	ttl := p.ttl.TTL(p.state, domain, server)
	p.decisions++
	p.perServer[server]++
	p.perClass[p.state.Class(domain)]++
	p.sumTTL += ttl
	if !p.firstCounted || ttl < p.minTTLSeen {
		p.minTTLSeen = ttl
	}
	if !p.firstCounted || ttl > p.maxTTLSeen {
		p.maxTTLSeen = ttl
	}
	p.firstCounted = true
	return Decision{Server: server, TTL: ttl}, nil
}

// Stats reports scheduling counters accumulated since creation.
type Stats struct {
	Decisions uint64
	PerServer []uint64
	PerClass  map[DomainClass]uint64
	MeanTTL   float64
	MinTTL    float64
	MaxTTL    float64
}

// Stats returns a snapshot of the policy's counters.
func (p *Policy) Stats() Stats {
	per := make([]uint64, len(p.perServer))
	copy(per, p.perServer)
	pc := make(map[DomainClass]uint64, len(p.perClass))
	for k, v := range p.perClass {
		pc[k] = v
	}
	s := Stats{
		Decisions: p.decisions,
		PerServer: per,
		PerClass:  pc,
		MinTTL:    p.minTTLSeen,
		MaxTTL:    p.maxTTLSeen,
	}
	if p.decisions > 0 {
		s.MeanTTL = p.sumTTL / float64(p.decisions)
	}
	return s
}

// PolicyConfig carries the dependencies needed to build a policy from
// its catalog name.
type PolicyConfig struct {
	// Name is a catalog name; see PolicyNames.
	Name string
	// State is the shared scheduler state.
	State *State
	// Rand supplies randomness for the probabilistic selectors
	// (PRR, PRR2). Required for those policies only.
	Rand Rand
	// Now supplies the current time for the DAL baseline. Required for
	// DAL only.
	Now func() float64
	// ConstantTTL is the baseline TTL in seconds that every policy's
	// mean address-request rate is calibrated against. Zero means the
	// paper's 240 s.
	ConstantTTL float64
	// Proximity optionally wraps the server selector with GeoDNS-style
	// nearest-server preference (extension; see proximity.go).
	Proximity *ProximityConfig
}

// ProximityConfig parameterizes the proximity extension.
type ProximityConfig struct {
	// Matrix is the per-(domain, server) latency matrix.
	Matrix *LatencyMatrix
	// Preference in [0,1]: probability of answering with the nearest
	// available server instead of the discipline's choice.
	Preference float64
}

// DefaultConstantTTL is the paper's constant TTL of 240 seconds.
const DefaultConstantTTL = 240.0

type policySpec struct {
	selector string // "RR", "RR2", "PRR", "PRR2", "DAL"
	variant  TTLVariant
}

// policyCatalog maps every policy name used in the paper's figures to
// its construction. "Ideal" is PRR over a uniform client distribution;
// the workload layer provides the uniform part.
var policyCatalog = map[string]policySpec{
	"RR":           {selector: "RR", variant: TTLVariant{Classes: OneClass}},
	"RR2":          {selector: "RR2", variant: TTLVariant{Classes: OneClass}},
	"DAL":          {selector: "DAL", variant: TTLVariant{Classes: OneClass}},
	"MRL":          {selector: "MRL", variant: TTLVariant{Classes: OneClass}},
	"WRR":          {selector: "WRR", variant: TTLVariant{Classes: OneClass}},
	"Ideal":        {selector: "PRR", variant: TTLVariant{Classes: OneClass}},
	"PRR-TTL/1":    {selector: "PRR", variant: TTLVariant{Classes: OneClass}},
	"PRR-TTL/2":    {selector: "PRR", variant: TTLVariant{Classes: TwoClasses}},
	"PRR-TTL/K":    {selector: "PRR", variant: TTLVariant{Classes: PerDomain}},
	"PRR2-TTL/1":   {selector: "PRR2", variant: TTLVariant{Classes: OneClass}},
	"PRR2-TTL/2":   {selector: "PRR2", variant: TTLVariant{Classes: TwoClasses}},
	"PRR2-TTL/K":   {selector: "PRR2", variant: TTLVariant{Classes: PerDomain}},
	"DRR-TTL/S_1":  {selector: "RR", variant: TTLVariant{Classes: OneClass, ServerAware: true}},
	"DRR-TTL/S_2":  {selector: "RR", variant: TTLVariant{Classes: TwoClasses, ServerAware: true}},
	"DRR-TTL/S_K":  {selector: "RR", variant: TTLVariant{Classes: PerDomain, ServerAware: true}},
	"DRR2-TTL/S_1": {selector: "RR2", variant: TTLVariant{Classes: OneClass, ServerAware: true}},
	"DRR2-TTL/S_2": {selector: "RR2", variant: TTLVariant{Classes: TwoClasses, ServerAware: true}},
	"DRR2-TTL/S_K": {selector: "RR2", variant: TTLVariant{Classes: PerDomain, ServerAware: true}},
}

// PolicyNames returns every catalog name, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyCatalog))
	for n := range policyCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parsePolicyName resolves names outside the fixed catalog following
// the paper's TTL/i meta-algorithm naming: "<SEL>-TTL/<i>" and
// "<SEL>-TTL/S_<i>" for SEL in {PRR, PRR2, DRR, DRR2} and i a positive
// class count or "K". The paper only evaluates deterministic selectors
// with TTL/S_i and probabilistic ones with TTL/i; the other
// combinations are valid compositions and accepted as extensions.
func parsePolicyName(name string) (policySpec, bool) {
	sel, rest, found := strings.Cut(name, "-TTL/")
	if !found || rest == "" {
		return policySpec{}, false
	}
	var spec policySpec
	switch sel {
	case "PRR", "PRR2":
		spec.selector = sel
	case "DRR":
		spec.selector = "RR"
	case "DRR2":
		spec.selector = "RR2"
	default:
		return policySpec{}, false
	}
	if cut, ok := strings.CutPrefix(rest, "S_"); ok {
		spec.variant.ServerAware = true
		rest = cut
	}
	if rest == "K" {
		spec.variant.Classes = PerDomain
		return spec, true
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 1 {
		return policySpec{}, false
	}
	spec.variant.Classes = NClasses(i)
	return spec, true
}

// NewPolicy builds the named policy. It returns an error for unknown
// names or missing dependencies (Rand for PRR-family, Now for
// DAL/MRL). Beyond the fixed catalog (PolicyNames), any TTL/i
// meta-algorithm member is accepted, e.g. "PRR2-TTL/3" or
// "DRR2-TTL/S_4".
func NewPolicy(cfg PolicyConfig) (*Policy, error) {
	spec, ok := policyCatalog[cfg.Name]
	if !ok {
		spec, ok = parsePolicyName(cfg.Name)
	}
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v, plus TTL/i forms)", cfg.Name, PolicyNames())
	}
	if cfg.State == nil {
		return nil, errors.New("core: PolicyConfig.State is required")
	}
	constTTL := cfg.ConstantTTL
	if constTTL == 0 {
		constTTL = DefaultConstantTTL
	}
	var sel Selector
	switch spec.selector {
	case "RR":
		sel = NewRR()
	case "RR2":
		sel = NewRR2()
	case "WRR":
		sel = NewWRR()
	case "PRR":
		if cfg.Rand == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Rand", cfg.Name)
		}
		sel = NewPRR(cfg.Rand)
	case "PRR2":
		if cfg.Rand == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Rand", cfg.Name)
		}
		sel = NewPRR2(cfg.Rand)
	case "DAL":
		if cfg.Now == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Now", cfg.Name)
		}
		sel = NewDAL(cfg.Now, constTTL)
	case "MRL":
		if cfg.Now == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Now", cfg.Name)
		}
		sel = NewMRL(cfg.Now, constTTL)
	default:
		return nil, fmt.Errorf("core: catalog bug: selector %q", spec.selector)
	}
	if cfg.Proximity != nil {
		wrapped, err := NewProximitySelector(sel, cfg.Proximity.Matrix, cfg.Proximity.Preference, cfg.Rand)
		if err != nil {
			return nil, err
		}
		sel = wrapped
	}
	ttl, err := NewTTLPolicy(spec.variant, constTTL)
	if err != nil {
		return nil, err
	}
	return NewPolicyFromParts(cfg.Name, sel, ttl, cfg.State)
}
