package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Decision is the DNS scheduler's answer to one address request: the
// chosen Web server and the time-to-live of the mapping.
type Decision struct {
	Server int
	TTL    float64 // seconds
}

// Policy is a complete DNS scheduling policy: a server selector plus a
// TTL policy, evaluated against shared scheduler state.
//
// Concurrency contract: Schedule is safe for concurrent callers and
// may race freely with the State mutators (SetWeights, SetBeta,
// SetAlarm, SetDown) — each decision is made against one immutable
// state snapshot. The decision counters are atomics, so every
// scheduled decision is counted exactly once; a Stats call concurrent
// with in-flight Schedules may observe a decision whose counters are
// only partially applied, but once the callers quiesce the totals are
// exact (Decisions == ΣPerServer == ΣPerClass).
type Policy struct {
	name     string
	selector Selector
	ttl      *TTLPolicy
	state    *State

	decisions atomic.Uint64
	// perServer points at an immutable slice of counter pointers; it is
	// grown copy-on-write when AddServer extends the cluster past the
	// slots allocated at creation, so Schedule never indexes out of
	// range after a membership change.
	perServer atomic.Pointer[[]*atomic.Uint64]
	perClass  [2]atomic.Uint64 // indexed by class - ClassNormal
	noServers atomic.Uint64
	sumTTL    [ttlAccShards]ttlAccShard
	minTTL    atomic.Uint64 // float64 bits; +Inf until first decision
	maxTTL    atomic.Uint64 // float64 bits; -Inf until first decision
}

// ttlAccShards spreads the CAS-accumulated TTL sum across cache lines
// so concurrent Schedule callers do not all retry on one word.
const ttlAccShards = 8

type ttlAccShard struct {
	bits atomic.Uint64 // float64 bits of the partial sum
	_    [56]byte      // pad to a cache line
}

// addFloat atomically accumulates v into a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// NewPolicyFromParts assembles a policy from an explicit selector and
// TTL policy. Most callers use NewPolicy with a catalog name instead.
func NewPolicyFromParts(name string, sel Selector, ttl *TTLPolicy, st *State) (*Policy, error) {
	if sel == nil || ttl == nil || st == nil {
		return nil, errors.New("core: selector, ttl policy and state are all required")
	}
	p := &Policy{
		name:     name,
		selector: sel,
		ttl:      ttl,
		state:    st,
	}
	per := make([]*atomic.Uint64, st.Cluster().N())
	for i := range per {
		per[i] = new(atomic.Uint64)
	}
	p.perServer.Store(&per)
	p.minTTL.Store(math.Float64bits(math.Inf(1)))
	p.maxTTL.Store(math.Float64bits(math.Inf(-1)))
	return p, nil
}

// serverCounter returns the decision counter for server i, growing the
// counter slice copy-on-write when a dynamically added server exceeds
// the allocated slots. The individual counters are shared between the
// old and new slices, so no count is ever lost to a race.
func (p *Policy) serverCounter(i int) *atomic.Uint64 {
	for {
		cur := p.perServer.Load()
		if i < len(*cur) {
			return (*cur)[i]
		}
		next := make([]*atomic.Uint64, i+1)
		copy(next, *cur)
		for j := len(*cur); j <= i; j++ {
			next[j] = new(atomic.Uint64)
		}
		if p.perServer.CompareAndSwap(cur, &next) {
			return next[i]
		}
	}
}

// Name returns the policy's catalog name.
func (p *Policy) Name() string { return p.name }

// State returns the scheduler state the policy reads.
func (p *Policy) State() *State { return p.state }

// TTLVariant returns the policy's TTL variant.
func (p *Policy) TTLVariant() TTLVariant { return p.ttl.Variant() }

// Schedule answers one address request from the given domain. When
// every server is down it returns ErrNoServers; the decision counters
// are untouched in that case.
//
// Schedule is safe for concurrent callers and may run concurrently
// with every State mutator; the decision is made against a single
// immutable snapshot of the scheduler state.
func (p *Policy) Schedule(domain int) (Decision, error) {
	sn := p.state.Snapshot()
	if domain < 0 || domain >= sn.Domains() {
		return Decision{}, fmt.Errorf("core: domain %d out of range [0,%d)", domain, sn.Domains())
	}
	server := p.selector.Select(sn, domain)
	if server < 0 {
		p.noServers.Add(1)
		return Decision{}, ErrNoServers
	}
	ttl := p.ttl.TTL(sn, domain, server)
	p.decisions.Add(1)
	p.serverCounter(server).Add(1)
	p.perClass[sn.Class(domain)-ClassNormal].Add(1)
	addFloat(&p.sumTTL[server%ttlAccShards].bits, ttl)
	for {
		old := p.minTTL.Load()
		if ttl >= math.Float64frombits(old) || p.minTTL.CompareAndSwap(old, math.Float64bits(ttl)) {
			break
		}
	}
	for {
		old := p.maxTTL.Load()
		if ttl <= math.Float64frombits(old) || p.maxTTL.CompareAndSwap(old, math.Float64bits(ttl)) {
			break
		}
	}
	return Decision{Server: server, TTL: ttl}, nil
}

// Decisions returns the total number of scheduling decisions made, as
// one atomic load — cheap enough for metric scrapes on a live server.
func (p *Policy) Decisions() uint64 { return p.decisions.Load() }

// ServerDecisions returns the number of decisions that chose server i,
// or 0 for an out-of-range index.
func (p *Policy) ServerDecisions(i int) uint64 {
	per := *p.perServer.Load()
	if i < 0 || i >= len(per) {
		return 0
	}
	return per[i].Load()
}

// ClassDecisions returns the number of decisions made for domains of
// class c, or 0 for an unknown class.
func (p *Policy) ClassDecisions(c DomainClass) uint64 {
	if c < ClassNormal || c > ClassHot {
		return 0
	}
	return p.perClass[c-ClassNormal].Load()
}

// cursorCarrier is implemented by selectors whose only state is a set
// of round-robin rotation cursors; it lets a checkpoint capture and
// restore scheduling position across a DNS restart. Ledger selectors
// (DAL, MRL, WRR) intentionally do not implement it: their accumulated
// loads are time-coupled and rebuild naturally within one TTL window.
type cursorCarrier interface {
	cursors() []int64
	restoreCursors([]int64) bool
}

// Cursors returns the selector's rotation cursors for checkpointing,
// or nil when the selector carries no restorable cursor state.
func (p *Policy) Cursors() []int64 {
	if c, ok := p.selector.(cursorCarrier); ok {
		return c.cursors()
	}
	return nil
}

// RestoreCursors reinstates rotation cursors captured by Cursors. It
// reports whether the selector accepted them; a selector without
// cursor state, or a cursor vector of the wrong shape, is refused
// (the selector then simply starts its rotation fresh).
func (p *Policy) RestoreCursors(cursors []int64) bool {
	c, ok := p.selector.(cursorCarrier)
	return ok && c.restoreCursors(cursors)
}

// NoServerErrors returns how many Schedule calls failed with
// ErrNoServers (every server down). These are counted separately from
// the decision counters, which only ever count scheduled decisions.
func (p *Policy) NoServerErrors() uint64 { return p.noServers.Load() }

// Stats reports scheduling counters accumulated since creation.
//
// Before the first decision it is the documented zero value: Decisions
// is 0, PerServer is all-zero, PerClass is empty, and MeanTTL, MinTTL
// and MaxTTL are all 0 (not ±Inf or NaN).
type Stats struct {
	Decisions uint64
	PerServer []uint64
	PerClass  map[DomainClass]uint64
	MeanTTL   float64
	MinTTL    float64
	MaxTTL    float64
}

// Stats returns a snapshot of the policy's counters. Each counter is
// read atomically; if Schedule calls are in flight the individual
// counters are exact but may be mutually out of step by the handful of
// decisions being applied, and they agree once the callers quiesce.
func (p *Policy) Stats() Stats {
	counters := *p.perServer.Load()
	per := make([]uint64, len(counters))
	for i := range counters {
		per[i] = counters[i].Load()
	}
	pc := make(map[DomainClass]uint64, 2)
	for c := ClassNormal; c <= ClassHot; c++ {
		if v := p.perClass[c-ClassNormal].Load(); v > 0 {
			pc[c] = v
		}
	}
	s := Stats{
		Decisions: p.decisions.Load(),
		PerServer: per,
		PerClass:  pc,
	}
	if s.Decisions > 0 {
		var sum float64
		for i := range p.sumTTL {
			sum += math.Float64frombits(p.sumTTL[i].bits.Load())
		}
		s.MeanTTL = sum / float64(s.Decisions)
		s.MinTTL = math.Float64frombits(p.minTTL.Load())
		s.MaxTTL = math.Float64frombits(p.maxTTL.Load())
	}
	return s
}

// PolicyConfig carries the dependencies needed to build a policy from
// its catalog name.
type PolicyConfig struct {
	// Name is a catalog name; see PolicyNames.
	Name string
	// State is the shared scheduler state.
	State *State
	// Rand supplies randomness for the probabilistic selectors
	// (PRR, PRR2). Required for those policies only.
	Rand Rand
	// Now supplies the current time for the DAL baseline. Required for
	// DAL only.
	Now func() float64
	// ConstantTTL is the baseline TTL in seconds that every policy's
	// mean address-request rate is calibrated against. Zero means the
	// paper's 240 s.
	ConstantTTL float64
	// Proximity optionally wraps the server selector with GeoDNS-style
	// nearest-server preference (extension; see proximity.go).
	Proximity *ProximityConfig
}

// ProximityConfig parameterizes the proximity extension.
type ProximityConfig struct {
	// Matrix is the per-(domain, server) latency matrix.
	Matrix *LatencyMatrix
	// Preference in [0,1]: probability of answering with the nearest
	// available server instead of the discipline's choice.
	Preference float64
}

// DefaultConstantTTL is the paper's constant TTL of 240 seconds.
const DefaultConstantTTL = 240.0

type policySpec struct {
	selector string // "RR", "RR2", "PRR", "PRR2", "DAL"
	variant  TTLVariant
}

// policyCatalog maps every policy name used in the paper's figures to
// its construction. "Ideal" is PRR over a uniform client distribution;
// the workload layer provides the uniform part.
var policyCatalog = map[string]policySpec{
	"RR":           {selector: "RR", variant: TTLVariant{Classes: OneClass}},
	"RR2":          {selector: "RR2", variant: TTLVariant{Classes: OneClass}},
	"DAL":          {selector: "DAL", variant: TTLVariant{Classes: OneClass}},
	"MRL":          {selector: "MRL", variant: TTLVariant{Classes: OneClass}},
	"WRR":          {selector: "WRR", variant: TTLVariant{Classes: OneClass}},
	"Ideal":        {selector: "PRR", variant: TTLVariant{Classes: OneClass}},
	"PRR-TTL/1":    {selector: "PRR", variant: TTLVariant{Classes: OneClass}},
	"PRR-TTL/2":    {selector: "PRR", variant: TTLVariant{Classes: TwoClasses}},
	"PRR-TTL/K":    {selector: "PRR", variant: TTLVariant{Classes: PerDomain}},
	"PRR2-TTL/1":   {selector: "PRR2", variant: TTLVariant{Classes: OneClass}},
	"PRR2-TTL/2":   {selector: "PRR2", variant: TTLVariant{Classes: TwoClasses}},
	"PRR2-TTL/K":   {selector: "PRR2", variant: TTLVariant{Classes: PerDomain}},
	"DRR-TTL/S_1":  {selector: "RR", variant: TTLVariant{Classes: OneClass, ServerAware: true}},
	"DRR-TTL/S_2":  {selector: "RR", variant: TTLVariant{Classes: TwoClasses, ServerAware: true}},
	"DRR-TTL/S_K":  {selector: "RR", variant: TTLVariant{Classes: PerDomain, ServerAware: true}},
	"DRR2-TTL/S_1": {selector: "RR2", variant: TTLVariant{Classes: OneClass, ServerAware: true}},
	"DRR2-TTL/S_2": {selector: "RR2", variant: TTLVariant{Classes: TwoClasses, ServerAware: true}},
	"DRR2-TTL/S_K": {selector: "RR2", variant: TTLVariant{Classes: PerDomain, ServerAware: true}},
}

// PolicyNames returns every catalog name, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyCatalog))
	for n := range policyCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parsePolicyName resolves names outside the fixed catalog following
// the paper's TTL/i meta-algorithm naming: "<SEL>-TTL/<i>" and
// "<SEL>-TTL/S_<i>" for SEL in {PRR, PRR2, DRR, DRR2} and i a positive
// class count or "K". The paper only evaluates deterministic selectors
// with TTL/S_i and probabilistic ones with TTL/i; the other
// combinations are valid compositions and accepted as extensions.
func parsePolicyName(name string) (policySpec, bool) {
	sel, rest, found := strings.Cut(name, "-TTL/")
	if !found || rest == "" {
		return policySpec{}, false
	}
	var spec policySpec
	switch sel {
	case "PRR", "PRR2":
		spec.selector = sel
	case "DRR":
		spec.selector = "RR"
	case "DRR2":
		spec.selector = "RR2"
	default:
		return policySpec{}, false
	}
	if cut, ok := strings.CutPrefix(rest, "S_"); ok {
		spec.variant.ServerAware = true
		rest = cut
	}
	if rest == "K" {
		spec.variant.Classes = PerDomain
		return spec, true
	}
	i, err := strconv.Atoi(rest)
	if err != nil || i < 1 {
		return policySpec{}, false
	}
	spec.variant.Classes = NClasses(i)
	return spec, true
}

// NewPolicy builds the named policy. It returns an error for unknown
// names or missing dependencies (Rand for PRR-family, Now for
// DAL/MRL). Beyond the fixed catalog (PolicyNames), any TTL/i
// meta-algorithm member is accepted, e.g. "PRR2-TTL/3" or
// "DRR2-TTL/S_4".
func NewPolicy(cfg PolicyConfig) (*Policy, error) {
	spec, ok := policyCatalog[cfg.Name]
	if !ok {
		spec, ok = parsePolicyName(cfg.Name)
	}
	if !ok {
		return nil, fmt.Errorf("core: unknown policy %q (known: %v, plus TTL/i forms)", cfg.Name, PolicyNames())
	}
	if cfg.State == nil {
		return nil, errors.New("core: PolicyConfig.State is required")
	}
	constTTL := cfg.ConstantTTL
	if constTTL == 0 {
		constTTL = DefaultConstantTTL
	}
	// One locked generator shared by the selector and the proximity
	// wrapper: concurrent Schedule callers then serialize draws on a
	// single lock, and single-threaded callers see the exact draw
	// sequence the unlocked generator would produce.
	rng := LockRand(cfg.Rand)
	var sel Selector
	switch spec.selector {
	case "RR":
		sel = NewRR()
	case "RR2":
		sel = NewRR2()
	case "WRR":
		sel = NewWRR()
	case "PRR":
		if rng == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Rand", cfg.Name)
		}
		sel = NewPRR(rng)
	case "PRR2":
		if rng == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Rand", cfg.Name)
		}
		sel = NewPRR2(rng)
	case "DAL":
		if cfg.Now == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Now", cfg.Name)
		}
		sel = NewDAL(cfg.Now, constTTL)
	case "MRL":
		if cfg.Now == nil {
			return nil, fmt.Errorf("core: policy %q needs PolicyConfig.Now", cfg.Name)
		}
		sel = NewMRL(cfg.Now, constTTL)
	default:
		return nil, fmt.Errorf("core: catalog bug: selector %q", spec.selector)
	}
	if cfg.Proximity != nil {
		wrapped, err := NewProximitySelector(sel, cfg.Proximity.Matrix, cfg.Proximity.Preference, rng)
		if err != nil {
			return nil, err
		}
		sel = wrapped
	}
	ttl, err := NewTTLPolicy(spec.variant, constTTL)
	if err != nil {
		return nil, err
	}
	return NewPolicyFromParts(cfg.Name, sel, ttl, cfg.State)
}
