package core

import (
	"math"
	"testing"
	"testing/quick"

	"dnslb/internal/simcore"
)

func TestTTLVariantString(t *testing.T) {
	tests := []struct {
		v    TTLVariant
		want string
	}{
		{TTLVariant{Classes: OneClass}, "TTL/1"},
		{TTLVariant{Classes: TwoClasses}, "TTL/2"},
		{TTLVariant{Classes: PerDomain}, "TTL/K"},
		{TTLVariant{Classes: OneClass, ServerAware: true}, "TTL/S_1"},
		{TTLVariant{Classes: TwoClasses, ServerAware: true}, "TTL/S_2"},
		{TTLVariant{Classes: PerDomain, ServerAware: true}, "TTL/S_K"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if (TTLVariant{Classes: OneClass}).Adaptive() {
		t.Error("TTL/1 is not adaptive")
	}
	if !(TTLVariant{Classes: PerDomain}).Adaptive() {
		t.Error("TTL/K is adaptive")
	}
	if !(TTLVariant{Classes: OneClass, ServerAware: true}).Adaptive() {
		t.Error("TTL/S_1 is adaptive")
	}
}

func TestNewTTLPolicyValidation(t *testing.T) {
	if _, err := NewTTLPolicy(TTLVariant{Classes: OneClass}, 0); err == nil {
		t.Error("zero constant TTL should error")
	}
	if _, err := NewTTLPolicy(TTLVariant{Classes: ClassCount(0)}, 240); err == nil {
		t.Error("class count 0 should error")
	}
	if _, err := NewTTLPolicy(TTLVariant{Classes: ClassCount(-7)}, 240); err == nil {
		t.Error("negative class count (other than PerDomain) should error")
	}
	if _, err := NewTTLPolicy(TTLVariant{Classes: NClasses(9)}, 240); err != nil {
		t.Errorf("TTL/9 should be valid (meta-algorithm): %v", err)
	}
}

func TestConstantTTLIsConstant(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: OneClass}, 240)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 20; j++ {
		for i := 0; i < st.Cluster().N(); i++ {
			if got := p.TTL(st.Snapshot(), j, i); math.Abs(got-240) > 1e-9 {
				t.Fatalf("TTL/1(%d,%d) = %v, want 240", j, i, got)
			}
		}
	}
}

func TestTTLKPerDomainScaling(t *testing.T) {
	// Pure Zipf: TTL_j = j · TTL_min (relative weight γ_max/γ_j = j).
	st := zipfState(t, 20, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: PerDomain}, 240)
	if err != nil {
		t.Fatal(err)
	}
	base := p.Base(st.Snapshot())
	for j := 0; j < 20; j++ {
		want := base * float64(j+1)
		if got := p.TTL(st.Snapshot(), j, 0); math.Abs(got-want) > 1e-6 {
			t.Errorf("TTL/K domain %d = %v, want %v", j, got, want)
		}
	}
	// Analytic calibration: base = 240·H_K/K.
	hk := 0.0
	for j := 1; j <= 20; j++ {
		hk += 1 / float64(j)
	}
	want := 240 * hk / 20
	if math.Abs(base-want) > 1e-9 {
		t.Errorf("calibrated base = %v, want 240·H_20/20 = %v", base, want)
	}
}

func TestTTL2TwoValues(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: TwoClasses}, 240)
	if err != nil {
		t.Fatal(err)
	}
	hotTTL := p.TTL(st.Snapshot(), 0, 0)
	for j := 0; j < 5; j++ {
		if got := p.TTL(st.Snapshot(), j, 0); math.Abs(got-hotTTL) > 1e-9 {
			t.Errorf("hot domain %d TTL = %v, want same as other hot %v", j, got, hotTTL)
		}
	}
	normalTTL := p.TTL(st.Snapshot(), 19, 0)
	for j := 5; j < 20; j++ {
		if got := p.TTL(st.Snapshot(), j, 0); math.Abs(got-normalTTL) > 1e-9 {
			t.Errorf("normal domain %d TTL = %v, want %v", j, got, normalTTL)
		}
	}
	if hotTTL >= normalTTL {
		t.Errorf("hot TTL %v should be lower than normal TTL %v", hotTTL, normalTTL)
	}
	// Paper observation: with default parameters the TTL/2 policies can
	// always assign TTLs of at least 80 seconds.
	if hotTTL < 80 {
		t.Errorf("hot-class TTL = %v, want >= 80 s as the paper reports", hotTTL)
	}
}

func TestTTLSKServerScaling(t *testing.T) {
	// TTL_ij = (γ_max/γ_j)·base·α_i·ρ: the slowest server's factor
	// α_N·ρ = 1, the fastest gets ρ.
	st := zipfState(t, 50, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	rho := st.Cluster().Rho()
	n := st.Cluster().N()
	base := p.Base(st.Snapshot())
	if got := p.TTL(st.Snapshot(), 0, n-1); math.Abs(got-base) > 1e-6 {
		t.Errorf("hottest domain on slowest server TTL = %v, want base %v", got, base)
	}
	if got := p.TTL(st.Snapshot(), 0, 0); math.Abs(got-base*rho) > 1e-6 {
		t.Errorf("hottest domain on fastest server TTL = %v, want base·ρ = %v", got, base*rho)
	}
	// TTLs across servers for one domain scale with capacity.
	for i := 0; i < n; i++ {
		want := base * st.Cluster().Alpha(i) * rho
		if got := p.TTL(st.Snapshot(), 0, i); math.Abs(got-want) > 1e-6 {
			t.Errorf("server %d TTL = %v, want %v", i, got, want)
		}
	}
}

func TestTTLS1IgnoresDomain(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: OneClass, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.Cluster().N(); i++ {
		a := p.TTL(st.Snapshot(), 0, i)
		b := p.TTL(st.Snapshot(), 19, i)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("TTL/S_1 server %d: domain 0 TTL %v != domain 19 TTL %v", i, a, b)
		}
	}
}

// TestCalibrationEqualizesAddressRate is the paper's fairness
// condition: every variant's expected address-request rate (sum over
// domains of expected 1/TTL under uniform server assignment) must
// match the constant-TTL baseline K/240.
func TestCalibrationEqualizesAddressRate(t *testing.T) {
	variants := []TTLVariant{
		{Classes: OneClass},
		{Classes: TwoClasses},
		{Classes: PerDomain},
		{Classes: OneClass, ServerAware: true},
		{Classes: TwoClasses, ServerAware: true},
		{Classes: PerDomain, ServerAware: true},
	}
	for _, level := range []int{20, 35, 50, 65} {
		st := zipfState(t, level, 20)
		want := 20.0 / 240.0
		for _, v := range variants {
			p, err := NewTTLPolicy(v, 240)
			if err != nil {
				t.Fatal(err)
			}
			var rate float64
			n := st.Cluster().N()
			for j := 0; j < 20; j++ {
				for i := 0; i < n; i++ {
					rate += 1 / p.TTL(st.Snapshot(), j, i) / float64(n)
				}
			}
			if math.Abs(rate-want)/want > 0.01 {
				t.Errorf("het %d%% %s: address rate %v, want %v (±1%%)", level, v, rate, want)
			}
		}
	}
}

func TestCalibrationProperty(t *testing.T) {
	// For any weight vector, the calibrated TTL/K rate matches K/240.
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		w := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			w[i] = float64(r%1000) + 1
			sum += w[i]
		}
		if sum == 0 {
			return true
		}
		c := MustCluster([]float64{100, 80, 50})
		st, err := NewState(c, len(w))
		if err != nil {
			return false
		}
		if err := st.SetWeights(w); err != nil {
			return false
		}
		p, err := NewTTLPolicy(TTLVariant{Classes: PerDomain}, 240)
		if err != nil {
			return false
		}
		var rate float64
		for j := range w {
			rate += 1 / p.TTL(st.Snapshot(), j, 0)
		}
		want := float64(len(w)) / 240
		return math.Abs(rate-want)/want < 0.02
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTTLRecalibratesOnWeightChange(t *testing.T) {
	st := zipfState(t, 20, 20)
	p, err := NewTTLPolicy(TTLVariant{Classes: PerDomain}, 240)
	if err != nil {
		t.Fatal(err)
	}
	before := p.TTL(st.Snapshot(), 10, 0)
	// Flip the skew: domain 19 becomes the most popular.
	w := simcore.ZipfWeights(20, 1)
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		w[i], w[j] = w[j], w[i]
	}
	if err := st.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	after := p.TTL(st.Snapshot(), 10, 0)
	if math.Abs(before-after) < 1e-9 {
		t.Error("TTL did not adapt to new weights")
	}
	if got := p.TTL(st.Snapshot(), 19, 0); math.Abs(got-p.Base(st.Snapshot())) > 1e-6 {
		t.Errorf("new hottest domain TTL = %v, want base %v", got, p.Base(st.Snapshot()))
	}
}

func TestTTLBoundsWithDegenerateWeights(t *testing.T) {
	c := MustCluster([]float64{100, 50})
	st, err := NewState(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One domain got essentially all traffic; another almost none.
	if err := st.SetWeights([]float64{1e9, 1, 1e-12}); err != nil {
		t.Fatal(err)
	}
	p, err := NewTTLPolicy(TTLVariant{Classes: PerDomain, ServerAware: true}, 240)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for i := 0; i < 2; i++ {
			ttl := p.TTL(st.Snapshot(), j, i)
			if ttl < minAdaptiveTTL || ttl > maxTTL {
				t.Errorf("TTL(%d,%d) = %v out of [%v,%v]", j, i, ttl, minAdaptiveTTL, maxTTL)
			}
		}
	}
}

func TestClassCountString(t *testing.T) {
	if OneClass.String() != "TTL/1" || TwoClasses.String() != "TTL/2" || PerDomain.String() != "TTL/K" {
		t.Error("ClassCount strings wrong")
	}
	if ClassCount(42).String() == "" {
		t.Error("unknown ClassCount should stringify")
	}
}
