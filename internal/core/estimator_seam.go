package core

import (
	"encoding/json"
	"fmt"
	"math"
)

// Estimator kind tags. The kind travels inside EstimatorState so a
// checkpoint written under one estimator cannot be silently restored
// into another (the learned state is not interchangeable).
const (
	// EstimatorReactive is the paper's estimator: an EWMA over the
	// per-domain hit rates the Web servers report.
	EstimatorReactive = "reactive"
	// EstimatorPredictive is the NS-cache forecasting estimator: the
	// reactive EWMA plus a per-(domain, resolver-class) model of the
	// TTL expirations of the engine's own decisions, used to forecast
	// query arrivals before reports confirm them.
	EstimatorPredictive = "predictive"
)

// EstimatorKinds lists the selectable estimator kinds.
func EstimatorKinds() []string { return []string{EstimatorReactive, EstimatorPredictive} }

// LoadEstimator is the hidden-load estimation seam shared by the
// engine, the simulator's collector, and the live server's report and
// checkpoint paths. The reactive EWMA (Estimator) and the predictive
// NS-cache model (PredictiveEstimator) both implement it; every
// catalog policy runs unmodified on either.
//
// Implementations are not safe for concurrent use; the engine
// serializes all calls behind one mutex (feedback arrives on
// report/collection intervals, never per query).
type LoadEstimator interface {
	// Kind identifies the implementation (EstimatorReactive, ...).
	Kind() string
	// Record accumulates hits observed from a domain since the last
	// Roll, reporting whether the observation was accepted.
	Record(domain int, hits float64) bool
	// Roll closes the current collection interval of the given length
	// in seconds and folds it into the estimates.
	Roll(intervalSeconds float64)
	// Rolls returns how many collection intervals have completed.
	Rolls() int
	// Weights returns the current relative hidden-load weight
	// estimates, normalized to sum to one (uniform before the first
	// Roll).
	Weights() []float64
	// Rates returns a copy of the absolute per-domain demand estimates
	// in hits per second.
	Rates() []float64
	// State captures the serializable soft state for a checkpoint,
	// tagged with the implementation's kind.
	State() EstimatorState
	// Restore replaces the soft state with a checkpointed one. A state
	// of a different kind must be refused with a descriptive error and
	// the estimator left unchanged.
	Restore(EstimatorState) error
}

// Forecaster is the optional capability a LoadEstimator implements
// when it can predict demand from the engine's own TTL handouts. The
// engine type-asserts it once at assembly; the reactive estimator does
// not implement it, so the reactive query path carries no extra work.
type Forecaster interface {
	// ObserveDecision feeds one scheduling decision: at engine time
	// now the DNS handed a resolver a mapping for domain with the
	// given TTL in seconds.
	ObserveDecision(domain int, now, ttl float64)
	// ForecastRates returns the predicted per-domain demand in hits
	// per second at engine time now.
	ForecastRates(now float64) []float64
	// ForecastError returns the smoothed mean absolute error of the
	// previous intervals' forecasts in hits per second (0 until two
	// rolls have completed).
	ForecastError() float64
}

// NewLoadEstimator builds an estimator of the given kind for the given
// number of domains; an empty kind selects the reactive default.
// alpha is the EWMA weight of the newest interval in (0,1].
func NewLoadEstimator(kind string, domains int, alpha float64) (LoadEstimator, error) {
	switch kind {
	case "", EstimatorReactive:
		return NewEstimator(domains, alpha)
	case EstimatorPredictive:
		return NewPredictiveEstimator(domains, alpha)
	default:
		return nil, fmt.Errorf("core: unknown estimator kind %q (want %s or %s)",
			kind, EstimatorReactive, EstimatorPredictive)
	}
}

// EstimatorState is the serializable soft state of a LoadEstimator:
// everything needed to resume hidden-load estimation after a DNS
// restart instead of resetting the weights to uniform. Kind tags the
// implementation that wrote it (empty means reactive, for checkpoints
// written before kinds existed); the predictive fields are nil/zero in
// reactive states.
//
// The predictive estimator's active mapping windows are deliberately
// NOT part of the state: their expiries are engine seconds, which do
// not survive a restart (the wall-clock epoch moves). Only the learned
// per-mapping rates are carried; windows repopulate from live
// decisions within one TTL.
type EstimatorState struct {
	Kind   string    `json:"kind,omitempty"`
	Alpha  float64   `json:"alpha"`
	Counts []float64 `json:"counts"`
	Rates  []float64 `json:"rates"`
	Rolls  int       `json:"rolls"`

	// Predictive NS-cache model (learned rates only, never windows).
	MapRates    []float64 `json:"map_rates,omitempty"`
	MapRolls    []int     `json:"map_rolls,omitempty"`
	DomRates    []float64 `json:"dom_rates,omitempty"`
	DomRolls    []int     `json:"dom_rolls,omitempty"`
	GlobalRate  float64   `json:"global_rate,omitempty"`
	GlobalRolls int       `json:"global_rolls,omitempty"`
	MeanTTL     float64   `json:"mean_ttl,omitempty"`
	ForecastErr float64   `json:"forecast_err,omitempty"`
}

// ParseEstimatorState decodes and validates a serialized
// EstimatorState. It is the shared entry point for checkpoint restore
// and the fuzz target: arbitrary input must either yield a
// structurally valid state or a descriptive error, never a panic.
func ParseEstimatorState(data []byte) (EstimatorState, error) {
	var st EstimatorState
	if err := json.Unmarshal(data, &st); err != nil {
		return EstimatorState{}, fmt.Errorf("core: estimator state: %w", err)
	}
	if err := ValidateEstimatorState(st); err != nil {
		return EstimatorState{}, err
	}
	return st, nil
}

// ValidateEstimatorState checks the structural invariants every
// estimator state must satisfy regardless of kind: a known kind tag,
// alpha in (0,1], consistent vector lengths, non-negative finite
// values, and non-negative roll counts. Kind-specific shape (domain
// count) is checked by the estimator's Restore.
func ValidateEstimatorState(st EstimatorState) error {
	switch st.Kind {
	case "", EstimatorReactive, EstimatorPredictive:
	default:
		return fmt.Errorf("core: estimator state has unknown kind %q", st.Kind)
	}
	if st.Alpha <= 0 || st.Alpha > 1 || math.IsNaN(st.Alpha) {
		return fmt.Errorf("core: estimator state alpha %v out of (0,1]", st.Alpha)
	}
	if st.Rolls < 0 {
		return fmt.Errorf("core: estimator state has negative roll count %d", st.Rolls)
	}
	if len(st.Counts) != len(st.Rates) {
		return fmt.Errorf("core: estimator state has %d counts but %d rates",
			len(st.Counts), len(st.Rates))
	}
	if err := finiteNonNegative("counts", st.Counts); err != nil {
		return err
	}
	if err := finiteNonNegative("rates", st.Rates); err != nil {
		return err
	}
	if st.Kind != EstimatorPredictive {
		if len(st.MapRates) != 0 || len(st.MapRolls) != 0 || len(st.DomRates) != 0 ||
			len(st.DomRolls) != 0 || st.GlobalRate != 0 || st.GlobalRolls != 0 ||
			st.MeanTTL != 0 || st.ForecastErr != 0 {
			return fmt.Errorf("core: %q estimator state carries predictive fields", st.Kind)
		}
		return nil
	}
	domains := len(st.Counts)
	if len(st.MapRates) != domains*predictiveClasses || len(st.MapRolls) != domains*predictiveClasses {
		return fmt.Errorf("core: predictive state has %d/%d per-mapping entries, want %d",
			len(st.MapRates), len(st.MapRolls), domains*predictiveClasses)
	}
	if len(st.DomRates) != domains || len(st.DomRolls) != domains {
		return fmt.Errorf("core: predictive state has %d/%d per-domain entries, want %d",
			len(st.DomRates), len(st.DomRolls), domains)
	}
	if err := finiteNonNegative("map_rates", st.MapRates); err != nil {
		return err
	}
	if err := finiteNonNegative("dom_rates", st.DomRates); err != nil {
		return err
	}
	for i, n := range st.MapRolls {
		if n < 0 {
			return fmt.Errorf("core: predictive state map_rolls[%d] is %d, want non-negative", i, n)
		}
	}
	for i, n := range st.DomRolls {
		if n < 0 {
			return fmt.Errorf("core: predictive state dom_rolls[%d] is %d, want non-negative", i, n)
		}
	}
	for _, v := range [4]float64{st.GlobalRate, st.MeanTTL, st.ForecastErr, float64(st.GlobalRolls)} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: predictive state scalar %v, want non-negative finite", v)
		}
	}
	return nil
}

func finiteNonNegative(field string, vs []float64) error {
	for i, v := range vs {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: estimator state %s[%d] is %v, want non-negative finite", field, i, v)
		}
	}
	return nil
}
