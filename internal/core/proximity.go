package core

import (
	"errors"
	"fmt"
)

// Proximity-aware scheduling (extension — not in the paper).
//
// The paper's site is geographically distributed but its policies
// optimize load alone. Modern GeoDNS deployments also weigh network
// proximity: answering with a nearby server cuts client latency but
// concentrates load on whatever is close to the hot domains. The
// ProximitySelector composes both: it prefers the nearest available
// server as long as that server is not "too loaded" relative to the
// scheduling discipline's own choice, and otherwise defers to the
// inner selector. The latency matrix is supplied per (domain, server);
// the sim's geo extension sweeps the preference strength.

// LatencyMatrix holds the network distance in milliseconds from each
// connected domain to each Web server.
type LatencyMatrix struct {
	domains int
	servers int
	ms      []float64 // row-major [domain][server]
}

// NewLatencyMatrix builds a matrix from row-major values.
func NewLatencyMatrix(domains, servers int, ms []float64) (*LatencyMatrix, error) {
	if domains <= 0 || servers <= 0 {
		return nil, errors.New("core: latency matrix needs positive dimensions")
	}
	if len(ms) != domains*servers {
		return nil, fmt.Errorf("core: latency matrix has %d values, want %d", len(ms), domains*servers)
	}
	for i, v := range ms {
		if v < 0 {
			return nil, fmt.Errorf("core: negative latency at %d", i)
		}
	}
	out := make([]float64, len(ms))
	copy(out, ms)
	return &LatencyMatrix{domains: domains, servers: servers, ms: out}, nil
}

// Latency returns the distance from domain j to server i in ms.
func (m *LatencyMatrix) Latency(domain, server int) float64 {
	return m.ms[domain*m.servers+server]
}

// Nearest returns the closest available server for a domain, or -1 if
// none is available (cannot happen: availability admits all servers
// when every one is alarmed).
func (m *LatencyMatrix) nearest(sn *Snapshot, domain int) int {
	best := -1
	bestMS := 0.0
	for i := 0; i < m.servers; i++ {
		if !sn.available(i) {
			continue
		}
		d := m.Latency(domain, i)
		if best == -1 || d < bestMS {
			best, bestMS = i, d
		}
	}
	return best
}

// RingLatencies builds a synthetic geography: domains and servers are
// placed on a ring and latency grows linearly with angular distance
// from baseMS up to baseMS+spanMS. It gives every domain a distinct
// nearest server while keeping the matrix fully deterministic.
func RingLatencies(domains, servers int, baseMS, spanMS float64) (*LatencyMatrix, error) {
	if domains <= 0 || servers <= 0 {
		return nil, errors.New("core: ring needs positive dimensions")
	}
	if baseMS < 0 || spanMS < 0 {
		return nil, errors.New("core: ring latencies must be non-negative")
	}
	ms := make([]float64, domains*servers)
	for j := 0; j < domains; j++ {
		dj := float64(j) / float64(domains)
		for i := 0; i < servers; i++ {
			di := float64(i) / float64(servers)
			dist := dj - di
			if dist < 0 {
				dist = -dist
			}
			if dist > 0.5 {
				dist = 1 - dist
			}
			ms[j*servers+i] = baseMS + spanMS*2*dist
		}
	}
	return NewLatencyMatrix(domains, servers, ms)
}

// Default ring geography shape when the caller enables proximity but
// specifies no latencies: 20 ms to the nearest point on the ring,
// 180 ms to the farthest.
const (
	DefaultGeoBaseMS = 20.0
	DefaultGeoSpanMS = 160.0
)

// RingProximityConfig builds the ProximityConfig both the simulator
// and the live DNS server use for the geo extension: the synthetic
// ring geography over the given population, with the default shape
// when baseMS and spanMS are both zero. A zero preference returns
// (nil, nil) — the extension disabled — so callers can pass their
// flag values through unconditionally.
func RingProximityConfig(domains, servers int, preference, baseMS, spanMS float64) (*ProximityConfig, error) {
	if preference == 0 {
		return nil, nil
	}
	if preference < 0 || preference > 1 {
		return nil, fmt.Errorf("core: proximity preference %v out of [0,1]", preference)
	}
	if baseMS == 0 && spanMS == 0 {
		baseMS, spanMS = DefaultGeoBaseMS, DefaultGeoSpanMS
	}
	m, err := RingLatencies(domains, servers, baseMS, spanMS)
	if err != nil {
		return nil, err
	}
	return &ProximityConfig{Matrix: m, Preference: preference}, nil
}

// proximitySelector prefers the nearest server with probability
// preference, deferring to the inner discipline otherwise — and always
// defers when the nearest server is alarmed.
type proximitySelector struct {
	inner      Selector
	matrix     *LatencyMatrix
	preference float64
	rng        Rand
}

// NewProximitySelector wraps a selector with GeoDNS-style proximity
// preference in [0,1]: 0 behaves exactly like the inner selector, 1
// always picks the nearest available server (pure GeoDNS). The
// generator is wrapped with LockRand for concurrent callers; pass the
// same (already locked) Rand as the inner selector's so both share one
// lock.
func NewProximitySelector(inner Selector, matrix *LatencyMatrix, preference float64, rng Rand) (Selector, error) {
	if inner == nil || matrix == nil {
		return nil, errors.New("core: proximity selector needs an inner selector and a matrix")
	}
	if preference < 0 || preference > 1 {
		return nil, fmt.Errorf("core: proximity preference %v out of [0,1]", preference)
	}
	if preference > 0 && preference < 1 && rng == nil {
		return nil, errors.New("core: proximity selector needs Rand for preference in (0,1)")
	}
	return &proximitySelector{inner: inner, matrix: matrix, preference: preference, rng: LockRand(rng)}, nil
}

func (p *proximitySelector) Name() string {
	return fmt.Sprintf("Geo(%s,%.2f)", p.inner.Name(), p.preference)
}

func (p *proximitySelector) cursors() []int64 {
	if c, ok := p.inner.(cursorCarrier); ok {
		return c.cursors()
	}
	return nil
}

func (p *proximitySelector) restoreCursors(cs []int64) bool {
	c, ok := p.inner.(cursorCarrier)
	return ok && c.restoreCursors(cs)
}

func (p *proximitySelector) Select(sn *Snapshot, domain int) int {
	usePref := p.preference >= 1
	if !usePref && p.preference > 0 {
		usePref = p.rng.Float64() < p.preference
	}
	if usePref {
		if i := p.matrix.nearest(sn, domain); i >= 0 {
			return i
		}
	}
	return p.inner.Select(sn, domain)
}

// MeanLatency returns the expected client-to-server latency of an
// assignment distribution: Σ_j weight_j · latency(j, assign(j)). The
// sim's geo extension uses it to quantify the proximity half of the
// tradeoff.
func (m *LatencyMatrix) MeanLatency(weights []float64, assign func(domain int) int) float64 {
	var sum float64
	for j := 0; j < m.domains && j < len(weights); j++ {
		sum += weights[j] * m.Latency(j, assign(j))
	}
	return sum
}
