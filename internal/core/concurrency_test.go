package core

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// stressPolicies covers every selector family: deterministic rotation
// (RR, RR2), probabilistic (PRR, PRR2), ledger-based (DAL, MRL, WRR)
// and the adaptive-TTL composites the paper evaluates.
var stressPolicies = []string{
	"RR", "RR2", "WRR", "PRR-TTL/K", "PRR2-TTL/K",
	"DRR-TTL/S_2", "DRR2-TTL/S_K", "DAL", "MRL",
}

// TestScheduleConcurrentWithMutators hammers Schedule from several
// goroutines while other goroutines continuously flip alarms, mark
// servers down, re-install weight estimates and move the class
// threshold. Run under -race this is the proof of the lock-free query
// path's safety; the counter check afterwards is the exactness proof:
// every successful decision is accounted exactly once.
func TestScheduleConcurrentWithMutators(t *testing.T) {
	for _, name := range stressPolicies {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cluster, err := ScaledCluster(5, 35, 500)
			if err != nil {
				t.Fatal(err)
			}
			st, err := NewState(cluster, 12)
			if err != nil {
				t.Fatal(err)
			}
			var now atomic.Uint64
			pol, err := NewPolicy(PolicyConfig{
				Name:  name,
				State: st,
				Rand:  rand.New(rand.NewPCG(1, 2)),
				Now:   func() float64 { return float64(now.Add(1)) / 1e3 },
			})
			if err != nil {
				t.Fatal(err)
			}

			const (
				schedulers = 4
				perWorker  = 2000
			)
			var scheduled atomic.Uint64
			stop := make(chan struct{})
			var wg, mutWG sync.WaitGroup

			// Mutator: weights, beta, alarms and downs churn the
			// published snapshot. It runs until the schedulers finish
			// (its own WaitGroup — waiting on it before closing stop
			// would deadlock), yielding each round so the schedulers
			// make progress even on GOMAXPROCS=1 under -race.
			mutWG.Add(1)
			go func() {
				defer mutWG.Done()
				r := rand.New(rand.NewPCG(3, 4))
				w := make([]float64, st.Domains())
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					runtime.Gosched()
					switch i % 4 {
					case 0:
						for j := range w {
							w[j] = 0.5 + r.Float64()
						}
						if err := st.SetWeights(w); err != nil {
							t.Error(err)
							return
						}
					case 1:
						st.SetBeta(0.05 + r.Float64()/4)
					case 2:
						_ = st.SetAlarm(i%cluster.N(), i%8 == 2)
					case 3:
						// Keep at least one server live so Schedule
						// never sees an empty cluster.
						_ = st.SetDown(1+i%(cluster.N()-1), i%6 == 3)
					}
				}
			}()

			for g := 0; g < schedulers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						d, err := pol.Schedule((g*perWorker + i) % st.Domains())
						if err != nil {
							t.Errorf("schedule: %v", err)
							return
						}
						if d.Server < 0 || d.Server >= cluster.N() {
							t.Errorf("server %d out of range", d.Server)
							return
						}
						if d.TTL < 0 {
							t.Errorf("negative TTL %v", d.TTL)
							return
						}
						scheduled.Add(1)
					}
				}(g)
			}

			wg.Wait()
			close(stop)
			mutWG.Wait()

			stats := pol.Stats()
			want := scheduled.Load()
			if stats.Decisions != want {
				t.Errorf("Decisions = %d, want %d", stats.Decisions, want)
			}
			var perServer, perClass uint64
			for _, v := range stats.PerServer {
				perServer += v
			}
			for _, v := range stats.PerClass {
				perClass += v
			}
			if perServer != want {
				t.Errorf("sum(PerServer) = %d, want %d", perServer, want)
			}
			if perClass != want {
				t.Errorf("sum(PerClass) = %d, want %d", perClass, want)
			}
			if stats.MinTTL < 0 || stats.MaxTTL < stats.MinTTL {
				t.Errorf("TTL bounds inconsistent: min %v max %v", stats.MinTTL, stats.MaxTTL)
			}
			if stats.MeanTTL < stats.MinTTL || stats.MeanTTL > stats.MaxTTL {
				t.Errorf("MeanTTL %v outside [%v, %v]", stats.MeanTTL, stats.MinTTL, stats.MaxTTL)
			}
		})
	}
}

// TestStatsZeroValue pins the documented semantics before any
// decision: plain zeros, not the ±Inf min/max accumulator seeds.
func TestStatsZeroValue(t *testing.T) {
	cluster, err := ScaledCluster(3, 20, 300)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(cluster, 4)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewPolicy(PolicyConfig{Name: "RR", State: st})
	if err != nil {
		t.Fatal(err)
	}
	s := pol.Stats()
	if s.Decisions != 0 || s.MeanTTL != 0 || s.MinTTL != 0 || s.MaxTTL != 0 {
		t.Errorf("zero-value Stats = %+v, want all-zero TTL fields", s)
	}
	for i, v := range s.PerServer {
		if v != 0 {
			t.Errorf("PerServer[%d] = %d before any decision", i, v)
		}
	}
	if len(s.PerClass) != 0 {
		t.Errorf("PerClass = %v before any decision, want empty", s.PerClass)
	}
}

// TestSnapshotImmutableUnderMutation asserts a loaded snapshot never
// changes after later mutations: readers that captured it keep a
// consistent view.
func TestSnapshotImmutableUnderMutation(t *testing.T) {
	cluster, err := ScaledCluster(4, 20, 400)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(cluster, 6)
	if err != nil {
		t.Fatal(err)
	}
	sn := st.Snapshot()
	version := sn.Version()
	weights := sn.Weights()
	hot := sn.HotDomains()

	if err := st.SetWeights([]float64{9, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetAlarm(0, true); err != nil {
		t.Fatal(err)
	}
	if err := st.SetDown(1, true); err != nil {
		t.Fatal(err)
	}

	if sn.Version() != version {
		t.Errorf("captured snapshot version moved: %d -> %d", version, sn.Version())
	}
	if sn.Alarmed(0) || sn.Down(1) {
		t.Error("captured snapshot sees later alarm/down mutations")
	}
	if got := sn.Weights(); len(got) == len(weights) {
		for i := range got {
			if got[i] != weights[i] {
				t.Errorf("captured snapshot weight %d moved: %v -> %v", i, weights[i], got[i])
			}
		}
	}
	if sn.HotDomains() != hot {
		t.Errorf("captured snapshot hot count moved: %d -> %d", hot, sn.HotDomains())
	}
	if st.Snapshot().Version() == version {
		t.Error("mutations did not publish a new snapshot version")
	}
}
