package core

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Selector chooses the Web server for an address request against one
// immutable state snapshot.
//
// Selectors are stateful (round-robin pointers, accumulated loads) but
// safe for concurrent use: the rotation pointers are atomics and the
// accounting selectors (WRR, DAL, MRL) take a small internal lock.
// Under concurrent callers the round-robin rotation is approximate —
// two simultaneous requests may pick the same server — while
// single-threaded call sequences reproduce the paper's behavior
// exactly, which keeps the simulator deterministic.
type Selector interface {
	// Select returns the index of the chosen server for an address
	// request originating from the given domain, or -1 when no server
	// is available (every server is marked down).
	Select(sn *Snapshot, domain int) int
	// Name returns the selector's name as used in the paper (RR, RR2,
	// PRR, PRR2, DAL).
	Name() string
}

// rrSelector implements the conventional round-robin policy used by
// the NCSA multi-server prototype: servers are assigned cyclically,
// skipping servers that declared themselves critically loaded. The
// rotation pointer is a lock-free atomic.
type rrSelector struct {
	last atomic.Int64
}

// NewRR returns the round-robin selector, the paper's lower-bound
// baseline.
func NewRR() Selector {
	r := &rrSelector{}
	r.last.Store(-1)
	return r
}

func (r *rrSelector) Name() string { return "RR" }

func (r *rrSelector) Select(sn *Snapshot, _ int) int {
	n := sn.Cluster().N()
	last := int(r.last.Load())
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if sn.available(i) {
			r.last.Store(int64(i))
			return i
		}
	}
	// Every server is down: availability only rejects the whole cluster
	// on liveness, never on alarms alone.
	return -1
}

func (r *rrSelector) cursors() []int64 { return []int64{r.last.Load()} }

func (r *rrSelector) restoreCursors(c []int64) bool {
	if len(c) != 1 {
		return false
	}
	r.last.Store(c[0])
	return true
}

// rr2Selector implements the two-tier round-robin policy (RR2): the
// domains are partitioned into a normal and a hot class, and each
// class round-robins independently so that consecutive requests from
// hot domains are not funnelled to the same server.
type rr2Selector struct {
	last [2]atomic.Int64 // indexed by class - ClassNormal
}

// NewRR2 returns the two-tier round-robin selector.
func NewRR2() Selector {
	r := &rr2Selector{}
	r.last[0].Store(-1)
	r.last[1].Store(-1)
	return r
}

func (r *rr2Selector) Name() string { return "RR2" }

func (r *rr2Selector) Select(sn *Snapshot, domain int) int {
	p := &r.last[sn.Class(domain)-ClassNormal]
	n := sn.Cluster().N()
	last := int(p.Load())
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if sn.available(i) {
			p.Store(int64(i))
			return i
		}
	}
	return -1
}

func (r *rr2Selector) cursors() []int64 {
	return []int64{r.last[0].Load(), r.last[1].Load()}
}

func (r *rr2Selector) restoreCursors(c []int64) bool {
	if len(c) != 2 {
		return false
	}
	r.last[0].Store(c[0])
	r.last[1].Store(c[1])
	return true
}

// prrSelector implements probabilistic round robin (PRR): starting
// from the successor of the last chosen server, candidate S_i is
// accepted with probability α_i (its relative capacity), otherwise the
// scan moves on. Because α_1 = 1, a full cycle always terminates.
type prrSelector struct {
	last atomic.Int64
	rng  Rand
}

// NewPRR returns the probabilistic round-robin selector, which extends
// RR to heterogeneous servers by capacity-proportional skipping. The
// generator is wrapped with LockRand for concurrent callers.
func NewPRR(rng Rand) Selector {
	p := &prrSelector{rng: LockRand(rng)}
	p.last.Store(-1)
	return p
}

func (p *prrSelector) Name() string { return "PRR" }

func (p *prrSelector) Select(sn *Snapshot, _ int) int {
	i := probScan(sn, int(p.last.Load()), p.rng)
	if i >= 0 {
		p.last.Store(int64(i))
	}
	return i
}

func (p *prrSelector) cursors() []int64 { return []int64{p.last.Load()} }

func (p *prrSelector) restoreCursors(c []int64) bool {
	if len(c) != 1 {
		return false
	}
	p.last.Store(c[0])
	return true
}

// prr2Selector is PRR with the RR2 two-tier class structure: one
// probabilistic round-robin pointer per domain class.
type prr2Selector struct {
	last [2]atomic.Int64 // indexed by class - ClassNormal
	rng  Rand
}

// NewPRR2 returns the two-tier probabilistic round-robin selector. The
// generator is wrapped with LockRand for concurrent callers.
func NewPRR2(rng Rand) Selector {
	p := &prr2Selector{rng: LockRand(rng)}
	p.last[0].Store(-1)
	p.last[1].Store(-1)
	return p
}

func (p *prr2Selector) Name() string { return "PRR2" }

func (p *prr2Selector) Select(sn *Snapshot, domain int) int {
	ptr := &p.last[sn.Class(domain)-ClassNormal]
	i := probScan(sn, int(ptr.Load()), p.rng)
	if i >= 0 {
		ptr.Store(int64(i))
	}
	return i
}

func (p *prr2Selector) cursors() []int64 {
	return []int64{p.last[0].Load(), p.last[1].Load()}
}

func (p *prr2Selector) restoreCursors(c []int64) bool {
	if len(c) != 2 {
		return false
	}
	p.last[0].Store(c[0])
	p.last[1].Store(c[1])
	return true
}

// probScan performs the paper's probabilistic scan: starting after
// `last`, accept server i with probability α_i; skip alarmed and down
// servers outright. The scan is bounded: after two full unavailing
// cycles it falls back to the next available server deterministically
// (this can only happen through extreme rounding of α, not in
// practice). When every server is down it returns -1.
func probScan(sn *Snapshot, last int, rng Rand) int {
	n := sn.Cluster().N()
	for k := 1; k <= 2*n; k++ {
		i := (last + k) % n
		if !sn.available(i) {
			continue
		}
		if rng.Float64() <= sn.Alpha(i) {
			return i
		}
	}
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if sn.available(i) {
			return i
		}
	}
	return -1
}

// dalEntry is one outstanding address mapping tracked by the DAL
// selector: the hidden load it pins to a server and when it expires.
type dalEntry struct {
	expire float64
	server int
	load   float64
}

type dalHeap []dalEntry

func (h dalHeap) Len() int           { return len(h) }
func (h dalHeap) Less(i, j int) bool { return h[i].expire < h[j].expire }
func (h dalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dalHeap) Push(x any)        { *h = append(*h, x.(dalEntry)) }
func (h *dalHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// dalSelector implements the minimum Dynamically Accumulated Load
// baseline in the capacity-aware version used by the paper's Figure 3:
// every mapping accumulates the domain's hidden load weight on the
// chosen server for the duration of the TTL, and each request goes to
// the server with the smallest accumulated load per unit of capacity.
// The accumulated-load ledger is guarded by a selector-local mutex:
// unlike the rotation selectors it cannot decide without a consistent
// read-modify-write of all per-server loads.
type dalSelector struct {
	now func() float64
	ttl float64

	mu      sync.Mutex
	load    []float64
	pending dalHeap
}

// NewDAL returns the DAL selector. now supplies the current (virtual
// or wall) time; ttl is the constant TTL the policy hands out, which
// also bounds how long each accumulated load entry persists.
func NewDAL(now func() float64, ttl float64) Selector {
	return &dalSelector{now: now, ttl: ttl}
}

func (d *dalSelector) Name() string { return "DAL" }

func (d *dalSelector) Select(sn *Snapshot, domain int) int {
	n := sn.Cluster().N()
	t := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.load) != n {
		d.load = make([]float64, n)
	}
	for len(d.pending) > 0 && d.pending[0].expire <= t {
		e := heap.Pop(&d.pending).(dalEntry)
		d.load[e.server] -= e.load
		if d.load[e.server] < 0 {
			d.load[e.server] = 0
		}
	}
	best, bestScore := -1, 0.0
	for i := 0; i < n; i++ {
		if !sn.available(i) {
			continue
		}
		score := d.load[i] / sn.Alpha(i)
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return -1
	}
	w := sn.Weight(domain)
	d.load[best] += w
	heap.Push(&d.pending, dalEntry{expire: t + d.ttl, server: best, load: w})
	return best
}
