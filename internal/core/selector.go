package core

import (
	"container/heap"
)

// Rand is the source of randomness required by the probabilistic
// selectors. simcore.Stream and math/rand generators satisfy it.
type Rand interface {
	Float64() float64
}

// Selector chooses the Web server for an address request. Selectors
// are stateful (round-robin pointers, accumulated loads) and are not
// safe for concurrent use; the DNS scheduler serializes requests.
type Selector interface {
	// Select returns the index of the chosen server for an address
	// request originating from the given domain, or -1 when no server
	// is available (every server is marked down).
	Select(st *State, domain int) int
	// Name returns the selector's name as used in the paper (RR, RR2,
	// PRR, PRR2, DAL).
	Name() string
}

// rrSelector implements the conventional round-robin policy used by
// the NCSA multi-server prototype: servers are assigned cyclically,
// skipping servers that declared themselves critically loaded.
type rrSelector struct {
	last int
}

// NewRR returns the round-robin selector, the paper's lower-bound
// baseline.
func NewRR() Selector { return &rrSelector{last: -1} }

func (r *rrSelector) Name() string { return "RR" }

func (r *rrSelector) Select(st *State, _ int) int {
	n := st.Cluster().N()
	for k := 1; k <= n; k++ {
		i := (r.last + k) % n
		if st.available(i) {
			r.last = i
			return i
		}
	}
	// Every server is down: availability only rejects the whole cluster
	// on liveness, never on alarms alone.
	return -1
}

// rr2Selector implements the two-tier round-robin policy (RR2): the
// domains are partitioned into a normal and a hot class, and each
// class round-robins independently so that consecutive requests from
// hot domains are not funnelled to the same server.
type rr2Selector struct {
	last map[DomainClass]int
}

// NewRR2 returns the two-tier round-robin selector.
func NewRR2() Selector {
	return &rr2Selector{last: map[DomainClass]int{ClassNormal: -1, ClassHot: -1}}
}

func (r *rr2Selector) Name() string { return "RR2" }

func (r *rr2Selector) Select(st *State, domain int) int {
	class := st.Class(domain)
	n := st.Cluster().N()
	last := r.last[class]
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if st.available(i) {
			r.last[class] = i
			return i
		}
	}
	return -1
}

// prrSelector implements probabilistic round robin (PRR): starting
// from the successor of the last chosen server, candidate S_i is
// accepted with probability α_i (its relative capacity), otherwise the
// scan moves on. Because α_1 = 1, a full cycle always terminates.
type prrSelector struct {
	last int
	rng  Rand
}

// NewPRR returns the probabilistic round-robin selector, which extends
// RR to heterogeneous servers by capacity-proportional skipping.
func NewPRR(rng Rand) Selector { return &prrSelector{last: -1, rng: rng} }

func (p *prrSelector) Name() string { return "PRR" }

func (p *prrSelector) Select(st *State, _ int) int {
	i := probScan(st, p.last, p.rng)
	if i >= 0 {
		p.last = i
	}
	return i
}

// prr2Selector is PRR with the RR2 two-tier class structure: one
// probabilistic round-robin pointer per domain class.
type prr2Selector struct {
	last map[DomainClass]int
	rng  Rand
}

// NewPRR2 returns the two-tier probabilistic round-robin selector.
func NewPRR2(rng Rand) Selector {
	return &prr2Selector{last: map[DomainClass]int{ClassNormal: -1, ClassHot: -1}, rng: rng}
}

func (p *prr2Selector) Name() string { return "PRR2" }

func (p *prr2Selector) Select(st *State, domain int) int {
	class := st.Class(domain)
	i := probScan(st, p.last[class], p.rng)
	if i >= 0 {
		p.last[class] = i
	}
	return i
}

// probScan performs the paper's probabilistic scan: starting after
// `last`, accept server i with probability α_i; skip alarmed and down
// servers outright. The scan is bounded: after two full unavailing
// cycles it falls back to the next available server deterministically
// (this can only happen through extreme rounding of α, not in
// practice). When every server is down it returns -1.
func probScan(st *State, last int, rng Rand) int {
	n := st.Cluster().N()
	for k := 1; k <= 2*n; k++ {
		i := (last + k) % n
		if !st.available(i) {
			continue
		}
		if rng.Float64() <= st.Cluster().Alpha(i) {
			return i
		}
	}
	for k := 1; k <= n; k++ {
		i := (last + k) % n
		if st.available(i) {
			return i
		}
	}
	return -1
}

// dalEntry is one outstanding address mapping tracked by the DAL
// selector: the hidden load it pins to a server and when it expires.
type dalEntry struct {
	expire float64
	server int
	load   float64
}

type dalHeap []dalEntry

func (h dalHeap) Len() int           { return len(h) }
func (h dalHeap) Less(i, j int) bool { return h[i].expire < h[j].expire }
func (h dalHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dalHeap) Push(x any)        { *h = append(*h, x.(dalEntry)) }
func (h *dalHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// dalSelector implements the minimum Dynamically Accumulated Load
// baseline in the capacity-aware version used by the paper's Figure 3:
// every mapping accumulates the domain's hidden load weight on the
// chosen server for the duration of the TTL, and each request goes to
// the server with the smallest accumulated load per unit of capacity.
type dalSelector struct {
	now     func() float64
	ttl     float64
	load    []float64
	pending dalHeap
}

// NewDAL returns the DAL selector. now supplies the current (virtual
// or wall) time; ttl is the constant TTL the policy hands out, which
// also bounds how long each accumulated load entry persists.
func NewDAL(now func() float64, ttl float64) Selector {
	return &dalSelector{now: now, ttl: ttl}
}

func (d *dalSelector) Name() string { return "DAL" }

func (d *dalSelector) Select(st *State, domain int) int {
	n := st.Cluster().N()
	if len(d.load) != n {
		d.load = make([]float64, n)
	}
	t := d.now()
	for len(d.pending) > 0 && d.pending[0].expire <= t {
		e := heap.Pop(&d.pending).(dalEntry)
		d.load[e.server] -= e.load
		if d.load[e.server] < 0 {
			d.load[e.server] = 0
		}
	}
	best, bestScore := -1, 0.0
	for i := 0; i < n; i++ {
		if !st.available(i) {
			continue
		}
		score := d.load[i] / st.Cluster().Alpha(i)
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return -1
	}
	w := st.Weight(domain)
	d.load[best] += w
	heap.Push(&d.pending, dalEntry{expire: t + d.ttl, server: best, load: w})
	return best
}
