package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// DomainClass identifies a domain's popularity class under the
// two-tier (RR2 / TTL-2) partitioning.
type DomainClass int

const (
	// ClassNormal marks a domain whose relative hidden load weight is
	// at or below the class threshold β.
	ClassNormal DomainClass = iota + 1
	// ClassHot marks a domain above the class threshold β.
	ClassHot
)

// String implements fmt.Stringer.
func (c DomainClass) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassHot:
		return "hot"
	default:
		return fmt.Sprintf("DomainClass(%d)", int(c))
	}
}

// ErrNoServers is returned by Policy.Schedule when every server in the
// cluster is down: there is no address the DNS could meaningfully hand
// out, so the caller must answer "no server available" (SERVFAIL on
// the live path).
var ErrNoServers = errors.New("core: no server available")

// State is the information the DNS scheduler works from: the server
// cluster, the current estimate of each domain's hidden load weight,
// the two-tier class partition derived from those weights, the
// per-server alarm flags raised by the feedback mechanism, the
// per-server liveness flags maintained by failure detection, and the
// membership lifecycle (member / draining / retired) driven by
// operator reconfiguration.
//
// State is mutated by the estimator (SetWeights), by server alarm
// signals (SetAlarm), by the liveness machinery (SetDown), and by
// reconfiguration (AddServer, SetCapacity, DrainServer,
// ReinstateServer, RemoveServer); selectors and TTL policies read it
// on every address request.
//
// Concurrency: State publishes an immutable Snapshot through an atomic
// pointer. Readers (including Policy.Schedule) never block and may run
// concurrently with any mutator; mutators serialize among themselves
// on an internal mutex, rebuild the snapshot copy-on-write, and
// publish it atomically. A reader holding a Snapshot sees one frozen,
// internally consistent state; it does not observe later mutations.
//
// Alarms and liveness are distinct: an alarmed server is overloaded
// but serving (it is skipped unless every eligible server is alarmed),
// while a down server is gone and never eligible. Membership changes
// (SetDown and the reconfiguration mutators) bump the state version so
// TTL policies recalibrate against the surviving cluster.
type State struct {
	mu   sync.Mutex // serializes mutators; readers never take it
	snap atomic.Pointer[Snapshot]

	// Transition counters for observability: how often the feedback
	// machinery actually changed a server's standing. Only real flips
	// count — a repeated identical signal is a no-op.
	alarmFlips atomic.Uint64
	downFlips  atomic.Uint64
}

// NewState creates scheduler state for the given cluster and number of
// connected domains. The class threshold defaults to the paper's
// β = 1/K. Initial weights are uniform; call SetWeights once estimates
// are available. Every server starts as an active member.
func NewState(cluster *Cluster, domains int) (*State, error) {
	if cluster == nil {
		return nil, errors.New("core: nil cluster")
	}
	if domains <= 0 {
		return nil, errors.New("core: need at least one domain")
	}
	sn := &Snapshot{
		cluster:  cluster,
		beta:     1 / float64(domains),
		weights:  make([]float64, domains),
		alarmed:  make([]bool, cluster.N()),
		down:     make([]bool, cluster.N()),
		member:   make([]bool, cluster.N()),
		draining: make([]bool, cluster.N()),
	}
	for i := range sn.weights {
		sn.weights[i] = 1 / float64(domains)
	}
	for i := range sn.member {
		sn.member[i] = true
	}
	sn.reclassify()
	sn.recount()
	s := &State{}
	s.snap.Store(sn)
	return s, nil
}

// Snapshot returns the current immutable view of the state. The
// returned value never changes; it is safe for unsynchronized
// concurrent use and is the unit the query hot path works from.
func (s *State) Snapshot() *Snapshot { return s.snap.Load() }

// Cluster returns the server cluster.
func (s *State) Cluster() *Cluster { return s.Snapshot().Cluster() }

// Domains returns the number of connected domains.
func (s *State) Domains() int { return s.Snapshot().Domains() }

// Beta returns the class threshold β.
func (s *State) Beta() float64 { return s.Snapshot().Beta() }

// SetBeta overrides the class threshold and recomputes the partition.
func (s *State) SetBeta(beta float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.snap.Load().clone()
	next.beta = beta
	next.reclassify()
	s.snap.Store(next)
}

// SetWeights installs new relative hidden load weight estimates. The
// weights are normalized to sum to one; the two-tier class partition
// and class means are recomputed. The number of domains must not
// change over the life of a State.
func (s *State) SetWeights(w []float64) error {
	var sum float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: weight %d is %v, want non-negative finite", i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return errors.New("core: weights sum to zero")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if len(w) != len(cur.weights) {
		return fmt.Errorf("core: weight vector length %d, want %d", len(w), len(cur.weights))
	}
	next := cur.clone()
	for i, v := range w {
		next.weights[i] = v / sum
	}
	next.reclassify()
	s.snap.Store(next)
	return nil
}

// Version returns a counter that increments whenever the weights, the
// class threshold, or cluster membership change.
func (s *State) Version() uint64 { return s.Snapshot().Version() }

// Weight returns the relative hidden load weight of domain j.
func (s *State) Weight(j int) float64 { return s.Snapshot().Weight(j) }

// Weights returns a copy of the relative hidden load weight vector.
func (s *State) Weights() []float64 { return s.Snapshot().Weights() }

// MaxWeight returns γ_max, the weight of the most popular domain.
func (s *State) MaxWeight() float64 { return s.Snapshot().MaxWeight() }

// Class returns the two-tier class of domain j.
func (s *State) Class(j int) DomainClass { return s.Snapshot().Class(j) }

// ClassMeanWeight returns the mean hidden load weight of a class,
// used by the two-class TTL policies.
func (s *State) ClassMeanWeight(c DomainClass) float64 {
	return s.Snapshot().ClassMeanWeight(c)
}

// HotDomains returns how many domains are currently in the hot class.
func (s *State) HotDomains() int { return s.Snapshot().HotDomains() }

// SetAlarm records an alarm (overloaded) or normal signal from server
// i. An out-of-range index is an error: it means a misconfigured or
// misbehaving reporter, which the caller should surface rather than
// silently drop. Alarm signals for retired slots are ignored (a
// straggler report from a server already removed is not an error).
func (s *State) SetAlarm(i int, alarmed bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.alarmed) {
		return fmt.Errorf("core: alarm for server %d out of range [0,%d)", i, len(cur.alarmed))
	}
	if !cur.member[i] || cur.alarmed[i] == alarmed {
		return nil
	}
	next := cur.clone()
	next.alarmed[i] = alarmed
	next.recount()
	s.snap.Store(next)
	s.alarmFlips.Add(1)
	return nil
}

// AlarmTransitions returns how many SetAlarm calls changed a server's
// alarm flag since creation (repeated identical signals do not count).
func (s *State) AlarmTransitions() uint64 { return s.alarmFlips.Load() }

// DownTransitions returns how many SetDown calls changed a server's
// liveness since creation (repeated identical signals do not count).
func (s *State) DownTransitions() uint64 { return s.downFlips.Load() }

// Alarmed reports whether server i has declared itself critically
// loaded.
func (s *State) Alarmed(i int) bool { return s.Snapshot().Alarmed(i) }

// AllAlarmed reports whether every member server is currently alarmed,
// in which case selectors ignore alarms (there is no better
// candidate).
func (s *State) AllAlarmed() bool { return s.Snapshot().AllAlarmed() }

// SetDown marks server i as failed (down=true) or recovered. A down
// server is excluded from every selector regardless of alarms; a
// membership change bumps the state version so TTL policies
// recalibrate against the surviving cluster. Liveness signals for
// retired slots are ignored.
func (s *State) SetDown(i int, down bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.down) {
		return fmt.Errorf("core: liveness for server %d out of range [0,%d)", i, len(cur.down))
	}
	if !cur.member[i] || cur.down[i] == down {
		return nil
	}
	next := cur.clone()
	next.down[i] = down
	next.recount()
	next.version++
	s.snap.Store(next)
	s.downFlips.Add(1)
	return nil
}

// Down reports whether server i is currently marked failed.
func (s *State) Down(i int) bool { return s.Snapshot().Down(i) }

// AllDown reports whether no member server is live; Schedule then
// returns ErrNoServers.
func (s *State) AllDown() bool { return s.Snapshot().AllDown() }

// LiveServers returns the number of member servers not marked down.
func (s *State) LiveServers() int { return s.Snapshot().LiveServers() }

// Member reports whether slot i is currently a cluster member.
func (s *State) Member(i int) bool { return s.Snapshot().Member(i) }

// Draining reports whether server i is draining.
func (s *State) Draining(i int) bool { return s.Snapshot().Draining(i) }

// MemberServers returns the number of non-retired slots.
func (s *State) MemberServers() int { return s.Snapshot().MemberServers() }

// AddServer appends a new server slot with the given capacity and
// returns its index. The new server is an active member immediately:
// selectors may pick it on the very next decision. The capacity may
// violate the sorted order required of statically built clusters —
// relative capacities are renormalized against the member maximum.
func (s *State) AddServer(capacity float64) (int, error) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return 0, fmt.Errorf("core: capacity %v, want positive finite", capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	next := cur.clone()
	next.cluster = cur.cluster.withCapacity(-1, capacity)
	next.alarmed = append(next.alarmed, false)
	next.down = append(next.down, false)
	next.member = append(next.member, true)
	next.draining = append(next.draining, false)
	next.recount()
	next.version++
	s.snap.Store(next)
	return len(next.member) - 1, nil
}

// SetCapacity changes the absolute capacity of member server i,
// renormalizing the relative capacity vector and recalibrating TTLs
// via the version bump.
func (s *State) SetCapacity(i int, capacity float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("core: capacity %v, want positive finite", capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.member) || !cur.member[i] {
		return fmt.Errorf("core: capacity change for non-member server %d", i)
	}
	if cur.cluster.Capacity(i) == capacity {
		return nil
	}
	next := cur.clone()
	next.cluster = cur.cluster.withCapacity(i, capacity)
	next.recount()
	next.version++
	s.snap.Store(next)
	return nil
}

// DrainServer puts member server i into the draining state: selectors
// stop handing out new mappings to it immediately, but it remains a
// member (and should stay resolvable / serving) until the hidden-load
// window of its outstanding TTLs has expired, at which point the
// caller retires it with RemoveServer. Draining an already-draining
// server is a no-op.
func (s *State) DrainServer(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.member) || !cur.member[i] {
		return fmt.Errorf("core: drain of non-member server %d", i)
	}
	if cur.draining[i] {
		return nil
	}
	next := cur.clone()
	next.draining[i] = true
	next.recount()
	next.version++
	s.snap.Store(next)
	return nil
}

// ReinstateServer cancels a drain or revives a retired slot at the
// given capacity, returning it to full membership with cleared alarm
// and down flags. It is how a re-JOINing server reclaims its old
// index.
func (s *State) ReinstateServer(i int, capacity float64) error {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("core: capacity %v, want positive finite", capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.member) {
		return fmt.Errorf("core: reinstate of server %d out of range [0,%d)", i, len(cur.member))
	}
	next := cur.clone()
	next.member[i] = true
	next.draining[i] = false
	next.alarmed[i] = false
	next.down[i] = false
	if cur.cluster.Capacity(i) != capacity {
		next.cluster = cur.cluster.withCapacity(i, capacity)
	}
	next.recount()
	next.version++
	s.snap.Store(next)
	return nil
}

// RemoveServer retires slot i: it is no longer a member, is never
// scheduled, and its alarm/down/draining flags are cleared. The slot
// index remains reserved (indices are stable) and may be revived by
// ReinstateServer. Removing the last member is an error — the
// scheduler must always have at least one slot to hand out.
func (s *State) RemoveServer(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snap.Load()
	if i < 0 || i >= len(cur.member) || !cur.member[i] {
		return fmt.Errorf("core: removal of non-member server %d", i)
	}
	if cur.nMember == 1 {
		return fmt.Errorf("core: cannot remove server %d: it is the last member", i)
	}
	next := cur.clone()
	next.member[i] = false
	next.draining[i] = false
	next.alarmed[i] = false
	next.down[i] = false
	next.recount()
	next.version++
	s.snap.Store(next)
	return nil
}

// available reports whether server i should be considered by a
// selector under the current snapshot; see Snapshot.available.
func (s *State) available(i int) bool { return s.Snapshot().available(i) }
